/// Mixing queue-level and per-submission frequency policies
/// (paper Listing 2 and Listing 4).
///
/// Two queues share one device: one pinned to a low-frequency
/// configuration, one at defaults; a per-submission frequency overrides
/// both for a single kernel.

#include <cstdio>

#include "synergy/synergy.hpp"

using simsycl::handler;
using simsycl::id;
using simsycl::range;

namespace {

simsycl::kernel_info make_info(const char* name) {
  simsycl::kernel_info info;
  info.name = name;
  info.features.float_add = 32;
  info.features.float_mul = 32;
  info.features.gl_access = 4;
  info.work_multiplier = 2048.0;
  return info;
}

void report(const char* label, const simsycl::event& e, synergy::queue& q) {
  std::printf("%-28s core=%6.0f MHz  time=%8.3f ms  energy=%8.4f J\n", label,
              e.record().config.core.value, e.record().cost.time.ms(),
              q.kernel_energy_consumption(e));
}

}  // namespace

int main() {
  simsycl::device dev{synergy::gpusim::make_v100()};
  auto ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev});

  // synergy::queue low_freq{877, 810, gpu_selector_v};
  synergy::queue low_freq{dev, ctx};
  low_freq.set_fixed_frequency({synergy::common::megahertz{877},
                                dev.spec().nearest_core_clock(synergy::common::megahertz{810})});

  // synergy::queue default_freq{gpu_selector_v};
  synergy::queue default_freq{dev, ctx};

  const auto n = range<1>{4096};

  auto e1 = low_freq.submit([&](handler& h) {
    h.parallel_for(n, make_info("kernel1"), [](id<1>) {});
  });
  report("low_freq queue (810 MHz)", e1, low_freq);

  // Per-submission frequencies override the queue policy (Listing 4):
  auto e2 = default_freq.submit(877.0, 1530.0, [&](handler& h) {
    h.parallel_for(n, make_info("kernel2"), [](id<1>) {});
  });
  report("default queue @ 877/1530", e2, default_freq);

  auto e3 = default_freq.submit([&](handler& h) {
    h.parallel_for(n, make_info("kernel3"), [](id<1>) {});
  });
  report("default queue (no policy)", e3, default_freq);

  std::printf("\nqueue energy windows: low_freq=%.4f J  default=%.4f J\n",
              low_freq.device_energy_consumption(), default_freq.device_energy_consumption());
  return 0;
}

/// Cluster workflow (paper Sec. 7): submit an MPI+SYCL job to the SLURM-like
/// controller with the nvgpufreq GRES, let the plugin grant frequency
/// privileges, run CloverLeaf-mini with a per-kernel ES_50 target, and read
/// the job's energy accounting. A second, non-exclusive job shows the
/// plugin declining privileges.

#include <cstdio>
#include <iostream>

#include "synergy/sched/controller.hpp"
#include "synergy/workloads/apps.hpp"

namespace ss = synergy::sched;
namespace sm = synergy::metrics;
namespace sw = synergy::workloads;

int main() {
  // Four nvgpufreq-capable nodes with 4 V100s each (Marconi-100 style).
  std::vector<ss::node_config> nodes;
  for (int i = 0; i < 4; ++i) {
    ss::node_config cfg;
    cfg.name = "m100n" + std::to_string(i);
    cfg.gpus = {"V100", "V100", "V100", "V100"};
    cfg.gres = {ss::nvgpufreq_plugin::gres_tag};
    nodes.push_back(cfg);
  }
  ss::controller ctl{std::move(nodes)};
  auto plugin = std::make_shared<ss::nvgpufreq_plugin>();
  ctl.register_plugin(plugin);

  sw::apps::app_config app_cfg;
  app_cfg.nx = 16;
  app_cfg.ny = 16;
  app_cfg.timesteps = 2;
  app_cfg.work_multiplier = 1048576.0;  // memory-constrained per-GPU slab

  // The payload runs one MPI rank per allocated GPU, through the nodes'
  // own management sessions (so the plugin's privilege grant is what makes
  // frequency scaling work).
  auto bind_job_gpus = [](ss::job_context& job) {
    std::vector<sw::apps::gpu_binding> gpus;
    for (ss::node* n : job.nodes)
      for (const auto& dev : n->devices()) gpus.push_back({dev, n->ctx()});
    return gpus;
  };

  // Job 1: exclusive + GRES-tagged -> privileges granted, ES_50 tuning on.
  ss::job_request tuned;
  tuned.name = "cloverleaf_es50";
  tuned.n_nodes = 2;
  tuned.exclusive = true;
  tuned.gres = {ss::nvgpufreq_plugin::gres_tag};
  sw::apps::app_result tuned_result;
  tuned.payload = [&](ss::job_context& job) {
    auto cfg = app_cfg;
    cfg.gpus = bind_job_gpus(job);
    tuned_result = sw::apps::run_cloverleaf(static_cast<int>(cfg.gpus.size()), cfg, sm::ES_50);
  };
  const int id1 = ctl.submit(std::move(tuned));

  // Job 2: not exclusive -> the plugin refuses privileges; the app still
  // runs, at default clocks.
  ss::job_request shared;
  shared.name = "cloverleaf_shared";
  shared.n_nodes = 2;
  shared.gres = {ss::nvgpufreq_plugin::gres_tag};
  shared.exclusive = false;
  sw::apps::app_result base_result;
  shared.payload = [&](ss::job_context& job) {
    auto cfg = app_cfg;
    cfg.gpus = bind_job_gpus(job);
    base_result = sw::apps::run_cloverleaf(static_cast<int>(cfg.gpus.size()), cfg, std::nullopt);
  };
  const int id2 = ctl.submit(std::move(shared));

  ctl.run_pending();

  const auto& j1 = ctl.job(id1);
  const auto& j2 = ctl.job(id2);
  std::printf("job %d (%s): %s on %zu node(s)\n", j1.id, j1.request.name.c_str(),
              to_string(j1.state), j1.node_names.size());
  std::printf("  tuned run : time=%.3f s  gpu energy=%.1f J\n", tuned_result.makespan_s,
              tuned_result.gpu_energy_j);
  std::printf("job %d (%s): %s (plugin %s privileges)\n", j2.id, j2.request.name.c_str(),
              to_string(j2.state), plugin->granted() ? "granted" : "declined");
  std::printf("  base run  : time=%.3f s  gpu energy=%.1f J\n", base_result.makespan_s,
              base_result.gpu_energy_j);
  std::printf("\nES_50 energy saving vs default: %.1f%%\n",
              (1.0 - tuned_result.gpu_energy_j / base_result.gpu_energy_j) * 100.0);
  std::printf("\naccounting report (sreport analogue):\n");
  ctl.report(std::cout);
  return 0;
}

/// Tracing a SYnergy workload end to end.
///
/// Runs two benchmark kernels under an energy-saving target with telemetry
/// on, then shows the three observability surfaces the runtime exposes:
///   1. the metrics registry (counters/gauges/histograms, printed as a table),
///   2. the trace ring (span/instant events from every layer), and
///   3. the Chrome trace-event exporter -- load traced_run.trace.json in
///      chrome://tracing or https://ui.perfetto.dev to see host-side spans
///      (pid 1) next to the simulated device timeline (pid 2).
/// See tools/synergy_trace.cpp for the full-featured CLI version.

#include <cstdio>
#include <iostream>

#include "synergy/synergy.hpp"
#include "synergy/telemetry/export.hpp"
#include "synergy/telemetry/telemetry.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace sm = synergy::metrics;
namespace sw = synergy::workloads;
namespace tel = synergy::telemetry;

int main() {
#if !SYNERGY_TELEMETRY_ENABLED
  std::printf("telemetry is compiled out (-DSYNERGY_TELEMETRY=OFF); the trace "
              "below will be empty.\n\n");
#endif
  tel::set_enabled(true);
  tel::trace_recorder::instance().clear();

  simsycl::device dev{synergy::gpusim::make_v100()};
  auto ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev});
  synergy::queue q{dev, ctx};
  q.set_target(sm::ES_50);

  // Application-level spans nest around the runtime's own instrumentation.
  {
    SYNERGY_SPAN(tel::category::other, "app.workload");
    for (const char* name : {"mat_mul", "sobel3"}) {
      SYNERGY_SPAN_VAR(span, tel::category::other, "app.kernel");
      span.str("benchmark", name);
      const auto e = sw::find(name).run(q);
      e.wait_and_throw();
      span.arg("energy_j", q.kernel_energy_consumption(e));
    }
  }
  SYNERGY_INSTANT(tel::category::other, "app.done",
                  {"total_energy_j", q.device_energy_consumption()});

  // Surface 1: aggregated metrics.
  std::printf("metrics registry:\n");
  tel::metrics_registry::instance().summary_table(std::cout);

  // Surface 2: the raw event ring.
  auto& rec = tel::trace_recorder::instance();
  std::printf("\ntrace ring: %zu events (capacity %zu, dropped %zu)\n", rec.size(),
              rec.capacity(), rec.dropped());
  for (const auto& e : rec.snapshot())
    std::printf("  [%c] pid=%u tid=%u ts=%10.1fus dur=%10.1fus %s\n", e.phase, e.pid, e.tid,
                e.ts_us, e.dur_us, e.name.c_str());

  // Surface 3: Chrome trace-event JSON.
  const char* out = "traced_run.trace.json";
  if (!tel::write_chrome_trace_file(out)) {
    std::fprintf(stderr, "failed to write %s\n", out);
    return 1;
  }
  std::printf("\nwrote %s -- open it in chrome://tracing or ui.perfetto.dev\n", out);
  return 0;
}

/// Deployment workflow on a new system (paper Sec. 3.2 and Sec. 6).
///
/// 1. Train the four per-metric models from micro-benchmarks on the target
///    device (Fig. 6 steps 1-3).
/// 2. Persist them to a model store, as an administrator would per GPU
///    product.
/// 3. Load them back and build a frequency planner; compare its per-kernel
///    plans against the simulator-exact oracle.

#include <cstdio>
#include <filesystem>

#include "synergy/synergy.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace sm = synergy::metrics;
namespace sw = synergy::workloads;

int main() {
  const auto spec = synergy::gpusim::make_v100();

  std::printf("training models for %s ...\n", spec.name.c_str());
  synergy::trainer_options opt;
  opt.n_microbenchmarks = 48;
  opt.freq_samples = 28;
  opt.repetitions = 2;
  synergy::model_trainer trainer{spec, opt};
  auto models = trainer.train_default();
  std::printf("  time model  : %s\n", models.time->name().c_str());
  std::printf("  energy model: %s\n", models.energy->name().c_str());

  const auto dir = std::filesystem::temp_directory_path() / "synergy_models";
  synergy::model_store store{dir};
  if (const auto st = store.save("V100", models); !st.ok()) {
    std::printf("error: cannot persist models: %s\n", st.err().to_string().c_str());
    return 1;
  }
  std::printf("saved to %s\n", dir.string().c_str());

  auto loaded = store.load("V100");
  if (!loaded.ok()) {
    std::printf("error: models did not verify:\n%s", loaded.summary().c_str());
    return 1;
  }
  synergy::frequency_planner planner{spec, std::move(loaded.models)};

  std::printf("\n%-14s %-11s %14s %14s\n", "kernel", "target", "predicted MHz", "oracle MHz");
  std::printf("%s\n", std::string(58, '-').c_str());
  for (const char* name : {"black_scholes", "mat_mul", "sobel3", "vec_add"}) {
    const auto& bench = sw::find(name);
    for (const auto& target : {sm::MIN_ENERGY, sm::MIN_EDP, sm::ES_50}) {
      const auto predicted = planner.plan(bench.info.features, target);
      const auto oracle = synergy::oracle_plan(spec, bench.profile(), target);
      std::printf("%-14s %-11s %14.0f %14.0f\n", name, target.to_string().c_str(),
                  predicted.core.value, oracle.core.value);
    }
  }
  std::printf("\nmodels persisted at %s (remove at will)\n", dir.string().c_str());
  return 0;
}

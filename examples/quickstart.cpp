/// Quickstart: energy profiling with the SYnergy API (paper Listing 1).
///
/// Builds a SYnergy queue on the default GPU, runs a SAXPY kernel, and
/// queries both fine-grained (per-kernel) and coarse-grained (per-device)
/// energy consumption.

#include <cstdio>
#include <numeric>
#include <vector>

#include "synergy/synergy.hpp"

using simsycl::access_mode;
using simsycl::accessor;
using simsycl::buffer;
using simsycl::handler;
using simsycl::id;
using simsycl::range;

int main() {
  // synergy::queue q{gpu_selector_v};
  synergy::queue q{simsycl::gpu_selector_v};
  std::printf("device: %s\n", q.get_device().name().c_str());

  const std::size_t n = 1 << 14;
  std::vector<float> x(n), y(n), z(n, 0.0f);
  std::iota(x.begin(), x.end(), 0.0f);
  std::iota(y.begin(), y.end(), 1.0f);
  const float alpha = 2.0f;

  // The kernel's cost annotation; in a full deployment the feature vector
  // comes from the extraction pass (see src/features), here it is spelled
  // out to keep the example self-contained.
  simsycl::kernel_info info;
  info.name = "saxpy";
  info.features.float_mul = 1;
  info.features.float_add = 1;
  info.features.gl_access = 3;
  info.work_multiplier = 1024.0;  // simulate a GPU-scale launch

  buffer<float> x_buf{x};
  buffer<float> y_buf{y};
  buffer<float> z_buf{z};

  simsycl::event e = q.submit([&](handler& h) {
    accessor<float, 1, access_mode::read> x_acc{x_buf, h};
    accessor<float, 1, access_mode::read> y_acc{y_buf, h};
    accessor<float, 1, access_mode::write> z_acc{z_buf, h};
    const float a{alpha};
    h.parallel_for(range<1>{n}, info,
                   [=](id<1> i) { z_acc[i] = a * x_acc[i] + y_acc[i]; });
  });
  e.wait_and_throw();

  const double kernel_energy = q.kernel_energy_consumption(e);
  const double device_energy = q.device_energy_consumption();

  std::printf("kernel '%s':\n", e.kernel_name().c_str());
  std::printf("  virtual runtime : %.3f us\n",
              e.record().cost.time.us());
  std::printf("  average power   : %.1f W\n", e.record().cost.avg_power.value);
  std::printf("  kernel energy   : %.4f J\n", kernel_energy);
  std::printf("  device energy   : %.4f J (since queue construction)\n", device_energy);

  // Sanity: the computation is real.
  simsycl::host_accessor<float> z_acc{z_buf};
  std::printf("  z[10] = %.1f (expect %.1f)\n", static_cast<double>(z_acc[10]),
              static_cast<double>(alpha * x[10] + y[10]));
  return 0;
}

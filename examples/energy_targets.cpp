/// Per-kernel energy targets (paper Listing 3).
///
/// Submits the same two benchmark kernels under every energy target and
/// prints the frequency each target resolves to plus the resulting
/// time/energy, illustrating why fine-grained (per-kernel) tuning matters:
/// the same target picks different frequencies for different kernels.

#include <cstdio>

#include "synergy/synergy.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace sm = synergy::metrics;
namespace sw = synergy::workloads;

int main() {
  simsycl::device dev{synergy::gpusim::make_v100()};
  auto ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev});

  std::printf("%-14s %-10s %10s %12s %12s\n", "kernel", "target", "core MHz", "time (ms)",
              "energy (J)");
  std::printf("%s\n", std::string(62, '-').c_str());

  for (const char* name : {"mat_mul", "sobel3"}) {
    const auto& bench = sw::find(name);
    for (const auto& target : {sm::MAX_PERF, sm::MIN_ENERGY, sm::MIN_EDP, sm::MIN_ED2P,
                               sm::ES_25, sm::ES_50, sm::PL_25, sm::PL_50}) {
      synergy::queue q{dev, ctx};
      q.set_target(target);
      // q.submit(MIN_EDP, [&](handler& h) { ... }) works per submission too;
      // here the queue-level target applies to the benchmark's launch.
      const auto e = bench.run(q);
      e.wait_and_throw();
      std::printf("%-14s %-10s %10.0f %12.4f %12.4f\n", name, target.to_string().c_str(),
                  e.record().config.core.value, e.record().cost.time.ms(),
                  q.kernel_energy_consumption(e));
    }
    std::printf("\n");
  }

  std::printf(
      "note: the same target resolves to different clocks per kernel -- the\n"
      "fine-grained tuning the paper argues coarse (per-application) DVFS\n"
      "cannot express (Sec. 2.2).\n");
  return 0;
}

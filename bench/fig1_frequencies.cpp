/// Figure 1 reproduction: available core and memory frequencies for the
/// NVIDIA V100, NVIDIA A100, and AMD MI100, as enumerated through the
/// vendor management libraries.

#include <iostream>
#include <memory>

#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"
#include "synergy/gpusim/device.hpp"
#include "synergy/vendor/management_library.hpp"

namespace sc = synergy::common;
namespace gs = synergy::gpusim;
namespace sv = synergy::vendor;

int main() {
  sc::print_banner(std::cout, "Figure 1: available frequencies (V100 / A100 / MI100)");

  sc::text_table table;
  table.header({"device", "backend", "mem MHz", "#core cfgs", "core min", "core max",
                "default"});

  for (const auto& name : gs::known_device_names()) {
    auto board = std::make_shared<gs::device>(gs::make_device_spec(name));
    auto lib = sv::make_management_library({board});
    lib->init();
    const auto mem = lib->supported_memory_clocks(0).value().front();
    const auto cores = lib->supported_core_clocks(0, mem).value();
    table.row({lib->device_name(0).value(), lib->backend_name(),
               sc::text_table::fmt(mem.value, 0),
               std::to_string(cores.size()),
               sc::text_table::fmt(cores.front().value, 0),
               sc::text_table::fmt(cores.back().value, 0),
               sc::text_table::fmt(board->spec().default_core_clock().value, 0)});
  }
  table.print(std::cout);

  std::cout << "\npaper reference: V100 196 cfgs 135-1530 (mem 877), A100 81 cfgs 210-1410\n"
               "(mem 1215), MI100 16 cfgs 300-1502 (mem 1200)\n";

  std::cout << "\ncsv:\n";
  sc::csv_writer w{std::cout};
  w.row({"device", "core_mhz"});
  for (const auto& name : gs::known_device_names()) {
    const auto spec = gs::make_device_spec(name);
    for (const auto f : spec.core_clocks)
      w.row({name, sc::csv_writer::num(f.value)});
  }
  return 0;
}

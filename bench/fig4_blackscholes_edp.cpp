/// Figure 4 reproduction: EDP and ED2P of Black-Scholes vs core frequency
/// on the V100, with the minimising configurations marked. The paper's
/// observation to verify: the ED2P optimum sits very close to maximum
/// performance / maximum frequency, while the EDP optimum lies between the
/// minimum-energy point and maximum performance.

#include <iostream>

#include "characterize.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"

namespace sc = synergy::common;
namespace sm = synergy::metrics;

int main() {
  const auto spec = synergy::gpusim::make_v100();
  const auto c = bench::characterize(spec, "black_scholes");

  const auto i_edp = sm::select(c, sm::MIN_EDP);
  const auto i_ed2p = sm::select(c, sm::MIN_ED2P);
  const auto i_energy = sm::select(c, sm::MIN_ENERGY);
  const auto i_perf = sm::select(c, sm::MAX_PERF);

  sc::print_banner(std::cout, "Figure 4: Black-Scholes EDP / ED2P vs core frequency (V100)");

  sc::text_table table;
  table.header({"core MHz", "EDP (J*s)", "ED2P (J*s^2)", "mark"});
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    // Print every 8th row plus all marked rows to keep the table readable;
    // the CSV below carries the full series.
    const bool marked = i == i_edp || i == i_ed2p || i == c.default_index;
    if (i % 8 != 0 && !marked) continue;
    std::string mark;
    if (i == i_edp) mark += " <- MIN_EDP";
    if (i == i_ed2p) mark += " <- MIN_ED2P";
    if (i == c.default_index) mark += " (default)";
    table.row({sc::text_table::fmt(c.points[i].config.core.value, 0),
               sc::text_table::fmt(c.points[i].edp() * 1e3, 4),
               sc::text_table::fmt(c.points[i].ed2p() * 1e6, 4), mark});
  }
  table.print(std::cout);

  std::cout << "\nselected configurations:\n";
  sc::text_table sel;
  sel.header({"target", "core MHz", "speedup", "norm energy"});
  for (const auto& [label, idx] :
       std::vector<std::pair<const char*, std::size_t>>{{"MAX_PERF", i_perf},
                                                        {"MIN_EDP", i_edp},
                                                        {"MIN_ED2P", i_ed2p},
                                                        {"MIN_ENERGY", i_energy}}) {
    sel.row({label, sc::text_table::fmt(c.points[idx].config.core.value, 0),
             sc::text_table::fmt(c.speedup(c.points[idx]), 3),
             sc::text_table::fmt(c.normalized_energy(c.points[idx]), 3)});
  }
  sel.print(std::cout);

  const double f_edp = c.points[i_edp].config.core.value;
  const double f_ed2p = c.points[i_ed2p].config.core.value;
  const double f_perf = c.points[i_perf].config.core.value;
  const double f_energy = c.points[i_energy].config.core.value;
  std::cout << "\nshape check (paper Sec. 5.1): ED2P optimum near max performance: "
            << (f_ed2p >= f_perf - 80.0 ? "yes" : "NO") << "; EDP optimum interior ("
            << f_energy << " < " << f_edp << " <= " << f_perf
            << "): " << (f_edp > f_energy && f_edp <= f_perf ? "yes" : "NO") << '\n';

  std::cout << "\ncsv:\n";
  sc::csv_writer w{std::cout};
  w.row({"core_mhz", "edp", "ed2p"});
  for (const auto& p : c.points)
    w.row({sc::csv_writer::num(p.config.core.value), sc::csv_writer::num(p.edp()),
           sc::csv_writer::num(p.ed2p())});
  return 0;
}

/// Figure 2 reproduction: energy characterization of two kernels with very
/// different behaviour on the V100 — Linear Regression (little headroom,
/// performance-sensitive at low clocks) vs Median Filter (>20% savings
/// available at modest performance cost).

#include <iostream>

#include "characterize.hpp"
#include "synergy/common/table.hpp"

int main() {
  const auto spec = synergy::gpusim::make_v100();

  for (const char* name : {"lin_reg_coeff", "median"}) {
    const auto c = bench::characterize(spec, name);
    bench::print_series(std::cout, std::string("Figure 2: ") + name + " on V100", c);
    const auto s = bench::summarize(c);
    std::cout << '\n';
    bench::print_summary_row(std::cout, name, s);
  }

  std::cout << "\npaper reference (Fig. 2): linear regression offers <10% energy saving and\n"
               "low clocks are very slow; median filter offers >20% saving with mild\n"
               "performance loss.\n";
  return 0;
}

/// Launch-size sensitivity study (extension).
///
/// The paper's models are *static* per kernel; this sweep quantifies how
/// much the true optimal frequency actually moves with the launch size.
/// For tiny launches the fixed launch overhead dominates and the optima
/// collapse toward degenerate picks; once the kernel dwarfs the overhead
/// the optimum converges to the kernel's asymptotic value — justifying the
/// paper's static per-kernel decision for production-sized workloads.

#include <iostream>

#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"
#include "synergy/synergy.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace sc = synergy::common;
namespace sm = synergy::metrics;
namespace gs = synergy::gpusim;

int main() {
  const auto spec = gs::make_v100();

  sc::print_banner(std::cout,
                   "Launch-size sensitivity of the optimal frequency (V100)");
  sc::csv_writer csv{std::cout};
  std::vector<std::vector<std::string>> csv_rows;

  for (const char* name : {"black_scholes", "mat_mul"}) {
    const auto& b = synergy::workloads::find(name);
    sc::text_table table;
    table.header({"virtual items", "kernel time @default", "MIN_ENERGY MHz", "MIN_EDP MHz",
                  "ES_50 MHz"});
    for (double items = 1 << 10; items <= double(1 << 26); items *= 16.0) {
      auto profile = b.info.to_profile(1);
      profile.work_items = items;
      const auto c = synergy::oracle_characterization(spec, profile);
      const auto f_energy = c.points[sm::select(c, sm::MIN_ENERGY)].config.core.value;
      const auto f_edp = c.points[sm::select(c, sm::MIN_EDP)].config.core.value;
      const auto f_es50 = c.points[sm::select(c, sm::ES_50)].config.core.value;
      table.row({sc::text_table::fmt(items, 0),
                 sc::text_table::fmt(c.default_point().time_s * 1e6, 1) + " us",
                 sc::text_table::fmt(f_energy, 0), sc::text_table::fmt(f_edp, 0),
                 sc::text_table::fmt(f_es50, 0)});
      csv_rows.push_back({name, sc::csv_writer::num(items), sc::csv_writer::num(f_energy),
                          sc::csv_writer::num(f_edp), sc::csv_writer::num(f_es50)});
    }
    std::cout << '\n' << name << ":\n";
    table.print(std::cout);
  }

  std::cout << "\nshape check: the optimum stabilises once kernels dwarf the launch\n"
               "overhead, supporting the paper's static per-kernel frequency decision.\n";

  std::cout << "\ncsv:\n";
  csv.row({"kernel", "virtual_items", "min_energy_mhz", "min_edp_mhz", "es50_mhz"});
  for (const auto& r : csv_rows) csv.row(r);
  return 0;
}

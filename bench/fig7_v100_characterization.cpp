/// Figure 7 reproduction: speedup / normalised-energy characterization of
/// four significant benchmarks on the NVIDIA V100. Shape targets from the
/// paper: MatMul has a narrow Pareto speedup range (~0.95-1.01) but ~33%
/// energy saving at ~5% performance loss; Sobel3 spans ~0.73-1.15 and
/// saves ~30% at ~27% loss; the default configuration is not always the
/// best choice.

#include <iostream>

#include "characterize.hpp"
#include "synergy/common/table.hpp"

int main() {
  const auto spec = synergy::gpusim::make_v100();
  const char* benchmarks[] = {"mat_mul", "sobel3", "black_scholes", "median"};

  for (const char* name : benchmarks) {
    const auto c = bench::characterize(spec, name);
    bench::print_series(std::cout, std::string("Figure 7: ") + name + " on V100", c);
  }

  synergy::common::print_banner(std::cout, "Figure 7 summary (V100)");
  for (const char* name : benchmarks) {
    const auto s = bench::summarize(bench::characterize(spec, name));
    bench::print_summary_row(std::cout, name, s);
  }
  std::cout << "\npaper reference: mat_mul pareto speedup 0.95..1.01, 33% saving at 5% loss;\n"
               "sobel3 pareto speedup 0.73..1.15, 30% saving at 27% loss.\n";
  return 0;
}

/// Cost-shifting study: what price-aware scheduling buys on a facility bill.
///
/// One fixed-seed trace (80% of jobs deferrable, generous deadlines) replays
/// against a two-step tariff — an expensive opening window followed by a
/// long cheap tail — under three policies: strict FIFO (econ metering only,
/// no econ
/// control), EASY backfill (ditto), and cost-aware (deferral of deferrable
/// jobs past the pricey window plus price-threshold clock demotion). All
/// three run at default clocks (no planner), so the deltas isolate the econ
/// mechanisms rather than frequency tuning.
///
/// Acceptance gates (checked, nonzero exit on violation):
///  - economics: the cost-aware run's total cost (facility opex + amortised
///    capex) undercuts FIFO's by at least 10%;
///  - service: cost-aware makespan stays within 5% of FIFO's — shifting must
///    not buy its savings with unbounded completion delay;
///  - conservation: per-cause cost and carbon splits sum to the attributed
///    totals within 0.1% (the same contract synergy_top --check enforces on
///    snapshots);
///  - determinism: replaying the cost-aware configuration twice yields
///    byte-identical summary CSVs;
///  - crash safety: restoring a mid-run checkpoint artefact and resuming
///    reproduces the uninterrupted cost report byte-for-byte.

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "synergy/cluster/checkpoint.hpp"
#include "synergy/cluster/simulator.hpp"
#include "synergy/econ/tco.hpp"
#include "synergy/econ/trace.hpp"
#include "synergy/obs/energy_ledger.hpp"
#include "synergy/telemetry/metrics_registry.hpp"

namespace sc = synergy::cluster;
namespace econ = synergy::econ;

namespace {

/// Two-step aperiodic tariff: expensive over [0, span/3), cheap from there
/// on (the trailing equal step gives the cheap window weight in the
/// time-weighted mean, which anchors the defer threshold). The boundary
/// sits early in the arrival span so the deferred backlog drains inside the
/// cluster's spare capacity instead of extending the makespan.
econ::step_trace two_step(double span_s, double high, double low) {
  return econ::step_trace{{{0.0, high}, {span_s / 3.0, low}, {span_s, low}}, 0.0};
}

econ::econ_config make_econ(bool control) {
  econ::econ_config cfg;
  cfg.enabled = true;
  cfg.capex_usd_per_node_hour = 0.05;
  cfg.price = two_step(840.0, 0.30, 0.05);    // $/kWh
  cfg.carbon = two_step(840.0, 600.0, 100.0); // gCO2/kWh
  cfg.defer_price_ratio = 1.0;
  // The demotion rule is a facility-level control like the power cap; the
  // metering-only baselines switch it off so they measure, never steer.
  cfg.demote_price_ratio = control ? 1.3 : 0.0;
  return cfg;
}

struct run_result {
  sc::run_summary summary;
  std::string csv;
  double cost_usd{0.0};
  double carbon_g{0.0};
  double attributed_cost{0.0};
  double attributed_carbon{0.0};
  double cause_cost_sum{0.0};
  double cause_carbon_sum{0.0};
};

run_result replay(const sc::cluster_config& cc, const econ::econ_config& ec,
                  const std::string& policy, const sc::job_trace& trace,
                  double ckpt_interval_s = 0.0,
                  const std::filesystem::path& ckpt_dir = {}) {
  synergy::obs::energy_ledger::instance().reset();
  synergy::telemetry::metrics_registry::instance().reset_values();
  sc::cluster_config config = cc;
  config.econ = ec;
  sc::simulator sim{config, sc::make_policy(policy, {}, std::nullopt, &config.econ)};
  if (ckpt_interval_s > 0.0) {
    std::filesystem::remove_all(ckpt_dir);
    std::filesystem::create_directories(ckpt_dir);
    sc::checkpoint_options opts;
    opts.interval_s = ckpt_interval_s;
    opts.dir = ckpt_dir;
    sim.set_checkpointing(std::move(opts));
  }
  run_result r;
  r.summary = sim.run(trace);
  std::ostringstream os;
  r.summary.csv(os);
  r.csv = os.str();
  const auto& meter = sim.econ_meter();
  r.cost_usd = meter.total_cost_usd();
  r.carbon_g = meter.facility_carbon_g();
  r.attributed_cost = meter.attributed_cost_usd();
  r.attributed_carbon = meter.attributed_carbon_g();
  for (const double v : meter.cost_by_cause()) r.cause_cost_sum += v;
  for (const double v : meter.carbon_by_cause()) r.cause_carbon_sum += v;
  return r;
}

bool conserved(double sum, double total) {
  return std::abs(sum - total) <= 1e-3 * std::max(total, 1e-9);
}

}  // namespace

int main() {
  sc::trace_config tc;
  tc.n_jobs = 140;
  tc.seed = 97;
  tc.mean_interarrival_s = 6.0;
  tc.deferrable_fraction = 0.8;
  tc.deadline_slack_s = 900.0;
  const auto trace = sc::generate_trace(tc);

  sc::cluster_config cc;
  cc.n_nodes = 4;
  cc.gpus_per_node = 4;
  cc.host_power_w = 40.0;

  const auto fifo = replay(cc, make_econ(false), "fifo", trace);
  const auto backfill = replay(cc, make_econ(false), "backfill", trace);
  const auto cost = replay(cc, make_econ(true), "cost", trace);
  const auto cost_again = replay(cc, make_econ(true), "cost", trace);

  const auto pct = [](double now, double base) {
    return base > 0.0 ? 100.0 * (now - base) / base : 0.0;
  };
  const auto row = [&](const char* name, const run_result& r) {
    std::cout << "  " << name << "  cost $" << r.cost_usd << "  carbon " << r.carbon_g
              << " g  makespan " << r.summary.makespan_s << " s  deferred "
              << r.summary.econ_jobs_deferred << "  demotions "
              << r.summary.econ_price_demotions << '\n';
  };
  std::cout << "econ cost shifting (140 jobs, 16 GPUs, 80% deferrable, 2-step tariff)\n";
  row("fifo    ", fifo);
  row("backfill", backfill);
  row("cost    ", cost);
  std::cout << "  cost vs fifo: " << -pct(cost.cost_usd, fifo.cost_usd) << "% cheaper, "
            << -pct(cost.carbon_g, fifo.carbon_g) << "% less carbon, makespan "
            << pct(cost.summary.makespan_s, fifo.summary.makespan_s) << "%\n";

  int failures = 0;
  if (!(cost.cost_usd <= 0.90 * fifo.cost_usd)) {
    std::cerr << "FAIL: cost-aware saved under 10% vs FIFO ($" << cost.cost_usd << " vs $"
              << fifo.cost_usd << ")\n";
    ++failures;
  }
  if (!(cost.summary.makespan_s <= 1.05 * fifo.summary.makespan_s)) {
    std::cerr << "FAIL: cost-aware makespan exceeds FIFO's by over 5% ("
              << cost.summary.makespan_s << " s vs " << fifo.summary.makespan_s << " s)\n";
    ++failures;
  }
  if (cost.summary.econ_jobs_deferred == 0) {
    std::cerr << "FAIL: the cost policy never deferred — the scenario exercises nothing\n";
    ++failures;
  }
  for (const auto* r : {&fifo, &backfill, &cost}) {
    if (!conserved(r->cause_cost_sum, r->attributed_cost) ||
        !conserved(r->cause_carbon_sum, r->attributed_carbon)) {
      std::cerr << "FAIL: cost/carbon cause splits do not sum to the attributed totals\n";
      ++failures;
      break;
    }
  }
  if (cost_again.csv != cost.csv) {
    std::cerr << "FAIL: replaying the cost-aware configuration diverged\n";
    ++failures;
  }

  // Crash safety: checkpoint the cost-aware run, restore the newest mid-run
  // artefact into a fresh simulator, resume, and demand the identical
  // summary (econ columns included) byte for byte.
  const auto dir = std::filesystem::temp_directory_path() / "synergy_econ_bench_ckpt";
  const auto checkpointed = replay(cc, make_econ(true), "cost", trace, 60.0, dir);
  if (checkpointed.csv != cost.csv) {
    std::cerr << "FAIL: checkpointing perturbed the cost-aware replay\n";
    ++failures;
  }
  {
    synergy::obs::energy_ledger::instance().reset();
    synergy::telemetry::metrics_registry::instance().reset_values();
    sc::cluster_config config = cc;
    config.econ = make_econ(true);
    sc::simulator sim{config, sc::make_policy("cost", {}, std::nullopt, &config.econ)};
    sc::checkpoint_options opts;
    opts.interval_s = 60.0;
    opts.dir = dir;
    sim.set_checkpointing(std::move(opts));
    const auto newest = sc::latest_checkpoint(dir);
    std::string resumed_csv;
    if (newest.has_value()) {
      if (const auto payload = sc::read_checkpoint_payload(newest.value());
          payload.has_value()) {
        if (const auto st = sim.restore_checkpoint(payload.value(), trace); st.ok()) {
          const auto summary = sim.resume(trace);
          std::ostringstream os;
          summary.csv(os);
          resumed_csv = os.str();
        } else {
          std::cerr << "FAIL: restore: " << st.err().to_string() << '\n';
        }
      }
    }
    if (resumed_csv != cost.csv) {
      std::cerr << "FAIL: resumed cost report differs from the uninterrupted run\n";
      ++failures;
    } else {
      std::cout << "  resume: cost report byte-identical from "
                << newest.value().filename().string() << '\n';
    }
  }
  std::filesystem::remove_all(dir);

  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}

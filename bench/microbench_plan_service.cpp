/// microbench_plan_service — throughput and parity gate for the plan service.
///
/// The planner-as-a-service refactor claims three things, and this benchmark
/// holds CI to all of them (EXPERIMENTS.md records the measured numbers):
///
///   1. Byte-identical decisions. Every request resolved through the service
///      — single, cached, batched, or deduplicated — must equal the decision
///      the bare degradation chain produces for the same request. Any
///      mismatch exits 1 immediately; a cache that changes clocks is a
///      correctness bug, not a performance trade.
///   2. Serviced single-plan throughput at least matches the bare chain
///      (the pre-service baseline): the generation-checked cache lookup must
///      pay for itself on repeat traffic.
///   3. Batched resolution reaches at least `--min-batch-speedup` times the
///      bare chain's single-plan throughput (default 5x): in-batch
///      deduplication plus one guardrail pass per batch is the scaling
///      story, so a regression here is a gate failure (exit 1).
///
/// Timed regions auto-size to ~0.25s and take the best of `--reps` passes,
/// so scheduler contamination inflates nothing that can cause a false PASS.
///
/// Usage: microbench_plan_service [--reps N] [--batch N] [--min-batch-speedup X]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "synergy/common/rng.hpp"
#include "synergy/plan_service.hpp"
#include "synergy/synergy.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace sm = synergy::metrics;
namespace gs = synergy::gpusim;
namespace sw = synergy::workloads;

using synergy::guarded_planner;
using synergy::plan_request;
using synergy::plan_service;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool same_decision(const synergy::plan_decision& a, const synergy::plan_decision& b) {
  return a.config.core.value == b.config.core.value &&
         a.config.memory.value == b.config.memory.value && a.tier == b.tier &&
         a.ood == b.ood && a.clamped == b.clamped && a.probe == b.probe &&
         a.reason == b.reason;
}

/// Every suite kernel crossed with the paper's targets: the realistic key
/// space a queue or cluster admission round resolves over.
std::vector<plan_request> request_pool() {
  std::vector<plan_request> pool;
  for (const auto& b : sw::suite())
    for (const auto& target : {sm::ES_50, sm::ES_25, sm::MIN_EDP, sm::MIN_ED2P})
      pool.push_back({b.info.name, b.info.features, target});
  return pool;
}

/// Best-of-`reps` requests/sec of `fn(pass_index)`, where one call resolves
/// `per_call` requests. Regions auto-size to ~0.25s.
template <typename Fn>
double requests_per_s(int reps, std::size_t per_call, Fn&& fn) {
  // Calibrate: how many calls fill a region?
  const double t0 = now_s();
  fn(0);
  const double once = std::max(now_s() - t0, 1e-9);
  const auto calls = static_cast<std::size_t>(std::fmax(1.0, 0.25 / once));

  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double start = now_s();
    for (std::size_t c = 0; c < calls; ++c) fn(static_cast<int>(c));
    const double elapsed = now_s() - start;
    best = std::fmax(best, static_cast<double>(calls * per_call) / elapsed);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  std::size_t batch_size = 64;
  double min_batch_speedup = 5.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) reps = std::stoi(argv[++i]);
    else if (arg == "--batch" && i + 1 < argc) batch_size = std::stoul(argv[++i]);
    else if (arg == "--min-batch-speedup" && i + 1 < argc)
      min_batch_speedup = std::stod(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: microbench_plan_service [--reps N] [--batch N] "
                   "[--min-batch-speedup X]\n");
      return 2;
    }
  }

  // A fully-tiered chain: trained models, a tuning-table entry per (kernel,
  // target) so the fallback tier is real, defaults underneath.
  const auto spec = gs::make_v100();
  synergy::trainer_options topt;
  topt.n_microbenchmarks = 24;
  topt.freq_samples = 12;
  topt.repetitions = 1;
  synergy::model_trainer trainer{spec, topt};
  auto planner =
      std::make_shared<const synergy::frequency_planner>(spec, trainer.train_default());

  auto table = std::make_shared<synergy::tuning_table>();
  table->set_device_key(spec.name);
  const auto mid = spec.core_clocks[spec.core_clocks.size() / 2];
  for (const auto& b : sw::suite())
    for (const auto& target : {sm::ES_50, sm::ES_25, sm::MIN_EDP, sm::MIN_ED2P})
      table->put(b.info.name, target, {spec.memory_clock, mid});

  guarded_planner chain{spec, planner, table};  // the pre-service baseline path
  plan_service service{std::make_shared<guarded_planner>(spec, planner, table)};

  const auto pool = request_pool();
  std::printf("pool: %zu unique (kernel, target) requests, batch size %zu\n", pool.size(),
              batch_size);

  // ---- parity: serviced and batched decisions equal the bare chain's ------
  std::vector<synergy::plan_decision> canonical;
  canonical.reserve(pool.size());
  for (const auto& req : pool)
    canonical.push_back(chain.plan(req.kernel, req.features, req.target));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto sp = service.plan(pool[i].kernel, pool[i].features, pool[i].target);
    if (!same_decision(sp.decision, canonical[i])) {
      std::fprintf(stderr, "FAIL: serviced decision diverges from the chain for %s/%s\n",
                   pool[i].kernel.c_str(), pool[i].target.to_string().c_str());
      return 1;
    }
    const auto again = service.plan(pool[i].kernel, pool[i].features, pool[i].target);
    if (!again.cache_hit || !same_decision(again.decision, canonical[i])) {
      std::fprintf(stderr, "FAIL: cached decision diverges for %s/%s\n",
                   pool[i].kernel.c_str(), pool[i].target.to_string().c_str());
      return 1;
    }
  }
  {
    plan_service fresh{std::make_shared<guarded_planner>(spec, planner, table)};
    const auto batched = fresh.plan_batch(pool);
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (!same_decision(batched[i].decision, canonical[i])) {
        std::fprintf(stderr, "FAIL: batched decision diverges for %s/%s\n",
                     pool[i].kernel.c_str(), pool[i].target.to_string().c_str());
        return 1;
      }
  }
  std::printf("parity: %zu requests byte-identical across chain / service / batch\n",
              pool.size());

  // ---- throughput ---------------------------------------------------------
  // Deterministic request mix: uniform draws over the pool, the shape of a
  // steady-state admission stream (many jobs, few distinct kernels).
  synergy::common::pcg32 rng{2026};
  std::vector<std::size_t> mix(8192);
  for (auto& m : mix) m = rng.bounded(static_cast<std::uint32_t>(pool.size()));

  std::size_t cursor = 0;
  const double chain_rps = requests_per_s(reps, 64, [&](int) {
    for (int i = 0; i < 64; ++i) {
      const auto& req = pool[mix[cursor++ % mix.size()]];
      (void)chain.plan(req.kernel, req.features, req.target);
    }
  });
  cursor = 0;
  const double serviced_rps = requests_per_s(reps, 64, [&](int) {
    for (int i = 0; i < 64; ++i) {
      const auto& req = pool[mix[cursor++ % mix.size()]];
      (void)service.plan(req.kernel, req.features, req.target);
    }
  });
  std::vector<plan_request> batch(batch_size);
  cursor = 0;
  const double batch_rps = requests_per_s(reps, batch_size, [&](int) {
    for (auto& b : batch) b = pool[mix[cursor++ % mix.size()]];
    (void)service.plan_batch(batch);
  });

  const double single_ratio = chain_rps > 0.0 ? serviced_rps / chain_rps : 0.0;
  const double batch_ratio = chain_rps > 0.0 ? batch_rps / chain_rps : 0.0;
  std::printf("single-plan (bare chain, pre-service baseline): %12.0f requests/sec\n",
              chain_rps);
  std::printf("single-plan (plan service, cached):             %12.0f requests/sec (%.2fx)\n",
              serviced_rps, single_ratio);
  std::printf("batched     (plan service, batch=%3zu):          %12.0f requests/sec (%.2fx)\n",
              batch_size, batch_rps, batch_ratio);

  // ---- gates --------------------------------------------------------------
  if (serviced_rps < chain_rps) {
    std::fprintf(stderr,
                 "FAIL: serviced single-plan throughput (%.0f rps) is below the bare-chain "
                 "baseline (%.0f rps)\n",
                 serviced_rps, chain_rps);
    return 1;
  }
  if (batch_ratio < min_batch_speedup) {
    std::fprintf(stderr,
                 "FAIL: batched throughput is %.2fx the single-plan baseline; the gate "
                 "requires >= %.1fx\n",
                 batch_ratio, min_batch_speedup);
    return 1;
  }
  std::printf("PASS: single >= baseline, batch >= %.1fx baseline\n", min_batch_speedup);
  return 0;
}

/// Portability study (beyond the paper's evaluation): the same four
/// benchmarks of Figs. 7/8 characterised on the NVIDIA A100 and on the
/// Intel Data Center GPU Max (PVC, reached through the emulated Level Zero
/// backend). Demonstrates the claim of Sec. 2.1/3.2 that the methodology is
/// inherently portable: no code changes, just a different device name.

#include <iostream>

#include "characterize.hpp"
#include "synergy/common/table.hpp"
#include "synergy/metrics/energy_metrics.hpp"

namespace sm = synergy::metrics;

int main() {
  const char* benchmarks[] = {"mat_mul", "sobel3", "black_scholes", "median"};

  for (const char* device : {"A100", "PVC"}) {
    const auto spec = synergy::gpusim::make_device_spec(device);
    synergy::common::print_banner(std::cout,
                                  std::string("Portability: characterization on ") + spec.name);
    for (const char* name : benchmarks) {
      const auto c = bench::characterize(spec, name);
      const auto s = bench::summarize(c);
      bench::print_summary_row(std::cout, name, s);
      // Selected targets, as the SYnergy runtime would pick them.
      const auto& edp = c.points[sm::select(c, sm::MIN_EDP)];
      const auto& es50 = c.points[sm::select(c, sm::ES_50)];
      std::cout << "    MIN_EDP -> " << edp.config.core.value
                << " MHz (norm E " << synergy::common::text_table::fmt(
                       c.normalized_energy(edp), 3)
                << "), ES_50 -> " << es50.config.core.value << " MHz (norm E "
                << synergy::common::text_table::fmt(c.normalized_energy(es50), 3) << ")\n";
    }
  }

  std::cout << "\nnote: A100 and PVC default clocks equal their maximum, so (like the\n"
               "MI100 in Fig. 8) no configuration beats the default on performance and\n"
               "all savings come from trading performance.\n";
  return 0;
}

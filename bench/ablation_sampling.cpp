/// Ablation C (paper Sec. 4.4): fine-grained energy-profiling accuracy vs
/// power-sensor sampling interval. Short kernels cannot be profiled
/// accurately because of the ~15 ms effective sensor granularity; this
/// sweep quantifies the error across kernel durations and intervals.

#include <cmath>
#include <iostream>

#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"
#include "synergy/synergy.hpp"

namespace sc = synergy::common;

int main() {
  simsycl::device dev{synergy::gpusim::make_v100()};
  auto ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev});
  synergy::queue q{dev, ctx};

  sc::print_banner(std::cout,
                   "Ablation C: sampled vs exact kernel energy across sampling intervals");

  sc::text_table table;
  table.header({"kernel time", "exact (J)", "err@1ms", "err@5ms", "err@15ms", "err@50ms"});
  sc::csv_writer csv{std::cout};
  std::vector<std::vector<std::string>> rows;

  const double intervals[] = {0.001, 0.005, 0.015, 0.050};
  // Sweep kernel durations by scaling virtual work.
  for (const double multiplier : {256.0, 4096.0, 65536.0, 1048576.0, 8388608.0}) {
    simsycl::kernel_info info;
    info.name = "probe";
    info.features.float_add = 64;
    info.features.float_mul = 64;
    info.features.gl_access = 4;
    info.work_multiplier = multiplier;
    // Idle gap so each kernel is clearly separated on the timeline.
    dev.board()->advance_idle(sc::seconds{0.1});
    const auto e = q.submit([&](simsycl::handler& h) {
      h.parallel_for(simsycl::range<1>{1024}, info, [](simsycl::id<1>) {});
    });
    const double exact = q.kernel_energy_consumption(e);

    std::vector<std::string> row{sc::text_table::fmt(e.record().cost.time.ms(), 3) + " ms",
                                 sc::text_table::fmt(exact, 4)};
    std::vector<std::string> csv_row{sc::csv_writer::num(e.record().cost.time.value),
                                     sc::csv_writer::num(exact)};
    for (const double interval : intervals) {
      const double sampled = q.kernel_energy_consumption_sampled(e, interval);
      const double err = std::fabs(sampled - exact) / exact * 100.0;
      row.push_back(sc::text_table::fmt(err, 1) + "%");
      csv_row.push_back(sc::csv_writer::num(err / 100.0));
    }
    table.row(row);
    rows.push_back(csv_row);
  }
  table.print(std::cout);

  std::cout << "\nshape check (paper Sec. 4.4): kernels shorter than the sampling interval\n"
               "cannot be profiled accurately; errors shrink as kernel duration grows\n"
               "past ~15 ms. (100% = the sampler missed the kernel entirely; errors far\n"
               "above 100% = a sampling tick landed inside the kernel and inflated the\n"
               "estimate by the full interval.)\n";

  std::cout << "\ncsv:\n";
  csv.row({"kernel_time_s", "exact_j", "err_1ms", "err_5ms", "err_15ms", "err_50ms"});
  for (const auto& r : rows) csv.row(r);
  return 0;
}

/// Figure 9 reproduction: absolute percentage error (APE) of the predicted
/// optimal frequency per benchmark, per ML algorithm, for each user-defined
/// objective. The error is measured on the objective value achieved at the
/// predicted vs the actual optimal frequency (paper Sec. 8.3), on the V100.

#include <iostream>

#include "accuracy.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"

namespace sc = synergy::common;
namespace sm = synergy::metrics;

int main() {
  const auto spec = synergy::gpusim::make_v100();
  std::cout << "training models (micro-benchmarks only; the 23 suite benchmarks are\n"
               "held out) ...\n";
  const bench::accuracy_analysis analysis{spec};

  sc::csv_writer csv{std::cout};
  for (const auto& objective : sm::paper_objectives()) {
    const auto algorithms = bench::accuracy_analysis::algorithms_for(objective);

    sc::print_banner(std::cout,
                     "Figure 9: APE of predicted optimum, objective " + objective.to_string());
    sc::text_table table;
    std::vector<std::string> header{"benchmark"};
    for (const auto alg : algorithms) header.emplace_back(synergy::ml::to_string(alg));
    header.emplace_back("actual MHz");
    table.header(header);

    for (const auto& b : synergy::workloads::suite()) {
      std::vector<std::string> row{b.name};
      double actual_freq = 0.0;
      for (const auto alg : algorithms) {
        const auto e = analysis.evaluate(b, objective, alg);
        row.push_back(sc::text_table::fmt(e.ape * 100.0, 2) + "%");
        actual_freq = e.actual_freq;
      }
      row.push_back(sc::text_table::fmt(actual_freq, 0));
      table.row(row);
    }
    table.print(std::cout);
  }

  std::cout << "\ncsv:\n";
  csv.row({"objective", "benchmark", "algorithm", "ape", "actual_mhz", "predicted_mhz"});
  for (const auto& objective : sm::paper_objectives()) {
    for (const auto& b : synergy::workloads::suite()) {
      for (const auto alg : bench::accuracy_analysis::algorithms_for(objective)) {
        const auto e = analysis.evaluate(b, objective, alg);
        csv.row({objective.to_string(), b.name, synergy::ml::to_string(alg),
                 sc::csv_writer::num(e.ape), sc::csv_writer::num(e.actual_freq),
                 sc::csv_writer::num(e.predicted_freq)});
      }
    }
  }
  return 0;
}

#include "characterize.hpp"

#include <algorithm>

#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"

namespace bench {

namespace sm = synergy::metrics;
namespace sc = synergy::common;

sm::characterization characterize(const synergy::gpusim::device_spec& spec,
                                  const std::string& benchmark_name) {
  const auto& b = synergy::workloads::find(benchmark_name);
  return synergy::oracle_characterization(spec, b.profile());
}

characterization_summary summarize(const sm::characterization& c) {
  characterization_summary s;
  const auto front = sm::pareto_front(c.points);
  s.pareto_min_speedup = 1e300;
  for (const auto i : front) {
    s.pareto_min_speedup = std::min(s.pareto_min_speedup, c.speedup(c.points[i]));
    s.pareto_max_speedup = std::max(s.pareto_max_speedup, c.speedup(c.points[i]));
  }
  for (const auto& p : c.points) {
    s.max_saving = std::max(s.max_saving, 1.0 - c.normalized_energy(p));
    if (c.speedup(p) >= 0.90)
      s.saving_within_10pct_loss =
          std::max(s.saving_within_10pct_loss, 1.0 - c.normalized_energy(p));
  }
  const auto fastest = sm::select(c, sm::MAX_PERF);
  s.default_is_fastest =
      c.points[fastest].config.core.value == c.default_point().config.core.value;
  return s;
}

void print_series(std::ostream& os, const std::string& title, const sm::characterization& c,
                  bool csv) {
  sc::print_banner(os, title);
  const auto front = sm::pareto_front(c.points);
  auto on_front = [&](std::size_t i) {
    return std::find(front.begin(), front.end(), i) != front.end();
  };

  sc::text_table table;
  table.header({"core MHz", "time (ms)", "energy (J)", "speedup", "norm energy", "pareto"});
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    const auto& p = c.points[i];
    const bool is_default = i == c.default_index;
    table.row({sc::text_table::fmt(p.config.core.value, 0) + (is_default ? "*" : ""),
               sc::text_table::fmt(p.time_s * 1e3, 3), sc::text_table::fmt(p.energy_j, 3),
               sc::text_table::fmt(c.speedup(p), 3),
               sc::text_table::fmt(c.normalized_energy(p), 3), on_front(i) ? "x" : ""});
  }
  table.print(os);
  os << "(* = default configuration; x = Pareto-optimal)\n";

  if (csv) {
    os << "\ncsv:\n";
    sc::csv_writer w{os};
    w.row({"core_mhz", "time_s", "energy_j", "speedup", "norm_energy", "pareto"});
    for (std::size_t i = 0; i < c.points.size(); ++i) {
      const auto& p = c.points[i];
      w.row({sc::csv_writer::num(p.config.core.value), sc::csv_writer::num(p.time_s),
             sc::csv_writer::num(p.energy_j), sc::csv_writer::num(c.speedup(p)),
             sc::csv_writer::num(c.normalized_energy(p)), on_front(i) ? "1" : "0"});
    }
  }
}

void print_summary_row(std::ostream& os, const std::string& name,
                       const characterization_summary& s) {
  sc::text_table table;
  table.row({name, "pareto speedup " + sc::text_table::fmt(s.pareto_min_speedup, 2) + ".." +
                       sc::text_table::fmt(s.pareto_max_speedup, 2),
             "max saving " + sc::text_table::fmt(s.max_saving * 100, 1) + "%",
             "saving@<=10% loss " + sc::text_table::fmt(s.saving_within_10pct_loss * 100, 1) +
                 "%",
             s.default_is_fastest ? "default fastest" : "default beatable"});
  table.print(os);
}

}  // namespace bench

#include "accuracy.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "synergy/ml/metrics.hpp"

namespace bench {

namespace sm = synergy::metrics;
namespace ml = synergy::ml;
namespace gs = synergy::gpusim;

using synergy::common::frequency_config;
using synergy::common::megahertz;

accuracy_analysis::accuracy_analysis(const gs::device_spec& spec,
                                     synergy::trainer_options options)
    : spec_(spec) {
  synergy::model_trainer trainer{spec_, options};
  const auto sets = trainer.measure(trainer.generate_microbenchmarks());

  const auto all_algorithms = {ml::algorithm::linear, ml::algorithm::lasso,
                               ml::algorithm::random_forest, ml::algorithm::svr_rbf};
  for (const auto alg : all_algorithms) {
    auto& per_metric = models_[alg];
    per_metric[metric::time] = ml::make_regressor(alg);
    per_metric[metric::time]->fit(sets.time);
    per_metric[metric::energy] = ml::make_regressor(alg);
    per_metric[metric::energy]->fit(sets.energy);
    per_metric[metric::edp] = ml::make_regressor(alg);
    per_metric[metric::edp]->fit(sets.edp);
    per_metric[metric::ed2p] = ml::make_regressor(alg);
    per_metric[metric::ed2p]->fit(sets.ed2p);
  }
}

std::vector<ml::algorithm> accuracy_analysis::algorithms_for(const sm::target& objective) {
  using kind = sm::target::kind;
  switch (objective.k) {
    case kind::max_perf:
    case kind::performance_loss:
      return {ml::algorithm::linear, ml::algorithm::lasso, ml::algorithm::random_forest};
    case kind::min_ed2p:
      return {ml::algorithm::linear, ml::algorithm::random_forest, ml::algorithm::svr_rbf};
    case kind::min_energy:
    case kind::min_edp:
    case kind::energy_saving:
      return {ml::algorithm::random_forest, ml::algorithm::svr_rbf};
  }
  throw std::logic_error("unreachable");
}

const ml::regressor& accuracy_analysis::model(ml::algorithm alg, metric m) const {
  return *models_.at(alg).at(m);
}

frequency_config accuracy_analysis::plan(const gs::static_features& k,
                                         const sm::target& objective,
                                         ml::algorithm alg) const {
  using kind = sm::target::kind;

  auto argmin_model = [&](const ml::regressor& r) {
    megahertz best = spec_.default_core_clock();
    double best_v = std::numeric_limits<double>::infinity();
    for (const megahertz f : spec_.core_clocks) {
      const double v = r.predict_one(synergy::model_input(k, f));
      if (v < best_v) {
        best_v = v;
        best = f;
      }
    }
    return frequency_config{spec_.memory_clock, best};
  };

  switch (objective.k) {
    case kind::max_perf: return argmin_model(model(alg, metric::time));
    case kind::min_energy: return argmin_model(model(alg, metric::energy));
    case kind::min_edp: return argmin_model(model(alg, metric::edp));
    case kind::min_ed2p: return argmin_model(model(alg, metric::ed2p));
    case kind::energy_saving:
    case kind::performance_loss: {
      // Interval targets need both time and energy predictions. The
      // algorithm under test models the objective's primary metric; the
      // auxiliary metric uses the paper's per-metric best (Table 2:
      // Linear for time, RandomForest for energy).
      const bool es = objective.k == kind::energy_saving;
      const ml::regressor& time_model =
          es ? model(ml::algorithm::linear, metric::time) : model(alg, metric::time);
      const ml::regressor& energy_model =
          es ? model(alg, metric::energy) : model(ml::algorithm::random_forest, metric::energy);
      sm::characterization c;
      for (const megahertz f : spec_.core_clocks) {
        const auto x = synergy::model_input(k, f);
        c.points.push_back({{spec_.memory_clock, f},
                            std::max(1e-12, time_model.predict_one(x)),
                            std::max(1e-12, energy_model.predict_one(x))});
      }
      c.default_index = spec_.default_clock_index;
      return c.points[sm::select(c, objective)].config;
    }
  }
  throw std::logic_error("unreachable");
}

double accuracy_analysis::objective_value(const sm::characterization& c,
                                          const sm::target& objective,
                                          frequency_config config) {
  // Locate the exact config row.
  const sm::operating_point* point = nullptr;
  for (const auto& p : c.points)
    if (p.config == config) point = &p;
  if (point == nullptr) throw std::logic_error("config not in characterization");

  const auto& def = c.default_point();
  using kind = sm::target::kind;
  switch (objective.k) {
    case kind::max_perf:
    case kind::performance_loss:
      return point->time_s / def.time_s;
    case kind::min_energy:
    case kind::energy_saving:
      return point->energy_j / def.energy_j;
    case kind::min_edp:
      return point->edp() / def.edp();
    case kind::min_ed2p:
      return point->ed2p() / def.ed2p();
  }
  throw std::logic_error("unreachable");
}

evaluation accuracy_analysis::evaluate(const synergy::workloads::benchmark& b,
                                       const sm::target& objective,
                                       ml::algorithm alg) const {
  const auto truth = synergy::oracle_characterization(spec_, b.profile());

  evaluation out;
  const auto actual_index = sm::select(truth, objective);
  out.actual_freq = truth.points[actual_index].config.core.value;
  out.actual_value = objective_value(truth, objective, truth.points[actual_index].config);

  const auto predicted = plan(b.info.features, objective, alg);
  out.predicted_freq = predicted.core.value;
  out.predicted_value = objective_value(truth, objective, predicted);

  out.ape = ml::ape(out.actual_value, out.predicted_value);
  return out;
}

accuracy_analysis::aggregate accuracy_analysis::aggregate_over_suite(
    const sm::target& objective, ml::algorithm alg) const {
  std::vector<double> actual, predicted;
  for (const auto& b : synergy::workloads::suite()) {
    const auto e = evaluate(b, objective, alg);
    actual.push_back(e.actual_value);
    predicted.push_back(e.predicted_value);
  }
  return {ml::rmse(actual, predicted), ml::mape(actual, predicted)};
}

}  // namespace bench

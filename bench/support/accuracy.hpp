#pragma once

/// \file accuracy.hpp
/// Shared machinery for the prediction-accuracy analysis (paper Sec. 8.3,
/// Fig. 9 and Table 2).
///
/// Trains every candidate ML algorithm on the micro-benchmark training sets
/// of one device, then evaluates, per (suite benchmark, objective,
/// algorithm):
///   - the predicted optimal frequency (from the algorithm's models),
///   - the actual optimal frequency (exact-model search),
///   - the error between the objective value *at* the predicted frequency
///     and at the actual optimum — exactly the paper's error definition:
///     "not between the predicted and actual objectives, but between the
///     [objective values at the] predicted and actual optimal frequency".
/// Objective values are normalised to the default configuration so RMSE is
/// comparable across benchmarks and objectives.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "synergy/metrics/energy_metrics.hpp"
#include "synergy/ml/regressor.hpp"
#include "synergy/trainer.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace bench {

struct evaluation {
  double actual_freq{0.0};
  double predicted_freq{0.0};
  double actual_value{0.0};     ///< objective value at the actual optimum
  double predicted_value{0.0};  ///< objective value at the predicted optimum
  double ape{0.0};              ///< |pred - act| / act on the objective value
};

class accuracy_analysis {
 public:
  explicit accuracy_analysis(const synergy::gpusim::device_spec& spec,
                             synergy::trainer_options options = default_options());

  /// Candidate algorithms per objective, following the paper's Sec. 8.3
  /// split (Linear/Lasso/RandomForest for performance-flavoured targets,
  /// Linear/RandomForest/SVR for energy-flavoured ones).
  [[nodiscard]] static std::vector<synergy::ml::algorithm> algorithms_for(
      const synergy::metrics::target& objective);

  /// Evaluate one (benchmark, objective, algorithm) cell of Fig. 9.
  [[nodiscard]] evaluation evaluate(const synergy::workloads::benchmark& b,
                                    const synergy::metrics::target& objective,
                                    synergy::ml::algorithm alg) const;

  /// Table-2 aggregation over the whole 23-benchmark suite.
  struct aggregate {
    double rmse{0.0};
    double mape{0.0};
  };
  [[nodiscard]] aggregate aggregate_over_suite(const synergy::metrics::target& objective,
                                               synergy::ml::algorithm alg) const;

  [[nodiscard]] const synergy::gpusim::device_spec& spec() const { return spec_; }

  [[nodiscard]] static synergy::trainer_options default_options() {
    synergy::trainer_options opt;
    opt.n_microbenchmarks = 48;
    opt.freq_samples = 28;
    opt.repetitions = 2;
    return opt;
  }

 private:
  /// Predicted-optimal frequency for an objective using `alg` as the model
  /// of the objective's primary metric (auxiliary metric models use the
  /// paper's per-metric best algorithm).
  [[nodiscard]] synergy::common::frequency_config plan(
      const synergy::gpusim::static_features& k, const synergy::metrics::target& objective,
      synergy::ml::algorithm alg) const;

  /// Objective value at a frequency, from the benchmark's exact (ground
  /// truth) characterization, normalised to the default configuration.
  [[nodiscard]] static double objective_value(const synergy::metrics::characterization& c,
                                              const synergy::metrics::target& objective,
                                              synergy::common::frequency_config config);

  enum class metric { time, energy, edp, ed2p };
  [[nodiscard]] const synergy::ml::regressor& model(synergy::ml::algorithm alg,
                                                    metric m) const;

  synergy::gpusim::device_spec spec_;
  // models_[algorithm][metric]
  std::map<synergy::ml::algorithm, std::map<metric, std::unique_ptr<synergy::ml::regressor>>>
      models_;
};

}  // namespace bench

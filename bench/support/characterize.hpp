#pragma once

/// \file characterize.hpp
/// Shared bench plumbing: characterization printing in the format of the
/// paper's scatter plots (speedup vs normalised energy + Pareto front).

#include <ostream>
#include <string>

#include "synergy/metrics/energy_metrics.hpp"
#include "synergy/planner.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace bench {

/// Exact-model characterization of a named suite benchmark on a device.
[[nodiscard]] synergy::metrics::characterization characterize(
    const synergy::gpusim::device_spec& spec, const std::string& benchmark_name);

/// Summary statistics of one characterization as the paper reports them.
struct characterization_summary {
  double pareto_min_speedup{0.0};
  double pareto_max_speedup{0.0};
  double max_saving{0.0};             ///< 1 - min normalised energy
  double saving_within_10pct_loss{0.0};
  bool default_is_fastest{false};
};

[[nodiscard]] characterization_summary summarize(
    const synergy::metrics::characterization& c);

/// Print the full series (one row per frequency) as an aligned table
/// followed by a CSV block, flagging Pareto-optimal rows.
void print_series(std::ostream& os, const std::string& title,
                  const synergy::metrics::characterization& c, bool csv = true);

/// Print only the summary row (used by the 4-benchmark figure benches).
void print_summary_row(std::ostream& os, const std::string& name,
                       const characterization_summary& s);

}  // namespace bench

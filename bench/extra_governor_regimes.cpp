/// Control-regime study: predictive vs. reactive vs. hybrid frequency
/// control on the same cluster replay (beyond the paper's purely predictive
/// planner, Sec. 5). Four regimes over one fixed-seed trace:
///
///  - default clocks:   EASY backfill, no planner, no governor (baseline);
///  - pure-predictive:  the energy-aware policy plans per-kernel clocks once,
///                      before launch — SYnergy as published;
///  - pure-reactive:    default-clock placements corrected in-band by an
///                      ondemand governor polling modelled utilisation;
///  - hybrid:           the planner's prediction seeds a powercap-tracking
///                      governor that chases intra-run drift from there.
///
/// Each regime runs twice: drift-free, and a drifted replay where the
/// boards turn hungrier mid-run (power x2 at default clock, gamma = 1, so
/// the true energy optimum moves below the planned clock and only a
/// reactive correction can find it — the planner's tables predate the
/// drift, i.e. the model is effectively stay-quarantined).
///
/// Reported per regime: makespan, GPU energy, ES (energy saving vs. the
/// default-clock baseline of the same scenario), and EDP normalised to
/// that baseline. Acceptance gates (checked, nonzero exit on violation):
///  - drift-free: hybrid GPU energy <= pure-reactive, and hybrid makespan
///    within 2% of pure-predictive;
///  - drifted:    hybrid GPU energy < stay-quarantined predictive.

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "synergy/cluster/simulator.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"
#include "synergy/governor/governor.hpp"

namespace sc = synergy::cluster;
namespace sm = synergy::metrics;
using synergy::common::text_table;

namespace {

struct regime_case {
  std::string label;
  std::string policy;
  std::optional<sm::target> target;
  std::string governor;  ///< governor spec text; empty = ungoverned
};

struct scenario_case {
  std::string label;
  sc::drift_plan drift;
};

struct row_result {
  double makespan_s{0.0};
  double gpu_energy_j{0.0};
  std::size_t clock_changes{0};
};

}  // namespace

int main() {
  const std::string device = "V100";
  const auto plan = sc::make_suite_planner(device);

  const std::vector<regime_case> regimes = {
      {"default clocks", "backfill", std::nullopt, ""},
      {"pure-predictive", "energy", sm::ES_75, ""},
      {"pure-reactive", "backfill", std::nullopt, "ondemand"},
      {"hybrid", "energy", sm::ES_75, "hybrid"},
  };
  const std::vector<scenario_case> scenarios = {
      {"drift-free", {}},
      // Onset early enough that most jobs run on drifted boards; skew 2 at
      // gamma 1 doubles power at the default clock and still overshoots the
      // predicted watts at the planned (lower) clocks.
      {"drifted", {50.0, 2.0, 1.0}},
  };

  sc::trace_config tc;
  tc.seed = 2023;
  tc.n_jobs = 160;
  tc.mean_interarrival_s = 2.0;
  const auto trace = sc::generate_trace(tc);

  synergy::common::print_banner(std::cout,
                                "Control regimes: predictive vs. reactive vs. hybrid");

  text_table table;
  table.header({"scenario", "regime", "jobs", "makespan (s)", "GPU energy (J)",
                "ES vs default", "EDP vs default", "gov ticks", "clock changes"});
  std::vector<std::string> csv_rows;
  row_result results[2][4];

  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const auto& sn = scenarios[si];
    double base_energy = 0.0;
    double base_edp = 0.0;
    for (std::size_t ri = 0; ri < regimes.size(); ++ri) {
      const auto& rc = regimes[ri];
      sc::cluster_config cc;
      cc.n_nodes = 4;
      cc.gpus_per_node = 4;
      cc.device = device;
      cc.drift = sn.drift;
      if (!rc.governor.empty()) {
        cc.governor.enabled = true;
        cc.governor.spec =
            synergy::governor::parse_governor_spec(rc.governor).value();
        cc.governor.tick_interval_s = 0.25;
      }
      sc::simulator sim{cc, sc::make_policy(rc.policy, plan, rc.target)};
      const auto s = sim.run(trace);
      const double edp = s.total_gpu_energy_j * s.makespan_s;
      if (ri == 0) {
        base_energy = s.total_gpu_energy_j;
        base_edp = edp;
      }
      results[si][ri] = {s.makespan_s, s.total_gpu_energy_j, s.governor_clock_changes};
      table.row({sn.label, rc.label,
                 std::to_string(s.completed) + "/" + std::to_string(s.jobs),
                 text_table::fmt(s.makespan_s, 1), text_table::fmt(s.total_gpu_energy_j, 0),
                 text_table::fmt(100.0 * (1.0 - s.total_gpu_energy_j / base_energy), 1) + "%",
                 text_table::fmt(edp / base_edp, 3), std::to_string(s.governor_ticks),
                 std::to_string(s.governor_clock_changes)});
      csv_rows.push_back(
          sn.label + "," + rc.label + "," + std::to_string(trace.seed) + "," +
          synergy::common::csv_writer::num(s.makespan_s) + "," +
          synergy::common::csv_writer::num(s.total_gpu_energy_j) + "," +
          synergy::common::csv_writer::num(1.0 - s.total_gpu_energy_j / base_energy) + "," +
          synergy::common::csv_writer::num(edp / base_edp) + "," +
          std::to_string(s.governor_ticks) + "," + std::to_string(s.governor_clock_changes));
    }
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n# trace seed=2023; ES/EDP normalise to the default-clock row of "
               "the same scenario\n"
               "scenario,regime,seed,makespan_s,gpu_energy_j,energy_saving,edp_ratio,"
               "governor_ticks,governor_clock_changes\n";
  for (const auto& row : csv_rows) std::cout << row << '\n';

  // Acceptance gates. Index [scenario][regime]: regime order is
  // default / pure-predictive / pure-reactive / hybrid.
  bool ok = true;
  const auto gate = [&ok](bool pass, const std::string& what) {
    std::cout << (pass ? "PASS: " : "FAIL: ") << what << '\n';
    ok = ok && pass;
  };
  std::cout << '\n';
  gate(results[0][3].gpu_energy_j <= results[0][2].gpu_energy_j,
       "drift-free: hybrid GPU energy <= pure-reactive");
  gate(results[0][3].makespan_s <= 1.02 * results[0][1].makespan_s,
       "drift-free: hybrid makespan within 2% of pure-predictive");
  gate(results[1][3].gpu_energy_j < results[1][1].gpu_energy_j,
       "drifted: hybrid GPU energy < stay-quarantined predictive");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

/// Figure 5 reproduction: the ES_x (energy saving) and PL_x (performance
/// loss) metrics for Black-Scholes on the V100. Prints the frequency each
/// metric selects and where it lands on the energy/time curves, plus the
/// full curves as CSV.

#include <iostream>

#include "characterize.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"

namespace sc = synergy::common;
namespace sm = synergy::metrics;

int main() {
  const auto spec = synergy::gpusim::make_v100();
  const auto c = bench::characterize(spec, "black_scholes");

  const auto& def = c.default_point();
  const auto i_min_e = sm::select(c, sm::MIN_ENERGY);
  const double e_span = def.energy_j - c.points[i_min_e].energy_j;
  const double t_span = c.points[i_min_e].time_s - def.time_s;

  sc::print_banner(std::cout, "Figure 5: ES_x and PL_x metrics for Black-Scholes (V100)");
  std::cout << "default: core " << def.config.core.value << " MHz, time " << def.time_s * 1e3
            << " ms, energy " << def.energy_j << " J\n";
  std::cout << "potential saving: " << e_span << " J (" << (e_span / def.energy_j) * 100.0
            << "% of default); potential loss: " << t_span * 1e3 << " ms\n\n";

  sc::text_table table;
  table.header({"metric", "core MHz", "time (ms)", "energy (J)", "achieved saving %",
                "perf loss %"});
  for (const auto& t : {sm::ES_25, sm::ES_50, sm::ES_75, sm::target::energy_saving(100.0),
                        sm::PL_25, sm::PL_50, sm::PL_75,
                        sm::target::performance_loss(100.0)}) {
    const auto& p = c.points[sm::select(c, t)];
    table.row({t.to_string(), sc::text_table::fmt(p.config.core.value, 0),
               sc::text_table::fmt(p.time_s * 1e3, 3), sc::text_table::fmt(p.energy_j, 3),
               sc::text_table::fmt((def.energy_j - p.energy_j) / def.energy_j * 100.0, 1),
               sc::text_table::fmt((p.time_s - def.time_s) / def.time_s * 100.0, 1)});
  }
  table.print(std::cout);

  std::cout << "\ncsv:\n";
  sc::csv_writer w{std::cout};
  w.row({"core_mhz", "time_s", "energy_j"});
  for (const auto& p : c.points)
    w.row({sc::csv_writer::num(p.config.core.value), sc::csv_writer::num(p.time_s),
           sc::csv_writer::num(p.energy_j)});
  return 0;
}

/// Table 2 reproduction: RMSE and MAPE of each objective under each ML
/// algorithm, aggregated over the 23-benchmark suite on the V100, with the
/// best algorithm per objective. Shape targets from the paper: Linear wins
/// the performance-flavoured objectives (MAX_PERF, MIN_ED2P, PL_x), Random
/// Forest the energy-flavoured ones (MIN_ENERGY, MIN_EDP, ES_x).

#include <iostream>

#include "accuracy.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"

namespace sc = synergy::common;
namespace sm = synergy::metrics;
namespace ml = synergy::ml;

int main() {
  const auto spec = synergy::gpusim::make_v100();
  std::cout << "training models ...\n";
  const bench::accuracy_analysis analysis{spec};

  const auto all_algorithms = {ml::algorithm::linear, ml::algorithm::lasso,
                               ml::algorithm::random_forest, ml::algorithm::svr_rbf};

  sc::print_banner(std::cout, "Table 2: error analysis per objective and ML algorithm (V100)");
  sc::text_table table;
  table.header({"objective", "Linear RMSE", "Linear MAPE", "Lasso RMSE", "Lasso MAPE",
                "RF RMSE", "RF MAPE", "SVR RMSE", "SVR MAPE", "best"});

  sc::csv_writer csv_buffer{std::cout};
  std::vector<std::vector<std::string>> csv_rows;

  for (const auto& objective : sm::paper_objectives()) {
    const auto candidates = bench::accuracy_analysis::algorithms_for(objective);
    std::vector<std::string> row{objective.to_string()};
    std::string best_name = "-";
    double best_mape = 1e300;

    for (const auto alg : all_algorithms) {
      const bool tested =
          std::find(candidates.begin(), candidates.end(), alg) != candidates.end();
      if (!tested) {
        row.emplace_back("-");
        row.emplace_back("-");
        continue;
      }
      const auto agg = analysis.aggregate_over_suite(objective, alg);
      row.push_back(sc::text_table::fmt(agg.rmse, 4));
      row.push_back(sc::text_table::fmt(agg.mape, 4));
      csv_rows.push_back({objective.to_string(), ml::to_string(alg),
                          sc::csv_writer::num(agg.rmse), sc::csv_writer::num(agg.mape)});
      if (agg.mape < best_mape) {
        best_mape = agg.mape;
        best_name = ml::to_string(alg);
      }
    }
    row.push_back(best_name);
    table.row(row);
  }
  table.print(std::cout);

  std::cout << "\npaper reference (Table 2 'Best' column): Linear for MAX_PERF, MIN_ED2P,\n"
               "PL_25/50/75; RandomForest for MIN_ENERGY, MIN_EDP, ES_25/50/75.\n";

  std::cout << "\ncsv:\n";
  csv_buffer.row({"objective", "algorithm", "rmse", "mape"});
  for (const auto& r : csv_rows) csv_buffer.row(r);
  return 0;
}

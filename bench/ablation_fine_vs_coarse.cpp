/// Ablation B (paper Sec. 2.2): coarse-grained (one frequency for the whole
/// application) vs fine-grained (per-kernel) tuning. Runs a synthetic
/// application mixing compute-bound and memory-bound kernels and compares:
///   - default clocks,
///   - the best single frequency for the whole app (coarse, oracle-chosen),
///   - per-kernel MIN_ENERGY frequencies (fine-grained, SYnergy's approach).

#include <iostream>
#include <vector>

#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"
#include "synergy/synergy.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace sc = synergy::common;
namespace sm = synergy::metrics;
namespace sw = synergy::workloads;

namespace {

/// The application: an alternating mix with opposite frequency preferences.
const std::vector<std::string>& app_kernels() {
  static const std::vector<std::string> kernels{
      "nbody", "vec_add", "sobel3", "gemver", "black_scholes", "lbm", "mol_dyn", "mvt"};
  return kernels;
}

struct run_result {
  double time_s{0.0};
  double energy_j{0.0};
};

run_result run_app(const std::optional<sm::target>& per_kernel_target,
                   const std::optional<double>& coarse_core_mhz) {
  simsycl::device dev{synergy::gpusim::make_v100()};
  auto ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev});
  synergy::queue q{dev, ctx};
  if (per_kernel_target) q.set_target(*per_kernel_target);
  if (coarse_core_mhz)
    q.set_fixed_frequency({dev.spec().memory_clock,
                           dev.spec().nearest_core_clock(sc::megahertz{*coarse_core_mhz})});
  const double t0 = dev.board()->now().value;
  // Each phase launches its kernel several times (real applications iterate)
  // so the per-kernel clock change amortises over the phase; the plan cache
  // keeps repeat launches at the already-set frequency.
  for (int sweep = 0; sweep < 3; ++sweep)
    for (const auto& name : app_kernels())
      for (int repeat = 0; repeat < 8; ++repeat) sw::find(name).run(q);
  return {dev.board()->now().value - t0, q.device_energy_consumption()};
}

/// Oracle coarse frequency: the single clock minimising whole-app energy.
double best_coarse_clock() {
  const auto spec = synergy::gpusim::make_v100();
  const synergy::gpusim::dvfs_model model;
  double best_f = spec.default_core_clock().value;
  double best_e = 1e300;
  for (const auto f : spec.core_clocks) {
    double e = 0.0;
    for (const auto& name : app_kernels())
      e += model.evaluate(spec, sw::find(name).profile(), {spec.memory_clock, f}).energy.value;
    if (e < best_e) {
      best_e = e;
      best_f = f.value;
    }
  }
  return best_f;
}

}  // namespace

int main() {
  sc::print_banner(std::cout, "Ablation B: coarse-grained vs fine-grained frequency tuning");

  const double coarse = best_coarse_clock();
  const auto base = run_app(std::nullopt, std::nullopt);
  const auto coarse_run = run_app(std::nullopt, coarse);
  const auto fine = run_app(sm::MIN_ENERGY, std::nullopt);
  const auto fine_es50 = run_app(sm::ES_50, std::nullopt);

  sc::text_table table;
  table.header({"strategy", "time (ms)", "energy (J)", "energy vs default", "time vs default"});
  auto add = [&](const std::string& label, const run_result& r) {
    table.row({label, sc::text_table::fmt(r.time_s * 1e3, 2),
               sc::text_table::fmt(r.energy_j, 3),
               sc::text_table::fmt(r.energy_j / base.energy_j, 3),
               sc::text_table::fmt(r.time_s / base.time_s, 3)});
  };
  add("default clocks", base);
  add("coarse (best single clock " + sc::text_table::fmt(coarse, 0) + " MHz)", coarse_run);
  add("fine-grained MIN_ENERGY", fine);
  add("fine-grained ES_50", fine_es50);
  table.print(std::cout);

  std::cout << "\nshape check (paper Sec. 2.2): fine-grained per-kernel tuning saves more\n"
               "energy than the best single application-wide frequency: "
            << (fine.energy_j < coarse_run.energy_j ? "yes" : "NO") << '\n';

  std::cout << "\ncsv:\n";
  sc::csv_writer w{std::cout};
  w.row({"strategy", "time_s", "energy_j"});
  w.row({"default", sc::csv_writer::num(base.time_s), sc::csv_writer::num(base.energy_j)});
  w.row({"coarse", sc::csv_writer::num(coarse_run.time_s),
         sc::csv_writer::num(coarse_run.energy_j)});
  w.row({"fine_min_energy", sc::csv_writer::num(fine.time_s),
         sc::csv_writer::num(fine.energy_j)});
  w.row({"fine_es50", sc::csv_writer::num(fine_es50.time_s),
         sc::csv_writer::num(fine_es50.energy_j)});
  return 0;
}

/// microbench_obs_overhead — bound the cost of the observability plane.
///
/// The budget is part of the observability contract (EXPERIMENTS.md): the
/// energy ledger must stay below 5% of event-engine time, or this benchmark
/// — and CI — fails with exit 1.
///
/// Measuring that as a head-to-head ledger-on/ledger-off replay delta does
/// not work on a time-shared core: the true effect is well under 1% while
/// scheduler contamination of a one-second replay runs to several percent,
/// so the A/B gate flaps. Instead the overhead is composed from quantities
/// that each tolerate contamination:
///
///   1. per-charge and per-scrape cost from tight loops (hundreds of
///      thousands of operations per timed region, best-of-N regions), and
///   2. one real replay of the acceptance scenario — a 256-GPU deployment
///      under a binding facility cap with a seeded fault plan — giving the
///      event-engine time and the ledger's actual charge/scrape volume.
///
/// overhead = (charges x t_charge + scrapes x t_scrape) / engine_time.
/// Contamination only inflates the numerator terms (best-of discards it)
/// and deflates nothing, so a pass is trustworthy and a real regression in
/// the charge path (say, an accidental O(cells) scan per charge) still
/// trips the gate.
///
/// Usage: microbench_obs_overhead [--jobs N] [--reps N] [--budget PCT]
///                                [--scrape S]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "synergy/cluster/simulator.hpp"
#include "synergy/obs/energy_ledger.hpp"

namespace sc = synergy::cluster;
namespace obs = synergy::obs;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` per-operation cost of charging fresh per-job cells, the
/// pattern the cluster simulator produces (one new key per completion).
double charge_cost_s(int reps) {
  auto& l = obs::energy_ledger::instance();
  constexpr std::size_t n_keys = 2000;
  std::vector<obs::charge_key> keys;
  keys.reserve(n_keys);
  for (std::size_t i = 0; i < n_keys; ++i)
    keys.push_back({"cn" + std::to_string(i % 64), "V100", "job" + std::to_string(i),
                    "kernel" + std::to_string(i % 23)});
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    l.reset();
    const double t0 = now_s();
    for (std::size_t pass = 0; pass < 20; ++pass)
      for (const auto& k : keys)
        l.charge(k, static_cast<obs::cause>(pass % obs::n_causes), 1.0);
    best = std::min(best, (now_s() - t0) / (20.0 * n_keys));
  }
  return best;
}

/// Best-of-`reps` per-scrape cost on a populated ledger.
double scrape_cost_s(int reps) {
  auto& l = obs::energy_ledger::instance();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    l.reset();
    l.charge({"cn0", "V100", "job", "kernel"}, obs::cause::model, 1.0);
    const double t0 = now_s();
    for (int i = 0; i < 5000; ++i) l.scrape(static_cast<double>(i));
    best = std::min(best, (now_s() - t0) / 5000.0);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_jobs = 2000;
  int reps = 5;
  double budget_pct = 5.0;
  double scrape_s = 5.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) n_jobs = std::stoul(argv[++i]);
    else if (arg == "--reps" && i + 1 < argc) reps = std::stoi(argv[++i]);
    else if (arg == "--budget" && i + 1 < argc) budget_pct = std::stod(argv[++i]);
    else if (arg == "--scrape" && i + 1 < argc) scrape_s = std::stod(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: microbench_obs_overhead [--jobs N] [--reps N] [--budget PCT] "
                   "[--scrape S]\n");
      return 2;
    }
  }

  const double t_charge = charge_cost_s(reps);
  const double t_scrape = scrape_cost_s(reps);

  // The acceptance scenario: 256 GPUs, binding facility cap, seeded faults.
  sc::trace_config tc;
  tc.n_jobs = n_jobs;
  tc.seed = 42;
  const auto trace = sc::generate_trace(tc);

  sc::cluster_config cc;
  cc.n_nodes = 64;
  cc.gpus_per_node = 4;
  cc.facility_cap_w = 40000.0;
  cc.faults.clock_set_fail_rate = 0.02;
  cc.faults.power_read_dropout_rate = 0.02;
  cc.faults.device_lost_rate = 0.01;
  cc.faults.max_node_losses = 2;
  cc.faults.seed = 99;
  cc.obs_scrape_interval_s = scrape_s;

  auto& ledger = obs::energy_ledger::instance();
  double engine_s = 1e300;
  std::uint64_t charges = 0;
  std::size_t scrapes = 0;
  for (int r = 0; r < std::min(reps, 3); ++r) {
    ledger.reset();
    ledger.set_enabled(true);
    sc::simulator sim{cc, sc::make_energy_aware(sc::make_suite_planner(cc.device))};
    const double t0 = now_s();
    (void)sim.run(trace);
    engine_s = std::min(engine_s, now_s() - t0);
    charges = ledger.charges();
    scrapes = ledger.series().size();
  }
  ledger.reset();

  const double ledger_s =
      static_cast<double>(charges) * t_charge + static_cast<double>(scrapes) * t_scrape;
  const double overhead_pct = engine_s > 0.0 ? 100.0 * ledger_s / engine_s : 0.0;

  std::printf("per-charge %.0f ns, per-scrape %.0f ns (best of %d tight-loop regions)\n",
              t_charge * 1e9, t_scrape * 1e9, reps);
  std::printf("replay: %.4fs event-engine time, %llu charges, %zu scrapes\n", engine_s,
              static_cast<unsigned long long>(charges), scrapes);
  std::printf("obs overhead: %.4fs ledger work -> %.3f%% of engine time (budget %.1f%%)\n",
              ledger_s, overhead_pct, budget_pct);
  std::printf("jobs=%zu nodes=%zu gpus/node=%zu scrape=%.1fs\n", n_jobs,
              static_cast<std::size_t>(cc.n_nodes), static_cast<std::size_t>(cc.gpus_per_node),
              cc.obs_scrape_interval_s);

  if (charges == 0) {
    std::fprintf(stderr, "FAIL: the replay charged nothing — the ledger is not wired\n");
    return 1;
  }
  if (overhead_pct > budget_pct) {
    std::fprintf(stderr, "FAIL: observability overhead %.3f%% exceeds the %.1f%% budget\n",
                 overhead_pct, budget_pct);
    return 1;
  }
  std::printf("PASS: within budget\n");
  return 0;
}

/// Figure 8 reproduction: the same four benchmarks characterised on the AMD
/// MI100. Shape target from the paper: the default configuration always
/// brings the best performance on MI100 (auto-DVFS default == top level),
/// leaving less tradeoff space than the V100.

#include <iostream>

#include "characterize.hpp"
#include "synergy/common/table.hpp"

int main() {
  const auto spec = synergy::gpusim::make_mi100();
  const char* benchmarks[] = {"mat_mul", "sobel3", "black_scholes", "median"};

  for (const char* name : benchmarks) {
    const auto c = bench::characterize(spec, name);
    bench::print_series(std::cout, std::string("Figure 8: ") + name + " on MI100", c);
  }

  synergy::common::print_banner(std::cout, "Figure 8 summary (MI100)");
  bool default_always_fastest = true;
  for (const char* name : benchmarks) {
    const auto s = bench::summarize(bench::characterize(spec, name));
    bench::print_summary_row(std::cout, name, s);
    default_always_fastest &= s.default_is_fastest;
  }
  std::cout << "\nshape check (paper Sec. 8.2): default configuration always fastest on "
               "MI100: "
            << (default_always_fastest ? "yes" : "NO") << '\n';
  return 0;
}

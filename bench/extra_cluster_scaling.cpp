/// Cluster-scale energy/makespan study (beyond the paper's single-node
/// evaluation): the same Poisson job trace replayed at 16 -> 256 GPUs under
/// FIFO, EASY backfill, and the energy-aware policy at MIN_EDP / ES_50 /
/// PL_50. The per-kernel savings of Sec. 8.3 compose across a cluster: the
/// energy policy keeps (or beats) backfill's makespan while cutting GPU
/// energy, which is the paper's "scalable energy saving" claim at facility
/// scale.
///
/// The arrival rate scales with the GPU count so every cluster sees the
/// same offered load per GPU; each scale replays one fixed-seed trace under
/// all five schedulers, so rows differ only by policy.

#include <iostream>
#include <string>
#include <vector>

#include "synergy/cluster/simulator.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"

namespace sc = synergy::cluster;
namespace sm = synergy::metrics;
using synergy::common::text_table;

namespace {

struct policy_case {
  std::string label;
  std::string policy;
  std::optional<sm::target> target;
};

}  // namespace

int main() {
  const std::string device = "V100";
  const auto plan = sc::make_suite_planner(device);

  const std::vector<policy_case> cases = {
      {"fifo", "fifo", std::nullopt},
      {"backfill", "backfill", std::nullopt},
      {"energy MIN_EDP", "energy", sm::MIN_EDP},
      {"energy ES_50", "energy", sm::ES_50},
      {"energy PL_50", "energy", sm::PL_50},
  };
  const std::size_t node_counts[] = {4, 16, 64};  // x4 GPUs: 16, 64, 256

  synergy::common::print_banner(std::cout, "Cluster scaling: energy vs. makespan by policy");

  text_table table;
  table.header({"GPUs", "policy", "jobs", "makespan (s)", "GPU energy (J)",
                "facility E (J)", "mean wait (s)", "util", "vs fifo E", "vs fifo T"});
  std::vector<std::string> csv_rows;

  for (const std::size_t n_nodes : node_counts) {
    sc::cluster_config cc;
    cc.n_nodes = n_nodes;
    cc.gpus_per_node = 4;
    cc.device = device;
    const auto gpus = cc.n_nodes * cc.gpus_per_node;

    sc::trace_config tc;
    tc.seed = 2023;
    tc.n_jobs = 250 * n_nodes / 4;  // grows with the cluster
    tc.mean_interarrival_s = 2.0 * 64.0 / static_cast<double>(gpus);
    const auto trace = sc::generate_trace(tc);

    double fifo_energy = 0.0;
    double fifo_makespan = 0.0;
    for (const auto& pc : cases) {
      sc::simulator sim{cc, sc::make_policy(pc.policy, plan, pc.target)};
      const auto s = sim.run(trace);
      if (pc.label == "fifo") {
        fifo_energy = s.total_gpu_energy_j;
        fifo_makespan = s.makespan_s;
      }
      table.row({std::to_string(gpus), pc.label,
                 std::to_string(s.completed) + "/" + std::to_string(s.jobs),
                 text_table::fmt(s.makespan_s, 1), text_table::fmt(s.total_gpu_energy_j, 0),
                 text_table::fmt(s.facility_energy_j, 0), text_table::fmt(s.mean_wait_s, 2),
                 text_table::fmt(s.gpu_utilization, 3),
                 text_table::fmt(s.total_gpu_energy_j / fifo_energy, 3),
                 text_table::fmt(s.makespan_s / fifo_makespan, 3)});
      csv_rows.push_back(
          std::to_string(gpus) + "," + pc.label + "," + std::to_string(trace.seed) + "," +
          synergy::common::csv_writer::num(s.makespan_s) + "," +
          synergy::common::csv_writer::num(s.total_gpu_energy_j) + "," +
          synergy::common::csv_writer::num(s.facility_energy_j) + "," +
          synergy::common::csv_writer::num(s.mean_wait_s) + "," +
          synergy::common::csv_writer::num(s.gpu_utilization));
    }
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n# trace seed=2023 policy column names the scheduler\n"
               "gpus,policy,seed,makespan_s,gpu_energy_j,facility_energy_j,mean_wait_s,"
               "gpu_utilization\n";
  for (const auto& row : csv_rows) std::cout << row << '\n';

  std::cout << "\nnote: 'vs fifo' columns normalise to the FIFO row of the same scale;\n"
               "the ES_50 policy must stay below 1.0 on energy within 1.10 on makespan\n"
               "(the repository's acceptance bar for this bench).\n";
  return 0;
}

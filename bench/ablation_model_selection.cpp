/// Ablation D: model selection on the training distribution.
///
/// Complements Table 2 (which measures end-objective errors on held-out
/// suite benchmarks) with classic in-distribution diagnostics over the
/// micro-benchmark training sets:
///   - 5-fold cross-validated RMSE / R^2 per algorithm per metric,
///   - random-forest feature importances per metric (which Table-1 features
///     and which clock-basis columns the models actually use).

#include <iostream>

#include "synergy/common/table.hpp"
#include "synergy/ml/linear.hpp"
#include "synergy/ml/metrics.hpp"
#include "synergy/ml/random_forest.hpp"
#include "synergy/synergy.hpp"

namespace sc = synergy::common;
namespace ml = synergy::ml;
namespace gs = synergy::gpusim;

int main() {
  const auto spec = gs::make_v100();
  synergy::trainer_options opt;
  opt.n_microbenchmarks = 48;
  opt.freq_samples = 24;
  opt.repetitions = 2;
  synergy::model_trainer trainer{spec, opt};
  std::cout << "building training sets on " << spec.name << " ...\n";
  const auto sets = trainer.measure(trainer.generate_microbenchmarks());

  const std::pair<const char*, const ml::dataset*> metrics[] = {
      {"time", &sets.time}, {"energy", &sets.energy}, {"edp", &sets.edp},
      {"ed2p", &sets.ed2p}};

  sc::print_banner(std::cout, "Ablation D: 5-fold CV over the micro-benchmark training set");
  sc::text_table cv_table;
  cv_table.header({"metric", "algorithm", "cv RMSE", "cv R^2"});
  for (const auto& [name, data] : metrics) {
    for (const auto alg : {ml::algorithm::linear, ml::algorithm::lasso,
                           ml::algorithm::random_forest, ml::algorithm::svr_rbf}) {
      const auto cv = ml::k_fold_cv(*data, 5, [alg] { return ml::make_regressor(alg); });
      cv_table.row({name, ml::to_string(alg), sc::text_table::fmt(cv.mean_rmse(), 4),
                    sc::text_table::fmt(cv.mean_r2(), 3)});
    }
  }
  cv_table.print(std::cout);

  sc::print_banner(std::cout, "Random-forest feature importances per metric");
  sc::text_table imp_table;
  std::vector<std::string> header{"feature"};
  for (const auto& [name, data] : metrics) header.emplace_back(name);
  imp_table.header(header);

  std::vector<std::vector<double>> importances;
  for (const auto& [name, data] : metrics) {
    ml::random_forest forest;
    forest.fit(data->x, data->y);
    importances.push_back(forest.feature_importances());
  }
  const char* basis_names[] = {"f (GHz)", "1/f", "log f", "f^3"};
  for (std::size_t i = 0; i < synergy::model_input_dim; ++i) {
    std::vector<std::string> row;
    row.push_back(i < gs::static_features::dimension
                      ? gs::static_features::feature_name(i)
                      : basis_names[i - gs::static_features::dimension]);
    for (const auto& imp : importances) row.push_back(sc::text_table::fmt(imp[i], 3));
    imp_table.row(row);
  }
  imp_table.print(std::cout);

  // Shape check: the clock basis must dominate the (normalised) energy model.
  double clock_share = 0.0;
  for (std::size_t i = gs::static_features::dimension; i < synergy::model_input_dim; ++i)
    clock_share += importances[1][i];
  std::cout << "\nshape check: clock-basis share of the energy model's importance: "
            << sc::text_table::fmt(clock_share, 3) << " (> 0.3: "
            << (clock_share > 0.3 ? "yes" : "NO") << ")\n";
  return 0;
}

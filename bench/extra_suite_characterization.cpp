/// Full-suite characterization (paper Sec. 8.2 evaluates all 23 SYCL
/// benchmarks; Figs. 7/8 show a selection of four). One summary row per
/// benchmark per device: Pareto speedup range, maximum energy saving, and
/// the saving available within 10% performance loss.

#include <iostream>

#include "characterize.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"

namespace sc = synergy::common;

int main() {
  sc::csv_writer csv{std::cout};
  std::vector<std::vector<std::string>> csv_rows;

  for (const char* device : {"V100", "MI100"}) {
    const auto spec = synergy::gpusim::make_device_spec(device);
    sc::print_banner(std::cout, std::string("Suite characterization on ") + spec.name);
    sc::text_table table;
    table.header({"benchmark", "pareto speedup", "max saving %", "saving@<=10% loss %",
                  "default"});
    int default_fastest = 0;
    for (const auto& b : synergy::workloads::suite()) {
      const auto c = bench::characterize(spec, b.name);
      const auto s = bench::summarize(c);
      default_fastest += s.default_is_fastest ? 1 : 0;
      table.row({b.name,
                 sc::text_table::fmt(s.pareto_min_speedup, 2) + ".." +
                     sc::text_table::fmt(s.pareto_max_speedup, 2),
                 sc::text_table::fmt(s.max_saving * 100, 1),
                 sc::text_table::fmt(s.saving_within_10pct_loss * 100, 1),
                 s.default_is_fastest ? "fastest" : "beatable"});
      csv_rows.push_back({device, b.name, sc::csv_writer::num(s.pareto_min_speedup),
                          sc::csv_writer::num(s.pareto_max_speedup),
                          sc::csv_writer::num(s.max_saving),
                          sc::csv_writer::num(s.saving_within_10pct_loss)});
    }
    table.print(std::cout);
    std::cout << "default configuration fastest for " << default_fastest << "/23 benchmarks\n";
  }

  std::cout << "\nshape check (paper Sec. 8.2): on MI100 the default is fastest for all\n"
               "benchmarks; on V100 there is headroom above the default and wider\n"
               "performance-energy tradeoff space.\n";

  std::cout << "\ncsv:\n";
  csv.row({"device", "benchmark", "pareto_min_speedup", "pareto_max_speedup", "max_saving",
           "saving_within_10pct_loss"});
  for (const auto& r : csv_rows) csv.row(r);
  return 0;
}

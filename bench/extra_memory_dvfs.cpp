/// Memory-frequency DVFS study (extension; paper Sec. 2.1 motivates it via
/// the NVIDIA Titan X's four selectable memory clocks).
///
/// Sweeps the 2-D (memory, core) frequency space of the Titan X for a
/// compute-bound and a memory-bound kernel and shows that the optimal
/// *memory* clock is kernel-dependent too: compute-bound kernels can drop
/// the memory clock almost for free, streaming kernels cannot.

#include <iostream>

#include "characterize.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"
#include "synergy/metrics/energy_metrics.hpp"

namespace sc = synergy::common;
namespace sm = synergy::metrics;
namespace gs = synergy::gpusim;

int main() {
  const auto spec = gs::make_titanx();

  for (const char* name : {"nbody", "vec_add"}) {
    const auto& b = synergy::workloads::find(name);
    const auto c = synergy::oracle_characterization(spec, b.profile());

    sc::print_banner(std::cout, std::string("Memory DVFS on Titan X: ") + name);
    std::cout << c.points.size() << " (memory, core) configurations swept\n\n";

    // Per-memory-clock bests.
    sc::text_table table;
    table.header({"mem MHz", "best speedup", "min norm energy", "energy@speedup>=0.95"});
    for (const auto m : spec.supported_memory_clocks()) {
      double best_speedup = 0.0, min_energy = 1e300, fast_energy = 1e300;
      for (const auto& p : c.points) {
        if (p.config.memory.value != m.value) continue;
        best_speedup = std::max(best_speedup, c.speedup(p));
        min_energy = std::min(min_energy, c.normalized_energy(p));
        if (c.speedup(p) >= 0.95) fast_energy = std::min(fast_energy, c.normalized_energy(p));
      }
      table.row({sc::text_table::fmt(m.value, 0), sc::text_table::fmt(best_speedup, 3),
                 sc::text_table::fmt(min_energy, 3),
                 fast_energy < 1e299 ? sc::text_table::fmt(fast_energy, 3) : "-"});
    }
    table.print(std::cout);

    // 2-D selections.
    sc::text_table sel;
    sel.header({"target", "mem MHz", "core MHz", "speedup", "norm energy"});
    for (const auto& t : {sm::MAX_PERF, sm::MIN_ENERGY, sm::MIN_EDP, sm::ES_50, sm::PL_50}) {
      const auto& p = c.points[sm::select(c, t)];
      sel.row({t.to_string(), sc::text_table::fmt(p.config.memory.value, 0),
               sc::text_table::fmt(p.config.core.value, 0),
               sc::text_table::fmt(c.speedup(p), 3),
               sc::text_table::fmt(c.normalized_energy(p), 3)});
    }
    std::cout << '\n';
    sel.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "shape check: the MIN_ENERGY memory clock is kernel-dependent --\n"
               "compute-bound kernels drop it, streaming kernels keep it high.\n";
  return 0;
}

/// Ablation A (paper Sec. 4.4): NVML frequency-scaling overhead as the
/// number of submitted kernels grows. Submits streams of short kernels
/// (a) at fixed clocks, (b) alternating between two frequencies every
/// kernel, and reports the per-kernel overhead the clock changes add.

#include <iostream>

#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"
#include "synergy/synergy.hpp"

namespace sc = synergy::common;

namespace {

simsycl::kernel_info short_kernel() {
  simsycl::kernel_info info;
  info.name = "short_kernel";
  info.features.float_add = 32;
  info.features.gl_access = 4;
  info.work_multiplier = 256.0;
  return info;
}

double run_stream(int n_kernels, bool alternate) {
  simsycl::device dev{synergy::gpusim::make_v100()};
  auto ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev});
  synergy::queue q{dev, ctx};
  const auto info = short_kernel();
  const auto f_lo = dev.spec().core_clocks[100];
  const auto f_hi = dev.spec().core_clocks[180];
  for (int i = 0; i < n_kernels; ++i) {
    const auto f = (alternate && i % 2 == 1) ? f_lo : f_hi;
    q.submit(877.0, f.value, [&](simsycl::handler& h) {
      h.parallel_for(simsycl::range<1>{1024}, info, [](simsycl::id<1>) {});
    });
  }
  return dev.board()->now().value;
}

}  // namespace

int main() {
  sc::print_banner(std::cout,
                   "Ablation A: NVML clock-change overhead vs number of submitted kernels");

  sc::text_table table;
  table.header({"#kernels", "fixed clocks (ms)", "per-kernel retune (ms)", "overhead (ms)",
                "overhead/kernel (us)", "slowdown"});
  sc::csv_writer csv_rows{std::cout};
  std::vector<std::vector<std::string>> rows;

  for (const int n : {16, 64, 256, 1024, 4096}) {
    const double fixed = run_stream(n, false);
    const double retuned = run_stream(n, true);
    const double overhead = retuned - fixed;
    table.row({std::to_string(n), sc::text_table::fmt(fixed * 1e3, 3),
               sc::text_table::fmt(retuned * 1e3, 3), sc::text_table::fmt(overhead * 1e3, 3),
               sc::text_table::fmt(overhead / n * 1e6, 2),
               sc::text_table::fmt(retuned / fixed, 2)});
    rows.push_back({std::to_string(n), sc::csv_writer::num(fixed),
                    sc::csv_writer::num(retuned), sc::csv_writer::num(overhead)});
  }
  table.print(std::cout);

  std::cout << "\nshape check (paper Sec. 4.4): overhead grows with the number of submitted\n"
               "kernels and dominates streams of very short kernels.\n";

  std::cout << "\ncsv:\n";
  csv_rows.row({"n_kernels", "fixed_s", "retuned_s", "overhead_s"});
  for (const auto& r : rows) csv_rows.row(r);
  return 0;
}

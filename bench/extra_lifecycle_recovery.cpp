/// Lifecycle-recovery energy study (beyond the paper's static-model
/// evaluation): the same drifted cluster replay with the model-lifecycle
/// loop on vs. off. Mid-run, every board's frequency response changes
/// (power factor (f/f_default)^3), the drift monitor quarantines the model
/// tier, and the fleet degrades to tuning-table/default clocks. With the
/// lifecycle manager attached, a challenger retrained on the drifted
/// response is shadow-evaluated and promoted, restoring model-tier planning
/// for the rest of the run; without it, the fleet stays degraded. The gap
/// between those two rows is the energy the subsystem earns back.
///
/// All rows replay one fixed-seed trace on the same 16-GPU cluster, so they
/// differ only in drift/lifecycle wiring; a drift-free row bounds what full
/// recovery could achieve.

#include <unistd.h>

#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "synergy/cluster/simulator.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"
#include "synergy/lifecycle/lifecycle_manager.hpp"
#include "synergy/synergy.hpp"

namespace gs = synergy::gpusim;
namespace lc = synergy::lifecycle;
namespace sc = synergy::cluster;
using synergy::common::text_table;

namespace {

constexpr double drift_at_s = 150.0;
// Clock-dependent drift exponent. Negative: the boards age such that *low*
// clocks draw disproportionately more power (factor (f/f_default)^-3), so
// the pre-drift tuning table's downclocked picks — the tier a quarantined
// fleet falls back to — are exactly the clocks the drift made expensive.
constexpr double drift_gamma = -3.0;

synergy::trainer_options quick_options() {
  synergy::trainer_options opt;
  opt.n_microbenchmarks = 24;
  opt.freq_samples = 12;
  opt.repetitions = 1;
  return opt;
}

struct run_row {
  std::string label;
  sc::run_summary summary;
  std::size_t model_plans{0};
  std::size_t lifecycle_events{0};
};

run_row run_case(const std::string& label, const std::filesystem::path& model_dir,
                 bool with_drift, bool with_recovery) {
  sc::cluster_config cluster;
  cluster.n_nodes = 4;
  cluster.gpus_per_node = 4;
  if (with_drift) {
    cluster.drift.at_s = drift_at_s;
    cluster.drift.power_skew = 1.0;
    cluster.drift.freq_exponent = drift_gamma;
  }

  auto guarded = sc::make_guarded_suite_planner("V100", model_dir);
  sc::simulator sim{cluster, sc::make_policy("energy", guarded.plan, std::nullopt)};

  // The lifecycle loop is attached in both drifted rows so the drift monitor
  // is fed identically and quarantines at the same simulated time; the
  // no-recovery row simply forbids retraining (and probing), which is
  // exactly "stay on the degraded tiers until an operator intervenes".
  std::shared_ptr<lc::model_registry> registry;
  std::shared_ptr<lc::lifecycle_manager> manager;
  if (with_drift) {
    registry = std::make_shared<lc::model_registry>();
    registry->install(lc::version_origin::initial, "V100", guarded.guard->planner());
    lc::lifecycle_options opt;
    if (!with_recovery) {
      opt.max_retrains_per_quarantine = 0;
      opt.quarantine_probe_every = 0;
    }
    manager = std::make_shared<lc::lifecycle_manager>(
        registry, gs::make_v100(),
        lc::make_drifted_retrainer(gs::make_v100(), quick_options(), cluster.drift.power_skew,
                                   cluster.drift.freq_exponent),
        opt);
    sim.attach_recovery(guarded.guard, registry, manager);
  }

  sc::trace_config gen;
  gen.n_jobs = 400;
  gen.seed = 7;
  const auto trace = sc::generate_trace(gen);

  run_row row;
  row.label = label;
  row.summary = sim.run(trace);
  row.model_plans = guarded.guard->model_plans();
  row.lifecycle_events = manager ? manager->history().size() : 0;
  return row;
}

}  // namespace

int main() {
  const auto model_dir = std::filesystem::temp_directory_path() /
                         ("synergy_bench_lifecycle." + std::to_string(::getpid()));
  std::filesystem::remove_all(model_dir);
  std::filesystem::create_directories(model_dir);
  {
    synergy::model_trainer trainer{gs::make_v100(), quick_options()};
    synergy::model_store store{model_dir};
    if (!store.save("V100", trainer.train_default()).ok()) {
      std::cerr << "model training/persist failed\n";
      return 1;
    }
  }

  synergy::common::print_banner(std::cout,
                                "Lifecycle recovery: energy of retrain-and-promote vs. "
                                "staying quarantined");

  const std::vector<run_row> rows = {
      run_case("no drift", model_dir, false, false),
      run_case("drift, no recovery", model_dir, true, false),
      run_case("drift, auto recovery", model_dir, true, true),
  };
  const double quarantined_energy = rows[1].summary.total_gpu_energy_j;

  text_table table;
  table.header({"scenario", "jobs", "makespan (s)", "GPU energy (J)", "facility E (J)",
                "model plans", "quar", "promo", "vs no-recovery E"});
  std::vector<std::string> csv_rows;
  for (const auto& r : rows) {
    const auto& s = r.summary;
    table.row({r.label, std::to_string(s.completed) + "/" + std::to_string(s.jobs),
               text_table::fmt(s.makespan_s, 1), text_table::fmt(s.total_gpu_energy_j, 0),
               text_table::fmt(s.facility_energy_j, 0), std::to_string(r.model_plans),
               std::to_string(s.quarantines), std::to_string(s.promotions),
               text_table::fmt(s.total_gpu_energy_j / quarantined_energy, 3)});
    csv_rows.push_back(r.label + "," + std::to_string(s.completed) + "," +
                       synergy::common::csv_writer::num(s.makespan_s) + "," +
                       synergy::common::csv_writer::num(s.total_gpu_energy_j) + "," +
                       synergy::common::csv_writer::num(s.facility_energy_j) + "," +
                       std::to_string(r.model_plans) + "," + std::to_string(s.quarantines) +
                       "," + std::to_string(s.promotions));
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n# trace seed=7, drift at t=" << drift_at_s << "s, gamma=" << drift_gamma
            << "\nscenario,completed,makespan_s,gpu_energy_j,facility_energy_j,"
               "model_plans,quarantines,promotions\n";
  for (const auto& row : csv_rows) std::cout << row << '\n';

  std::cout << "\nnote: 'vs no-recovery E' normalises GPU energy to the stay-quarantined\n"
               "row. The auto-recovery row must promote exactly once and resume model-tier\n"
               "planning (model plans > 0 after the quarantine) — the energy it earns back\n"
               "is bounded below by the drift-free row.\n";

  std::filesystem::remove_all(model_dir);
  return 0;
}

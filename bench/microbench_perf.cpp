/// Library micro-benchmarks (google-benchmark): wall-clock cost of the
/// SYnergy runtime operations themselves — feature extraction, model
/// inference, oracle and model-based planning, queue submission, and
/// emulated vendor calls. These measure this library's overheads, not the
/// simulated devices.

#include <benchmark/benchmark.h>

#include "synergy/features/extraction.hpp"
#include "synergy/synergy.hpp"
#include "synergy/telemetry/telemetry.hpp"
#include "synergy/vendor/nvml_sim.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace gs = synergy::gpusim;
namespace sm = synergy::metrics;
namespace sw = synergy::workloads;

namespace {

const synergy::trained_models& shared_models() {
  static const synergy::trained_models models = [] {
    synergy::trainer_options opt;
    opt.n_microbenchmarks = 24;
    opt.freq_samples = 16;
    opt.repetitions = 1;
    return synergy::model_trainer{gs::make_v100(), opt}.train_default();
  }();
  return models;
}

void BM_FeatureExtraction(benchmark::State& state) {
  for (auto _ : state) {
    auto k = synergy::features::extract_features([] {
      synergy::features::counting_array<float> x, y, z;
      synergy::features::counted<float> a{2.0f};
      z[0] = a * x[0] + y[0];
    });
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_ModelInference(benchmark::State& state) {
  const auto& models = shared_models();
  gs::static_features k;
  k.float_add = 50;
  k.gl_access = 5;
  const auto x = synergy::model_input(k, synergy::common::megahertz{1312});
  for (auto _ : state) {
    benchmark::DoNotOptimize(models.energy->predict_one(x));
  }
}
BENCHMARK(BM_ModelInference);

void BM_OraclePlan(benchmark::State& state) {
  const auto spec = gs::make_v100();
  const auto profile = sw::find("black_scholes").profile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synergy::oracle_plan(spec, profile, sm::MIN_EDP));
  }
}
BENCHMARK(BM_OraclePlan);

const synergy::frequency_planner& shared_trained_planner() {
  static const synergy::frequency_planner planner{gs::make_v100(), [] {
                                                    synergy::trainer_options opt;
                                                    opt.n_microbenchmarks = 24;
                                                    opt.freq_samples = 16;
                                                    opt.repetitions = 1;
                                                    return synergy::model_trainer{
                                                        gs::make_v100(), opt}
                                                        .train_default();
                                                  }()};
  return planner;
}

void BM_PlannerPlan(benchmark::State& state) {
  const auto& planner = shared_trained_planner();
  const auto& features = sw::find("sobel3").info.features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(features, sm::ES_50));
  }
}
BENCHMARK(BM_PlannerPlan);

/// The same plan behind the prediction rails (envelope check, finite /
/// positive prediction verification, clock clamping). Compare against
/// BM_PlannerPlan: the delta is the guardrail overhead on the planning hot
/// path (acceptance target: <= 5% of plan time).
void BM_PlannerPlanGuarded(benchmark::State& state) {
  const auto& planner = shared_trained_planner();
  const auto& features = sw::find("sobel3").info.features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan_guarded(features, sm::ES_50));
  }
}
BENCHMARK(BM_PlannerPlanGuarded);

/// The full degradation chain (quarantine check -> guarded model plan ->
/// fallback bookkeeping) as the queue and cluster policies resolve every
/// target — the end-to-end cost of one guarded frequency decision.
void BM_GuardedChainPlan(benchmark::State& state) {
  const auto spec = gs::make_v100();
  auto planner = std::shared_ptr<const synergy::frequency_planner>(
      &shared_trained_planner(), [](const synergy::frequency_planner*) {});
  synergy::guarded_planner guard{spec, planner};
  const auto& features = sw::find("sobel3").info.features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard.plan("sobel3", features, sm::ES_50));
  }
}
BENCHMARK(BM_GuardedChainPlan);

void BM_QueueSubmit(benchmark::State& state) {
  simsycl::device dev{gs::make_v100()};
  auto ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev});
  synergy::queue q{dev, ctx};
  simsycl::kernel_info info;
  info.name = "bench_kernel";
  info.features.float_add = 8;
  info.features.gl_access = 2;
  for (auto _ : state) {
    auto e = q.submit([&](simsycl::handler& h) {
      h.parallel_for(simsycl::range<1>{64}, info, [](simsycl::id<1>) {});
    });
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_QueueSubmit);

/// Representative submission — the smallest bundled benchmark kernel
/// (vec_add), end to end as users submit it — with telemetry active vs.
/// runtime-disabled: the delta quantifies the instrumentation cost on the
/// kernel-submission hot path (acceptance target: <= 5% with telemetry on;
/// the per-submit cost is one host span, one device-timeline event, a
/// counter, two histogram observes, and one gauge add — an absolute floor
/// measured by BM_TelemetrySpanAndCounter below). With
/// -DSYNERGY_TELEMETRY=OFF both variants measure the compiled-out cost
/// (the macros expand to nothing either way).
void BM_QueueSubmitTelemetry(benchmark::State& state) {
  const bool telemetry_on = state.range(0) != 0;
  namespace tel = synergy::telemetry;
  const bool was_enabled = tel::enabled();
  tel::set_enabled(telemetry_on);

  simsycl::device dev{gs::make_v100()};
  auto ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev});
  synergy::queue q{dev, ctx};
  const auto& bench = sw::find("vec_add");
  for (auto _ : state) {
    auto e = bench.run(q);
    benchmark::DoNotOptimize(e);
  }

  tel::set_enabled(was_enabled);
  tel::trace_recorder::instance().clear();
  state.SetLabel(telemetry_on ? "telemetry:on" : "telemetry:off");
}
BENCHMARK(BM_QueueSubmitTelemetry)->Arg(0)->Arg(1);

/// Isolated cost of one span + one counter increment — the per-event floor
/// an instrumentation site adds to any hot path.
void BM_TelemetrySpanAndCounter(benchmark::State& state) {
  namespace tel = synergy::telemetry;
  const bool was_enabled = tel::enabled();
  tel::set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    SYNERGY_SPAN_VAR(span, tel::category::other, "bench.span");
    span.arg("i", 1.0);
    SYNERGY_COUNTER_ADD("bench.counter", 1);
  }
  tel::set_enabled(was_enabled);
  tel::trace_recorder::instance().clear();
  state.SetLabel(state.range(0) != 0 ? "telemetry:on" : "telemetry:off");
}
BENCHMARK(BM_TelemetrySpanAndCounter)->Arg(0)->Arg(1);

void BM_VendorSetClocks(benchmark::State& state) {
  auto board = std::make_shared<gs::device>(gs::make_v100());
  synergy::vendor::nvml_sim lib{{board}};
  lib.init();
  const auto root = synergy::vendor::user_context::root();
  const auto f1 = board->spec().core_clocks[50];
  const auto f2 = board->spec().core_clocks[150];
  bool flip = false;
  for (auto _ : state) {
    const auto st = lib.set_application_clocks(
        root, 0, {board->spec().memory_clock, flip ? f1 : f2});
    benchmark::DoNotOptimize(st);
    flip = !flip;
  }
}
BENCHMARK(BM_VendorSetClocks);

}  // namespace

BENCHMARK_MAIN();

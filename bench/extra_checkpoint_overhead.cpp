/// Checkpointing overhead study: the crash-safety tax on a long replay.
///
/// Replays one fixed-seed faulted + node-chaos trace three ways — bare,
/// checkpointing every 60 virtual seconds, and checkpointing every 15 —
/// and reports the wall-clock overhead of serializing the full simulator
/// state (event registries, per-slot state, results, budget, RNG streams,
/// ledger, metrics) through the sealed envelope + atomic-write stack.
///
/// Acceptance gates (checked, nonzero exit on violation):
///  - correctness: every checkpointed replay's summary CSV is byte-identical
///    to the bare run — the tick must be a pure observer;
///  - cost: the marginal wall-clock cost per checkpoint stays under 100 ms
///    (the percentage overhead on this deliberately small trace is
///    meaningless — a month-scale replay amortizes a fixed per-artefact
///    cost over hours of work, so the per-checkpoint price is the number
///    that must stay bounded).

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "synergy/cluster/checkpoint.hpp"
#include "synergy/cluster/simulator.hpp"
#include "synergy/obs/energy_ledger.hpp"
#include "synergy/telemetry/metrics_registry.hpp"

namespace sc = synergy::cluster;

namespace {

struct timed_run {
  std::string csv;
  double wall_s{0.0};
  std::uint64_t checkpoints{0};
};

timed_run replay(const sc::cluster_config& cc, const sc::job_trace& trace,
                 double interval_s, const std::filesystem::path& dir) {
  synergy::obs::energy_ledger::instance().reset();
  synergy::telemetry::metrics_registry::instance().reset_values();
  sc::simulator sim{cc, sc::make_energy_aware(sc::make_suite_planner(cc.device))};
  if (interval_s > 0.0) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    sc::checkpoint_options opts;
    opts.interval_s = interval_s;
    opts.dir = dir;
    sim.set_checkpointing(std::move(opts));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto summary = sim.run(trace);
  const auto t1 = std::chrono::steady_clock::now();
  timed_run r;
  std::ostringstream os;
  summary.csv(os);
  r.csv = os.str();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.checkpoints = sim.checkpoints_written();
  return r;
}

}  // namespace

int main() {
  sc::trace_config tc;
  tc.n_jobs = 600;
  tc.seed = 7;
  const auto trace = sc::generate_trace(tc);

  sc::cluster_config cc;
  cc.n_nodes = 16;
  cc.gpus_per_node = 4;
  cc.faults.seed = 11;
  cc.faults.clock_set_fail_rate = 0.05;
  cc.faults.device_lost_rate = 0.005;
  cc.faults.max_node_losses = 2;
  cc.chaos.mtbf_s = 300.0;
  cc.chaos.restart_delay_s = 120.0;
  cc.chaos.max_crashes = 3;
  cc.obs_scrape_interval_s = 10.0;

  const auto dir = std::filesystem::temp_directory_path() / "synergy_ckpt_bench";
  const auto bare = replay(cc, trace, 0.0, dir);
  const auto sparse = replay(cc, trace, 60.0, dir);
  const auto dense = replay(cc, trace, 15.0, dir);
  std::filesystem::remove_all(dir);

  const auto pct = [&](const timed_run& r) {
    return bare.wall_s > 0.0 ? 100.0 * (r.wall_s - bare.wall_s) / bare.wall_s : 0.0;
  };
  const auto per_ckpt_ms = [&](const timed_run& r) {
    return r.checkpoints > 0
               ? 1e3 * (r.wall_s - bare.wall_s) / static_cast<double>(r.checkpoints)
               : 0.0;
  };
  std::cout << "checkpoint overhead (600 jobs, 64 GPUs, faults + chaos)\n"
            << "  bare        " << bare.wall_s << " s\n"
            << "  every 60 s  " << sparse.wall_s << " s  (" << sparse.checkpoints
            << " checkpoints, " << pct(sparse) << "% overhead, " << per_ckpt_ms(sparse)
            << " ms/checkpoint)\n"
            << "  every 15 s  " << dense.wall_s << " s  (" << dense.checkpoints
            << " checkpoints, " << pct(dense) << "% overhead, " << per_ckpt_ms(dense)
            << " ms/checkpoint)\n";

  int failures = 0;
  if (sparse.csv != bare.csv || dense.csv != bare.csv) {
    std::cerr << "FAIL: checkpointing perturbed the replay (summary CSVs differ)\n";
    ++failures;
  }
  if (sparse.checkpoints == 0 || dense.checkpoints <= sparse.checkpoints) {
    std::cerr << "FAIL: checkpoint cadence did not scale with the interval\n";
    ++failures;
  }
  if (per_ckpt_ms(sparse) >= 100.0 || per_ckpt_ms(dense) >= 100.0) {
    std::cerr << "FAIL: a checkpoint costs over 100 ms of wall clock ("
              << per_ckpt_ms(sparse) << " / " << per_ckpt_ms(dense) << " ms)\n";
    ++failures;
  }
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}

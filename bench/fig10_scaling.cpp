/// Figure 10 reproduction: energy scaling of CloverLeaf and MiniWeather on
/// 4 to 64 simulated V100 GPUs (weak scaling), one point per energy target.
/// Shape targets from the paper: EDP behaves like the default; ES_50 and
/// PL_50 deliver ~20% (CloverLeaf) to ~30% (MiniWeather) energy savings.

#include <functional>
#include <iostream>
#include <optional>

#include "synergy/common/csv.hpp"
#include "synergy/common/table.hpp"
#include "synergy/workloads/apps.hpp"

namespace sc = synergy::common;
namespace sm = synergy::metrics;
namespace apps = synergy::workloads::apps;

namespace {

struct tuning_case {
  std::string label;
  std::optional<sm::target> target;
};

const std::vector<tuning_case>& tuning_cases() {
  static const std::vector<tuning_case> cases{
      {"default", std::nullopt}, {"MIN_EDP", sm::MIN_EDP}, {"ES_25", sm::ES_25},
      {"ES_50", sm::ES_50},      {"PL_25", sm::PL_25},     {"PL_50", sm::PL_50},
  };
  return cases;
}

void run_app(const std::string& app_name,
             const std::function<apps::app_result(int, const apps::app_config&,
                                                  const std::optional<sm::target>&)>& run,
             sc::csv_writer& csv) {
  apps::app_config cfg;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.timesteps = 3;
  // Memory-constrained weak scaling (paper Sec. 8.4): ~270M virtual cells
  // per GPU so kernel runtimes dwarf the per-kernel clock-change latency.
  cfg.work_multiplier = 1048576.0;

  sc::print_banner(std::cout, "Figure 10: " + app_name + " energy scaling (weak, V100)");
  sc::text_table table;
  table.header({"GPUs", "tuning", "time (s)", "GPU energy (J)", "vs default E", "vs default t"});

  for (const int gpus : {4, 8, 16, 32, 64}) {
    apps::app_result baseline;
    for (const auto& tc : tuning_cases()) {
      const auto result = run(gpus, cfg, tc.target);
      if (!tc.target) baseline = result;
      table.row({std::to_string(gpus), tc.label, sc::text_table::fmt(result.makespan_s, 4),
                 sc::text_table::fmt(result.gpu_energy_j, 1),
                 sc::text_table::fmt(result.gpu_energy_j / baseline.gpu_energy_j, 3),
                 sc::text_table::fmt(result.makespan_s / baseline.makespan_s, 3)});
      csv.row({app_name, std::to_string(gpus), tc.label,
               sc::csv_writer::num(result.makespan_s),
               sc::csv_writer::num(result.gpu_energy_j)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "csv rows accumulate below each table\ncsv:\n";
  sc::csv_writer csv{std::cout};
  csv.row({"app", "gpus", "tuning", "time_s", "gpu_energy_j"});

  run_app("CloverLeaf", apps::run_cloverleaf, csv);
  run_app("MiniWeather", apps::run_miniweather, csv);

  std::cout << "\npaper reference: ES_50 / PL_50 save ~20% energy on CloverLeaf and up to\n"
               "~30% on MiniWeather; MIN_EDP stays close to the default.\n";
  return 0;
}

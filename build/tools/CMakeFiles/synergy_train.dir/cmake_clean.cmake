file(REMOVE_RECURSE
  "CMakeFiles/synergy_train.dir/synergy_train.cpp.o"
  "CMakeFiles/synergy_train.dir/synergy_train.cpp.o.d"
  "synergy_train"
  "synergy_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for synergy_train.
# This may be replaced when dependencies are built.

# Empty dependencies file for synergy_plan.
# This may be replaced when dependencies are built.

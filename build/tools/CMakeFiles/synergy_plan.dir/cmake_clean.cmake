file(REMOVE_RECURSE
  "CMakeFiles/synergy_plan.dir/synergy_plan.cpp.o"
  "CMakeFiles/synergy_plan.dir/synergy_plan.cpp.o.d"
  "synergy_plan"
  "synergy_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for synergy_info.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/synergy_info.dir/synergy_info.cpp.o"
  "CMakeFiles/synergy_info.dir/synergy_info.cpp.o.d"
  "synergy_info"
  "synergy_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[tool_info]=] "/root/repo/build/tools/synergy_info" "V100")
set_tests_properties([=[tool_info]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[tool_train_plan_workflow]=] "/usr/bin/cmake" "-DTRAIN=/root/repo/build/tools/synergy_train" "-DPLAN=/root/repo/build/tools/synergy_plan" "-DWORK_DIR=/root/repo/build/tools/tool_test" "-P" "/root/repo/tools/test_workflow.cmake")
set_tests_properties([=[tool_train_plan_workflow]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "libsynergy_features.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/synergy_features.dir/extraction.cpp.o"
  "CMakeFiles/synergy_features.dir/extraction.cpp.o.d"
  "CMakeFiles/synergy_features.dir/kernel_registry.cpp.o"
  "CMakeFiles/synergy_features.dir/kernel_registry.cpp.o.d"
  "libsynergy_features.a"
  "libsynergy_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for synergy_features.
# This may be replaced when dependencies are built.

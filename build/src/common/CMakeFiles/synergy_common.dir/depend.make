# Empty dependencies file for synergy_common.
# This may be replaced when dependencies are built.

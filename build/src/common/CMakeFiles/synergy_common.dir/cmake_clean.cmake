file(REMOVE_RECURSE
  "CMakeFiles/synergy_common.dir/csv.cpp.o"
  "CMakeFiles/synergy_common.dir/csv.cpp.o.d"
  "CMakeFiles/synergy_common.dir/log.cpp.o"
  "CMakeFiles/synergy_common.dir/log.cpp.o.d"
  "CMakeFiles/synergy_common.dir/rng.cpp.o"
  "CMakeFiles/synergy_common.dir/rng.cpp.o.d"
  "CMakeFiles/synergy_common.dir/stats.cpp.o"
  "CMakeFiles/synergy_common.dir/stats.cpp.o.d"
  "CMakeFiles/synergy_common.dir/table.cpp.o"
  "CMakeFiles/synergy_common.dir/table.cpp.o.d"
  "libsynergy_common.a"
  "libsynergy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsynergy_common.a"
)

# Empty dependencies file for synergy_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/synergy_sched.dir/controller.cpp.o"
  "CMakeFiles/synergy_sched.dir/controller.cpp.o.d"
  "CMakeFiles/synergy_sched.dir/gpufreq_plugin.cpp.o"
  "CMakeFiles/synergy_sched.dir/gpufreq_plugin.cpp.o.d"
  "CMakeFiles/synergy_sched.dir/node.cpp.o"
  "CMakeFiles/synergy_sched.dir/node.cpp.o.d"
  "CMakeFiles/synergy_sched.dir/nvgpufreq_plugin.cpp.o"
  "CMakeFiles/synergy_sched.dir/nvgpufreq_plugin.cpp.o.d"
  "CMakeFiles/synergy_sched.dir/power_manager.cpp.o"
  "CMakeFiles/synergy_sched.dir/power_manager.cpp.o.d"
  "libsynergy_sched.a"
  "libsynergy_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

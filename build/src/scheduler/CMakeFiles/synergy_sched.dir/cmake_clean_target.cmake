file(REMOVE_RECURSE
  "libsynergy_sched.a"
)

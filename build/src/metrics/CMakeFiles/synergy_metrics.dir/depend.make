# Empty dependencies file for synergy_metrics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/synergy_metrics.dir/energy_metrics.cpp.o"
  "CMakeFiles/synergy_metrics.dir/energy_metrics.cpp.o.d"
  "libsynergy_metrics.a"
  "libsynergy_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

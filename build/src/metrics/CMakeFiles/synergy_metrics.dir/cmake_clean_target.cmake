file(REMOVE_RECURSE
  "libsynergy_metrics.a"
)

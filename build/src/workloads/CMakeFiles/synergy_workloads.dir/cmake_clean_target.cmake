file(REMOVE_RECURSE
  "libsynergy_workloads.a"
)

# Empty compiler generated dependencies file for synergy_workloads.
# This may be replaced when dependencies are built.

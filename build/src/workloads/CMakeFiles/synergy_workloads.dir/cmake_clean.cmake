file(REMOVE_RECURSE
  "CMakeFiles/synergy_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/synergy_workloads.dir/benchmarks.cpp.o.d"
  "CMakeFiles/synergy_workloads.dir/cloverleaf.cpp.o"
  "CMakeFiles/synergy_workloads.dir/cloverleaf.cpp.o.d"
  "CMakeFiles/synergy_workloads.dir/miniweather.cpp.o"
  "CMakeFiles/synergy_workloads.dir/miniweather.cpp.o.d"
  "libsynergy_workloads.a"
  "libsynergy_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

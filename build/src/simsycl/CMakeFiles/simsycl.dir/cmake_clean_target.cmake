file(REMOVE_RECURSE
  "libsimsycl.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/simsycl.dir/platform.cpp.o"
  "CMakeFiles/simsycl.dir/platform.cpp.o.d"
  "CMakeFiles/simsycl.dir/queue.cpp.o"
  "CMakeFiles/simsycl.dir/queue.cpp.o.d"
  "libsimsycl.a"
  "libsimsycl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsycl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

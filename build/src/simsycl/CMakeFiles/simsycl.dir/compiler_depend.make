# Empty compiler generated dependencies file for simsycl.
# This may be replaced when dependencies are built.

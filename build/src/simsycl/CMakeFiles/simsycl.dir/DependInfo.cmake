
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simsycl/platform.cpp" "src/simsycl/CMakeFiles/simsycl.dir/platform.cpp.o" "gcc" "src/simsycl/CMakeFiles/simsycl.dir/platform.cpp.o.d"
  "/root/repo/src/simsycl/queue.cpp" "src/simsycl/CMakeFiles/simsycl.dir/queue.cpp.o" "gcc" "src/simsycl/CMakeFiles/simsycl.dir/queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/synergy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/synergy_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for synergy_ml.
# This may be replaced when dependencies are built.

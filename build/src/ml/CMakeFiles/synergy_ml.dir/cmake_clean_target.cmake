file(REMOVE_RECURSE
  "libsynergy_ml.a"
)

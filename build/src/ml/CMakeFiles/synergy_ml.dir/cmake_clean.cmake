file(REMOVE_RECURSE
  "CMakeFiles/synergy_ml.dir/dataset.cpp.o"
  "CMakeFiles/synergy_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/synergy_ml.dir/linear.cpp.o"
  "CMakeFiles/synergy_ml.dir/linear.cpp.o.d"
  "CMakeFiles/synergy_ml.dir/matrix.cpp.o"
  "CMakeFiles/synergy_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/synergy_ml.dir/metrics.cpp.o"
  "CMakeFiles/synergy_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/synergy_ml.dir/random_forest.cpp.o"
  "CMakeFiles/synergy_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/synergy_ml.dir/regressor.cpp.o"
  "CMakeFiles/synergy_ml.dir/regressor.cpp.o.d"
  "CMakeFiles/synergy_ml.dir/svr.cpp.o"
  "CMakeFiles/synergy_ml.dir/svr.cpp.o.d"
  "libsynergy_ml.a"
  "libsynergy_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

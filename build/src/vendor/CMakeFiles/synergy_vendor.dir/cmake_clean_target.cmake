file(REMOVE_RECURSE
  "libsynergy_vendor.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/synergy_vendor.dir/lzero_sim.cpp.o"
  "CMakeFiles/synergy_vendor.dir/lzero_sim.cpp.o.d"
  "CMakeFiles/synergy_vendor.dir/management_library.cpp.o"
  "CMakeFiles/synergy_vendor.dir/management_library.cpp.o.d"
  "CMakeFiles/synergy_vendor.dir/nvml_sim.cpp.o"
  "CMakeFiles/synergy_vendor.dir/nvml_sim.cpp.o.d"
  "CMakeFiles/synergy_vendor.dir/rsmi_sim.cpp.o"
  "CMakeFiles/synergy_vendor.dir/rsmi_sim.cpp.o.d"
  "libsynergy_vendor.a"
  "libsynergy_vendor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_vendor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vendor/lzero_sim.cpp" "src/vendor/CMakeFiles/synergy_vendor.dir/lzero_sim.cpp.o" "gcc" "src/vendor/CMakeFiles/synergy_vendor.dir/lzero_sim.cpp.o.d"
  "/root/repo/src/vendor/management_library.cpp" "src/vendor/CMakeFiles/synergy_vendor.dir/management_library.cpp.o" "gcc" "src/vendor/CMakeFiles/synergy_vendor.dir/management_library.cpp.o.d"
  "/root/repo/src/vendor/nvml_sim.cpp" "src/vendor/CMakeFiles/synergy_vendor.dir/nvml_sim.cpp.o" "gcc" "src/vendor/CMakeFiles/synergy_vendor.dir/nvml_sim.cpp.o.d"
  "/root/repo/src/vendor/rsmi_sim.cpp" "src/vendor/CMakeFiles/synergy_vendor.dir/rsmi_sim.cpp.o" "gcc" "src/vendor/CMakeFiles/synergy_vendor.dir/rsmi_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/synergy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/synergy_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

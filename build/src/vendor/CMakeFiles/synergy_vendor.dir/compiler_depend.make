# Empty compiler generated dependencies file for synergy_vendor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/synergy_core.dir/context.cpp.o"
  "CMakeFiles/synergy_core.dir/context.cpp.o.d"
  "CMakeFiles/synergy_core.dir/model_store.cpp.o"
  "CMakeFiles/synergy_core.dir/model_store.cpp.o.d"
  "CMakeFiles/synergy_core.dir/planner.cpp.o"
  "CMakeFiles/synergy_core.dir/planner.cpp.o.d"
  "CMakeFiles/synergy_core.dir/queue.cpp.o"
  "CMakeFiles/synergy_core.dir/queue.cpp.o.d"
  "CMakeFiles/synergy_core.dir/trainer.cpp.o"
  "CMakeFiles/synergy_core.dir/trainer.cpp.o.d"
  "CMakeFiles/synergy_core.dir/tuning_table.cpp.o"
  "CMakeFiles/synergy_core.dir/tuning_table.cpp.o.d"
  "libsynergy_core.a"
  "libsynergy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

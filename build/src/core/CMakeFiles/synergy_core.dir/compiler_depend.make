# Empty compiler generated dependencies file for synergy_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/context.cpp" "src/core/CMakeFiles/synergy_core.dir/context.cpp.o" "gcc" "src/core/CMakeFiles/synergy_core.dir/context.cpp.o.d"
  "/root/repo/src/core/model_store.cpp" "src/core/CMakeFiles/synergy_core.dir/model_store.cpp.o" "gcc" "src/core/CMakeFiles/synergy_core.dir/model_store.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/synergy_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/synergy_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/queue.cpp" "src/core/CMakeFiles/synergy_core.dir/queue.cpp.o" "gcc" "src/core/CMakeFiles/synergy_core.dir/queue.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/synergy_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/synergy_core.dir/trainer.cpp.o.d"
  "/root/repo/src/core/tuning_table.cpp" "src/core/CMakeFiles/synergy_core.dir/tuning_table.cpp.o" "gcc" "src/core/CMakeFiles/synergy_core.dir/tuning_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/synergy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/synergy_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/vendor/CMakeFiles/synergy_vendor.dir/DependInfo.cmake"
  "/root/repo/build/src/simsycl/CMakeFiles/simsycl.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/synergy_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/synergy_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/synergy_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

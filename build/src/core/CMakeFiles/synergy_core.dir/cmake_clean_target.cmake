file(REMOVE_RECURSE
  "libsynergy_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/synergy_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/synergy_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/device_spec.cpp" "src/gpusim/CMakeFiles/synergy_gpusim.dir/device_spec.cpp.o" "gcc" "src/gpusim/CMakeFiles/synergy_gpusim.dir/device_spec.cpp.o.d"
  "/root/repo/src/gpusim/dvfs_model.cpp" "src/gpusim/CMakeFiles/synergy_gpusim.dir/dvfs_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/synergy_gpusim.dir/dvfs_model.cpp.o.d"
  "/root/repo/src/gpusim/kernel_profile.cpp" "src/gpusim/CMakeFiles/synergy_gpusim.dir/kernel_profile.cpp.o" "gcc" "src/gpusim/CMakeFiles/synergy_gpusim.dir/kernel_profile.cpp.o.d"
  "/root/repo/src/gpusim/power_trace.cpp" "src/gpusim/CMakeFiles/synergy_gpusim.dir/power_trace.cpp.o" "gcc" "src/gpusim/CMakeFiles/synergy_gpusim.dir/power_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/synergy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/synergy_gpusim.dir/device.cpp.o"
  "CMakeFiles/synergy_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/synergy_gpusim.dir/device_spec.cpp.o"
  "CMakeFiles/synergy_gpusim.dir/device_spec.cpp.o.d"
  "CMakeFiles/synergy_gpusim.dir/dvfs_model.cpp.o"
  "CMakeFiles/synergy_gpusim.dir/dvfs_model.cpp.o.d"
  "CMakeFiles/synergy_gpusim.dir/kernel_profile.cpp.o"
  "CMakeFiles/synergy_gpusim.dir/kernel_profile.cpp.o.d"
  "CMakeFiles/synergy_gpusim.dir/power_trace.cpp.o"
  "CMakeFiles/synergy_gpusim.dir/power_trace.cpp.o.d"
  "libsynergy_gpusim.a"
  "libsynergy_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergy_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for synergy_gpusim.
# This may be replaced when dependencies are built.

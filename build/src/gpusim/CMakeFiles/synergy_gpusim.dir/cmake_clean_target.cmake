file(REMOVE_RECURSE
  "libsynergy_gpusim.a"
)

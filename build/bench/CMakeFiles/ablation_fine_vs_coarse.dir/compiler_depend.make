# Empty compiler generated dependencies file for ablation_fine_vs_coarse.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_fine_vs_coarse.dir/ablation_fine_vs_coarse.cpp.o"
  "CMakeFiles/ablation_fine_vs_coarse.dir/ablation_fine_vs_coarse.cpp.o.d"
  "ablation_fine_vs_coarse"
  "ablation_fine_vs_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fine_vs_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for extra_size_sensitivity.
# This may be replaced when dependencies are built.

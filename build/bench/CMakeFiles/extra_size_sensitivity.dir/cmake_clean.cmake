file(REMOVE_RECURSE
  "CMakeFiles/extra_size_sensitivity.dir/extra_size_sensitivity.cpp.o"
  "CMakeFiles/extra_size_sensitivity.dir/extra_size_sensitivity.cpp.o.d"
  "extra_size_sensitivity"
  "extra_size_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_size_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

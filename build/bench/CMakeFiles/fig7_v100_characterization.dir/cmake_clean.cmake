file(REMOVE_RECURSE
  "CMakeFiles/fig7_v100_characterization.dir/fig7_v100_characterization.cpp.o"
  "CMakeFiles/fig7_v100_characterization.dir/fig7_v100_characterization.cpp.o.d"
  "fig7_v100_characterization"
  "fig7_v100_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_v100_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_v100_characterization.
# This may be replaced when dependencies are built.

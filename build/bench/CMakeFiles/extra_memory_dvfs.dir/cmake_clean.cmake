file(REMOVE_RECURSE
  "CMakeFiles/extra_memory_dvfs.dir/extra_memory_dvfs.cpp.o"
  "CMakeFiles/extra_memory_dvfs.dir/extra_memory_dvfs.cpp.o.d"
  "extra_memory_dvfs"
  "extra_memory_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_memory_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for extra_memory_dvfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_model_errors.dir/table2_model_errors.cpp.o"
  "CMakeFiles/table2_model_errors.dir/table2_model_errors.cpp.o.d"
  "table2_model_errors"
  "table2_model_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_model_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig8_mi100_characterization.
# This may be replaced when dependencies are built.

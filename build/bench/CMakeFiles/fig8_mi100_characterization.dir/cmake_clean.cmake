file(REMOVE_RECURSE
  "CMakeFiles/fig8_mi100_characterization.dir/fig8_mi100_characterization.cpp.o"
  "CMakeFiles/fig8_mi100_characterization.dir/fig8_mi100_characterization.cpp.o.d"
  "fig8_mi100_characterization"
  "fig8_mi100_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mi100_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig5_energy_metrics.dir/fig5_energy_metrics.cpp.o"
  "CMakeFiles/fig5_energy_metrics.dir/fig5_energy_metrics.cpp.o.d"
  "fig5_energy_metrics"
  "fig5_energy_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_energy_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5_energy_metrics.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_freq_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_freq_overhead.dir/ablation_freq_overhead.cpp.o"
  "CMakeFiles/ablation_freq_overhead.dir/ablation_freq_overhead.cpp.o.d"
  "ablation_freq_overhead"
  "ablation_freq_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_freq_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

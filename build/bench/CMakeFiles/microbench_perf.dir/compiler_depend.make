# Empty compiler generated dependencies file for microbench_perf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/microbench_perf.dir/microbench_perf.cpp.o"
  "CMakeFiles/microbench_perf.dir/microbench_perf.cpp.o.d"
  "microbench_perf"
  "microbench_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

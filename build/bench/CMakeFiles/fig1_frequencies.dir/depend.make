# Empty dependencies file for fig1_frequencies.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig1_frequencies.dir/fig1_frequencies.cpp.o"
  "CMakeFiles/fig1_frequencies.dir/fig1_frequencies.cpp.o.d"
  "fig1_frequencies"
  "fig1_frequencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_frequencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for extra_suite_characterization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/extra_suite_characterization.dir/extra_suite_characterization.cpp.o"
  "CMakeFiles/extra_suite_characterization.dir/extra_suite_characterization.cpp.o.d"
  "extra_suite_characterization"
  "extra_suite_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_suite_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for extra_portability.
# This may be replaced when dependencies are built.

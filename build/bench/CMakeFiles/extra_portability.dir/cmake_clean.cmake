file(REMOVE_RECURSE
  "CMakeFiles/extra_portability.dir/extra_portability.cpp.o"
  "CMakeFiles/extra_portability.dir/extra_portability.cpp.o.d"
  "extra_portability"
  "extra_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

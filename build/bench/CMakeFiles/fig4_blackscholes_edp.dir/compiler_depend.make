# Empty compiler generated dependencies file for fig4_blackscholes_edp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_blackscholes_edp.dir/fig4_blackscholes_edp.cpp.o"
  "CMakeFiles/fig4_blackscholes_edp.dir/fig4_blackscholes_edp.cpp.o.d"
  "fig4_blackscholes_edp"
  "fig4_blackscholes_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_blackscholes_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/bench/support
# Build directory: /root/repo/build/bench/support
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

# Empty dependencies file for test_simsycl.
# This may be replaced when dependencies are built.

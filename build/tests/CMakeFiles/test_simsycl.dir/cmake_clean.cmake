file(REMOVE_RECURSE
  "CMakeFiles/test_simsycl.dir/test_simsycl.cpp.o"
  "CMakeFiles/test_simsycl.dir/test_simsycl.cpp.o.d"
  "test_simsycl"
  "test_simsycl.pdb"
  "test_simsycl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simsycl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

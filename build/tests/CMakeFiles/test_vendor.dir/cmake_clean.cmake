file(REMOVE_RECURSE
  "CMakeFiles/test_vendor.dir/test_vendor.cpp.o"
  "CMakeFiles/test_vendor.dir/test_vendor.cpp.o.d"
  "test_vendor"
  "test_vendor.pdb"
  "test_vendor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vendor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

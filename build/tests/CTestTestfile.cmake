# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_vendor[1]_include.cmake")
include("/root/repo/build/tests/test_simsycl[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;synergy_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_energy_targets]=] "/root/repo/build/examples/energy_targets")
set_tests_properties([=[example_energy_targets]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;synergy_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_multi_queue]=] "/root/repo/build/examples/multi_queue")
set_tests_properties([=[example_multi_queue]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;synergy_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_train_and_deploy]=] "/root/repo/build/examples/train_and_deploy")
set_tests_properties([=[example_train_and_deploy]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;synergy_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cluster_job]=] "/root/repo/build/examples/cluster_job")
set_tests_properties([=[example_cluster_job]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;synergy_add_example;/root/repo/examples/CMakeLists.txt;0;")

# Empty dependencies file for cluster_job.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cluster_job.dir/cluster_job.cpp.o"
  "CMakeFiles/cluster_job.dir/cluster_job.cpp.o.d"
  "cluster_job"
  "cluster_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

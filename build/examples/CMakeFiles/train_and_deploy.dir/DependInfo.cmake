
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/train_and_deploy.cpp" "examples/CMakeFiles/train_and_deploy.dir/train_and_deploy.cpp.o" "gcc" "examples/CMakeFiles/train_and_deploy.dir/train_and_deploy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/synergy_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/synergy_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/synergy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/synergy_features.dir/DependInfo.cmake"
  "/root/repo/build/src/simsycl/CMakeFiles/simsycl.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/synergy_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/synergy_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/vendor/CMakeFiles/synergy_vendor.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/synergy_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/synergy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

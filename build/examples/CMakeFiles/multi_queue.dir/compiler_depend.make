# Empty compiler generated dependencies file for multi_queue.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multi_queue.dir/multi_queue.cpp.o"
  "CMakeFiles/multi_queue.dir/multi_queue.cpp.o.d"
  "multi_queue"
  "multi_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

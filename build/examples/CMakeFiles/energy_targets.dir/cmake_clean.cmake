file(REMOVE_RECURSE
  "CMakeFiles/energy_targets.dir/energy_targets.cpp.o"
  "CMakeFiles/energy_targets.dir/energy_targets.cpp.o.d"
  "energy_targets"
  "energy_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

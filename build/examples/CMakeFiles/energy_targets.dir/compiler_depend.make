# Empty compiler generated dependencies file for energy_targets.
# This may be replaced when dependencies are built.

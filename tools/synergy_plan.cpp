/// synergy_plan — the "compile step" as a command-line tool: load trained
/// models for a device, plan every benchmark kernel for the requested
/// targets, and emit a tuning-table artefact (paper Fig. 3: the compiler
/// makes the predicted frequency configuration available to the runtime).
///
/// Usage: synergy_plan <device> <model-dir> [targets...] [--out <file>]
///        synergy_plan --validate <model-dir> [device...]
///   targets default to: MIN_EDP MIN_ED2P ES_25 ES_50 PL_25 PL_50
///
/// Exit codes: 0 success / clean validation, 1 operational failure
/// (no models, unwritable output), 2 usage error or corrupt model set —
/// the --validate contract CI scripts key on.

#include <fstream>
#include <iostream>
#include <vector>

#include "synergy/synergy.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace sm = synergy::metrics;

namespace {

void print_diagnostics(const synergy::load_result& result) {
  for (const auto& d : result.files) {
    std::cout << "  " << d.file << ": " << synergy::to_string(d.status);
    if (!d.detail.empty()) std::cout << " (" << d.detail << ')';
    std::cout << '\n';
  }
}

/// `synergy_plan --validate <model-dir> [device...]`: verify every model
/// set under the store without using the models. Exit 0 when every file
/// checks out, 2 when anything is corrupt/truncated/version-skewed.
int run_validate(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: synergy_plan --validate <model-dir> [device...]\n";
    return 2;
  }
  synergy::model_store store{argv[2]};
  std::vector<std::string> devices;
  for (int i = 3; i < argc; ++i) devices.emplace_back(argv[i]);
  if (devices.empty()) devices = store.device_keys();
  if (devices.empty()) {
    std::cerr << "error: no model sets under " << store.root().string()
              << " (run synergy_train first)\n";
    return 1;
  }

  bool any_corrupt = false;
  bool all_ok = true;
  for (const auto& device : devices) {
    const auto result = store.validate(device);
    std::cout << device << ": " << (result.ok() ? "ok" : "NOT OK") << '\n';
    print_diagnostics(result);
    any_corrupt = any_corrupt || result.corrupt();
    all_ok = all_ok && result.ok();
  }
  if (any_corrupt) {
    std::cout << "\ncorrupt model files detected: retrain with synergy_train "
                 "(or restore the model directory from backup)\n";
    return 2;
  }
  if (!all_ok) {
    std::cout << "\nincomplete model sets detected: run synergy_train\n";
    return 1;
  }
  std::cout << "\nall model sets verified\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--validate") return run_validate(argc, argv);
  if (argc < 3) {
    std::cerr << "usage: synergy_plan <device> <model-dir> [targets...] [--out <file>]\n"
                 "       synergy_plan --validate <model-dir> [device...]\n";
    return 2;
  }
  try {
    const std::string device = argv[1];
    const std::string model_dir = argv[2];

    std::vector<sm::target> targets;
    std::string out_file;
    try {
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
          out_file = argv[++i];
        } else {
          targets.push_back(sm::target::parse(arg));
        }
      }
    } catch (const std::exception& e) {
      // Malformed target names are usage errors (exit 2), in contrast to
      // the operational failures the outer handler maps to exit 1.
      std::cerr << "error: " << e.what() << '\n'
                << "usage: synergy_plan <device> <model-dir> [targets...] [--out <file>]\n";
      return 2;
    }
    if (targets.empty())
      targets = {sm::MIN_EDP, sm::MIN_ED2P, sm::ES_25, sm::ES_50, sm::PL_25, sm::PL_50};

    const auto spec = synergy::gpusim::make_device_spec(device);
    synergy::model_store store{model_dir};
    // One load, then branch on the structured result — no exists/load races,
    // and corruption is a diagnosis rather than an exception.
    auto loaded = store.load(device);
    if (!loaded.ok()) {
      std::cerr << "error: models for " << device << " under " << model_dir
                << " are not usable:\n";
      for (const auto& d : loaded.files)
        std::cerr << "  " << d.file << ": " << synergy::to_string(d.status)
                  << (d.detail.empty() ? "" : " (" + d.detail + ")") << '\n';
      std::cerr << (loaded.corrupt()
                        ? "retrain with synergy_train (or restore from backup)\n"
                        : "run synergy_train first\n");
      return loaded.corrupt() ? 2 : 1;
    }
    synergy::frequency_planner planner{spec, std::move(loaded.models)};

    synergy::features::kernel_registry registry;
    synergy::workloads::register_all(registry);
    const auto table = synergy::compile_tuning_table(registry, targets, planner, device);

    std::cout << "compiled " << table.size() << " decisions for "
              << registry.size() << " kernels x " << targets.size() << " targets on "
              << spec.name << "\n\n";
    std::cout << "kernel / target / core MHz:\n";
    for (const auto& kernel : table.kernels())
      for (const auto& t : targets)
        std::cout << "  " << kernel << " " << t.to_string() << " "
                  << table.find(kernel, t)->core.value << "\n";

    if (!out_file.empty()) {
      // Sealed + atomic: the artefact carries the CRC envelope and a crash
      // mid-write can never leave a torn file behind.
      if (const auto st = synergy::save_tuning_table(out_file, table); !st.ok()) {
        std::cerr << "error: cannot write " << out_file << ": " << st.err().to_string()
                  << '\n';
        return 1;
      }
      std::cout << "\ntuning table written to " << out_file << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

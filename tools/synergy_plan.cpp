/// synergy_plan — the "compile step" as a command-line tool: load trained
/// models for a device, plan every benchmark kernel for the requested
/// targets, and emit a tuning-table artefact (paper Fig. 3: the compiler
/// makes the predicted frequency configuration available to the runtime).
///
/// Usage: synergy_plan <device> <model-dir> [targets...] [--out <file>]
///   targets default to: MIN_EDP MIN_ED2P ES_25 ES_50 PL_25 PL_50

#include <fstream>
#include <iostream>
#include <vector>

#include "synergy/synergy.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace sm = synergy::metrics;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: synergy_plan <device> <model-dir> [targets...] [--out <file>]\n";
    return 2;
  }
  try {
    const std::string device = argv[1];
    const std::string model_dir = argv[2];

    std::vector<sm::target> targets;
    std::string out_file;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--out" && i + 1 < argc) {
        out_file = argv[++i];
      } else {
        targets.push_back(sm::target::parse(arg));
      }
    }
    if (targets.empty())
      targets = {sm::MIN_EDP, sm::MIN_ED2P, sm::ES_25, sm::ES_50, sm::PL_25, sm::PL_50};

    const auto spec = synergy::gpusim::make_device_spec(device);
    synergy::model_store store{model_dir};
    if (!store.contains(device)) {
      std::cerr << "error: no models for " << device << " under " << model_dir
                << " (run synergy_train first)\n";
      return 1;
    }
    synergy::frequency_planner planner{spec, store.load(device)};

    synergy::features::kernel_registry registry;
    synergy::workloads::register_all(registry);
    const auto table = synergy::compile_tuning_table(registry, targets, planner, device);

    std::cout << "compiled " << table.size() << " decisions for "
              << registry.size() << " kernels x " << targets.size() << " targets on "
              << spec.name << "\n\n";
    std::cout << "kernel / target / core MHz:\n";
    for (const auto& kernel : table.kernels())
      for (const auto& t : targets)
        std::cout << "  " << kernel << " " << t.to_string() << " "
                  << table.find(kernel, t)->core.value << "\n";

    if (!out_file.empty()) {
      std::ofstream out{out_file};
      if (!out) {
        std::cerr << "error: cannot write " << out_file << '\n';
        return 1;
      }
      out << table.serialize();
      std::cout << "\ntuning table written to " << out_file << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

# Smoke test for the CLI deployment workflow: train models, then compile a
# tuning table from them, end to end.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(COMMAND "${TRAIN}" V100 "${WORK_DIR}/models" 16 12
                RESULT_VARIABLE train_result)
if(NOT train_result EQUAL 0)
  message(FATAL_ERROR "synergy_train failed: ${train_result}")
endif()

execute_process(COMMAND "${PLAN}" V100 "${WORK_DIR}/models" ES_50 MIN_EDP
                        --out "${WORK_DIR}/v100.tuning"
                RESULT_VARIABLE plan_result)
if(NOT plan_result EQUAL 0)
  message(FATAL_ERROR "synergy_plan failed: ${plan_result}")
endif()

if(NOT EXISTS "${WORK_DIR}/v100.tuning")
  message(FATAL_ERROR "tuning table was not written")
endif()
file(READ "${WORK_DIR}/v100.tuning" table)
if(NOT table MATCHES "synergy_tuning v1")
  message(FATAL_ERROR "tuning table header missing")
endif()
if(NOT table MATCHES "black_scholes ES_50")
  message(FATAL_ERROR "tuning table missing expected entry")
endif()

# Smoke test for the telemetry export workflow: run a stock workload under
# synergy_trace and check the Chrome trace-event JSON contains spans from
# every instrumented layer (queue, vendor, gpusim device timeline,
# scheduler). With telemetry compiled out the tool must still run and
# produce a well-formed (empty) trace.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(COMMAND "${TRACE}" --out "${WORK_DIR}/trace.json"
                        --csv "${WORK_DIR}/trace.csv"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE trace_result
                OUTPUT_VARIABLE trace_stdout)
if(NOT trace_result EQUAL 0)
  message(FATAL_ERROR "synergy_trace failed: ${trace_result}")
endif()

foreach(artifact trace.json trace.csv)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "${artifact} was not written")
  endif()
endforeach()

file(READ "${WORK_DIR}/trace.json" trace)
if(NOT trace MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "trace.json is not Chrome trace-event JSON")
endif()

if(TELEMETRY STREQUAL "ON")
  # One marker per layer: queue submission span, vendor clock-set instant,
  # gpusim device-timeline process, scheduler job span.
  foreach(marker
          "queue.submit"                     # queue layer (cat kernel)
          "vendor.set_application_clocks"    # vendor layer (cat freq_change)
          "vendor.power_usage"               # vendor layer (cat power_sample)
          "queue.resolve_target"             # planning (cat plan)
          "gpusim device"                    # simulated-device timeline metadata
          "sched.job"                        # scheduler layer (cat sched)
          "cluster \\(virtual time\\)"       # cluster timeline metadata (pid 3)
          "cluster.cap_rebalance")           # power-budget decisions (cat sched)
    if(NOT trace MATCHES "${marker}")
      message(FATAL_ERROR "trace.json is missing '${marker}' events")
    endif()
  endforeach()
  if(NOT trace_stdout MATCHES "queue.submissions")
    message(FATAL_ERROR "metrics summary table missing from synergy_trace output")
  endif()
  # Cluster-simulation metrics must reach the summary: the queue-wait
  # histogram and the cap-rebalance counter.
  foreach(metric "cluster.queue_wait_s" "cluster.cap_rebalances")
    if(NOT trace_stdout MATCHES "${metric}")
      message(FATAL_ERROR "metrics summary missing '${metric}'")
    endif()
  endforeach()
endif()

# Observability acceptance test (ARCHITECTURE.md Sec. 14): replay a faulted +
# drifted 256-GPU trace with the energy-attribution ledger, snapshot exporter,
# and SLO watchdog enabled, then assert
#  - the run emits Prometheus + JSON snapshots and an alerts.jsonl,
#  - synergy_top --check accepts the JSON: schema tag present and the
#    per-cause attribution sums to the ledger total within 0.1%,
#  - the watchdog fired at least one alert (the fault plan wastes energy),
#  - two same-seed runs in separate processes produce byte-identical JSON
#    snapshots (the determinism contract of the exporter),
#  - an unwritable --obs-out path fails fast with a nonzero exit and a
#    diagnostic naming the path, before the simulation runs.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# 64 nodes x 4 GPUs = 256 GPUs; enough jobs to populate the ledger and a
# seeded fault plan so fault_wasted joules (and therefore an alert) appear.
set(common_args --jobs 300 --nodes 64 --gpus 4 --seed 11
                --faults 0.05 --fault-device-lost 0.02 --fault-seed 99 --fault-max-losses 2
                --drift 1.3 --drift-at 40
                --obs-interval 5)

execute_process(COMMAND "${CLUSTER}" ${common_args} --obs-out "${WORK_DIR}/run1"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r1 OUTPUT_VARIABLE out1 ERROR_VARIABLE err1)
if(NOT r1 EQUAL 0)
  message(FATAL_ERROR "observed synergy_cluster run 1 failed (${r1}):\n${out1}\n${err1}")
endif()

execute_process(COMMAND "${CLUSTER}" ${common_args} --obs-out "${WORK_DIR}/run2"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r2 OUTPUT_VARIABLE out2 ERROR_VARIABLE err2)
if(NOT r2 EQUAL 0)
  message(FATAL_ERROR "observed synergy_cluster run 2 failed (${r2}):\n${out2}\n${err2}")
endif()

foreach(f run1.json run1.prom run1.alerts.jsonl run2.json run2.prom)
  if(NOT EXISTS "${WORK_DIR}/${f}")
    message(FATAL_ERROR "expected snapshot artefact missing: ${f}")
  endif()
endforeach()

# Schema + conservation: per-cause attribution reproduces the ledger total
# within 0.1% (exit 2 plus a diagnostic otherwise).
execute_process(COMMAND "${TOP}" --check "${WORK_DIR}/run1.json"
                RESULT_VARIABLE rc OUTPUT_VARIABLE cout ERROR_VARIABLE cerr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "synergy_top --check rejected run1.json (${rc}):\n${cout}${cerr}")
endif()

# The dashboard itself renders from the same document.
execute_process(COMMAND "${TOP}" "${WORK_DIR}/run1.json"
                RESULT_VARIABLE rt OUTPUT_VARIABLE tout)
if(NOT rt EQUAL 0)
  message(FATAL_ERROR "synergy_top render failed (${rt})")
endif()
if(NOT tout MATCHES "J attributed" OR NOT tout MATCHES "cause")
  message(FATAL_ERROR "synergy_top dashboard missing expected sections:\n${tout}")
endif()

# Fault-tagged energy made it into the attribution.
file(READ "${WORK_DIR}/run1.prom" prom1)
if(NOT prom1 MATCHES "synergy_energy_total_joules")
  message(FATAL_ERROR "Prometheus rendering missing synergy_energy_total_joules")
endif()
# With -DSYNERGY_TELEMETRY=OFF the charge sites compile to nothing, so the
# ledger legitimately attributes zero joules and the wasted-energy rule has
# nothing to fire on; the structural contracts above and the determinism /
# exit-code contracts below still hold.
if(TELEMETRY STREQUAL "ON")
  if(NOT prom1 MATCHES "cause=\"fault_wasted\"")
    message(FATAL_ERROR "faulted replay attributed no fault_wasted energy")
  endif()

  # The watchdog fired: alerts.jsonl is non-empty and correlates to the fault
  # plan (the built-in wasted_energy_j rule watches exactly that cause).
  file(READ "${WORK_DIR}/run1.alerts.jsonl" alerts1)
  if(alerts1 STREQUAL "")
    message(FATAL_ERROR "no SLO alert fired during the faulted replay")
  endif()
  if(NOT alerts1 MATCHES "wasted_energy_j")
    message(FATAL_ERROR "alerts.jsonl lacks the fault-correlated rule:\n${alerts1}")
  endif()
endif()

# Determinism: same seed, separate processes, byte-identical JSON documents.
file(READ "${WORK_DIR}/run1.json" json1)
file(READ "${WORK_DIR}/run2.json" json2)
if(NOT json1 STREQUAL json2)
  message(FATAL_ERROR "snapshot JSON differs across same-seed replays")
endif()

# Unwritable --obs-out: a regular file where a parent directory is needed
# (the atomic writer creates missing directories, so a plain missing dir is
# writable). Must exit nonzero, name the path, and fail before simulating.
file(WRITE "${WORK_DIR}/blocker" "not a directory")
execute_process(COMMAND "${CLUSTER}" --jobs 5 --nodes 2 --gpus 2 --seed 3
                        --obs-out "${WORK_DIR}/blocker/snap"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rb OUTPUT_VARIABLE bout ERROR_VARIABLE berr)
if(rb EQUAL 0)
  message(FATAL_ERROR "unwritable --obs-out did not fail")
endif()
if(NOT berr MATCHES "blocker")
  message(FATAL_ERROR "unwritable --obs-out diagnostic does not name the path:\n${berr}")
endif()

/// synergy_top — terminal dashboard over an observability snapshot.
///
/// Reads the JSON document `synergy_cluster --obs-out PREFIX` (or
/// synergy_trace) rewrites on every scrape tick and renders the
/// energy-attribution ledger the way `top` renders processes: totals,
/// per-cause shares, the hungriest nodes, and the tail of fired SLO alerts.
/// Because the exporter writes atomically, a `--watch` loop never sees a
/// torn document — either the previous snapshot or the next one.
///
/// Usage: synergy_top SNAPSHOT.json [options]
///   --watch S        re-read and re-render every S wall seconds
///   --iterations N   stop after N renders (default: 1, or unbounded
///                    with --watch)
///   --top K          rows in the per-node table (default 8)
///   --no-clear       do not clear the screen between renders
///   --check          validate instead of render: schema tag, required
///                    sections, per-cause attribution summing to the
///                    ledger total within 0.1%, and — when the exporter ran
///                    with --econ — the cost/carbon cause splits summing to
///                    their attributed totals under the same tolerance;
///                    exit 0 when sound, 2 on a violation, 1 on a
///                    read/parse error
///
/// Usage errors (unknown flag, malformed value, missing path) print the
/// usage line to stderr and exit 2.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "synergy/obs/json.hpp"
#include "synergy/obs/snapshot.hpp"

namespace obs = synergy::obs;

namespace {

constexpr const char* k_schema = "synergy.obs.snapshot/v1";

int usage(int code) {
  (code ? std::cerr : std::cout)
      << "usage: synergy_top SNAPSHOT.json [--watch S] [--iterations N]\n"
         "                   [--top K] [--no-clear] [--check]\n";
  return code;
}

bool read_file(const std::string& path, std::string& out, std::string& err) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    err = "cannot read " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  out = text.str();
  return true;
}

/// Validate one snapshot document. Returns 0 when sound; fills `why` and
/// returns 2 on a structural or conservation violation.
int check_snapshot(const obs::json::value& doc, std::string& why) {
  const auto fail = [&](std::string msg) {
    why = std::move(msg);
    return 2;
  };
  if (!doc.is_object()) return fail("top-level value is not an object");
  if (doc.string_or("schema", "") != k_schema)
    return fail("schema is not \"" + std::string{k_schema} + "\"");
  const obs::json::value* ledger = doc.find("ledger");
  if (!ledger || !ledger->is_object()) return fail("missing \"ledger\" object");
  for (const char* key : {"alerts", "metrics"}) {
    const obs::json::value* v = doc.find(key);
    if (!v || !v->is_array()) return fail("missing \"" + std::string{key} + "\" array");
  }
  const obs::json::value* by_cause = ledger->find("by_cause");
  if (!by_cause || !by_cause->is_object()) return fail("missing \"ledger.by_cause\" object");
  const obs::json::value* entries = ledger->find("entries");
  if (!entries || !entries->is_array()) return fail("missing \"ledger.entries\" array");

  const double total = ledger->number_or("total_j", -1.0);
  if (total < 0.0) return fail("missing or negative \"ledger.total_j\"");

  // The acceptance contract: every attributed joule lands in exactly one
  // cause bucket, so the cause totals must reproduce the ledger total to
  // within 0.1% (float accumulation is the only slack).
  double cause_sum = 0.0;
  for (const auto& [name, v] : by_cause->as_object()) {
    if (!v.is_number()) return fail("by_cause[\"" + name + "\"] is not a number");
    if (v.as_number() < 0.0) return fail("by_cause[\"" + name + "\"] is negative");
    cause_sum += v.as_number();
  }
  const double tolerance = 1e-3 * std::max(total, 1e-9);
  if (std::abs(cause_sum - total) > tolerance)
    return fail("by_cause sums to " + obs::format_double(cause_sum) +
                " J but ledger.total_j is " + obs::format_double(total) +
                " J (off by more than 0.1%)");

  double entry_sum = 0.0;
  for (const auto& e : entries->as_array()) {
    if (!e.is_object()) return fail("ledger.entries element is not an object");
    for (const char* key : {"node", "device", "job", "kernel"}) {
      const obs::json::value* v = e.find(key);
      if (!v || !v->is_string())
        return fail("ledger entry missing string field \"" + std::string{key} + "\"");
    }
    entry_sum += e.number_or("total_j", 0.0);
  }
  if (std::abs(entry_sum - total) > tolerance)
    return fail("ledger.entries sum to " + obs::format_double(entry_sum) +
                " J but ledger.total_j is " + obs::format_double(total) + " J");

  // The econ block is optional (exporter ran with --econ); when present its
  // cause splits carry the same conservation contract as the ledger.
  if (const obs::json::value* econ = doc.find("econ"); econ) {
    if (!econ->is_object()) return fail("\"econ\" is not an object");
    const auto check_split = [&](const char* split, const char* total_key,
                                 const char* unit) -> int {
      const obs::json::value* by = econ->find(split);
      if (!by || !by->is_object())
        return fail("missing \"econ." + std::string{split} + "\" object");
      const double attributed = econ->number_or(total_key, -1.0);
      if (attributed < 0.0)
        return fail("missing or negative \"econ." + std::string{total_key} + "\"");
      double sum = 0.0;
      for (const auto& [name, v] : by->as_object()) {
        if (!v.is_number())
          return fail("econ." + std::string{split} + "[\"" + name + "\"] is not a number");
        if (v.as_number() < 0.0)
          return fail("econ." + std::string{split} + "[\"" + name + "\"] is negative");
        sum += v.as_number();
      }
      const double tol = 1e-3 * std::max(attributed, 1e-9);
      if (std::abs(sum - attributed) > tol)
        return fail("econ." + std::string{split} + " sums to " + obs::format_double(sum) +
                    " " + unit + " but econ." + total_key + " is " +
                    obs::format_double(attributed) + " " + unit + " (off by more than 0.1%)");
      return 0;
    };
    if (const int rc = check_split("cost_by_cause", "attributed_cost_usd", "USD"); rc != 0)
      return rc;
    if (const int rc = check_split("carbon_by_cause", "attributed_carbon_g", "g"); rc != 0)
      return rc;
  }
  return 0;
}

std::string fixed1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

void render(const obs::json::value& doc, const obs::json::value* prev, std::size_t top_k,
            std::ostream& out) {
  const obs::json::value* ledger = doc.find("ledger");
  const double total = ledger ? ledger->number_or("total_j", 0.0) : 0.0;
  const double charges = ledger ? ledger->number_or("charges", 0.0) : 0.0;
  const double seq = doc.number_or("sequence", 0.0);

  out << "synergy_top — " << doc.string_or("source", "?") << "  seq "
      << static_cast<std::uint64_t>(seq) << "  t=" << fixed1(doc.number_or("time_s", 0.0))
      << "s\n";
  out << "energy: " << fixed3(total) << " J attributed across "
      << static_cast<std::uint64_t>(charges) << " charge(s)";
  if (prev) {
    const obs::json::value* pl = prev->find("ledger");
    const double dt = doc.number_or("time_s", 0.0) - prev->number_or("time_s", 0.0);
    const double de = total - (pl ? pl->number_or("total_j", 0.0) : 0.0);
    out << "   Δ+" << fixed3(de) << " J";
    if (dt > 0.0) out << " (" << fixed1(de / dt) << " W avg)";
    out << " since seq " << static_cast<std::uint64_t>(prev->number_or("sequence", 0.0));
  }
  out << "\n\n";

  if (const obs::json::value* by_cause = ledger ? ledger->find("by_cause") : nullptr;
      by_cause && by_cause->is_object()) {
    std::vector<std::pair<std::string, double>> causes;
    for (const auto& [name, v] : by_cause->as_object())
      if (v.is_number() && v.as_number() > 0.0) causes.emplace_back(name, v.as_number());
    std::sort(causes.begin(), causes.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    out << "  cause                   joules    share\n";
    for (const auto& [name, j] : causes) {
      const obs::json::value* pv =
          prev && prev->find("ledger") ? prev->find("ledger")->find("by_cause") : nullptr;
      const double dj = j - (pv ? pv->number_or(name, 0.0) : j);
      out << "  " << name << std::string(name.size() < 20 ? 20 - name.size() : 1, ' ')
          << fixed3(j) << "  " << fixed1(total > 0.0 ? 100.0 * j / total : 0.0) << "%";
      if (prev && dj != 0.0) out << "  Δ+" << fixed3(dj);
      out << '\n';
    }
    if (causes.empty()) out << "  (no energy attributed yet)\n";
    out << '\n';
  }

  if (const obs::json::value* entries = ledger ? ledger->find("entries") : nullptr;
      entries && entries->is_array() && !entries->as_array().empty()) {
    std::map<std::string, double> by_node;
    for (const auto& e : entries->as_array())
      by_node[e.string_or("node", "?")] += e.number_or("total_j", 0.0);
    std::vector<std::pair<std::string, double>> nodes{by_node.begin(), by_node.end()};
    std::sort(nodes.begin(), nodes.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    out << "  node                    joules    share   (top " << top_k << " of "
        << nodes.size() << ")\n";
    for (std::size_t i = 0; i < std::min(top_k, nodes.size()); ++i)
      out << "  " << nodes[i].first
          << std::string(nodes[i].first.size() < 20 ? 20 - nodes[i].first.size() : 1, ' ')
          << fixed3(nodes[i].second) << "  "
          << fixed1(total > 0.0 ? 100.0 * nodes[i].second / total : 0.0) << "%\n";
    out << '\n';
  }

  if (const obs::json::value* econ = doc.find("econ"); econ && econ->is_object()) {
    out << "econ: $" << fixed3(econ->number_or("cost_usd", 0.0)) << " total (capex $"
        << fixed3(econ->number_or("capex_usd", 0.0)) << "), "
        << fixed1(econ->number_or("carbon_g", 0.0)) << " gCO2   per job: $"
        << fixed3(econ->number_or("cost_per_job_usd", 0.0)) << " / "
        << fixed1(econ->number_or("carbon_per_job_g", 0.0)) << " g\n";
    const obs::json::value* cost_by = econ->find("cost_by_cause");
    const obs::json::value* carbon_by = econ->find("carbon_by_cause");
    if (cost_by && cost_by->is_object()) {
      std::vector<std::pair<std::string, double>> rows;
      for (const auto& [name, v] : cost_by->as_object())
        if (v.is_number() && v.as_number() > 0.0) rows.emplace_back(name, v.as_number());
      std::sort(rows.begin(), rows.end(),
                [](const auto& a, const auto& b) { return a.second > b.second; });
      const double attributed = econ->number_or("attributed_cost_usd", 0.0);
      if (!rows.empty()) out << "  cause                 cost_usd    share  carbon_g\n";
      for (const auto& [name, usd] : rows) {
        out << "  " << name << std::string(name.size() < 20 ? 20 - name.size() : 1, ' ')
            << fixed3(usd) << "  "
            << fixed1(attributed > 0.0 ? 100.0 * usd / attributed : 0.0) << "%  "
            << fixed1(carbon_by && carbon_by->is_object() ? carbon_by->number_or(name, 0.0)
                                                          : 0.0)
            << '\n';
      }
      if (rows.empty()) out << "  (no cost attributed yet)\n";
    }
    out << '\n';
  }

  if (const obs::json::value* alerts = doc.find("alerts"); alerts && alerts->is_array()) {
    const auto& a = alerts->as_array();
    out << "alerts: " << a.size() << " fired";
    if (!a.empty()) {
      out << " (last " << std::min<std::size_t>(5, a.size()) << ")";
      out << '\n';
      for (std::size_t i = a.size() > 5 ? a.size() - 5 : 0; i < a.size(); ++i)
        out << "  t=" << fixed1(a[i].number_or("t_s", 0.0)) << "s  "
            << a[i].string_or("kind", "?") << " = " << fixed3(a[i].number_or("value", 0.0))
            << "  (rule: " << a[i].string_or("rule", "?") << ")\n";
    } else {
      out << '\n';
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  double watch_s = 0.0;
  long long iterations = -1;
  std::size_t top_k = 8;
  bool clear = true;
  bool check = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--watch") watch_s = std::stod(value());
      else if (arg == "--iterations") iterations = std::stoll(value());
      else if (arg == "--top") top_k = std::stoul(value());
      else if (arg == "--no-clear") clear = false;
      else if (arg == "--check") check = true;
      else if (arg == "--help" || arg == "-h") return usage(0);
      else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "error: unknown argument " << arg << '\n';
        return usage(2);
      } else if (path.empty()) path = arg;
      else {
        std::cerr << "error: more than one snapshot path\n";
        return usage(2);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return usage(2);
  }
  if (path.empty()) return usage(2);
  if (iterations < 0) iterations = watch_s > 0.0 ? -1 : 1;

  obs::json::value prev;
  bool have_prev = false;
  for (long long n = 0; iterations < 0 || n < iterations; ++n) {
    std::string text;
    std::string err;
    if (!read_file(path, text, err)) {
      std::cerr << "error: " << err << '\n';
      return 1;
    }
    auto doc = obs::json::parse(text);
    if (!doc.has_value()) {
      std::cerr << "error: " << path << ": " << doc.err().to_string() << '\n';
      return 1;
    }

    if (check) {
      std::string why;
      if (const int rc = check_snapshot(doc.value(), why); rc != 0) {
        std::cerr << "check failed: " << path << ": " << why << '\n';
        return rc;
      }
      std::cout << path << ": ok (schema " << k_schema << ", "
                << obs::format_double(doc.value().find("ledger")->number_or("total_j", 0.0))
                << " J attributed)\n";
      return 0;
    }

    if (clear && watch_s > 0.0) std::cout << "\x1b[2J\x1b[H";
    render(doc.value(), have_prev ? &prev : nullptr, top_k, std::cout);
    std::cout.flush();
    prev = std::move(doc.value());
    have_prev = true;

    if (watch_s > 0.0 && (iterations < 0 || n + 1 < iterations))
      std::this_thread::sleep_for(std::chrono::duration<double>(watch_s));
    else if (watch_s <= 0.0)
      break;
  }
  return 0;
}

/// synergy_train — train the four per-metric frequency models for a device
/// from the micro-benchmark suite and persist them to a model store
/// (the administrator step of the paper's deployment workflow, Sec. 3.2).
///
/// Usage: synergy_train <device> <output-dir> [n_microbenchmarks] [freq_samples]

#include <cstdlib>
#include <iostream>

#include "synergy/synergy.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: synergy_train <device> <output-dir> [n_microbenchmarks]"
                 " [freq_samples]\n"
                 "  device: V100 | A100 | MI100 | PVC\n";
    return 2;
  }
  try {
    const std::string device = argv[1];
    const std::string out_dir = argv[2];

    synergy::trainer_options opt;
    if (argc > 3) opt.n_microbenchmarks = static_cast<std::size_t>(std::atoi(argv[3]));
    if (argc > 4) opt.freq_samples = static_cast<std::size_t>(std::atoi(argv[4]));

    const auto spec = synergy::gpusim::make_device_spec(device);
    std::cout << "training on " << spec.name << ": " << opt.n_microbenchmarks
              << " micro-benchmarks x " << opt.freq_samples << " clocks x "
              << opt.repetitions << " repetitions\n";

    synergy::model_trainer trainer{spec, opt};
    const auto suite = trainer.generate_microbenchmarks();
    const auto sets = trainer.measure(suite);
    std::cout << "training set: " << sets.time.size() << " samples, "
              << sets.time.x.cols() << " inputs\n";

    const auto models = trainer.fit(sets, synergy::ml::algorithm::linear,
                                    synergy::ml::algorithm::random_forest,
                                    synergy::ml::algorithm::random_forest,
                                    synergy::ml::algorithm::linear);

    synergy::model_store store{out_dir};
    if (const auto st = store.save(device, models); !st.ok()) {
      std::cerr << "error: cannot persist models: " << st.err().to_string() << '\n';
      return 1;
    }
    std::cout << "models written to " << out_dir << "/" << device << "/ ("
              << models.time->name() << " time, " << models.energy->name() << " energy, "
              << models.edp->name() << " EDP, " << models.ed2p->name() << " ED2P)\n";
    std::cout << "feature envelope: " << models.envelope.samples()
              << " training vectors x " << models.envelope.dims()
              << " dims (the planner's out-of-distribution rail)\n";
    std::cout << "verify any installed copy with: synergy_plan --validate " << out_dir
              << '\n';
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

/// synergy_cluster — run the discrete-event cluster simulator on a job
/// trace and print throughput / makespan / queue-wait / energy metrics.
///
/// The trace is either generated (Poisson arrivals over the 23-kernel
/// suite, seeded — same seed, same bytes) or loaded from a CSV written by
/// --trace-out, so any run can be replayed bit-identically. The summary CSV
/// starts with a `# seed=... policy=...` comment naming the trace that
/// produced it.
///
/// Usage: synergy_cluster [options]
///   --nodes N              cluster nodes (default 16)
///   --gpus N               GPUs per node (default 4)
///   --device NAME          device spec (default V100)
///   --policy NAME          fifo | backfill | energy (default energy)
///   --models DIR           resolve the energy policy through trained models
///                          from this store, behind the prediction
///                          guardrails (model -> tuning table -> default);
///                          a corrupt/missing set degrades, never aborts
///   --target NAME          override every job's energy target (e.g. ES_50)
///   --cap W                facility power cap in watts (0 = uncapped)
///   --jobs N               generated trace length (default 1000)
///   --seed S               generator seed (default 42)
///   --mean-interarrival S  mean seconds between arrivals (default 2)
///   --work-items N         work items per kernel launch (default 2^28)
///   --trace-in FILE        replay this trace CSV instead of generating
///   --trace-out FILE       write the trace CSV for later replay
///   --csv FILE             write the summary CSV ("-" for stdout)
///   --report               also print the per-job sacct-style table
///   --faults R             inject clock-set failures + power-read dropouts
///                          at rate R (per placement / per completion)
///   --fault-device-lost R  device-lost rate per placement (node drained,
///                          jobs requeued)
///   --fault-max-losses N   cap on nodes the fault plan may kill
///   --fault-seed S         fault-plan RNG seed (default 0xfa0175eed)

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "synergy/cluster/simulator.hpp"

namespace sc = synergy::cluster;
namespace sm = synergy::metrics;

namespace {

int usage(int code) {
  (code ? std::cerr : std::cout)
      << "usage: synergy_cluster [--nodes N] [--gpus N] [--device D]\n"
         "                       [--policy fifo|backfill|energy] [--models DIR]\n"
         "                       [--target T]\n"
         "                       [--cap W] [--jobs N] [--seed S]\n"
         "                       [--mean-interarrival S] [--work-items N]\n"
         "                       [--trace-in F] [--trace-out F] [--csv F] [--report]\n"
         "                       [--faults R] [--fault-device-lost R]\n"
         "                       [--fault-max-losses N] [--fault-seed S]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  sc::cluster_config cluster;
  sc::trace_config gen;
  std::string policy = "energy";
  std::string model_dir;
  std::optional<sm::target> override_target;
  std::string trace_in;
  std::string trace_out;
  std::string csv_file;
  bool report = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--nodes") cluster.n_nodes = std::stoul(value());
      else if (arg == "--gpus") cluster.gpus_per_node = std::stoul(value());
      else if (arg == "--device") cluster.device = value();
      else if (arg == "--policy") policy = value();
      else if (arg == "--models") model_dir = value();
      else if (arg == "--target") override_target = sm::target::parse(value());
      else if (arg == "--cap") cluster.facility_cap_w = std::stod(value());
      else if (arg == "--jobs") gen.n_jobs = std::stoul(value());
      else if (arg == "--seed") gen.seed = std::stoull(value());
      else if (arg == "--mean-interarrival") gen.mean_interarrival_s = std::stod(value());
      else if (arg == "--work-items") gen.work_items = std::stod(value());
      else if (arg == "--trace-in") trace_in = value();
      else if (arg == "--trace-out") trace_out = value();
      else if (arg == "--csv") csv_file = value();
      else if (arg == "--report") report = true;
      else if (arg == "--faults") {
        const double r = std::stod(value());
        if (r < 0.0 || r > 1.0) throw std::invalid_argument("--faults rate out of [0,1]");
        cluster.faults.clock_set_fail_rate = r;
        cluster.faults.power_read_dropout_rate = r;
      } else if (arg == "--fault-device-lost") {
        const double r = std::stod(value());
        if (r < 0.0 || r > 1.0)
          throw std::invalid_argument("--fault-device-lost rate out of [0,1]");
        cluster.faults.device_lost_rate = r;
      } else if (arg == "--fault-max-losses") cluster.faults.max_node_losses = std::stoul(value());
      else if (arg == "--fault-seed") cluster.faults.seed = std::stoull(value());
      else if (arg == "--help" || arg == "-h") return usage(0);
      else {
        std::cerr << "error: unknown argument " << arg << '\n';
        return usage(1);
      }
    }

    sc::job_trace trace;
    if (!trace_in.empty()) {
      std::ifstream in{trace_in};
      if (!in) {
        std::cerr << "error: cannot read " << trace_in << '\n';
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      trace = sc::job_trace::from_csv(text.str());
    } else {
      trace = sc::generate_trace(gen);
    }
    if (!trace_out.empty()) {
      std::ofstream out{trace_out};
      if (!out) {
        std::cerr << "error: cannot write " << trace_out << '\n';
        return 1;
      }
      out << trace.to_csv();
      std::cout << "trace written to " << trace_out << " (seed " << trace.seed << ")\n";
    }

    sc::plan_fn plan;
    if (policy == "energy" || policy == "energy-aware") {
      if (!model_dir.empty()) {
        auto guarded = sc::make_guarded_suite_planner(cluster.device, model_dir);
        std::cout << "model tier: "
                  << (guarded.model_loaded ? "active" : "degraded (tuning-table fallback)")
                  << '\n';
        if (!guarded.load_summary.empty()) std::cout << guarded.load_summary;
        plan = std::move(guarded.plan);
      } else {
        plan = sc::make_suite_planner(cluster.device);
      }
    }
    sc::simulator sim{cluster, sc::make_policy(policy, std::move(plan), override_target)};
    const auto summary = sim.run(trace);

    if (report) {
      sim.report(std::cout);
      std::cout << '\n';
    }
    summary.print(std::cout);

    if (!csv_file.empty()) {
      if (csv_file == "-") {
        std::cout << '\n';
        summary.csv(std::cout);
      } else {
        std::ofstream out{csv_file};
        if (!out) {
          std::cerr << "error: cannot write " << csv_file << '\n';
          return 1;
        }
        summary.csv(out);
        std::cout << "summary csv written to " << csv_file << '\n';
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

/// synergy_cluster — run the discrete-event cluster simulator on a job
/// trace and print throughput / makespan / queue-wait / energy metrics.
///
/// The trace is either generated (Poisson arrivals over the 23-kernel
/// suite, seeded — same seed, same bytes) or loaded from a CSV written by
/// --trace-out, so any run can be replayed bit-identically. The summary CSV
/// starts with a `# seed=... policy=...` comment naming the trace that
/// produced it.
///
/// Usage: synergy_cluster [options]
///   --nodes N              cluster nodes (default 16)
///   --gpus N               GPUs per node (default 4)
///   --device NAME          device spec (default V100)
///   --policy NAME          fifo | backfill | energy | cost (default energy;
///                          cost extends energy with price-aware deferral
///                          and clock demotion, and requires --econ)
///   --models DIR           resolve the energy policy through trained models
///                          from this store, behind the prediction
///                          guardrails (model -> tuning table -> default);
///                          a corrupt/missing set degrades, never aborts
///   --target NAME          override every job's energy target (e.g. ES_50)
///   --cap W                facility power cap in watts (0 = uncapped)
///   --jobs N               generated trace length (default 1000)
///   --seed S               generator seed (default 42)
///   --mean-interarrival S  mean seconds between arrivals (default 2)
///   --work-items N         work items per kernel launch (default 2^28)
///   --trace-in FILE        replay this trace CSV instead of generating
///   --trace-out FILE       write the trace CSV for later replay
///   --csv FILE             write the summary CSV ("-" for stdout)
///   --report               also print the per-job sacct-style table
///   --faults R             inject clock-set failures + power-read dropouts
///                          at rate R (per placement / per completion)
///   --fault-device-lost R  device-lost rate per placement (node drained,
///                          jobs requeued)
///   --fault-max-losses N   cap on nodes the fault plan may kill
///   --fault-seed S         fault-plan RNG seed (default 0xfa0175eed)
///   --drift SKEW           multiply modelled GPU power by SKEW mid-run
///   --drift-at S           drift onset on the cluster timeline (seconds)
///   --drift-gamma G        clock-dependent drift component: the multiplier
///                          becomes SKEW * (core/default)^G, which changes
///                          the boards' frequency response and invalidates
///                          the trained models (the drift monitor trips)
///   --lifecycle DIR        close the loop: follow the drift quarantine with
///                          an automatic retrain + shadow evaluation +
///                          promotion/rollback, persisting the version
///                          history to DIR (requires --models and the
///                          energy policy)
///   --lifecycle-history    print the lifecycle decision log after the run
///   --obs-out PREFIX       export the observability plane: PREFIX.json and
///                          PREFIX.prom snapshots (rewritten atomically on
///                          every scrape tick, so `synergy_top --watch` can
///                          follow along) plus PREFIX.alerts.jsonl with one
///                          line per fired SLO alert
///   --obs-interval S       virtual seconds between scrape ticks (default 5)
///   --slo-rules FILE       watchdog rule file (one `<kind> > <threshold>
///                          [window N]` per line); default: built-in rules
///                          for wasted energy, energy-per-job regression,
///                          quarantine dwell, (with --models) fallback
///                          ratio, and (with --econ) cost/carbon-per-job
///                          regression
///   --econ                 price every joule: synthetic diurnal electricity
///                          price and carbon traces seeded from --seed (or
///                          the files below), a cost/carbon breakdown in the
///                          summary and snapshots, and amortised capex
///   --econ-period S        period of the synthetic diurnal traces in
///                          virtual seconds (default 240; expensive first
///                          half, cheap second half)
///   --price-trace FILE     electricity price trace CSV ($/kWh step series;
///                          `# synergy-econ-trace v1 kind=price ...` header);
///                          requires --econ
///   --carbon-trace FILE    carbon intensity trace CSV (gCO2/kWh);
///                          requires --econ
///   --capex RATE           amortised capital cost per node-hour in USD
///                          (default 0 = opex-only view); requires --econ
///   --deferrable FRAC      fraction of generated jobs marked deferrable
///                          (price-shiftable by the cost policy; default 0)
///   --governor SPEC        run every placed job under a reactive governor:
///                          conservative | ondemand | powercap_tracker, or
///                          hybrid[-<policy>] to seed from the planner's
///                          prediction; append :key=val,... for tunables
///                          (e.g. hybrid:deadband=0.05)
///   --governor-tick S      governor poll cadence in virtual seconds
///                          (default 0.25)
///   --chaos-mtbf S         node-level chaos: mean virtual seconds between
///                          whole-node crashes (exponentially distributed)
///   --chaos-restart S      outage before a crashed node warm-restarts
///                          (0 = crashed nodes never return)
///   --chaos-max N          cap on crash events for the run (default 0 = off)
///   --chaos-seed S         chaos RNG seed (default 0xc4a05c4a05)
///   --checkpoint-dir DIR   write sealed ckpt-NNNNNN.synergy artefacts here
///   --checkpoint-interval S  checkpoint cadence on the virtual clock
///                          (requires --checkpoint-dir)
///   --resume               restore the latest checkpoint in --checkpoint-dir
///                          and continue the replay; the final outputs are
///                          byte-identical to the uninterrupted run. The
///                          trace and every replay flag (policy, faults,
///                          chaos, obs) must match the exporting run.
///   --crash-at S           crash-injection harness: _Exit(42) at this
///                          virtual time (tests only)
///                          Checkpointing excludes --governor/--lifecycle:
///                          their in-memory state is not serialisable.
///
/// Exit status: 0 on success, 1 on operational failure (unreadable files,
/// corrupt/missing checkpoints, simulation errors), 2 on a usage error
/// (unknown flag, malformed value, incompatible flag combination), 42 when
/// an injected --crash-at fired.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "synergy/cluster/checkpoint.hpp"
#include "synergy/cluster/simulator.hpp"
#include "synergy/econ/tco.hpp"
#include "synergy/econ/trace.hpp"
#include "synergy/plan_service.hpp"
#include "synergy/governor/governor.hpp"
#include "synergy/guarded_planner.hpp"
#include "synergy/lifecycle/lifecycle_manager.hpp"
#include "synergy/obs/slo_watchdog.hpp"
#include "synergy/obs/snapshot.hpp"

namespace sc = synergy::cluster;
namespace sm = synergy::metrics;

namespace {

int usage(int code) {
  (code ? std::cerr : std::cout)
      << "usage: synergy_cluster [--nodes N] [--gpus N] [--device D]\n"
         "                       [--policy fifo|backfill|energy|cost] [--models DIR]\n"
         "                       [--target T]\n"
         "                       [--cap W] [--jobs N] [--seed S]\n"
         "                       [--mean-interarrival S] [--work-items N]\n"
         "                       [--trace-in F] [--trace-out F] [--csv F] [--report]\n"
         "                       [--faults R] [--fault-device-lost R]\n"
         "                       [--fault-max-losses N] [--fault-seed S]\n"
         "                       [--drift SKEW] [--drift-at S] [--drift-gamma G]\n"
         "                       [--lifecycle DIR] [--lifecycle-history]\n"
         "                       [--obs-out PREFIX] [--obs-interval S]\n"
         "                       [--slo-rules FILE]\n"
         "                       [--governor SPEC] [--governor-tick S]\n"
         "                       [--chaos-mtbf S] [--chaos-restart S] [--chaos-max N]\n"
         "                       [--chaos-seed S]\n"
         "                       [--checkpoint-dir DIR] [--checkpoint-interval S]\n"
         "                       [--resume] [--crash-at S]\n"
         "                       [--econ] [--econ-period S] [--price-trace F]\n"
         "                       [--carbon-trace F] [--capex RATE] [--deferrable FRAC]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  sc::cluster_config cluster;
  sc::trace_config gen;
  std::string policy = "energy";
  std::string model_dir;
  std::optional<sm::target> override_target;
  std::string trace_in;
  std::string trace_out;
  std::string csv_file;
  std::string lifecycle_dir;
  bool lifecycle_history = false;
  bool report = false;
  std::string obs_out;
  double obs_interval = 5.0;
  std::string slo_rules_file;
  std::string governor_arg;
  double governor_tick = 0.25;
  std::string ckpt_dir;
  double ckpt_interval = 0.0;
  bool do_resume = false;
  double crash_at = -1.0;
  bool econ_on = false;
  double econ_period = 240.0;
  std::string price_trace_file;
  std::string carbon_trace_file;
  double capex = 0.0;

  // Parse phase: any malformed flag or value is a usage error (exit 2);
  // operational failures below exit 1.
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--nodes") cluster.n_nodes = std::stoul(value());
      else if (arg == "--gpus") cluster.gpus_per_node = std::stoul(value());
      else if (arg == "--device") cluster.device = value();
      else if (arg == "--policy") policy = value();
      else if (arg == "--models") model_dir = value();
      else if (arg == "--target") override_target = sm::target::parse(value());
      else if (arg == "--cap") cluster.facility_cap_w = std::stod(value());
      else if (arg == "--jobs") gen.n_jobs = std::stoul(value());
      else if (arg == "--seed") gen.seed = std::stoull(value());
      else if (arg == "--mean-interarrival") gen.mean_interarrival_s = std::stod(value());
      else if (arg == "--work-items") gen.work_items = std::stod(value());
      else if (arg == "--trace-in") trace_in = value();
      else if (arg == "--trace-out") trace_out = value();
      else if (arg == "--csv") csv_file = value();
      else if (arg == "--report") report = true;
      else if (arg == "--faults") {
        const double r = std::stod(value());
        if (r < 0.0 || r > 1.0) throw std::invalid_argument("--faults rate out of [0,1]");
        cluster.faults.clock_set_fail_rate = r;
        cluster.faults.power_read_dropout_rate = r;
      } else if (arg == "--fault-device-lost") {
        const double r = std::stod(value());
        if (r < 0.0 || r > 1.0)
          throw std::invalid_argument("--fault-device-lost rate out of [0,1]");
        cluster.faults.device_lost_rate = r;
      } else if (arg == "--fault-max-losses") cluster.faults.max_node_losses = std::stoul(value());
      else if (arg == "--fault-seed") cluster.faults.seed = std::stoull(value());
      else if (arg == "--drift") cluster.drift.power_skew = std::stod(value());
      else if (arg == "--drift-at") cluster.drift.at_s = std::stod(value());
      else if (arg == "--drift-gamma") cluster.drift.freq_exponent = std::stod(value());
      else if (arg == "--lifecycle") lifecycle_dir = value();
      else if (arg == "--lifecycle-history") lifecycle_history = true;
      else if (arg == "--obs-out") obs_out = value();
      else if (arg == "--obs-interval") obs_interval = std::stod(value());
      else if (arg == "--slo-rules") slo_rules_file = value();
      else if (arg == "--governor") governor_arg = value();
      else if (arg == "--governor-tick") governor_tick = std::stod(value());
      else if (arg == "--chaos-mtbf") cluster.chaos.mtbf_s = std::stod(value());
      else if (arg == "--chaos-restart") cluster.chaos.restart_delay_s = std::stod(value());
      else if (arg == "--chaos-max") cluster.chaos.max_crashes = std::stoul(value());
      else if (arg == "--chaos-seed") cluster.chaos.seed = std::stoull(value());
      else if (arg == "--checkpoint-dir") ckpt_dir = value();
      else if (arg == "--checkpoint-interval") ckpt_interval = std::stod(value());
      else if (arg == "--resume") do_resume = true;
      else if (arg == "--crash-at") crash_at = std::stod(value());
      else if (arg == "--econ") econ_on = true;
      else if (arg == "--econ-period") econ_period = std::stod(value());
      else if (arg == "--price-trace") price_trace_file = value();
      else if (arg == "--carbon-trace") carbon_trace_file = value();
      else if (arg == "--capex") capex = std::stod(value());
      else if (arg == "--deferrable") gen.deferrable_fraction = std::stod(value());
      else if (arg == "--help" || arg == "-h") return usage(0);
      else {
        std::cerr << "error: unknown argument " << arg << '\n';
        return usage(2);
      }
    }
    if (!(governor_tick > 0.0)) {
      std::cerr << "error: --governor-tick must be > 0\n";
      return usage(2);
    }
    if (!governor_arg.empty()) {
      auto spec = synergy::governor::parse_governor_spec(governor_arg);
      if (!spec.has_value()) {
        std::cerr << "error: --governor " << governor_arg << ": "
                  << spec.err().message << '\n';
        return usage(2);
      }
      // Vocabulary check against the real device so unknown/out-of-range
      // tunables fail here, not mid-run.
      const auto probe = synergy::governor::make_governor(
          spec.value(), synergy::gpusim::make_device_spec(cluster.device));
      if (!probe.has_value()) {
        std::cerr << "error: --governor " << governor_arg << ": "
                  << probe.err().message << '\n';
        return usage(2);
      }
      cluster.governor.enabled = true;
      cluster.governor.spec = std::move(spec).value();
      cluster.governor.tick_interval_s = governor_tick;
    }
    if (cluster.chaos.mtbf_s < 0.0) {
      std::cerr << "error: --chaos-mtbf must be >= 0\n";
      return usage(2);
    }
    if (cluster.chaos.restart_delay_s < 0.0) {
      std::cerr << "error: --chaos-restart must be >= 0\n";
      return usage(2);
    }
    if (ckpt_interval != 0.0 && !(ckpt_interval > 0.0)) {
      std::cerr << "error: --checkpoint-interval must be > 0\n";
      return usage(2);
    }
    if (ckpt_interval > 0.0 && ckpt_dir.empty()) {
      std::cerr << "error: --checkpoint-interval needs --checkpoint-dir\n";
      return usage(2);
    }
    if (do_resume && ckpt_dir.empty()) {
      std::cerr << "error: --resume needs --checkpoint-dir\n";
      return usage(2);
    }
    if (crash_at >= 0.0 && ckpt_dir.empty()) {
      std::cerr << "error: --crash-at needs --checkpoint-dir (crash injection "
                   "without checkpoints loses the replay)\n";
      return usage(2);
    }
    if (!ckpt_dir.empty() && !governor_arg.empty()) {
      std::cerr << "error: checkpointing is incompatible with --governor "
                   "(per-job governor state is not serialisable)\n";
      return usage(2);
    }
    if (!ckpt_dir.empty() && !lifecycle_dir.empty()) {
      std::cerr << "error: checkpointing is incompatible with --lifecycle "
                   "(in-memory retrain state is not serialisable)\n";
      return usage(2);
    }
    if (!econ_on && (!price_trace_file.empty() || !carbon_trace_file.empty())) {
      std::cerr << "error: --price-trace/--carbon-trace need --econ\n";
      return usage(2);
    }
    if (!econ_on && capex != 0.0) {
      std::cerr << "error: --capex needs --econ\n";
      return usage(2);
    }
    if (capex < 0.0) {
      std::cerr << "error: --capex must be >= 0\n";
      return usage(2);
    }
    if (!(econ_period > 0.0)) {
      std::cerr << "error: --econ-period must be > 0\n";
      return usage(2);
    }
    if (gen.deferrable_fraction < 0.0 || gen.deferrable_fraction > 1.0) {
      std::cerr << "error: --deferrable fraction out of [0,1]\n";
      return usage(2);
    }
    if ((policy == "cost" || policy == "cost-aware") && !econ_on) {
      std::cerr << "error: --policy cost needs --econ (the cost policy prices "
                   "its deferral and demotion decisions)\n";
      return usage(2);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return usage(2);
  }

  try {
    sc::job_trace trace;
    if (!trace_in.empty()) {
      std::ifstream in{trace_in};
      if (!in) {
        std::cerr << "error: cannot read " << trace_in << '\n';
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      trace = sc::job_trace::from_csv(text.str());
    } else {
      trace = sc::generate_trace(gen);
    }
    if (!trace_out.empty()) {
      std::ofstream out{trace_out};
      if (!out) {
        std::cerr << "error: cannot write " << trace_out << '\n';
        return 1;
      }
      out << trace.to_csv();
      std::cout << "trace written to " << trace_out << " (seed " << trace.seed << ")\n";
    }

    namespace econ = synergy::econ;
    if (econ_on) {
      const auto load_trace = [](const std::string& file, const std::string& kind) {
        std::ifstream in{file};
        if (!in)
          throw std::runtime_error("cannot read --" + kind + "-trace " + file);
        std::ostringstream text;
        text << in.rdbuf();
        return econ::parse_step_trace(text.str(), kind);
      };
      cluster.econ.enabled = true;
      cluster.econ.capex_usd_per_node_hour = capex;
      // Synthetic traces are seeded from the generator seed so a replayed
      // seed reproduces the tariff along with the arrivals; price and carbon
      // draw from distinct rng streams.
      econ::synthetic_config syn;
      syn.seed = gen.seed;
      syn.period_s = econ_period;
      syn.step_s = econ_period / 24.0;
      if (!price_trace_file.empty()) {
        cluster.econ.price = load_trace(price_trace_file, "price");
      } else {
        syn.stream = 0;
        syn.base = 0.10;
        syn.amplitude = 0.04;
        syn.noise = 0.01;
        cluster.econ.price = econ::synthetic_diurnal(syn);
      }
      if (!carbon_trace_file.empty()) {
        cluster.econ.carbon = load_trace(carbon_trace_file, "carbon");
      } else {
        syn.stream = 1;
        syn.base = 300.0;
        syn.amplitude = 120.0;
        syn.noise = 20.0;
        cluster.econ.carbon = econ::synthetic_diurnal(syn);
      }
      std::cout << "econ: pricing enabled (mean $"
                << synergy::obs::format_double(cluster.econ.price.mean())
                << "/kWh, mean " << synergy::obs::format_double(cluster.econ.carbon.mean())
                << " gCO2/kWh, capex $" << synergy::obs::format_double(capex)
                << " per node-hour)\n";
    }

    sc::plan_fn plan;
    std::shared_ptr<synergy::guarded_planner> guard;
    std::shared_ptr<synergy::plan_service> service;
    bool model_loaded = false;
    if (policy == "energy" || policy == "energy-aware" || policy == "cost" ||
        policy == "cost-aware") {
      if (!model_dir.empty()) {
        auto guarded = sc::make_guarded_suite_planner(cluster.device, model_dir);
        std::cout << "model tier: "
                  << (guarded.model_loaded ? "active" : "degraded (tuning-table fallback)")
                  << '\n';
        if (!guarded.load_summary.empty()) std::cout << guarded.load_summary;
        plan = std::move(guarded.plan);
        guard = guarded.guard;
        service = guarded.service;
        model_loaded = guarded.model_loaded;
      } else {
        plan = sc::make_suite_planner(cluster.device);
      }
    }
    const bool obs_enabled = !obs_out.empty();
    if (obs_enabled) {
      if (!(obs_interval > 0.0)) {
        std::cerr << "error: --obs-interval must be > 0\n";
        return 1;
      }
      cluster.obs_scrape_interval_s = obs_interval;
    }

    sc::simulator sim{cluster,
                      sc::make_policy(policy, std::move(plan), override_target, &cluster.econ)};

    if (!ckpt_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(ckpt_dir, ec);
      if (ec) {
        std::cerr << "error: --checkpoint-dir " << ckpt_dir << ": " << ec.message() << '\n';
        return 1;
      }
      sc::checkpoint_options ckpt_opts;
      ckpt_opts.interval_s = ckpt_interval;
      ckpt_opts.dir = ckpt_dir;
      ckpt_opts.crash_at_s = crash_at;
      // The guard chain and its plan cache ride in every artefact: a cache
      // hit bypasses the chain, so resuming with a cold cache would replay a
      // different counter/tier sequence than the uninterrupted run.
      ckpt_opts.guard = guard;
      ckpt_opts.service = service;
      sim.set_checkpointing(std::move(ckpt_opts));
    }

    namespace lc = synergy::lifecycle;
    std::shared_ptr<lc::model_registry> registry;
    std::shared_ptr<lc::lifecycle_manager> manager;
    if (!lifecycle_dir.empty()) {
      if (!guard || !model_loaded || !guard->planner()) {
        std::cerr << "error: --lifecycle needs the energy policy with --models "
                     "(the model tier must be active to manage its lifecycle)\n";
        return 1;
      }
      const auto spec = synergy::gpusim::make_device_spec(cluster.device);
      registry = std::make_shared<lc::model_registry>();
      registry->install(lc::version_origin::initial, cluster.device, guard->planner(), 0.0, 0.0,
                        "loaded from " + model_dir);
      auto store = std::make_shared<lc::version_store>(lifecycle_dir);
      if (const auto champ = registry->champion()) {
        if (const auto st = store->save(*champ); !st.ok())
          std::cerr << "warning: cannot persist v" << champ->id << ": " << st.err().to_string()
                    << '\n';
        else if (const auto st2 = store->set_head(champ->id); !st2.ok())
          std::cerr << "warning: cannot move HEAD: " << st2.err().to_string() << '\n';
      }
      // Challenger sweeps are deliberately small: the retrain happens inside
      // the simulated run and only needs to recover the drifted frequency
      // response, not match the offline training budget.
      synergy::trainer_options retrain_opts;
      retrain_opts.n_microbenchmarks = 24;
      retrain_opts.freq_samples = 12;
      retrain_opts.repetitions = 1;
      auto retrain = lc::make_drifted_retrainer(spec, retrain_opts, cluster.drift.power_skew,
                                                cluster.drift.freq_exponent);
      manager = std::make_shared<lc::lifecycle_manager>(registry, spec, std::move(retrain),
                                                        lc::lifecycle_options{}, store);
      sim.attach_recovery(guard, registry, manager);
      std::cout << "lifecycle: persisting versions to " << lifecycle_dir << '\n';
    }

    namespace obs = synergy::obs;
    auto& ledger = obs::energy_ledger::instance();
    std::shared_ptr<obs::slo_watchdog> watchdog;
    std::ofstream alerts_out;
    obs::snapshot_options obs_opts;
    if (obs_enabled) {
      std::string rules_text;
      if (!slo_rules_file.empty()) {
        std::ifstream in{slo_rules_file};
        if (!in) {
          std::cerr << "error: cannot read --slo-rules " << slo_rules_file << '\n';
          return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        rules_text = text.str();
      } else {
        rules_text =
            "wasted_energy_j > 0\n"
            "energy_per_job_ratio > 1.5 window 24\n"
            "quarantine_dwell_s > 60\n";
        if (model_loaded) rules_text += "fallback_ratio > 0.5 window 32\n";
        if (econ_on)
          rules_text +=
              "cost_per_job_ratio > 1.4 window 24\n"
              "carbon_per_job_ratio > 1.4 window 24\n";
      }
      auto rules = obs::parse_rules(rules_text);
      if (!rules.has_value()) {
        std::cerr << "error: "
                  << (slo_rules_file.empty() ? std::string{"built-in SLO rules"}
                                             : slo_rules_file)
                  << ": " << rules.err().to_string() << '\n';
        // Malformed rule text is a usage error like any other bad value;
        // an unreadable file (above) stays an operational failure.
        return usage(2);
      }

      // The ledger is process-global; start this run's attribution from zero.
      ledger.reset();
      watchdog = std::make_shared<obs::slo_watchdog>(std::move(rules.value()), &ledger);

      alerts_out.open(obs_out + ".alerts.jsonl", std::ios::trunc);
      if (!alerts_out) {
        std::cerr << "error: --obs-out " << obs_out << ": cannot open " << obs_out
                  << ".alerts.jsonl for writing\n";
        return 1;
      }
      watchdog->set_alert_sink([&alerts_out](const obs::alert& a) {
        alerts_out << a.to_json_line() << '\n';
        alerts_out.flush();
      });

      obs_opts.source = "synergy_cluster";
      // Probe writability before the (potentially long) run so a bad path
      // fails fast instead of after the simulation finished.
      if (auto st = obs::write_snapshot_files(obs_out, ledger, watchdog.get(), obs_opts);
          !st.ok()) {
        std::cerr << "error: --obs-out " << obs_out << ": " << st.err().to_string() << '\n';
        return 1;
      }

      sim.attach_observability(watchdog, guard);
      sim.set_scrape_hook([&](double t_s) {
        ++obs_opts.sequence;
        obs_opts.time_s = t_s;
        // The econ figures ride in the snapshot as plain data; the meter is
        // inactive until run()/resume() constructs it, so the pre-run probe
        // write above carries no econ block.
        if (const auto& meter = sim.econ_meter(); meter.active()) {
          obs_opts.econ.enabled = true;
          obs_opts.econ.cost_usd = meter.total_cost_usd();
          obs_opts.econ.capex_usd = meter.capex_usd();
          obs_opts.econ.carbon_g = meter.facility_carbon_g();
          obs_opts.econ.cost_per_job_usd = meter.cost_per_job_usd();
          obs_opts.econ.carbon_per_job_g = meter.carbon_per_job_g();
          obs_opts.econ.attributed_cost_usd = meter.attributed_cost_usd();
          obs_opts.econ.attributed_carbon_g = meter.attributed_carbon_g();
          obs_opts.econ.cost_by_cause = meter.cost_by_cause();
          obs_opts.econ.carbon_by_cause = meter.carbon_by_cause();
          obs_opts.econ.jobs_completed = meter.jobs_completed();
        }
        if (auto st = obs::write_snapshot_files(obs_out, ledger, watchdog.get(), obs_opts);
            !st.ok())
          std::cerr << "warning: snapshot write failed: " << st.err().to_string() << '\n';
      });
    }

    sc::run_summary summary;
    if (do_resume) {
      const auto latest = sc::latest_checkpoint(ckpt_dir);
      if (!latest.has_value()) {
        std::cerr << "error: --resume: " << latest.err().to_string() << '\n';
        return 1;
      }
      const auto payload = sc::read_checkpoint_payload(latest.value());
      if (!payload.has_value()) {
        std::cerr << "error: --resume: " << payload.err().to_string() << '\n';
        return 1;
      }
      if (const auto st = sim.restore_checkpoint(payload.value(), trace); !st.ok()) {
        std::cerr << "error: --resume " << latest.value().string() << ": "
                  << st.err().to_string() << '\n';
        return 1;
      }
      if (obs_enabled) {
        // The restore did not replay restored alerts through the sink (the
        // sink is this process's fresh alerts file) — re-emit them so the
        // final JSONL is byte-identical to the uninterrupted run's.
        for (const auto& a : watchdog->alerts()) alerts_out << a.to_json_line() << '\n';
        alerts_out.flush();
        // Continue the snapshot sequence where the exporting run left off.
        obs_opts.sequence = sim.scrape_ticks();
      }
      std::cout << "resumed from " << latest.value().string() << '\n';
      summary = sim.resume(trace);
    } else {
      summary = sim.run(trace);
    }

    if (report) {
      sim.report(std::cout);
      std::cout << '\n';
    }
    summary.print(std::cout);

    if (!csv_file.empty()) {
      if (csv_file == "-") {
        std::cout << '\n';
        summary.csv(std::cout);
      } else {
        std::ofstream out{csv_file};
        if (!out) {
          std::cerr << "error: cannot write " << csv_file << '\n';
          return 1;
        }
        summary.csv(out);
        std::cout << "summary csv written to " << csv_file << '\n';
      }
    }

    if (lifecycle_history && manager && registry) {
      // Deterministic rendering (fixed precision, virtual times only) — the
      // workflow fixture compares this section byte-for-byte across runs.
      std::cout << "\nlifecycle history:\n" << std::fixed << std::setprecision(3);
      for (const auto& v : registry->history()) {
        std::cout << "  v" << v.id << ' ' << lc::to_string(v.origin) << " parent=" << v.parent
                  << " device=" << v.device;
        if (v.origin != lc::version_origin::initial)
          std::cout << " challenger_mape=" << v.challenger_mape
                    << " champion_mape=" << v.champion_mape;
        if (!v.note.empty()) std::cout << " (" << v.note << ')';
        std::cout << '\n';
      }
      for (const auto& e : manager->history()) {
        std::cout << "  t=" << e.time_s << "s " << lc::to_string(e.action);
        if (e.version != 0) std::cout << " -> v" << e.version;
        std::cout << " challenger_mape=" << e.challenger_mape
                  << " champion_mape=" << e.champion_mape << " replay=" << e.replay_samples;
        if (!e.note.empty()) std::cout << " (" << e.note << ')';
        std::cout << '\n';
      }
      if (manager->history().empty()) std::cout << "  (no lifecycle decisions)\n";
    }

    if (obs_enabled) {
      std::cout << "\nobservability: " << ledger.charges() << " charge(s), "
                << obs::format_double(ledger.total_j()) << " J attributed, "
                << watchdog->alerts().size() << " alert(s)\n"
                << "  snapshots " << obs_out << ".json / " << obs_out << ".prom (sequence "
                << obs_opts.sequence << ")\n"
                << "  alerts    " << obs_out << ".alerts.jsonl\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

/// synergy_lifecycle — inspect and operate a persisted model-version store.
///
/// The store is the on-disk side of the model-lifecycle subsystem
/// (ARCHITECTURE.md Sec. 13): every version the registry installed lives
/// under `<dir>/v<N>/` as sealed envelopes, and `<dir>/HEAD` names the
/// champion a fresh deployment should load. This tool is the operator's
/// view of that history, plus the two manual override verbs.
///
/// Usage: synergy_lifecycle <command> <dir> [options]
///   status <dir>             HEAD, version count, and champion integrity
///   history <dir>            every persisted version, in id order
///   promote <dir> --id N     point HEAD at version N (validated first)
///   rollback <dir>           point HEAD at the current HEAD's parent
///   gc <dir> [--keep N]      drop oldest versions beyond N (default 4),
///                            never the HEAD version
///
/// Exit codes: 0 success, 1 usage / missing store, 2 damaged artefacts.
/// Output is stable (no timestamps), so workflows can assert on it.

#include <iostream>
#include <string>

#include "synergy/gpusim/device_spec.hpp"
#include "synergy/lifecycle/version_store.hpp"

namespace lc = synergy::lifecycle;

namespace {

int usage(int code) {
  (code ? std::cerr : std::cout)
      << "usage: synergy_lifecycle status   <dir>\n"
         "       synergy_lifecycle history  <dir>\n"
         "       synergy_lifecycle promote  <dir> --id N\n"
         "       synergy_lifecycle rollback <dir>\n"
         "       synergy_lifecycle gc       <dir> [--keep N]\n";
  return code;
}

void print_version(const lc::version_manifest& m, bool is_head) {
  std::cout << "  v" << m.id << ' ' << lc::to_string(m.origin) << " parent=" << m.parent
            << " device=" << m.device;
  if (m.origin != lc::version_origin::initial)
    std::cout << " challenger_mape=" << m.challenger_mape << " champion_mape=" << m.champion_mape;
  if (!m.note.empty()) std::cout << " (" << m.note << ')';
  if (is_head) std::cout << "  <- HEAD";
  std::cout << '\n';
}

/// Validate that a version's model set actually loads before letting HEAD
/// point at it — a manual promote must not brick the next deployment.
bool loads(const lc::version_store& store, std::uint64_t id) {
  const auto manifest = store.read_manifest(id);
  if (!manifest) {
    std::cerr << "error: v" << id << " manifest missing or damaged\n";
    return false;
  }
  std::string detail;
  const auto planner =
      store.load_planner(id, synergy::gpusim::make_device_spec(manifest->device), &detail);
  if (!planner) {
    std::cerr << "error: v" << id << " model set does not load:\n" << detail;
    return false;
  }
  return true;
}

int cmd_status(const lc::version_store& store) {
  const auto ids = store.version_ids();
  if (ids.empty()) {
    std::cerr << "error: no versions under " << store.root().string() << '\n';
    return 1;
  }
  const auto head = store.head();
  std::cout << "store: " << store.root().string() << '\n'
            << "versions: " << ids.size() << " (v" << ids.front() << "..v" << ids.back() << ")\n";
  if (!head) {
    std::cout << "head: missing or damaged\n";
    return 2;
  }
  std::cout << "head: v" << *head << '\n';
  const auto manifest = store.read_manifest(*head);
  if (!manifest) {
    std::cout << "champion: manifest missing or damaged\n";
    return 2;
  }
  print_version(*manifest, true);
  if (!loads(store, *head)) return 2;
  std::cout << "champion: loads cleanly\n";
  return 0;
}

int cmd_history(const lc::version_store& store) {
  const auto ids = store.version_ids();
  if (ids.empty()) {
    std::cerr << "error: no versions under " << store.root().string() << '\n';
    return 1;
  }
  const auto head = store.head();
  int damaged = 0;
  for (const auto id : ids) {
    const auto manifest = store.read_manifest(id);
    if (!manifest) {
      std::cout << "  v" << id << " (manifest missing or damaged)\n";
      ++damaged;
      continue;
    }
    print_version(*manifest, head && *head == id);
  }
  return damaged ? 2 : 0;
}

int cmd_promote(const lc::version_store& store, std::uint64_t id) {
  if (!loads(store, id)) return 2;
  if (const auto st = store.set_head(id); !st.ok()) {
    std::cerr << "error: " << st.err().to_string() << '\n';
    return 2;
  }
  std::cout << "HEAD -> v" << id << '\n';
  return 0;
}

int cmd_rollback(const lc::version_store& store) {
  const auto head = store.head();
  if (!head) {
    std::cerr << "error: HEAD missing or damaged\n";
    return 2;
  }
  const auto manifest = store.read_manifest(*head);
  if (!manifest) {
    std::cerr << "error: v" << *head << " manifest missing or damaged\n";
    return 2;
  }
  if (manifest->parent == 0) {
    std::cerr << "error: v" << *head << " has no parent to roll back to\n";
    return 1;
  }
  if (!loads(store, manifest->parent)) return 2;
  if (const auto st = store.set_head(manifest->parent); !st.ok()) {
    std::cerr << "error: " << st.err().to_string() << '\n';
    return 2;
  }
  std::cout << "HEAD -> v" << manifest->parent << " (rolled back from v" << *head << ")\n";
  return 0;
}

int cmd_gc(const lc::version_store& store, std::size_t keep) {
  const auto removed = store.gc(keep);
  std::cout << "removed " << removed << " version(s), keeping " << store.version_ids().size()
            << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h"))
    return usage(0);
  if (argc < 3) return usage(1);
  const std::string command = argv[1];
  const lc::version_store store{argv[2]};

  try {
    if (command == "status") return cmd_status(store);
    if (command == "history") return cmd_history(store);
    if (command == "promote") {
      if (argc != 5 || std::string(argv[3]) != "--id") return usage(1);
      const auto id = std::stoull(argv[4]);
      if (id == 0) return usage(1);
      return cmd_promote(store, id);
    }
    if (command == "rollback") return cmd_rollback(store);
    if (command == "gc") {
      std::size_t keep = 4;
      if (argc == 5 && std::string(argv[3]) == "--keep") keep = std::stoul(argv[4]);
      else if (argc != 3) return usage(1);
      return cmd_gc(store, keep);
    }
    std::cerr << "error: unknown command " << command << '\n';
    return usage(1);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

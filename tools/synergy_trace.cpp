/// synergy_trace — run a stock workload with the telemetry plane on and
/// export what the system observed about itself: a Chrome trace-event JSON
/// (load it at chrome://tracing or ui.perfetto.dev), an optional CSV of the
/// same events, and a metrics summary table.
///
/// The default run exercises every instrumented layer so one trace shows
/// the whole frequency path of the paper: queue submissions resolving
/// energy targets (plan), vendor clock-set attempts (freq_change), per-kernel
/// execution on the simulated device timeline (kernel, pid 2), power-sensor
/// reads (power_sample), and a small cluster job through the SLURM-like
/// controller (sched).
///
/// Usage: synergy_trace [options] [benchmark names...]
///   --device NAME     device spec (default V100)
///   --target NAME     energy target for submissions (default ES_50)
///   --out FILE        Chrome trace JSON path (default synergy_trace.json)
///   --csv FILE        also write the events as CSV
///   --capacity N      trace ring capacity in events
///   --no-cluster      skip the scheduler job
///   --no-cluster-sim  skip the discrete-event cluster simulation
///   --faults R        wrap the vendor backend in a fault injector + retry
///                     layer: clock-set/power-read faults at rate R
///   --fault-seed S    fault injector RNG seed
///   --log-tap         mirror log records into the trace
///   --obs-out PREFIX  also export the energy-attribution ledger as
///                     PREFIX.json / PREFIX.prom snapshots
///   --governor SPEC   attach a reactive governor to every queue submission:
///                     conservative | ondemand | powercap_tracker, or
///                     hybrid[-<policy>] to seed from the resolved target's
///                     plan; append :key=val,... for tunables
///   benchmarks        subset of the suite to run (default: first 6)
///
/// Exit status: 0 on success, 1 on operational failure (unwritable outputs),
/// 2 on a usage error (unknown flag, malformed value).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "synergy/cluster/simulator.hpp"
#include "synergy/governor/governor.hpp"
#include "synergy/obs/snapshot.hpp"
#include "synergy/sched/controller.hpp"
#include "synergy/synergy.hpp"
#include "synergy/telemetry/export.hpp"
#include "synergy/telemetry/telemetry.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace sm = synergy::metrics;
namespace ss = synergy::sched;
namespace sw = synergy::workloads;
namespace tel = synergy::telemetry;

namespace {

void run_queue_workload(const std::string& device, const sm::target& target,
                        const std::vector<std::string>& names, double fault_rate,
                        std::uint64_t fault_seed,
                        const std::optional<synergy::governor::governor_spec>& gov) {
  simsycl::device dev{synergy::gpusim::make_device_spec(device)};
  std::shared_ptr<synergy::context> ctx;
  if (fault_rate > 0.0) {
    // Fault-injecting stack: backend -> fault_injector -> resilient_library.
    // Transient clock-set failures and power-read dropouts at the requested
    // rate; the retry layer absorbs what it can, the queue degrades the rest.
    synergy::context_options opts;
    synergy::vendor::fault_config faults;
    faults.seed = static_cast<std::uint32_t>(fault_seed);
    faults.clock_set_transient_rate = fault_rate;
    faults.power_read_dropout_rate = fault_rate;
    faults.stale_power_rate = fault_rate / 2.0;
    opts.faults = faults;
    opts.retry = synergy::vendor::retry_policy{};
    ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev},
                                             std::move(opts));
  } else {
    ctx = std::make_shared<synergy::context>(std::vector<simsycl::device>{dev});
  }
  ctx->set_user(synergy::vendor::user_context::root());
  synergy::queue q{dev, ctx};
  q.set_target(target);
  if (gov) {
    if (const auto st = q.set_governor(*gov); !st.ok())
      throw std::runtime_error("--governor: " + st.err().to_string());
  }
  for (const auto& name : names) {
    const auto& bench = sw::find(name);
    auto e = bench.run(q);
    e.wait_and_throw();
    // A power-sensor read per kernel, as the paper's coarse-grained
    // profiling thread would do (Sec. 4.2).
    const auto binding = ctx->bind(dev);
    (void)binding.library->power_usage(binding.index);
  }
  q.print_energy_report(std::cout);
  if (gov)
    std::cout << "governor " << gov->to_string() << ": " << q.governor_decisions()
              << " decision(s), " << q.governor_clock_changes() << " clock change(s)\n";
  if (fault_rate > 0.0) {
    std::cout << "fault injection: " << q.degraded_submissions()
              << " degraded submissions";
    for (const auto* res : ctx->resilience_layers())
      std::cout << ", " << res->retries() << " retries, " << res->exhausted()
                << " exhausted, " << res->breaker_opens() << " breaker opens";
    std::cout << '\n';
  }
}

void run_cluster_job(const std::string& device, const sm::target& target,
                     const std::vector<std::string>& names) {
  std::vector<ss::node_config> nodes;
  ss::node_config cfg;
  cfg.name = "trace-node";
  cfg.gpus = {device, device};
  nodes.push_back(cfg);
  ss::controller ctl{std::move(nodes)};

  ss::job_request job;
  job.name = "traced_job";
  job.n_nodes = 1;
  job.payload = [&](ss::job_context& jc) {
    for (ss::node* n : jc.nodes) {
      for (const auto& dev : n->devices()) {
        synergy::queue q{dev, n->ctx()};
        q.set_target(target);
        for (const auto& name : names) sw::find(name).run(q).wait_and_throw();
      }
    }
  };
  ctl.submit(std::move(job));
  ctl.run_pending();
}

/// A small energy-aware cluster run under a facility cap, so the exported
/// trace carries the cluster timeline (pid 3) and the summary shows the
/// cluster metrics: queue-wait histogram, placement counters, cap
/// rebalances.
void run_cluster_sim(const std::string& device, const std::string& target_name,
                     const std::vector<std::string>& names) {
  namespace sc = synergy::cluster;
  sc::trace_config tc;
  tc.n_jobs = 32;
  tc.mean_interarrival_s = 0.5;
  tc.work_items = 1 << 22;
  tc.target_mix = {target_name};
  tc.kernels = names;
  const auto trace = sc::generate_trace(tc);

  sc::cluster_config cc;
  cc.n_nodes = 4;
  cc.gpus_per_node = 2;
  cc.device = device;
  // Below the all-busy worst case, so the budget manager has to rebalance.
  cc.facility_cap_w = 3000.0;
  sc::simulator sim{cc, sc::make_energy_aware(sc::make_suite_planner(device))};
  const auto summary = sim.run(trace);
  std::cout << '\n';
  summary.print(std::cout);
}

int usage(int code) {
  (code ? std::cerr : std::cout)
      << "usage: synergy_trace [--device D] [--target T] [--out F] [--csv F]\n"
         "                     [--capacity N] [--no-cluster] [--no-cluster-sim]\n"
         "                     [--faults R] [--fault-seed S]\n"
         "                     [--log-tap] [--obs-out PREFIX] [--governor SPEC]\n"
         "                     [benchmark names...]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string device = "V100";
  std::string target_name = "ES_50";
  std::string out_file = "synergy_trace.json";
  std::string csv_file;
  bool cluster = true;
  bool cluster_sim = true;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0x5fa017u;
  std::string obs_out;
  std::string governor_arg;
  std::optional<synergy::governor::governor_spec> governor_spec;
  std::vector<std::string> names;

  // Parse phase: unknown flags and malformed values are usage errors (exit
  // 2); bare words are benchmark names. Operational failures below exit 1.
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--device") device = value();
      else if (arg == "--target") target_name = value();
      else if (arg == "--faults") fault_rate = std::stod(value());
      else if (arg == "--fault-seed") fault_seed = std::stoull(value());
      else if (arg == "--out") out_file = value();
      else if (arg == "--csv") csv_file = value();
      else if (arg == "--capacity")
        tel::trace_recorder::instance().set_capacity(
            static_cast<std::size_t>(std::stoul(value())));
      else if (arg == "--no-cluster") cluster = false;
      else if (arg == "--no-cluster-sim") cluster_sim = false;
      else if (arg == "--log-tap") tel::install_log_tap();
      else if (arg == "--obs-out") obs_out = value();
      else if (arg == "--governor") governor_arg = value();
      else if (arg == "--help" || arg == "-h") return usage(0);
      else if (arg.rfind("--", 0) == 0) {
        std::cerr << "error: unknown argument " << arg << '\n';
        return usage(2);
      } else {
        names.push_back(arg);
      }
    }
    if (fault_rate < 0.0 || fault_rate > 1.0) {
      std::cerr << "error: --faults rate must be in [0,1], got " << fault_rate << '\n';
      return usage(2);
    }
    if (!governor_arg.empty()) {
      auto spec = synergy::governor::parse_governor_spec(governor_arg);
      if (!spec.has_value()) {
        std::cerr << "error: --governor " << governor_arg << ": "
                  << spec.err().message << '\n';
        return usage(2);
      }
      const auto probe = synergy::governor::make_governor(
          spec.value(), synergy::gpusim::make_device_spec(device));
      if (!probe.has_value()) {
        std::cerr << "error: --governor " << governor_arg << ": "
                  << probe.err().message << '\n';
        return usage(2);
      }
      governor_spec = std::move(spec).value();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return usage(2);
  }

  try {
    const auto target = sm::target::parse(target_name);
    if (!obs_out.empty()) synergy::obs::energy_ledger::instance().reset();
    if (names.empty()) {
      const auto all = sw::names();
      names.assign(all.begin(), all.begin() + std::min<std::size_t>(6, all.size()));
    }

    run_queue_workload(device, target, names, fault_rate, fault_seed, governor_spec);
    if (cluster) run_cluster_job(device, target, names);
    if (cluster_sim) run_cluster_sim(device, target.to_string(), names);

    std::cout << '\n';
    tel::metrics_registry::instance().summary_table(std::cout);

    const auto& rec = tel::trace_recorder::instance();
    std::cout << '\n'
              << rec.size() << " trace events buffered (" << rec.dropped()
              << " dropped, capacity " << rec.capacity() << ")\n";

    if (!tel::write_chrome_trace_file(out_file)) {
      std::cerr << "error: cannot write " << out_file << '\n';
      return 1;
    }
    std::cout << "chrome trace written to " << out_file
              << " (load at chrome://tracing or ui.perfetto.dev)\n";
    if (!csv_file.empty()) {
      if (!tel::write_csv_file(csv_file)) {
        std::cerr << "error: cannot write " << csv_file << '\n';
        return 1;
      }
      std::cout << "csv written to " << csv_file << '\n';
    }
    if (!obs_out.empty()) {
      namespace obs = synergy::obs;
      auto& ledger = obs::energy_ledger::instance();
      ledger.scrape(0.0);
      obs::snapshot_options opts;
      opts.source = "synergy_trace";
      if (auto st = obs::write_snapshot_files(obs_out, ledger, nullptr, opts); !st.ok()) {
        std::cerr << "error: --obs-out " << obs_out << ": " << st.err().to_string() << '\n';
        return 1;
      }
      std::cout << "obs snapshot written to " << obs_out << ".json / " << obs_out
                << ".prom (" << ledger.charges() << " charge(s), "
                << obs::format_double(ledger.total_j()) << " J)\n";
    }
#if !SYNERGY_TELEMETRY_ENABLED
    std::cout << "note: telemetry was compiled out (-DSYNERGY_TELEMETRY=OFF); "
                 "the trace is empty\n";
#endif
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

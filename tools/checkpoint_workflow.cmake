# Checkpoint/resume acceptance test (ARCHITECTURE.md Sec. 17): replay a
# faulted + chaos-injected trace under the cost-aware policy four ways and
# assert
#  - periodic checkpointing is inert: the checkpointed run's summary CSV,
#    obs JSON snapshot, Prometheus exposition, and alerts JSONL are
#    byte-identical to the uncheckpointed reference (wall-clock-valued
#    instruments are volatile-filtered out of both renderings, so the .prom
#    file byte-compares like the rest),
#  - an injected --crash-at kills the run with the harness exit code 42,
#    leaving valid artefacts behind,
#  - --resume from the crashed run reproduces the reference byte-for-bit
#    (summary CSV with its econ cost columns, obs JSON, .prom, alerts JSONL)
#    and, with telemetry on, passes synergy_top --check conservation — both
#    the energy ledger and the econ cost/carbon splits — on the resumed
#    snapshot,
#  - corrupting the newest artefact makes --resume fail closed: exit 1 and
#    a diagnostic naming the fault (no silent fallback to stale state),
#  - resuming from a directory with no artefacts exits 1,
#  - malformed flag combinations (--resume/--checkpoint-interval/--crash-at
#    without --checkpoint-dir; econ flags without --econ; out-of-range econ
#    values) exit 2 with usage.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Node-level chaos (two crashes, warm restarts) plus device faults, so the
# checkpoints carry every event registry — arrivals, completions, faults,
# crashes, restarts — not just a quiet queue.
set(common_args --nodes 8 --gpus 4 --jobs 120 --seed 7 --mean-interarrival 2
                --policy cost --econ --capex 1.2 --deferrable 0.3
                --faults 0.02 --fault-device-lost 0.01 --fault-max-losses 2
                --chaos-mtbf 60 --chaos-max 2 --chaos-restart 45
                --obs-interval 5)

# --- reference: uncheckpointed, uninterrupted -------------------------------
execute_process(COMMAND "${CLUSTER}" ${common_args}
                        --csv "${WORK_DIR}/ref.csv" --obs-out "${WORK_DIR}/ref"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r1 OUTPUT_VARIABLE out1 ERROR_VARIABLE err1)
if(NOT r1 EQUAL 0)
  message(FATAL_ERROR "reference run failed (${r1}):\n${out1}\n${err1}")
endif()
# The chaos plan actually fired (rows only print when nonzero).
foreach(marker "node crashes \\(chaos\\)" "node restarts \\(chaos\\)")
  if(NOT out1 MATCHES "${marker}")
    message(FATAL_ERROR "chaos plan never fired — missing '${marker}':\n${out1}")
  endif()
endforeach()

# --- checkpointed run: must not perturb the replay --------------------------
execute_process(COMMAND "${CLUSTER}" ${common_args}
                        --checkpoint-dir "${WORK_DIR}/ckpt_full" --checkpoint-interval 20
                        --csv "${WORK_DIR}/full.csv" --obs-out "${WORK_DIR}/full"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r2 OUTPUT_VARIABLE out2 ERROR_VARIABLE err2)
if(NOT r2 EQUAL 0)
  message(FATAL_ERROR "checkpointed run failed (${r2}):\n${out2}\n${err2}")
endif()
file(GLOB full_artefacts "${WORK_DIR}/ckpt_full/ckpt-*.synergy")
list(LENGTH full_artefacts n_full)
if(n_full LESS 3)
  message(FATAL_ERROR "checkpointed run left only ${n_full} artefacts")
endif()
foreach(f ref.csv full.csv ref.json full.json ref.alerts.jsonl full.alerts.jsonl)
  if(NOT EXISTS "${WORK_DIR}/${f}")
    message(FATAL_ERROR "expected artefact missing: ${f}")
  endif()
endforeach()
foreach(pair "csv" "json" "prom" "alerts.jsonl")
  file(READ "${WORK_DIR}/ref.${pair}" a)
  file(READ "${WORK_DIR}/full.${pair}" b)
  if(NOT a STREQUAL b)
    message(FATAL_ERROR "checkpointing perturbed the replay: ref.${pair} != full.${pair}")
  endif()
endforeach()

# --- crash injection: exit 42, artefacts survive ----------------------------
execute_process(COMMAND "${CLUSTER}" ${common_args}
                        --checkpoint-dir "${WORK_DIR}/ckpt_crash" --checkpoint-interval 20
                        --crash-at 150
                        --csv "${WORK_DIR}/crash.csv" --obs-out "${WORK_DIR}/crash"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r3 OUTPUT_VARIABLE out3 ERROR_VARIABLE err3)
if(NOT r3 EQUAL 42)
  message(FATAL_ERROR "--crash-at exited ${r3}, expected the harness code 42:\n${out3}\n${err3}")
endif()
file(GLOB crash_artefacts "${WORK_DIR}/ckpt_crash/ckpt-*.synergy")
list(LENGTH crash_artefacts n_crash)
if(n_crash LESS 2)
  message(FATAL_ERROR "crashed run left only ${n_crash} artefacts before dying")
endif()

# --- resume: byte-identical to the uninterrupted reference ------------------
execute_process(COMMAND "${CLUSTER}" ${common_args}
                        --checkpoint-dir "${WORK_DIR}/ckpt_crash" --checkpoint-interval 20
                        --resume
                        --csv "${WORK_DIR}/resumed.csv" --obs-out "${WORK_DIR}/resumed"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r4 OUTPUT_VARIABLE out4 ERROR_VARIABLE err4)
if(NOT r4 EQUAL 0)
  message(FATAL_ERROR "resume failed (${r4}):\n${out4}\n${err4}")
endif()
if(NOT out4 MATCHES "resumed from")
  message(FATAL_ERROR "resume never reported its source artefact:\n${out4}")
endif()
foreach(pair "csv" "json" "prom" "alerts.jsonl")
  file(READ "${WORK_DIR}/ref.${pair}" a)
  file(READ "${WORK_DIR}/resumed.${pair}" b)
  if(NOT a STREQUAL b)
    message(FATAL_ERROR "resume diverged from the reference: ref.${pair} != resumed.${pair}")
  endif()
endforeach()

# With charge sites compiled in, the resumed snapshot still conserves energy:
# per-cause attribution sums to the ledger total within 0.1%.
if(TELEMETRY STREQUAL "ON")
  execute_process(COMMAND "${TOP}" --check "${WORK_DIR}/resumed.json"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE cout ERROR_VARIABLE cerr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "synergy_top --check rejected resumed.json (${rc}):\n${cout}${cerr}")
  endif()
endif()

# --- fail closed: corrupt the NEWEST artefact (resume continued writing
# checkpoints, so only the lexically-last file is the one --resume loads) ----
file(GLOB crash_artefacts "${WORK_DIR}/ckpt_crash/ckpt-*.synergy")
list(SORT crash_artefacts)
list(GET crash_artefacts -1 newest)
file(READ "${newest}" sealed)
string(SUBSTRING "${sealed}" 0 180 truncated)
file(WRITE "${newest}" "${truncated}")
execute_process(COMMAND "${CLUSTER}" ${common_args}
                        --checkpoint-dir "${WORK_DIR}/ckpt_crash" --resume
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r5 OUTPUT_VARIABLE out5 ERROR_VARIABLE err5)
if(NOT r5 EQUAL 1)
  message(FATAL_ERROR "corrupt resume exited ${r5}, expected operational failure 1")
endif()
if(NOT err5 MATCHES "truncated|checksum")
  message(FATAL_ERROR "corrupt resume diagnostic names no envelope fault:\n${err5}")
endif()

# Resuming with no artefacts at all is the same operational failure.
execute_process(COMMAND "${CLUSTER}" ${common_args}
                        --checkpoint-dir "${WORK_DIR}/ckpt_empty" --resume
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r6 OUTPUT_VARIABLE out6 ERROR_VARIABLE err6)
if(NOT r6 EQUAL 1)
  message(FATAL_ERROR "empty-dir resume exited ${r6}, expected 1:\n${err6}")
endif()

# --- usage contract: malformed combinations exit 2 --------------------------
foreach(bad_args "--resume" "--checkpoint-interval 20" "--crash-at 150")
  separate_arguments(bad_list UNIX_COMMAND "${bad_args}")
  execute_process(COMMAND "${CLUSTER}" ${common_args} ${bad_list}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE ru OUTPUT_VARIABLE ou ERROR_VARIABLE eu)
  if(NOT ru EQUAL 2)
    message(FATAL_ERROR "'${bad_args}' without --checkpoint-dir exited ${ru}, expected usage error 2")
  endif()
endforeach()

# Econ usage contract: trace/capex flags and the cost policy require --econ,
# and out-of-range econ values are usage errors even with --econ present.
# None of these invocations get as far as opening a file, so the missing
# nosuch.csv never matters — exit 2 must come from flag validation alone.
foreach(bad_args
        "--price-trace nosuch.csv"
        "--carbon-trace nosuch.csv"
        "--capex 1.0"
        "--policy cost"
        "--econ --capex -1"
        "--econ --econ-period 0"
        "--econ --deferrable 1.5")
  separate_arguments(bad_list UNIX_COMMAND "${bad_args}")
  execute_process(COMMAND "${CLUSTER}" --jobs 1 ${bad_list}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE ru OUTPUT_VARIABLE ou ERROR_VARIABLE eu)
  if(NOT ru EQUAL 2)
    message(FATAL_ERROR "'${bad_args}' exited ${ru}, expected usage error 2:\n${eu}")
  endif()
endforeach()

message(STATUS "checkpoint workflow ok: inert checkpointing (csv/json/prom/alerts), "
               "crash=42, byte-identical resume with econ state, fail-closed "
               "corruption, usage contract")

# Exercises the `synergy_plan --validate` exit-code contract end to end:
# a freshly trained model set validates clean (exit 0), a corrupted file is
# detected and reported (exit 2), and a missing device is an operational
# failure (exit 1) — never a crash.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(COMMAND "${TRAIN}" V100 "${WORK_DIR}/models" 16 12
                RESULT_VARIABLE train_result)
if(NOT train_result EQUAL 0)
  message(FATAL_ERROR "synergy_train failed: ${train_result}")
endif()

# 1. Clean set: exit 0.
execute_process(COMMAND "${PLAN}" --validate "${WORK_DIR}/models"
                RESULT_VARIABLE clean_result OUTPUT_VARIABLE clean_out)
if(NOT clean_result EQUAL 0)
  message(FATAL_ERROR "--validate on a clean set exited ${clean_result}: ${clean_out}")
endif()

# 2. Corrupt one artefact (surplus bytes break the envelope's size/CRC
#    verification): exit 2 and the diagnostic names the damaged file.
file(APPEND "${WORK_DIR}/models/V100/energy.model" "CORRUPTION")
execute_process(COMMAND "${PLAN}" --validate "${WORK_DIR}/models"
                RESULT_VARIABLE corrupt_result OUTPUT_VARIABLE corrupt_out
                ERROR_VARIABLE corrupt_err)
if(NOT corrupt_result EQUAL 2)
  message(FATAL_ERROR "--validate on a corrupt set exited ${corrupt_result}, expected 2")
endif()
if(NOT "${corrupt_out}${corrupt_err}" MATCHES "energy.model")
  message(FATAL_ERROR "corruption diagnostic does not name the damaged file")
endif()

# 3. Unknown device key: operational failure, exit 1.
execute_process(COMMAND "${PLAN}" --validate "${WORK_DIR}/models" A100
                RESULT_VARIABLE missing_result OUTPUT_VARIABLE missing_out
                ERROR_VARIABLE missing_err)
if(NOT missing_result EQUAL 1)
  message(FATAL_ERROR "--validate on a missing device exited ${missing_result}, expected 1")
endif()

# CI fixture for the compile-out guarantee: configure a second build of the
# repository with -DSYNERGY_TELEMETRY=OFF and -DSYNERGY_WERROR=ON and build
# the telemetry plane, its unit tests, and the trace tool. If any
# instrumentation macro leaves residue behind (unused variables, unused
# captures, dead expressions), -Werror turns it into a build failure here.
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${WORK_DIR}"
          -DSYNERGY_TELEMETRY=OFF
          -DSYNERGY_WERROR=ON
          -DSYNERGY_BUILD_BENCH=OFF
          -DCMAKE_BUILD_TYPE=Release
  RESULT_VARIABLE configure_result
  OUTPUT_VARIABLE configure_output
  ERROR_VARIABLE configure_output)
if(NOT configure_result EQUAL 0)
  message(FATAL_ERROR "telemetry-off configure failed:\n${configure_output}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${WORK_DIR}" --parallel 4
          --target synergy_telemetry test_telemetry synergy_trace
  RESULT_VARIABLE build_result
  OUTPUT_VARIABLE build_output
  ERROR_VARIABLE build_output)
if(NOT build_result EQUAL 0)
  message(FATAL_ERROR "telemetry-off build failed:\n${build_output}")
endif()

# The compiled-out unit tests must pass too: they assert that no events or
# metrics are recorded when the macros expand to nothing.
execute_process(COMMAND "${WORK_DIR}/tests/test_telemetry"
                RESULT_VARIABLE test_result
                OUTPUT_VARIABLE test_output
                ERROR_VARIABLE test_output)
if(NOT test_result EQUAL 0)
  message(FATAL_ERROR "test_telemetry failed in the compiled-out build:\n${test_output}")
endif()

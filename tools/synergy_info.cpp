/// synergy_info — enumerate simulated devices and their frequency tables,
/// like a portable `nvidia-smi -q -d SUPPORTED_CLOCKS` across vendors.
///
/// Usage: synergy_info [device]
///   device: V100 | A100 | MI100 | PVC (default: all)

#include <iostream>
#include <memory>
#include <vector>

#include "synergy/common/table.hpp"
#include "synergy/gpusim/device.hpp"
#include "synergy/vendor/management_library.hpp"

namespace sc = synergy::common;
namespace gs = synergy::gpusim;

namespace {

void print_device(const std::string& name) {
  const auto spec = gs::make_device_spec(name);
  auto board = std::make_shared<gs::device>(spec);
  auto lib = synergy::vendor::make_management_library({board});
  lib->init();

  sc::print_banner(std::cout, spec.name + " (via " + lib->backend_name() + ")");
  sc::text_table table;
  table.row({"compute units", std::to_string(spec.num_compute_units)});
  table.row({"lanes per unit", std::to_string(spec.lanes_per_unit)});
  table.row({"memory bandwidth", sc::text_table::fmt(spec.mem_bandwidth_gbs, 0) + " GB/s"});
  table.row({"memory clock", sc::text_table::fmt(spec.memory_clock.value, 0) + " MHz"});
  table.row({"board power", sc::text_table::fmt(spec.idle_power_w, 0) + " W idle / " +
                                sc::text_table::fmt(spec.max_board_power_w, 0) + " W TDP"});
  table.row({"core clocks", std::to_string(spec.core_clocks.size()) + " configs, " +
                                sc::text_table::fmt(spec.min_core_clock().value, 0) + "-" +
                                sc::text_table::fmt(spec.max_core_clock().value, 0) + " MHz"});
  table.row({"default clock", sc::text_table::fmt(spec.default_core_clock().value, 0) + " MHz"});
  table.print(std::cout);

  std::cout << "supported core clocks (MHz):";
  for (std::size_t i = 0; i < spec.core_clocks.size(); ++i) {
    if (i % 12 == 0) std::cout << "\n  ";
    std::cout << spec.core_clocks[i].value << ' ';
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> devices;
  if (argc > 1) devices.emplace_back(argv[1]);
  else devices = {"V100", "A100", "MI100", "PVC"};
  try {
    for (const auto& name : devices) print_device(name);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

# Model-lifecycle acceptance test (ARCHITECTURE.md Sec. 13): train a model
# set, replay a cluster trace with mid-run power drift, and assert the
# lifecycle closes the loop end to end:
#  - the drift monitor quarantines the model tier,
#  - the manager retrains a challenger on the drifted response and promotes
#    it through shadow evaluation (the summary counts the promotion),
#  - two identical runs produce byte-identical summary CSVs AND lifecycle
#    histories (determinism: virtual time only, seeded retraining),
#  - the persisted version store round-trips through the synergy_lifecycle
#    CLI, including its damaged-store exit-code contract.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# 1. Train the v1 model set (small sweep; the drift plan below is what the
#    models must get wrong, not measurement noise).
execute_process(COMMAND "${TRAIN}" V100 "${WORK_DIR}/models" 32 16
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r OUTPUT_VARIABLE train_out)
if(NOT r EQUAL 0)
  message(FATAL_ERROR "synergy_train failed: ${r}\n${train_out}")
endif()

# 2. Two identical drifted runs, each persisting to its own store.
set(common_args --jobs 400 --nodes 4 --gpus 4 --seed 7
                --models "${WORK_DIR}/models"
                --drift 1.0 --drift-at 150 --drift-gamma 3.0
                --lifecycle-history)

execute_process(COMMAND "${CLUSTER}" ${common_args}
                  --lifecycle "${WORK_DIR}/store1" --csv "${WORK_DIR}/run1.csv"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r1 OUTPUT_VARIABLE out1)
if(NOT r1 EQUAL 0)
  message(FATAL_ERROR "drifted synergy_cluster run 1 failed: ${r1}\n${out1}")
endif()

execute_process(COMMAND "${CLUSTER}" ${common_args}
                  --lifecycle "${WORK_DIR}/store2" --csv "${WORK_DIR}/run2.csv"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r2 OUTPUT_VARIABLE out2)
if(NOT r2 EQUAL 0)
  message(FATAL_ERROR "drifted synergy_cluster run 2 failed: ${r2}\n${out2}")
endif()

# Determinism: same seed, same summary — bit-for-bit.
file(READ "${WORK_DIR}/run1.csv" csv1)
file(READ "${WORK_DIR}/run2.csv" csv2)
if(NOT csv1 STREQUAL csv2)
  message(FATAL_ERROR "lifecycle broke determinism: summary CSVs differ")
endif()

# ... and the decision logs match byte-for-byte too (the section is printed
# last, after the run-specific csv-written line, so the tails compare clean).
string(REGEX MATCH "lifecycle history:.*" hist1 "${out1}")
string(REGEX MATCH "lifecycle history:.*" hist2 "${out2}")
if(hist1 STREQUAL "")
  message(FATAL_ERROR "run 1 printed no lifecycle history:\n${out1}")
endif()
if(NOT hist1 STREQUAL hist2)
  message(FATAL_ERROR "lifecycle histories differ:\n--- run 1\n${hist1}\n--- run 2\n${hist2}")
endif()

# The loop actually closed: quarantine tripped, a challenger was promoted,
# and the summary carries the counters.
if(NOT out1 MATCHES "model quarantines")
  message(FATAL_ERROR "drift never quarantined the model tier:\n${out1}")
endif()
if(NOT out1 MATCHES "model promotions")
  message(FATAL_ERROR "no challenger was promoted:\n${out1}")
endif()
if(NOT hist1 MATCHES "v2 retrain")
  message(FATAL_ERROR "history missing the retrained version:\n${hist1}")
endif()
if(NOT csv1 MATCHES "promotions")
  message(FATAL_ERROR "summary CSV missing lifecycle columns")
endif()

# 3. The persisted store agrees with the CLI.
execute_process(COMMAND "${LIFECYCLE}" status "${WORK_DIR}/store1"
                RESULT_VARIABLE rs OUTPUT_VARIABLE status_out)
if(NOT rs EQUAL 0)
  message(FATAL_ERROR "synergy_lifecycle status failed: ${rs}\n${status_out}")
endif()
if(NOT status_out MATCHES "head: v2" OR NOT status_out MATCHES "loads cleanly")
  message(FATAL_ERROR "status does not show the promoted champion:\n${status_out}")
endif()

execute_process(COMMAND "${LIFECYCLE}" history "${WORK_DIR}/store1"
                RESULT_VARIABLE rh OUTPUT_VARIABLE history_out)
if(NOT rh EQUAL 0)
  message(FATAL_ERROR "synergy_lifecycle history failed: ${rh}\n${history_out}")
endif()
if(NOT history_out MATCHES "v1 initial" OR NOT history_out MATCHES "v2 retrain.*<- HEAD")
  message(FATAL_ERROR "persisted history does not match the run:\n${history_out}")
endif()

# Manual rollback moves HEAD to the parent, manual promote moves it back.
execute_process(COMMAND "${LIFECYCLE}" rollback "${WORK_DIR}/store1"
                RESULT_VARIABLE rr OUTPUT_VARIABLE roll_out)
if(NOT rr EQUAL 0 OR NOT roll_out MATCHES "HEAD -> v1")
  message(FATAL_ERROR "CLI rollback failed (${rr}):\n${roll_out}")
endif()
execute_process(COMMAND "${LIFECYCLE}" promote "${WORK_DIR}/store1" --id 2
                RESULT_VARIABLE rp OUTPUT_VARIABLE promote_out)
if(NOT rp EQUAL 0 OR NOT promote_out MATCHES "HEAD -> v2")
  message(FATAL_ERROR "CLI promote failed (${rp}):\n${promote_out}")
endif()

# gc keeps the HEAD version even when asked to keep almost nothing.
execute_process(COMMAND "${LIFECYCLE}" gc "${WORK_DIR}/store1" --keep 1
                RESULT_VARIABLE rg OUTPUT_VARIABLE gc_out)
if(NOT rg EQUAL 0)
  message(FATAL_ERROR "synergy_lifecycle gc failed: ${rg}\n${gc_out}")
endif()
execute_process(COMMAND "${LIFECYCLE}" status "${WORK_DIR}/store1"
                RESULT_VARIABLE rs2 OUTPUT_VARIABLE status2_out)
if(NOT rs2 EQUAL 0 OR NOT status2_out MATCHES "head: v2")
  message(FATAL_ERROR "gc removed the HEAD version (${rs2}):\n${status2_out}")
endif()

# Damaged-store contract: flip one byte of the champion manifest in the
# untouched second store and status must exit 2 with a diagnostic.
file(READ "${WORK_DIR}/store2/v2/manifest.envelope" manifest)
string(REGEX REPLACE "retrain" "retraiN" manifest "${manifest}")
file(WRITE "${WORK_DIR}/store2/v2/manifest.envelope" "${manifest}")
execute_process(COMMAND "${LIFECYCLE}" status "${WORK_DIR}/store2"
                RESULT_VARIABLE rd OUTPUT_VARIABLE damaged_out ERROR_VARIABLE damaged_err)
if(NOT rd EQUAL 2)
  message(FATAL_ERROR "damaged store must exit 2, got ${rd}:\n${damaged_out}${damaged_err}")
endif()

# Fault-injection acceptance test (ARCHITECTURE.md Sec. 10): replay the same
# generated trace twice under a seeded fault plan injecting clock-set
# failures, power-read dropouts, and a device-lost event, then assert
#  - every job still completes (faults degrade, they never lose work),
#  - the summary CSVs of the two runs are byte-identical (determinism:
#    same seed, same fault pattern, same schedule),
#  - the fault counters are nonzero (the plan actually fired).
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common_args --jobs 60 --nodes 4 --gpus 4 --seed 7
                --faults 0.08 --fault-device-lost 0.02 --fault-seed 99 --fault-max-losses 1)

execute_process(COMMAND "${CLUSTER}" ${common_args} --csv "${WORK_DIR}/run1.csv"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r1 OUTPUT_VARIABLE out1)
if(NOT r1 EQUAL 0)
  message(FATAL_ERROR "faulty synergy_cluster run 1 failed: ${r1}")
endif()

execute_process(COMMAND "${CLUSTER}" ${common_args} --csv "${WORK_DIR}/run2.csv"
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r2 OUTPUT_VARIABLE out2)
if(NOT r2 EQUAL 0)
  message(FATAL_ERROR "faulty synergy_cluster run 2 failed: ${r2}")
endif()

# Same seed, same summary — bit-for-bit.
file(READ "${WORK_DIR}/run1.csv" csv1)
file(READ "${WORK_DIR}/run2.csv" csv2)
if(NOT csv1 STREQUAL csv2)
  message(FATAL_ERROR "fault injection broke determinism: summary CSVs differ")
endif()

# All 60 jobs completed, none failed.
if(NOT out1 MATCHES "60 \\(60/0\\)")
  message(FATAL_ERROR "faulty run lost jobs:\n${out1}")
endif()

# The plan fired: degraded clock-sets, degraded samples, and a requeue all
# appear in the human-readable summary (rows only print when nonzero).
foreach(marker
        "clock-set faults \\(default clocks\\)"
        "degraded energy samples"
        "requeued jobs \\(device lost\\)")
  if(NOT out1 MATCHES "${marker}")
    message(FATAL_ERROR "fault summary missing '${marker}':\n${out1}")
  endif()
endforeach()

# And reached the CSV columns.
if(NOT csv1 MATCHES "clock_set_faults")
  message(FATAL_ERROR "summary CSV missing fault columns")
endif()

# Control: the same trace fault-free must also complete everything — the
# faulty run is compared against a healthy baseline, not tested in a vacuum.
execute_process(COMMAND "${CLUSTER}" --jobs 60 --nodes 4 --gpus 4 --seed 7
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE r3 OUTPUT_VARIABLE out3)
if(NOT r3 EQUAL 0)
  message(FATAL_ERROR "fault-free control run failed: ${r3}")
endif()
if(NOT out3 MATCHES "60 \\(60/0\\)")
  message(FATAL_ERROR "control run lost jobs:\n${out3}")
endif()
if(out3 MATCHES "clock-set faults")
  message(FATAL_ERROR "fault counters leaked into a fault-free run:\n${out3}")
endif()

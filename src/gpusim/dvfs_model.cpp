#include "synergy/gpusim/dvfs_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "synergy/telemetry/telemetry.hpp"

namespace synergy::gpusim {

using common::frequency_config;
using common::joules;
using common::megahertz;
using common::seconds;
using common::watts;

namespace {

/// Smooth maximum with exponent p: approaches max(a, b) for large p but keeps
/// a differentiable crossover, modelling partial compute/memory overlap near
/// the roofline ridge point.
double smooth_max(double a, double b, double p = 4.0) {
  if (a <= 0.0) return b;
  if (b <= 0.0) return a;
  const double m = std::max(a, b);
  const double ra = a / m;
  const double rb = b / m;
  return m * std::pow(std::pow(ra, p) + std::pow(rb, p), 1.0 / p);
}

}  // namespace

double dvfs_model::weighted_compute_cycles(const kernel_profile& profile) const {
  const static_features& k = profile.features;
  const double per_item = k.int_add * costs_.int_add + k.int_mul * costs_.int_mul +
                          k.int_div * costs_.int_div + k.int_bw * costs_.int_bw +
                          k.float_add * costs_.float_add + k.float_mul * costs_.float_mul +
                          k.float_div * costs_.float_div + k.sf * costs_.sf +
                          k.loc_access * costs_.loc_access;
  return per_item * profile.work_items;
}

seconds dvfs_model::compute_time(const device_spec& spec, const kernel_profile& profile,
                                 megahertz f_core) const {
  if (f_core.value <= 0.0) throw std::invalid_argument("non-positive core clock");
  const double lanes =
      static_cast<double>(spec.num_compute_units) * static_cast<double>(spec.lanes_per_unit);
  const double issue_rate = lanes * f_core.hz() * profile.compute_efficiency;  // lane-cycles/s
  return seconds{weighted_compute_cycles(profile) / issue_rate};
}

seconds dvfs_model::memory_time(const device_spec& spec, const kernel_profile& profile,
                                megahertz f_mem) const {
  const double bytes = profile.dram_bytes();
  if (bytes <= 0.0) return seconds{0.0};
  const double bw_scale = f_mem.value / spec.memory_clock.value;
  const double bw =
      spec.mem_bandwidth_gbs * 1.0e9 * bw_scale * profile.coalescing_efficiency;  // B/s
  return seconds{bytes / bw};
}

kernel_cost dvfs_model::evaluate(const device_spec& spec, const kernel_profile& profile,
                                 frequency_config config) const {
  SYNERGY_COUNTER_ADD("gpusim.dvfs_evaluations", 1);
  const seconds t_c = compute_time(spec, profile, config.core);
  const seconds t_m = memory_time(spec, profile, config.memory);
  const double busy = smooth_max(t_c.value, t_m.value);
  const seconds total{busy + spec.launch_overhead.value};

  const double u_compute = busy > 0.0 ? t_c.value / busy : 0.0;
  const double u_memory = busy > 0.0 ? t_m.value / busy : 0.0;

  // Dynamic power envelopes: at f_max / V_max with both pipelines saturated
  // the board draws its TDP.
  const double dyn_envelope = spec.max_board_power_w - spec.idle_power_w;
  const double p_mem_max = dyn_envelope * spec.mem_power_fraction;
  const double p_core_max = dyn_envelope - p_mem_max;

  const voltage_curve& vf = spec.vf_curve;
  const double v = vf.voltage_at(config.core);
  const double v_ratio = v / vf.v_max;
  const double f_ratio = config.core.value / vf.f_max.value;

  // While a kernel is resident the core domain never idles completely:
  // instruction issue, address generation, and the clock tree keep a floor
  // of activity even when the DRAM pipeline is the bottleneck. This floor is
  // what gives memory-bound kernels their large core-DVFS energy headroom
  // (paper Fig. 7a: MatMul saves 33% energy at 5% performance loss).
  constexpr double activity_floor = 0.40;
  const double core_activity = activity_floor + (1.0 - activity_floor) * u_compute;
  const double p_core = p_core_max * v_ratio * v_ratio * f_ratio * core_activity;
  const double mem_ratio = config.memory.value / spec.memory_clock.value;
  const double p_mem = p_mem_max * mem_ratio * u_memory;

  // DRAM standby power (refresh, clock distribution) is part of the
  // measured idle floor at the nominal memory clock; selecting a lower
  // memory clock (Titan-X-class parts, Sec. 2.1) reclaims a share of it —
  // the reason compute-bound kernels profit from memory DVFS.
  constexpr double mem_standby_share = 0.35;
  const double idle_eff =
      spec.idle_power_w * (1.0 - mem_standby_share * (1.0 - mem_ratio));

  kernel_cost cost;
  cost.time = total;
  cost.avg_power = watts{idle_eff + p_core + p_mem};
  cost.energy = cost.avg_power * cost.time;
  cost.compute_utilization = u_compute;
  cost.memory_utilization = u_memory;
  return cost;
}

double worst_case_power(const device_spec& spec, common::megahertz core_clock) {
  const auto& vf = spec.vf_curve;
  const double v_ratio = vf.voltage_at(core_clock) / vf.v_max;
  const double f_ratio = core_clock.value / vf.f_max.value;
  const double dyn = spec.max_board_power_w - spec.idle_power_w;
  // Both pipelines saturated at the nominal memory clock.
  return spec.idle_power_w +
         dyn * (spec.mem_power_fraction +
                (1.0 - spec.mem_power_fraction) * v_ratio * v_ratio * f_ratio);
}

common::megahertz max_core_clock_under_cap(const device_spec& spec, double budget_w) {
  common::megahertz best = spec.min_core_clock();
  for (const auto f : spec.core_clocks)
    if (worst_case_power(spec, f) <= budget_w) best = f;
  return best;
}

watts dvfs_model::idle_power(const device_spec& spec, frequency_config config) const {
  // A small clock-tree/leakage term grows with the operating point even when
  // no kernel is resident (~6% of the dynamic envelope at f_max).
  const double dyn_envelope = spec.max_board_power_w - spec.idle_power_w;
  const voltage_curve& vf = spec.vf_curve;
  const double v_ratio = vf.voltage_at(config.core) / vf.v_max;
  const double f_ratio = config.core.value / vf.f_max.value;
  return watts{spec.idle_power_w + 0.06 * dyn_envelope * v_ratio * v_ratio * f_ratio};
}

}  // namespace synergy::gpusim

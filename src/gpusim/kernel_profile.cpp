#include "synergy/gpusim/kernel_profile.hpp"

#include <stdexcept>

namespace synergy::gpusim {

const char* static_features::feature_name(std::size_t i) {
  static const char* names[] = {"int_add",   "int_mul",   "int_div", "int_bw",
                                "float_add", "float_mul", "float_div", "sf",
                                "gl_access", "loc_access"};
  if (i >= dimension) throw std::out_of_range("feature index");
  return names[i];
}

}  // namespace synergy::gpusim

#pragma once

/// \file kernel_profile.hpp
/// Workload description consumed by the DVFS performance/power model.
///
/// The static part is exactly the 10-dimensional feature vector of the
/// paper's Table 1 (per-work-item instruction counts, extracted by the
/// feature-extraction pass in src/features). The dynamic part carries
/// launch-time information (work size, access granularity, cache behaviour)
/// that a static compiler pass cannot see — this asymmetry is what makes the
/// ML frequency prediction a non-trivial generalisation problem, as in the
/// real system.

#include <array>
#include <cstddef>
#include <string>

namespace synergy::gpusim {

/// Static per-work-item instruction counts (paper Table 1).
struct static_features {
  double int_add{0};     ///< integer additions and subtractions
  double int_mul{0};     ///< integer multiplications
  double int_div{0};     ///< integer divisions
  double int_bw{0};      ///< integer bitwise operations
  double float_add{0};   ///< floating point additions and subtractions
  double float_mul{0};   ///< floating point multiplications
  double float_div{0};   ///< floating point divisions
  double sf{0};          ///< special functions (sqrt, exp, log, sin, ...)
  double gl_access{0};   ///< global memory accesses
  double loc_access{0};  ///< local (shared) memory accesses

  static constexpr std::size_t dimension = 10;

  /// Flatten to the model input order used throughout the ML pipeline.
  [[nodiscard]] std::array<double, dimension> as_array() const {
    return {int_add, int_mul,   int_div,  int_bw, float_add,
            float_mul, float_div, sf, gl_access, loc_access};
  }

  /// Inverse of as_array().
  [[nodiscard]] static static_features from_array(const std::array<double, dimension>& a) {
    return {a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7], a[8], a[9]};
  }

  /// Total arithmetic operations per work item (all classes except memory).
  [[nodiscard]] double total_compute_ops() const {
    return int_add + int_mul + int_div + int_bw + float_add + float_mul + float_div + sf;
  }

  /// Name of feature dimension i, matching Table 1 of the paper.
  [[nodiscard]] static const char* feature_name(std::size_t i);

  friend bool operator==(const static_features&, const static_features&) = default;
};

/// Full workload description for one kernel launch.
struct kernel_profile {
  std::string name;          ///< kernel identifier (for traces and registries)
  static_features features;  ///< per-work-item static instruction counts
  double work_items{1};      ///< total work items in the launch

  /// Bytes moved per global access (4 for float, 8 for double).
  double bytes_per_access{4};

  /// Fraction of global accesses served by on-chip cache instead of DRAM.
  /// Dynamic behaviour invisible to the static feature vector.
  double cache_hit_rate{0.0};

  /// Achieved fraction of peak DRAM bandwidth for this access pattern
  /// (1.0 = perfectly coalesced streaming; low values model strided or
  /// random access).
  double coalescing_efficiency{0.85};

  /// Achieved fraction of peak issue rate for the compute pipeline
  /// (models occupancy limits and dependency stalls).
  double compute_efficiency{0.75};

  /// DRAM-visible bytes for the whole launch.
  [[nodiscard]] double dram_bytes() const {
    return features.gl_access * (1.0 - cache_hit_rate) * bytes_per_access * work_items;
  }

  /// Total arithmetic operations for the whole launch.
  [[nodiscard]] double total_ops() const { return features.total_compute_ops() * work_items; }

  /// FLOP-per-DRAM-byte arithmetic intensity; large values mean
  /// compute-bound behaviour (high core-frequency sensitivity).
  [[nodiscard]] double arithmetic_intensity() const {
    const double bytes = dram_bytes();
    return bytes > 0.0 ? total_ops() / bytes : 1.0e12;
  }
};

}  // namespace synergy::gpusim

#pragma once

/// \file device.hpp
/// Runtime instance of a simulated GPU.
///
/// A device owns a virtual clock: executing a kernel advances virtual time by
/// the model-predicted duration and appends a busy segment to the power
/// trace. Wall-clock time never enters the simulation, so experiments are
/// deterministic and orders of magnitude faster than the systems they model.
///
/// Thread safety: all mutating members take an internal mutex, because the
/// SYnergy fine-grained profiler polls device state from a separate sampling
/// thread while kernels execute (paper Sec. 4.2).

#include <mutex>
#include <optional>

#include "synergy/common/error.hpp"
#include "synergy/common/rng.hpp"
#include "synergy/common/units.hpp"
#include "synergy/gpusim/device_spec.hpp"
#include "synergy/gpusim/dvfs_model.hpp"
#include "synergy/gpusim/kernel_profile.hpp"
#include "synergy/gpusim/power_trace.hpp"

namespace synergy::gpusim {

/// Outcome of one kernel execution on a device.
struct execution_record {
  common::seconds start{0.0};  ///< virtual start time
  kernel_cost cost;            ///< time / power / energy actually charged
  common::frequency_config config;  ///< operating point used
};

/// Measurement-noise configuration. When sigma > 0 each execution's time and
/// power receive an independent multiplicative log-normal perturbation, which
/// is what makes the ML training data realistically imperfect.
struct noise_config {
  double time_sigma{0.0};
  double power_sigma{0.0};
  std::uint64_t seed{0x5eed5eed5eedULL};
};

/// A simulated GPU with DVFS state, a virtual clock, and a power trace.
class device {
 public:
  explicit device(device_spec spec, noise_config noise = {});

  [[nodiscard]] const device_spec& spec() const { return spec_; }
  [[nodiscard]] const dvfs_model& model() const { return model_; }

  // --- clock control (wrapped by the vendor emulation layer) ---------------

  /// Set the application core clock; fails with not_supported if f is not in
  /// the spec's clock table or violates the locked bounds.
  common::status set_core_clock(common::megahertz f);

  /// Set both application clocks; the memory clock must be one of the
  /// spec's selectable memory clocks (a single value on HBM parts, several
  /// on GDDR parts like the Titan X — paper Sec. 2.1).
  common::status set_application_clocks(common::frequency_config config);

  /// Restore the driver-default application clock.
  void reset_core_clock();

  /// Hard min/max clock bounds (root-only in the real system; used by the
  /// scheduler epilogue). Application clocks outside the bounds are rejected.
  common::status set_clock_bounds(common::megahertz lo, common::megahertz hi);
  void clear_clock_bounds();

  [[nodiscard]] common::frequency_config current_config() const;

  // --- execution ------------------------------------------------------------

  /// Run one kernel at the current operating point: advances the virtual
  /// clock, charges energy, and extends the power trace.
  execution_record execute(const kernel_profile& profile);

  /// Advance virtual time with no kernel resident (idle power is charged).
  void advance_idle(common::seconds dt);

  // --- introspection ---------------------------------------------------------

  /// Current virtual time.
  [[nodiscard]] common::seconds now() const;

  /// Total energy consumed since construction (exact integral of the trace).
  [[nodiscard]] common::joules total_energy() const;

  /// Instantaneous board power at the current virtual time.
  [[nodiscard]] common::watts instantaneous_power() const;

  /// Board power averaged over the trailing sensor window.
  [[nodiscard]] common::watts windowed_power(common::seconds window) const;

  /// Pipeline utilisation averaged over the trailing sensor window: the
  /// time-weighted mean of each trace segment's utilisation (a kernel's
  /// compute utilisation while busy, 0 while idle). Feeds the reactive
  /// governors' device_sample.
  [[nodiscard]] double windowed_utilization(common::seconds window) const;

  /// Exact energy integral between two virtual timestamps.
  [[nodiscard]] common::joules energy_between(common::seconds from, common::seconds to) const;

  /// Number of kernels executed since construction.
  [[nodiscard]] std::size_t kernels_executed() const;

  /// Copy of the power trace (for tests and offline analysis).
  [[nodiscard]] power_trace trace_copy() const;

  // --- fault injection --------------------------------------------------------

  /// Multiply all subsequent busy/idle power draw by `factor` (default 1.0).
  /// Models silicon ageing / cooling degradation: the trained power model no
  /// longer matches the board, which is exactly what the drift monitor must
  /// catch. Ignores non-finite or non-positive factors.
  ///
  /// `freq_exponent` makes the skew clock-dependent: the effective factor at
  /// core clock f is `factor * (f / f_default)^freq_exponent`. A uniform skew
  /// (exponent 0) rescales every operating point alike — it trips the drift
  /// monitor but leaves the *relative* frequency response, and therefore
  /// every normalised plan, intact. A positive exponent (leakage growing
  /// with voltage/clock, the common ageing signature) punishes high clocks
  /// disproportionately, moving the true optimum — the case where only a
  /// retrain on the drifted board restores good plans.
  void set_power_skew(double factor, double freq_exponent = 0.0);
  [[nodiscard]] double power_skew() const;
  [[nodiscard]] double power_skew_exponent() const;

 private:
  device_spec spec_;
  dvfs_model model_;
  noise_config noise_;
  mutable std::mutex mutex_;

  common::pcg32 rng_;
  common::frequency_config config_;
  std::optional<common::megahertz> bound_lo_;
  std::optional<common::megahertz> bound_hi_;
  common::seconds clock_{0.0};
  common::joules energy_{0.0};
  double power_skew_{1.0};
  double power_skew_gamma_{0.0};

  /// Effective skew at the current operating point (call under mutex_).
  [[nodiscard]] double skew_at_current_locked() const;
  std::size_t kernel_count_{0};
  power_trace trace_;

  void append_segment_locked(common::seconds duration, common::watts power, bool busy,
                             double utilization = 0.0);
};

}  // namespace synergy::gpusim

#pragma once

/// \file device_spec.hpp
/// Static description of a simulated GPU product.
///
/// Specs bundle the architectural parameters needed by the DVFS model
/// (compute width, bandwidth, voltage/frequency curve, power envelope) with
/// the vendor-visible frequency tables of the paper's Figure 1:
///   - NVIDIA V100: 196 core configs, 135-1530 MHz, memory fixed at 877 MHz
///   - NVIDIA A100:  81 core configs, 210-1410 MHz, memory fixed at 1215 MHz
///   - AMD MI100:    16 core levels,  300-1502 MHz, memory fixed at 1200 MHz

#include <cstddef>
#include <string>
#include <vector>

#include "synergy/common/units.hpp"

namespace synergy::gpusim {

enum class vendor_kind { nvidia, amd, intel };

[[nodiscard]] constexpr const char* to_string(vendor_kind v) {
  switch (v) {
    case vendor_kind::nvidia: return "NVIDIA";
    case vendor_kind::amd: return "AMD";
    case vendor_kind::intel: return "Intel";
  }
  return "?";
}

/// Voltage/frequency curve: voltage is flat at v_min up to f_knee, then rises
/// linearly to v_max at f_max. This is the standard near-threshold DVFS shape
/// (paper Sec. 1, ref. [23]) that produces an interior energy-optimal
/// frequency.
struct voltage_curve {
  double v_min{0.75};
  double v_max{1.05};
  common::megahertz f_knee{500.0};
  common::megahertz f_max{1500.0};

  /// Supply voltage at core frequency f (volts).
  [[nodiscard]] double voltage_at(common::megahertz f) const;
};

/// Complete static description of a GPU product.
struct device_spec {
  std::string name;
  vendor_kind vendor{vendor_kind::nvidia};

  // --- compute resources -------------------------------------------------
  std::size_t num_compute_units{80};  ///< SMs (NVIDIA) or CUs (AMD)
  std::size_t lanes_per_unit{64};     ///< FP32 lanes per unit

  // --- memory system -----------------------------------------------------
  /// Peak DRAM bandwidth (GB/s) at the nominal memory frequency.
  double mem_bandwidth_gbs{900.0};
  /// Local (shared) memory bytes moved per lane per core cycle.
  double local_bytes_per_lane_cycle{4.0};

  // --- power model ---------------------------------------------------------
  double idle_power_w{40.0};        ///< board power with clocks gated
  double max_board_power_w{300.0};  ///< TDP at f_max with full activity
  /// Fraction of the dynamic envelope consumed by the memory system when the
  /// DRAM pipeline is fully busy (memory clock is fixed on HBM parts).
  double mem_power_fraction{0.30};
  voltage_curve vf_curve;

  // --- frequency tables (vendor-visible, paper Fig. 1) --------------------
  common::megahertz memory_clock{877.0};  ///< nominal (default) memory clock
  /// Selectable memory clocks. HBM parts expose exactly {memory_clock};
  /// GDDR parts like the Titan X expose several (paper Sec. 2.1).
  std::vector<common::megahertz> memory_clocks;
  std::vector<common::megahertz> core_clocks;  ///< ascending supported clocks
  std::size_t default_clock_index{0};          ///< driver default application clock

  /// Per-kernel launch latency charged on every execution.
  common::seconds launch_overhead{5.0e-6};

  [[nodiscard]] common::megahertz default_core_clock() const {
    return core_clocks.at(default_clock_index);
  }
  [[nodiscard]] common::megahertz max_core_clock() const { return core_clocks.back(); }
  [[nodiscard]] common::megahertz min_core_clock() const { return core_clocks.front(); }

  /// Default (memory, core) operating point.
  [[nodiscard]] common::frequency_config default_config() const {
    return {memory_clock, default_core_clock()};
  }

  /// True if f is exactly one of the supported core clocks.
  [[nodiscard]] bool supports_core_clock(common::megahertz f) const;

  /// Supported clock closest to f.
  [[nodiscard]] common::megahertz nearest_core_clock(common::megahertz f) const;

  /// Selectable memory clocks ({memory_clock} when none were listed).
  [[nodiscard]] std::vector<common::megahertz> supported_memory_clocks() const;

  /// True if f is a selectable memory clock.
  [[nodiscard]] bool supports_memory_clock(common::megahertz f) const;
};

/// NVIDIA Tesla V100 (SXM2 16 GB): 80 SMs, 900 GB/s HBM2, 300 W.
/// 196 application clocks from 135 to 1530 MHz; the driver default
/// application clock is 1312 MHz (below f_max, so speedups > 1 are possible —
/// paper Sec. 8.2).
[[nodiscard]] device_spec make_v100();

/// NVIDIA A100 (SXM4 40 GB): 108 SMs, 1555 GB/s HBM2e, 400 W.
/// 81 application clocks from 210 to 1410 MHz in 15 MHz steps; default 1410.
[[nodiscard]] device_spec make_a100();

/// AMD Instinct MI100: 120 CUs, 1228 GB/s HBM2, 290 W.
/// 16 sclk performance levels from 300 to 1502 MHz. AMD exposes no explicit
/// default application clock (auto-DVFS tracks the workload); the simulated
/// default is the top level, which matches the paper's observation that on
/// MI100 the default configuration is always the fastest.
[[nodiscard]] device_spec make_mi100();

/// NVIDIA Titan X (Pascal, GDDR5X): the paper's Sec. 2.1 example of a GPU
/// that exposes *memory* frequency scaling too — four selectable memory
/// clocks next to the core clock table. Enables 2-D (memory, core)
/// frequency optimisation; not part of the paper's evaluated devices.
[[nodiscard]] device_spec make_titanx();

/// Intel Data Center GPU Max 1550 ("Ponte Vecchio"): 128 Xe cores,
/// 3277 GB/s HBM2e, 600 W. Frequency range 900-1600 MHz in 50 MHz steps.
/// Not part of the paper's evaluation; included to demonstrate the
/// portability claim of Sec. 2.1 (Level Zero as a third vendor interface).
[[nodiscard]] device_spec make_pvc();

/// Look up a spec by product name ("V100", "A100", "MI100", "PVC",
/// case-insensitive); throws std::invalid_argument for unknown names.
[[nodiscard]] device_spec make_device_spec(const std::string& name);

/// The paper's evaluated devices (excludes extensions such as PVC).
[[nodiscard]] std::vector<std::string> known_device_names();

}  // namespace synergy::gpusim

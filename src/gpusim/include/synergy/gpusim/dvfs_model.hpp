#pragma once

/// \file dvfs_model.hpp
/// Analytic DVFS performance & power model.
///
/// This module is the physics substitute for the paper's real GPUs. It maps
/// (device spec, kernel profile, frequency config) to execution time, average
/// power, and energy:
///
///   t_compute = weighted_cycles / (units * lanes * f_core * efficiency)
///   t_memory  = dram_bytes / (bandwidth(f_mem) * coalescing)
///   t         = smooth_max(t_compute, t_memory) + launch_overhead
///   P         = P_idle + P_core_max * (V(f)/V_max)^2 * (f/f_max) * u_compute
///                      + P_mem_max  * u_memory
///   E         = P * t
///
/// Consequences that reproduce the paper's observations without per-benchmark
/// tuning: compute-bound kernels scale with core frequency (wide Pareto
/// speedup range, e.g. Sobel3 in Fig. 7b); memory-bound kernels have flat
/// runtime but large V^2 f power headroom (e.g. MatMul in Fig. 7a, 33% energy
/// saving at 5% performance loss); the static-power term makes very low
/// frequencies energy-inefficient, producing an interior energy-optimal
/// frequency (Fig. 2a).

#include "synergy/common/units.hpp"
#include "synergy/gpusim/device_spec.hpp"
#include "synergy/gpusim/kernel_profile.hpp"

namespace synergy::gpusim {

/// Issue cost, in lane-cycles, of one instruction of each feature class.
/// Ratios follow published GPU instruction throughput tables: full-rate ALU
/// ops cost 1, integer multiply ~2 (emulated on some parts), divides are
/// iterative Newton-Raphson sequences, special functions (exp/log/erf/trig)
/// expand to multi-instruction libdevice sequences on quarter-rate SFUs
/// (~20 effective lane-cycles), local-memory accesses pay shared-memory
/// bank latency.
struct op_costs {
  double int_add{1.0};
  double int_mul{2.0};
  double int_div{20.0};
  double int_bw{1.0};
  double float_add{1.0};
  double float_mul{1.0};
  double float_div{16.0};
  double sf{20.0};
  double loc_access{2.0};
};

/// Cost of one kernel execution at a given operating point.
struct kernel_cost {
  common::seconds time{0.0};
  common::watts avg_power{0.0};
  common::joules energy{0.0};
  /// Fraction of runtime the compute pipeline is busy (diagnostic).
  double compute_utilization{0.0};
  /// Fraction of runtime the DRAM pipeline is busy (diagnostic).
  double memory_utilization{0.0};
};

/// Deterministic analytic model; a single immutable instance serves any
/// number of devices and threads.
class dvfs_model {
 public:
  dvfs_model() = default;
  explicit dvfs_model(op_costs costs) : costs_(costs) {}

  /// Total weighted compute lane-cycles for one launch of `profile`.
  [[nodiscard]] double weighted_compute_cycles(const kernel_profile& profile) const;

  /// Compute-pipeline time at core clock f_core.
  [[nodiscard]] common::seconds compute_time(const device_spec& spec,
                                             const kernel_profile& profile,
                                             common::megahertz f_core) const;

  /// Memory-pipeline time at memory clock f_mem (bandwidth scales linearly
  /// with the memory clock relative to the nominal clock).
  [[nodiscard]] common::seconds memory_time(const device_spec& spec,
                                            const kernel_profile& profile,
                                            common::megahertz f_mem) const;

  /// Full evaluation: time, average power, and energy at `config`.
  [[nodiscard]] kernel_cost evaluate(const device_spec& spec, const kernel_profile& profile,
                                     common::frequency_config config) const;

  /// Board power when no kernel is resident but clocks are set to `config`
  /// (idle floor plus a small clock-tree term that grows with frequency).
  [[nodiscard]] common::watts idle_power(const device_spec& spec,
                                         common::frequency_config config) const;

  [[nodiscard]] const op_costs& costs() const { return costs_; }

 private:
  op_costs costs_{};
};

/// Worst-case (fully active) board power at a core clock — the envelope a
/// power cap must contain. Used by the NVML power-limit emulation and the
/// cluster power manager.
[[nodiscard]] double worst_case_power(const device_spec& spec, common::megahertz core_clock);

/// Largest supported core clock whose worst-case board power stays within
/// `budget_w`; the lowest clock if none qualifies.
[[nodiscard]] common::megahertz max_core_clock_under_cap(const device_spec& spec,
                                                         double budget_w);

}  // namespace synergy::gpusim

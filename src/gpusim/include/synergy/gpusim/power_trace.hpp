#pragma once

/// \file power_trace.hpp
/// Piecewise-constant board power history on a device's virtual timeline.
///
/// The trace is what the emulated vendor power sensors sample: NVML-style
/// instantaneous reads, windowed averages (modelling the ~15 ms sensor
/// granularity of paper Sec. 4.4), and exact energy integrals for validating
/// the sampled estimates in tests.

#include <ostream>
#include <vector>

#include "synergy/common/units.hpp"

namespace synergy::gpusim {

/// One constant-power interval of the device timeline.
struct power_segment {
  common::seconds start{0.0};
  common::seconds duration{0.0};
  common::watts power{0.0};
  bool busy{false};  ///< true while a kernel is resident
  /// Pipeline utilisation during the segment: the resident kernel's compute
  /// utilisation at its operating clock while busy, 0 while idle. This is
  /// what the vendor utilisation sensors sample for reactive governors.
  double utilization{0.0};

  [[nodiscard]] common::seconds end() const {
    return common::seconds{start.value + duration.value};
  }
};

/// Append-only piecewise-constant power history.
class power_trace {
 public:
  /// Append a segment; it must start exactly where the previous one ended.
  void append(power_segment segment);

  /// Instantaneous power at virtual time t (power of the covering segment;
  /// the last segment's power if t is beyond the recorded end; 0 if empty).
  [[nodiscard]] common::watts power_at(common::seconds t) const;

  /// Exact energy integral over [from, to], clipped to the recorded range.
  [[nodiscard]] common::joules energy_between(common::seconds from, common::seconds to) const;

  /// Average power over the trailing window [t - window, t]; models a sensor
  /// that can only report averages over its internal accumulation window.
  [[nodiscard]] common::watts windowed_average(common::seconds t, common::seconds window) const;

  /// Fraction of [from, to] spent in busy segments, clipped to the recorded
  /// range (0 when the interval is empty or entirely unrecorded).
  [[nodiscard]] double busy_fraction(common::seconds from, common::seconds to) const;

  /// Time-weighted mean segment utilisation over the trailing window
  /// [t - window, t] — the utilisation counterpart of windowed_average,
  /// feeding the reactive governors' device_sample.
  [[nodiscard]] double windowed_utilization(common::seconds t, common::seconds window) const;

  [[nodiscard]] common::seconds end_time() const;
  [[nodiscard]] const std::vector<power_segment>& segments() const { return segments_; }
  [[nodiscard]] bool empty() const { return segments_.empty(); }

  /// Export the trace as CSV (start_s,duration_s,power_w,busy) for offline
  /// plotting of a device's power timeline.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<power_segment> segments_;
};

}  // namespace synergy::gpusim

#include "synergy/gpusim/device_spec.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace synergy::gpusim {

using common::megahertz;

double voltage_curve::voltage_at(megahertz f) const {
  if (f.value <= f_knee.value) return v_min;
  const double span = f_max.value - f_knee.value;
  if (span <= 0.0) return v_max;
  const double t = std::min(1.0, (f.value - f_knee.value) / span);
  return v_min + (v_max - v_min) * t;
}

bool device_spec::supports_core_clock(megahertz f) const {
  return std::binary_search(core_clocks.begin(), core_clocks.end(), f,
                            [](megahertz a, megahertz b) { return a.value < b.value; });
}

std::vector<megahertz> device_spec::supported_memory_clocks() const {
  if (memory_clocks.empty()) return {memory_clock};
  return memory_clocks;
}

bool device_spec::supports_memory_clock(megahertz f) const {
  for (const megahertz m : supported_memory_clocks())
    if (m.value == f.value) return true;
  return false;
}

megahertz device_spec::nearest_core_clock(megahertz f) const {
  if (core_clocks.empty()) throw std::logic_error("device_spec has no core clocks");
  megahertz best = core_clocks.front();
  double best_dist = std::abs(best.value - f.value);
  for (const megahertz c : core_clocks) {
    const double d = std::abs(c.value - f.value);
    if (d < best_dist) {
      best = c;
      best_dist = d;
    }
  }
  return best;
}

namespace {

/// n clocks evenly spread over [lo, hi], rounded to whole MHz, endpoints
/// exact. `force` values (e.g. the driver default) replace the nearest
/// generated entry so they appear verbatim in the table.
std::vector<megahertz> spread_clocks(double lo, double hi, std::size_t n,
                                     std::vector<double> force = {}) {
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    vals[i] = std::round(lo + (hi - lo) * t);
  }
  vals.front() = lo;
  vals.back() = hi;
  for (const double f : force) {
    std::size_t best = 0;
    double best_dist = std::abs(vals[0] - f);
    for (std::size_t i = 1; i < n; ++i) {
      const double d = std::abs(vals[i] - f);
      if (d < best_dist) {
        best = i;
        best_dist = d;
      }
    }
    vals[best] = f;
  }
  std::vector<megahertz> out;
  out.reserve(n);
  for (const double v : vals) out.emplace_back(v);
  return out;
}

std::size_t index_of(const std::vector<megahertz>& clocks, double f) {
  for (std::size_t i = 0; i < clocks.size(); ++i)
    if (clocks[i].value == f) return i;
  throw std::logic_error("clock not present in table");
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

}  // namespace

device_spec make_v100() {
  device_spec spec;
  spec.name = "NVIDIA Tesla V100";
  spec.vendor = vendor_kind::nvidia;
  spec.num_compute_units = 80;
  spec.lanes_per_unit = 64;
  spec.mem_bandwidth_gbs = 900.0;
  spec.idle_power_w = 42.0;
  spec.max_board_power_w = 300.0;
  spec.mem_power_fraction = 0.30;
  spec.vf_curve = {.v_min = 0.55, .v_max = 1.25, .f_knee = megahertz{570.0},
                   .f_max = megahertz{1530.0}};
  spec.memory_clock = megahertz{877.0};
  // Paper Fig. 1: 196 configurations from 135 to 1530 MHz (~7 MHz steps);
  // the driver default application clock 1312 MHz is forced into the table.
  spec.core_clocks = spread_clocks(135.0, 1530.0, 196, {1312.0});
  spec.default_clock_index = index_of(spec.core_clocks, 1312.0);
  return spec;
}

device_spec make_a100() {
  device_spec spec;
  spec.name = "NVIDIA A100";
  spec.vendor = vendor_kind::nvidia;
  spec.num_compute_units = 108;
  spec.lanes_per_unit = 64;
  spec.mem_bandwidth_gbs = 1555.0;
  spec.idle_power_w = 52.0;
  spec.max_board_power_w = 400.0;
  spec.mem_power_fraction = 0.32;
  spec.vf_curve = {.v_min = 0.54, .v_max = 1.22, .f_knee = megahertz{525.0},
                   .f_max = megahertz{1410.0}};
  spec.memory_clock = megahertz{1215.0};
  // Paper Fig. 1: 81 configurations from 210 to 1410 MHz (exact 15 MHz steps).
  spec.core_clocks.clear();
  for (int i = 0; i <= 80; ++i) spec.core_clocks.emplace_back(210.0 + 15.0 * i);
  spec.default_clock_index = spec.core_clocks.size() - 1;  // default == max boost
  return spec;
}

device_spec make_mi100() {
  device_spec spec;
  spec.name = "AMD Instinct MI100";
  spec.vendor = vendor_kind::amd;
  spec.num_compute_units = 120;
  spec.lanes_per_unit = 64;
  spec.mem_bandwidth_gbs = 1228.0;
  spec.idle_power_w = 37.0;
  spec.max_board_power_w = 290.0;
  spec.mem_power_fraction = 0.33;
  spec.vf_curve = {.v_min = 0.56, .v_max = 1.23, .f_knee = megahertz{560.0},
                   .f_max = megahertz{1502.0}};
  spec.memory_clock = megahertz{1200.0};
  // Paper Fig. 1: 16 sclk performance levels from 300 to 1502 MHz. The level
  // spacing follows the published MI100 pp_dpm_sclk table shape: coarse at
  // the bottom, fine near the top.
  const double levels[] = {300,  491,  630,  759,  850,  930,  999,  1060,
                           1120, 1182, 1242, 1302, 1356, 1406, 1455, 1502};
  spec.core_clocks.clear();
  for (const double f : levels) spec.core_clocks.emplace_back(f);
  // AMD auto-DVFS runs compute workloads at the top level by default.
  spec.default_clock_index = spec.core_clocks.size() - 1;
  return spec;
}

device_spec make_titanx() {
  device_spec spec;
  spec.name = "NVIDIA Titan X (Pascal)";
  spec.vendor = vendor_kind::nvidia;
  spec.num_compute_units = 28;  // SMs
  spec.lanes_per_unit = 128;
  spec.mem_bandwidth_gbs = 480.0;
  spec.idle_power_w = 15.0;
  spec.max_board_power_w = 250.0;
  // GDDR5X burns a larger share of board power than HBM, which is what
  // makes its memory-frequency scaling worthwhile (paper Sec. 2.1).
  spec.mem_power_fraction = 0.40;
  spec.vf_curve = {.v_min = 0.60, .v_max = 1.25, .f_knee = megahertz{700.0},
                   .f_max = megahertz{1911.0}};
  spec.memory_clock = megahertz{5005.0};
  // The four selectable memory clocks of the Pascal Titan X.
  spec.memory_clocks = {megahertz{405.0}, megahertz{810.0}, megahertz{4513.0},
                        megahertz{5005.0}};
  spec.core_clocks = spread_clocks(139.0, 1911.0, 140);
  spec.default_clock_index = index_of(
      spec.core_clocks, spec.nearest_core_clock(megahertz{1417.0}).value);
  return spec;
}

device_spec make_pvc() {
  device_spec spec;
  spec.name = "Intel Data Center GPU Max 1550";
  spec.vendor = vendor_kind::intel;
  spec.num_compute_units = 128;  // Xe cores
  spec.lanes_per_unit = 128;     // 8 vector engines x 16 lanes
  spec.mem_bandwidth_gbs = 3277.0;
  spec.idle_power_w = 95.0;
  spec.max_board_power_w = 600.0;
  spec.mem_power_fraction = 0.34;
  spec.vf_curve = {.v_min = 0.58, .v_max = 1.20, .f_knee = megahertz{600.0},
                   .f_max = megahertz{1600.0}};
  spec.memory_clock = megahertz{1565.0};
  // Level Zero exposes a dense clock list: 900-1600 MHz in 50 MHz steps.
  spec.core_clocks.clear();
  for (int f = 900; f <= 1600; f += 50) spec.core_clocks.emplace_back(f);
  spec.default_clock_index = spec.core_clocks.size() - 1;
  return spec;
}

device_spec make_device_spec(const std::string& name) {
  const std::string key = upper(name);
  if (key == "V100" || key == "NVIDIA TESLA V100") return make_v100();
  if (key == "A100" || key == "NVIDIA A100") return make_a100();
  if (key == "MI100" || key == "AMD INSTINCT MI100") return make_mi100();
  if (key == "PVC" || key == "MAX1550" || key == "INTEL DATA CENTER GPU MAX 1550")
    return make_pvc();
  if (key == "TITANX" || key == "NVIDIA TITAN X (PASCAL)") return make_titanx();
  throw std::invalid_argument("unknown device: " + name);
}

std::vector<std::string> known_device_names() { return {"V100", "A100", "MI100"}; }

}  // namespace synergy::gpusim

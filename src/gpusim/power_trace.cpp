#include "synergy/gpusim/power_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace synergy::gpusim {

using common::joules;
using common::seconds;
using common::watts;

void power_trace::append(power_segment segment) {
  if (segment.duration.value < 0.0) throw std::invalid_argument("negative segment duration");
  if (!segments_.empty()) {
    const double expected = segments_.back().end().value;
    if (std::abs(segment.start.value - expected) > 1e-12 * std::max(1.0, expected))
      throw std::invalid_argument("power trace segments must be contiguous");
    segment.start = seconds{expected};
  }
  if (segment.duration.value == 0.0) return;
  segments_.push_back(segment);
}

watts power_trace::power_at(seconds t) const {
  if (segments_.empty()) return watts{0.0};
  if (t.value <= segments_.front().start.value) return segments_.front().power;
  // Binary search for the covering segment.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), t.value,
                             [](double v, const power_segment& s) { return v < s.start.value; });
  if (it == segments_.begin()) return segments_.front().power;
  --it;
  return it->power;
}

joules power_trace::energy_between(seconds from, seconds to) const {
  if (segments_.empty() || to.value <= from.value) return joules{0.0};
  double total = 0.0;
  for (const power_segment& s : segments_) {
    const double lo = std::max(from.value, s.start.value);
    const double hi = std::min(to.value, s.end().value);
    if (hi > lo) total += s.power.value * (hi - lo);
  }
  return joules{total};
}

watts power_trace::windowed_average(seconds t, seconds window) const {
  if (window.value <= 0.0) return power_at(t);
  const double from = std::max(0.0, t.value - window.value);
  const double span = t.value - from;
  if (span <= 0.0) return power_at(t);
  return watts{energy_between(seconds{from}, t).value / span};
}

double power_trace::busy_fraction(seconds from, seconds to) const {
  if (segments_.empty() || to.value <= from.value) return 0.0;
  double busy = 0.0;
  double covered = 0.0;
  for (const power_segment& s : segments_) {
    const double lo = std::max(from.value, s.start.value);
    const double hi = std::min(to.value, s.end().value);
    if (hi <= lo) continue;
    covered += hi - lo;
    if (s.busy) busy += hi - lo;
  }
  return covered > 0.0 ? busy / covered : 0.0;
}

double power_trace::windowed_utilization(seconds t, seconds window) const {
  if (segments_.empty()) return 0.0;
  double from = std::max(0.0, t.value - std::max(0.0, window.value));
  if (from >= t.value) from = std::max(0.0, t.value - 1e-9);
  double weighted = 0.0;
  double covered = 0.0;
  for (const power_segment& s : segments_) {
    const double lo = std::max(from, s.start.value);
    const double hi = std::min(t.value, s.end().value);
    if (hi <= lo) continue;
    covered += hi - lo;
    weighted += s.utilization * (hi - lo);
  }
  return covered > 0.0 ? weighted / covered : 0.0;
}

seconds power_trace::end_time() const {
  return segments_.empty() ? seconds{0.0} : segments_.back().end();
}

void power_trace::write_csv(std::ostream& os) const {
  os << "start_s,duration_s,power_w,busy\n";
  for (const power_segment& s : segments_)
    os << s.start.value << ',' << s.duration.value << ',' << s.power.value << ','
       << (s.busy ? 1 : 0) << '\n';
}

}  // namespace synergy::gpusim

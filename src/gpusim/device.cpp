#include "synergy/gpusim/device.hpp"

#include <cmath>

#include "synergy/obs/energy_ledger.hpp"
#include "synergy/telemetry/telemetry.hpp"

namespace synergy::gpusim {

using common::errc;
using common::error;
using common::frequency_config;
using common::joules;
using common::megahertz;
using common::seconds;
using common::status;
using common::watts;

device::device(device_spec spec, noise_config noise)
    : spec_(std::move(spec)), noise_(noise), rng_(noise.seed) {
  config_ = spec_.default_config();
}

status device::set_core_clock(megahertz f) {
  std::scoped_lock lock(mutex_);
  if (!spec_.supports_core_clock(f))
    return error{errc::not_supported,
                 "core clock " + std::to_string(f.value) + " MHz not in clock table"};
  if ((bound_lo_ && f < *bound_lo_) || (bound_hi_ && f > *bound_hi_))
    return error{errc::no_permission, "core clock outside locked bounds"};
  config_.core = f;
  return status::success();
}

status device::set_application_clocks(frequency_config config) {
  {
    std::scoped_lock lock(mutex_);
    if (!spec_.supports_memory_clock(config.memory))
      return error{errc::not_supported, "memory clock " + std::to_string(config.memory.value) +
                                            " MHz not selectable on this device"};
    config_.memory = config.memory;
  }
  return set_core_clock(config.core);
}

void device::reset_core_clock() {
  std::scoped_lock lock(mutex_);
  config_ = spec_.default_config();
}

status device::set_clock_bounds(megahertz lo, megahertz hi) {
  std::scoped_lock lock(mutex_);
  if (lo > hi) return error{errc::invalid_argument, "clock bounds inverted"};
  bound_lo_ = lo;
  bound_hi_ = hi;
  if (config_.core < lo) config_.core = spec_.nearest_core_clock(lo);
  if (config_.core > hi) config_.core = spec_.nearest_core_clock(hi);
  return status::success();
}

void device::clear_clock_bounds() {
  std::scoped_lock lock(mutex_);
  bound_lo_.reset();
  bound_hi_.reset();
}

frequency_config device::current_config() const {
  std::scoped_lock lock(mutex_);
  return config_;
}

execution_record device::execute(const kernel_profile& profile) {
  std::scoped_lock lock(mutex_);
  kernel_cost cost = model_.evaluate(spec_, profile, config_);

  if (noise_.time_sigma > 0.0)
    cost.time = seconds{cost.time.value * std::exp(noise_.time_sigma * rng_.normal())};
  if (noise_.power_sigma > 0.0)
    cost.avg_power = watts{cost.avg_power.value * std::exp(noise_.power_sigma * rng_.normal())};
  cost.avg_power = watts{cost.avg_power.value * skew_at_current_locked()};
  cost.energy = cost.avg_power * cost.time;

  execution_record record;
  record.start = clock_;
  record.cost = cost;
  record.config = config_;

  append_segment_locked(cost.time, cost.avg_power, /*busy=*/true,
                        cost.compute_utilization);
  ++kernel_count_;

  // Per-kernel execution on the simulated device timeline (pid 2): the
  // fine-grained visibility of paper Sec. 2.2, one complete event per
  // launch with its energy/power/operating point.
  SYNERGY_COUNTER_ADD("gpusim.kernels_executed", 1);
  SYNERGY_HISTOGRAM_OBSERVE("gpusim.kernel_energy_j", cost.energy.value, 0.001, 0.01, 0.1,
                            1.0, 10.0, 100.0);
#if SYNERGY_TELEMETRY_ENABLED
  {
    // Energy attribution: the decision layer (queue, resilience) opened a
    // thread-local scope saying who spends and why; this is where the
    // joules are actually priced, so this is where they are charged.
    const auto& attr = obs::current_attribution();
    SYNERGY_OBS_CHARGE(
        (obs::charge_key{attr.node, spec_.name, attr.job,
                         profile.name.empty() ? "kernel" : profile.name}),
        attr.why, cost.energy.value);
  }
#endif
#if SYNERGY_TELEMETRY_ENABLED
  if (telemetry::enabled())
    telemetry::trace_recorder::instance().complete(
        telemetry::category::kernel, profile.name.empty() ? "kernel" : profile.name,
        record.start.value * 1e6, cost.time.value * 1e6, telemetry::trace_event::device_pid,
        {{"energy_j", cost.energy.value},
         {"avg_power_w", cost.avg_power.value},
         {"core_mhz", config_.core.value},
         {"mem_mhz", config_.memory.value}});
#endif
  return record;
}

void device::advance_idle(seconds dt) {
  if (dt.value <= 0.0) return;
  std::scoped_lock lock(mutex_);
  const watts idle{model_.idle_power(spec_, config_).value * skew_at_current_locked()};
  append_segment_locked(dt, idle, /*busy=*/false);
#if SYNERGY_TELEMETRY_ENABLED
  // Idle draw is attributed as such unless a scope overrides it — the
  // resilience layer's retry backoff tags its burn cause::fault_wasted.
  const auto& attr = obs::current_attribution();
  SYNERGY_OBS_CHARGE(
      (obs::charge_key{attr.node, spec_.name, attr.job, "idle"}),
      attr.why == obs::cause::unattributed ? obs::cause::idle : attr.why,
      idle.value * dt.value);
#endif
}

void device::set_power_skew(double factor, double freq_exponent) {
  if (!std::isfinite(factor) || factor <= 0.0 || !std::isfinite(freq_exponent)) return;
  std::scoped_lock lock(mutex_);
  power_skew_ = factor;
  power_skew_gamma_ = freq_exponent;
}

double device::power_skew() const {
  std::scoped_lock lock(mutex_);
  return power_skew_;
}

double device::power_skew_exponent() const {
  std::scoped_lock lock(mutex_);
  return power_skew_gamma_;
}

double device::skew_at_current_locked() const {
  if (power_skew_gamma_ == 0.0) return power_skew_;
  const double f_default = spec_.default_config().core.value;
  if (f_default <= 0.0) return power_skew_;
  return power_skew_ * std::pow(config_.core.value / f_default, power_skew_gamma_);
}

seconds device::now() const {
  std::scoped_lock lock(mutex_);
  return clock_;
}

joules device::total_energy() const {
  std::scoped_lock lock(mutex_);
  return energy_;
}

watts device::instantaneous_power() const {
  std::scoped_lock lock(mutex_);
  if (trace_.empty()) return model_.idle_power(spec_, config_);
  return trace_.power_at(clock_);
}

watts device::windowed_power(seconds window) const {
  std::scoped_lock lock(mutex_);
  if (trace_.empty()) return model_.idle_power(spec_, config_);
  return trace_.windowed_average(clock_, window);
}

joules device::energy_between(seconds from, seconds to) const {
  std::scoped_lock lock(mutex_);
  return trace_.energy_between(from, to);
}

std::size_t device::kernels_executed() const {
  std::scoped_lock lock(mutex_);
  return kernel_count_;
}

power_trace device::trace_copy() const {
  std::scoped_lock lock(mutex_);
  return trace_;
}

void device::append_segment_locked(seconds duration, watts power, bool busy,
                                   double utilization) {
  trace_.append({clock_, duration, power, busy, utilization});
  clock_ += duration;
  energy_ += power * duration;
}

double device::windowed_utilization(seconds window) const {
  std::scoped_lock lock(mutex_);
  if (trace_.empty()) return 0.0;
  return trace_.windowed_utilization(clock_, window);
}

}  // namespace synergy::gpusim

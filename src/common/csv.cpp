#include "synergy/common/csv.hpp"

#include <cmath>
#include <cstdio>

namespace synergy::common {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void csv_writer::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) *os_ << ',';
    first = false;
    *os_ << (needs_quoting(field) ? quote(field) : field);
  }
  *os_ << '\n';
}

std::string csv_writer::num(double v) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::vector<std::string> split_csv_records(const std::string& text) {
  std::vector<std::string> records;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') {
      // A doubled quote inside a quoted field toggles twice: net unchanged.
      in_quotes = !in_quotes;
      current += c;
    } else if (c == '\n' && !in_quotes) {
      if (!current.empty() && current.back() == '\r') current.pop_back();  // CRLF
      records.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) {  // last record of a file without a trailing newline
    if (current.back() == '\r') current.pop_back();
    records.push_back(std::move(current));
  }
  return records;
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace synergy::common

#pragma once

/// \file log.hpp
/// Minimal leveled logger with structured fields.
///
/// The scheduler simulation and the SLURM plugin log their prologue/epilogue
/// decisions through this; tests capture the sink to assert on decision
/// traces without parsing stderr.
///
/// Records optionally carry structured key=value fields. The sink keeps its
/// historical (level, message) signature — fields are rendered into the
/// message as " key=value" suffixes — while taps (see set_tap) receive the
/// fields separately; the telemetry layer uses a tap to mirror log records
/// into the trace ring.

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace synergy::common {

enum class log_level { debug, info, warn, error, off };

[[nodiscard]] constexpr const char* to_string(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}

/// One structured key=value pair; any streamable value converts.
struct log_field {
  std::string key;
  std::string value;

  log_field(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  log_field(std::string k, const char* v) : key(std::move(k)), value(v) {}
  template <typename T>
    requires(!std::is_convertible_v<T, std::string>)
  log_field(std::string k, const T& v) : key(std::move(k)) {
    std::ostringstream oss;
    oss << v;
    value = oss.str();
  }
};

using log_fields = std::vector<log_field>;

/// Render fields as ` key=value key2="two words"` (empty string if none).
[[nodiscard]] std::string format_fields(const log_fields& fields);

/// Process-wide logger with a swappable sink. Thread-safe: the level is
/// atomic, and sink/tap swaps and invocations are serialised behind one
/// mutex, so concurrent log() calls never race a set_sink() and capture
/// sinks need no locking of their own. Sinks must not call back into the
/// logger (the mutex is not recursive).
class logger {
 public:
  using sink_fn = std::function<void(log_level, const std::string&)>;
  /// Taps observe every accepted record with its structured fields intact.
  using tap_fn = std::function<void(log_level, const std::string&, const log_fields&)>;

  /// Global instance (default sink: stderr, level warn so tests stay quiet).
  static logger& instance();

  void set_level(log_level level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] log_level level() const { return level_.load(std::memory_order_relaxed); }

  /// Replace the sink; returns the previous sink so tests can restore it.
  sink_fn set_sink(sink_fn sink);

  /// Install (or clear, with nullptr) the tap; returns the previous tap.
  tap_fn set_tap(tap_fn tap);

  void log(log_level level, const std::string& message) { log(level, message, {}); }
  void log(log_level level, const std::string& message, const log_fields& fields);

 private:
  logger();
  std::atomic<log_level> level_{log_level::warn};
  std::mutex mutex_;  ///< guards sink_/tap_ swap and invocation
  sink_fn sink_;
  tap_fn tap_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  logger::instance().log(log_level::debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  logger::instance().log(log_level::info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  logger::instance().log(log_level::warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  logger::instance().log(log_level::error, detail::concat(std::forward<Args>(args)...));
}

/// Structured variants: message plus explicit key=value fields.
inline void log_debug_kv(const std::string& message, const log_fields& fields) {
  logger::instance().log(log_level::debug, message, fields);
}
inline void log_info_kv(const std::string& message, const log_fields& fields) {
  logger::instance().log(log_level::info, message, fields);
}
inline void log_warn_kv(const std::string& message, const log_fields& fields) {
  logger::instance().log(log_level::warn, message, fields);
}
inline void log_error_kv(const std::string& message, const log_fields& fields) {
  logger::instance().log(log_level::error, message, fields);
}

}  // namespace synergy::common

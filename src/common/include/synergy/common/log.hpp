#pragma once

/// \file log.hpp
/// Minimal leveled logger.
///
/// The scheduler simulation and the SLURM plugin log their prologue/epilogue
/// decisions through this; tests capture the sink to assert on decision
/// traces without parsing stderr.

#include <functional>
#include <sstream>
#include <string>

namespace synergy::common {

enum class log_level { debug, info, warn, error, off };

[[nodiscard]] constexpr const char* to_string(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}

/// Process-wide logger with a swappable sink. Not thread-registered per
/// component: the simulation is small enough that a single logger with
/// component tags in messages suffices.
class logger {
 public:
  using sink_fn = std::function<void(log_level, const std::string&)>;

  /// Global instance (default sink: stderr, level warn so tests stay quiet).
  static logger& instance();

  void set_level(log_level level) { level_ = level; }
  [[nodiscard]] log_level level() const { return level_; }

  /// Replace the sink; returns the previous sink so tests can restore it.
  sink_fn set_sink(sink_fn sink);

  void log(log_level level, const std::string& message);

 private:
  logger();
  log_level level_{log_level::warn};
  sink_fn sink_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  logger::instance().log(log_level::debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  logger::instance().log(log_level::info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  logger::instance().log(log_level::warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  logger::instance().log(log_level::error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace synergy::common

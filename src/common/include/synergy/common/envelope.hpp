#pragma once

/// \file envelope.hpp
/// Versioned, checksummed on-disk envelope for persisted artefacts.
///
/// Every artefact the deployment workflow ships across a cluster (trained
/// regressors, feature envelopes, tuning tables — paper Sec. 3.2) is sealed
/// into a one-line header plus payload:
///
///   synergy_envelope v1 <kind> <payload_version> <payload_bytes> <crc32-hex>
///   <payload bytes...>
///
/// `open()` verifies the header shape, the artefact kind, the byte count
/// (truncation), and the CRC-32 (corruption) before handing the payload to
/// any parser, and reports each failure as a machine-readable category —
/// a flipped bit on disk becomes a diagnostic, never UB inside a
/// deserializer. Writers pair `seal()` with `atomic_write_file()` so a crash
/// mid-save can never leave a half-written artefact under the final name.

#include <filesystem>
#include <string>
#include <string_view>

#include "synergy/common/error.hpp"

namespace synergy::common::envelope {

inline constexpr std::string_view magic = "synergy_envelope v1";

/// Why an envelope failed to open. `version_skew` is split out from the
/// corruption categories because it calls for a retrain/reship, not a
/// restore-from-backup.
enum class fault {
  none,
  not_an_envelope,    ///< header line missing or malformed
  kind_mismatch,      ///< sealed as a different artefact kind
  version_skew,       ///< payload format version newer than this build reads
  truncated,          ///< fewer payload bytes than the header promises
  checksum_mismatch,  ///< CRC-32 over the payload does not match
};

[[nodiscard]] constexpr const char* to_string(fault f) {
  switch (f) {
    case fault::none: return "ok";
    case fault::not_an_envelope: return "not_an_envelope";
    case fault::kind_mismatch: return "kind_mismatch";
    case fault::version_skew: return "version_skew";
    case fault::truncated: return "truncated";
    case fault::checksum_mismatch: return "checksum_mismatch";
  }
  return "unknown";
}

/// Seal `payload` as artefact `kind` at payload format `version`.
[[nodiscard]] std::string seal(std::string_view kind, unsigned version,
                               std::string_view payload);

struct opened {
  fault error{fault::none};
  std::string detail;   ///< human-readable failure description (empty when ok)
  std::string kind;     ///< artefact kind from the header (when parseable)
  unsigned version{0};  ///< payload format version from the header
  std::string payload;  ///< verified payload (only when ok())

  [[nodiscard]] bool ok() const { return error == fault::none; }
};

/// Verify and unwrap `text`. `expected_kind` must match the sealed kind;
/// `max_version` is the newest payload format this build understands.
[[nodiscard]] opened open(std::string_view text, std::string_view expected_kind,
                          unsigned max_version);

/// Whether `text` even looks like a sealed envelope (for accepting legacy
/// bare artefacts with a diagnostic instead of a hard failure).
[[nodiscard]] bool looks_sealed(std::string_view text);

}  // namespace synergy::common::envelope

namespace synergy::common {

/// Crash-safe file write: the content goes to `<path>.tmp` in the same
/// directory and is renamed over `path` only once fully flushed, so readers
/// see either the old artefact or the new one, never a torn half-write.
[[nodiscard]] status atomic_write_file(const std::filesystem::path& path,
                                       std::string_view content);

}  // namespace synergy::common

#pragma once

/// \file table.hpp
/// Aligned text-table printing for the figure/table reproduction benches.

#include <ostream>
#include <string>
#include <vector>

namespace synergy::common {

/// Collects rows of string cells and prints them column-aligned with a header
/// rule, mimicking the row layout of the paper's tables.
class text_table {
 public:
  /// Set the header row (also defines column count; extra row cells are kept).
  void header(std::vector<std::string> cells);

  /// Append one data row.
  void row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Print with 2-space column gaps; numeric-looking cells right-aligned.
  void print(std::ostream& os) const;

  /// Fixed-precision formatting helper for table cells.
  [[nodiscard]] static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner used by every bench binary to delimit figures.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace synergy::common

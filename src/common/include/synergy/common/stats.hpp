#pragma once

/// \file stats.hpp
/// Small statistics helpers shared by the ML library and the bench harnesses.

#include <span>
#include <vector>

namespace synergy::common {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 when fewer than 2 values.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Minimum; +inf for an empty span.
[[nodiscard]] double min_value(std::span<const double> xs);

/// Maximum; -inf for an empty span.
[[nodiscard]] double max_value(std::span<const double> xs);

/// n evenly spaced values from lo to hi inclusive (n >= 2), or {lo} if n == 1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Pearson correlation coefficient; 0 when either side has zero variance.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace synergy::common

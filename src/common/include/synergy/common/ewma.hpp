#pragma once

/// \file ewma.hpp
/// Exponentially-weighted and windowed moving averages.
///
/// Shared smoothing primitives for the sensor readback paths: the vendor
/// power readback keeps a per-device EWMA next to the raw sensor value, the
/// reactive governors smooth their utilisation/power inputs with it, and
/// synergy_top uses it to steady the watch-mode average-watts readout.
///
/// Both classes define their partial behaviour explicitly:
///  - an `ewma` with no observations reports `seed` (0 by default) and
///    `empty() == true`; the first observation becomes the value exactly
///    (no pull toward the seed);
///  - a `moving_average` averages over however many samples exist until the
///    window fills — never dividing by the full capacity early.

#include <cstddef>
#include <vector>

namespace synergy::common {

/// Exponentially-weighted moving average: value += alpha * (x - value).
/// Deterministic, allocation-free, and safe to reset mid-stream.
class ewma {
 public:
  /// `alpha` in (0, 1]: 1 tracks the raw signal, small values smooth hard.
  /// Out-of-range alphas are clamped into (0, 1].
  explicit ewma(double alpha = 0.25, double seed = 0.0)
      : alpha_(alpha <= 0.0 ? 1e-3 : alpha > 1.0 ? 1.0 : alpha), seed_(seed), value_(seed) {}

  /// Fold one observation in. The first observation *becomes* the value so
  /// a fresh average never drags the seed into the early readings.
  void observe(double x) {
    if (count_ == 0)
      value_ = x;
    else
      value_ += alpha_ * (x - value_);
    ++count_;
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Forget everything: value returns to the seed, count to zero.
  void reset() {
    value_ = seed_;
    count_ = 0;
  }

 private:
  double alpha_;
  double seed_;
  double value_;
  std::size_t count_{0};
};

/// Fixed-capacity windowed moving average over the last `capacity` samples.
class moving_average {
 public:
  explicit moving_average(std::size_t capacity = 8)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  void observe(double x) {
    if (ring_.size() < capacity_) {
      ring_.push_back(x);
    } else {
      sum_ -= ring_[next_];
      ring_[next_] = x;
      next_ = (next_ + 1) % capacity_;
    }
    sum_ += x;
    ++count_;
  }

  /// Average over the samples currently in the window; a partially-filled
  /// window divides by the number of samples seen, and an empty one reads 0.
  [[nodiscard]] double value() const {
    return ring_.empty() ? 0.0 : sum_ / static_cast<double>(ring_.size());
  }

  [[nodiscard]] bool empty() const { return ring_.empty(); }
  [[nodiscard]] bool full() const { return ring_.size() == capacity_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Total observations ever folded in (not capped by the window).
  [[nodiscard]] std::size_t count() const { return count_; }

  void reset() {
    ring_.clear();
    sum_ = 0.0;
    next_ = 0;
    count_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<double> ring_;
  double sum_{0.0};
  std::size_t next_{0};
  std::size_t count_{0};
};

}  // namespace synergy::common

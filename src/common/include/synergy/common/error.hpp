#pragma once

/// \file error.hpp
/// Lightweight status/result types.
///
/// The vendor emulation layer mirrors NVML's status-code style (operations on
/// devices can fail for permission or capability reasons and callers must
/// branch on the reason), so errors are values, not exceptions, on those
/// paths. Exceptions remain for programming errors (precondition violations).

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace synergy::common {

/// Machine-readable failure category, modelled after vendor-library return
/// codes (e.g. NVML_ERROR_NO_PERMISSION, NVML_ERROR_NOT_SUPPORTED).
enum class errc {
  ok,
  not_found,
  not_supported,
  no_permission,
  invalid_argument,
  uninitialized,
  already_exists,
  unavailable,
  internal,
  device_lost,
};

/// Human-readable name of an error category.
[[nodiscard]] constexpr const char* to_string(errc code) {
  switch (code) {
    case errc::ok: return "ok";
    case errc::not_found: return "not_found";
    case errc::not_supported: return "not_supported";
    case errc::no_permission: return "no_permission";
    case errc::invalid_argument: return "invalid_argument";
    case errc::uninitialized: return "uninitialized";
    case errc::already_exists: return "already_exists";
    case errc::unavailable: return "unavailable";
    case errc::internal: return "internal";
    case errc::device_lost: return "device_lost";
  }
  return "unknown";
}

/// An error with a category and a context message.
struct error {
  errc code{errc::internal};
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(common::to_string(code)) + ": " + message;
  }
};

/// Minimal expected-like result: either a value or an error.
///
/// `value()` throws std::runtime_error when called on an error result, which
/// keeps test code terse while library code branches with `has_value()`.
template <typename T>
class result {
 public:
  result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  result(error err) : storage_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const T& value() const& {
    if (!has_value()) throw std::runtime_error("result::value on error: " + err().to_string());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    if (!has_value()) throw std::runtime_error("result::value on error: " + err().to_string());
    return std::get<T>(std::move(storage_));
  }
  [[nodiscard]] const error& err() const {
    return std::get<error>(storage_);
  }
  /// Value or a fallback when this result holds an error.
  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, error> storage_;
};

/// Result specialisation for operations with no payload.
class status {
 public:
  status() = default;
  status(error err) : err_(std::move(err)), ok_(false) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  [[nodiscard]] const error& err() const { return err_; }

  static status success() { return {}; }

 private:
  error err_{errc::ok, ""};
  bool ok_{true};
};

}  // namespace synergy::common

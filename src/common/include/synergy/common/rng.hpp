#pragma once

/// \file rng.hpp
/// Deterministic PCG32 random number generator.
///
/// Every stochastic component in the repository (sensor noise, random forest
/// bootstrap, workload generators) draws from an explicitly seeded pcg32 so
/// that experiments and tests are bit-reproducible across runs and platforms —
/// std::mt19937 distributions are not portable across standard libraries.

#include <cstdint>

namespace synergy::common {

/// Mid-stream snapshot of a pcg32 (checkpoint/resume support). The spare
/// normal variate from the Marsaglia polar method is part of the stream
/// state: dropping it would shift every draw after the restore point.
struct pcg32_state {
  std::uint64_t state{0};
  std::uint64_t inc{0};
  bool has_spare{false};
  double spare{0.0};
};

/// PCG-XSH-RR 64/32 generator (O'Neill, 2014). Small, fast, statistically
/// strong, and with a guaranteed cross-platform output sequence.
class pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr explicit pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                           std::uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  constexpr result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next()) * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) without modulo bias.
  constexpr std::uint32_t bounded(std::uint32_t bound) {
    if (bound == 0) return 0;
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Standard normal variate (Marsaglia polar method).
  double normal();

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Export the exact mid-stream state (bit-identical continuation).
  [[nodiscard]] constexpr pcg32_state state() const {
    return {state_, inc_, has_spare_, spare_};
  }

  /// Resume from an exported state: the next draw equals what the exporting
  /// generator would have produced.
  constexpr void set_state(const pcg32_state& s) {
    state_ = s.state;
    inc_ = s.inc;
    has_spare_ = s.has_spare;
    spare_ = s.spare;
  }

 private:
  constexpr result_type next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((0u - rot) & 31u));
  }

  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_spare_{false};
  double spare_{0.0};

  friend class pcg32_test_peer;
};

}  // namespace synergy::common

#pragma once

/// \file checksum.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte strings.
///
/// Used by the persistence envelope (envelope.hpp) to detect on-disk
/// corruption of serialized models and tuning tables before any parser ever
/// sees the payload. The table is built at compile time, so there is no
/// global initialisation order to worry about.

#include <array>
#include <cstdint>
#include <string_view>

namespace synergy::common {

namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32_table = make_crc32_table();

}  // namespace detail

/// CRC-32 of `data`, optionally chained from a previous checksum.
[[nodiscard]] constexpr std::uint32_t crc32(std::string_view data,
                                            std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : data)
    c = detail::crc32_table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace synergy::common

#pragma once

/// \file csv.hpp
/// CSV emission for bench harnesses and model-training artefacts.
///
/// Each figure/table bench prints both a human-readable table and a CSV block
/// so the paper's plots can be regenerated with any plotting tool.

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace synergy::common {

/// Streaming CSV writer with RFC-4180-style quoting.
class csv_writer {
 public:
  explicit csv_writer(std::ostream& os) : os_(&os) {}

  /// Write one row; fields containing separators/quotes/newlines are quoted.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string> fields) {
    row(std::vector<std::string>(fields));
  }

  /// Format a double with enough precision to round-trip typical metrics.
  [[nodiscard]] static std::string num(double v);

 private:
  std::ostream* os_;
};

/// Parse one CSV line into fields (handles quoted fields with embedded
/// separators and doubled quotes). Used by the model registry loader.
[[nodiscard]] std::vector<std::string> parse_csv_line(const std::string& line);

/// Split `text` into physical CSV records. Unlike a getline loop this is
/// quote-aware and line-ending-robust:
///  - a newline inside a quoted field does NOT end the record (csv_writer
///    quotes such fields, so round-trips survive embedded newlines);
///  - CRLF line endings are accepted — the terminating `\r` is stripped
///    outside quotes but preserved inside them;
///  - a file missing its trailing newline still yields its last record.
/// Empty records (blank lines) are preserved so callers can skip them with
/// their own comment/blank policy.
[[nodiscard]] std::vector<std::string> split_csv_records(const std::string& text);

}  // namespace synergy::common

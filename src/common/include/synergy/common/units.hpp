#pragma once

/// \file units.hpp
/// Strong unit types used across the SYnergy stack.
///
/// Energy/power/time/frequency values flow through many layers (vendor
/// emulation, device model, ML features, schedulers); tagged wrappers make it
/// impossible to add a frequency to an energy or to pass (core, mem) clocks in
/// the wrong order without an explicit conversion.

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace synergy::common {

/// CRTP base for a double-valued strong unit.
///
/// Provides the arithmetic that is dimensionally meaningful for every unit
/// (addition/subtraction of like units, scaling by dimensionless factors) and
/// total ordering. Cross-unit products (e.g. W * s = J) are defined as free
/// functions next to the concrete types.
template <typename Derived>
struct unit_base {
  double value{0.0};

  constexpr unit_base() = default;
  constexpr explicit unit_base(double v) : value(v) {}

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.value + b.value}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.value - b.value}; }
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.value * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{a.value * s}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.value / s}; }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.value / b.value; }
  friend constexpr auto operator<=>(Derived a, Derived b) { return a.value <=> b.value; }
  friend constexpr bool operator==(Derived a, Derived b) { return a.value == b.value; }

  constexpr Derived& operator+=(Derived other) {
    value += other.value;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived other) {
    value -= other.value;
    return static_cast<Derived&>(*this);
  }
};

/// Clock frequency in megahertz.
struct megahertz : unit_base<megahertz> {
  using unit_base::unit_base;
  [[nodiscard]] constexpr double hz() const { return value * 1.0e6; }
};

/// Elapsed (virtual) time in seconds.
struct seconds : unit_base<seconds> {
  using unit_base::unit_base;
  [[nodiscard]] constexpr double ms() const { return value * 1.0e3; }
  [[nodiscard]] constexpr double us() const { return value * 1.0e6; }
};

/// Instantaneous power in watts.
struct watts : unit_base<watts> {
  using unit_base::unit_base;
};

/// Accumulated energy in joules.
struct joules : unit_base<joules> {
  using unit_base::unit_base;
};

/// Energy = power integrated over time.
constexpr joules operator*(watts p, seconds t) { return joules{p.value * t.value}; }
constexpr joules operator*(seconds t, watts p) { return joules{p.value * t.value}; }
/// Average power over an interval.
constexpr watts operator/(joules e, seconds t) { return watts{e.value / t.value}; }

inline std::ostream& operator<<(std::ostream& os, megahertz f) { return os << f.value << " MHz"; }
inline std::ostream& operator<<(std::ostream& os, seconds t) { return os << t.value << " s"; }
inline std::ostream& operator<<(std::ostream& os, watts p) { return os << p.value << " W"; }
inline std::ostream& operator<<(std::ostream& os, joules e) { return os << e.value << " J"; }

/// A (memory clock, core clock) operating point of a device.
///
/// Ordered lexicographically so configs can key std::map; HBM devices have a
/// single memory frequency, so in practice ordering follows the core clock.
struct frequency_config {
  megahertz memory{0.0};
  megahertz core{0.0};

  friend constexpr auto operator<=>(const frequency_config&, const frequency_config&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const frequency_config& fc) {
  return os << "(mem " << fc.memory << ", core " << fc.core << ")";
}

}  // namespace synergy::common

template <>
struct std::hash<synergy::common::frequency_config> {
  std::size_t operator()(const synergy::common::frequency_config& fc) const noexcept {
    const std::size_t a = std::hash<double>{}(fc.memory.value);
    const std::size_t b = std::hash<double>{}(fc.core.value);
    return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  }
};

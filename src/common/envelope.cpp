#include "synergy/common/envelope.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "synergy/common/checksum.hpp"

namespace synergy::common::envelope {

namespace {

std::string hex32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

}  // namespace

std::string seal(std::string_view kind, unsigned version, std::string_view payload) {
  std::ostringstream oss;
  oss << magic << ' ' << kind << ' ' << version << ' ' << payload.size() << ' '
      << hex32(crc32(payload)) << '\n'
      << payload;
  return oss.str();
}

bool looks_sealed(std::string_view text) {
  return text.substr(0, magic.size()) == magic;
}

opened open(std::string_view text, std::string_view expected_kind, unsigned max_version) {
  opened out;
  const auto fail = [&](fault f, std::string detail) {
    out.error = f;
    out.detail = std::move(detail);
    out.payload.clear();
    return out;
  };

  const auto newline = text.find('\n');
  if (newline == std::string_view::npos)
    return fail(fault::not_an_envelope, "no header line");
  const std::string header{text.substr(0, newline)};
  std::istringstream hs{header};
  std::string word_a, word_b, kind;
  unsigned version = 0;
  std::size_t payload_size = 0;
  std::string crc_hex;
  hs >> word_a >> word_b >> kind >> version >> payload_size >> crc_hex;
  if (hs.fail() || word_a + " " + word_b != magic)
    return fail(fault::not_an_envelope, "malformed header: '" + header + "'");
  out.kind = kind;
  out.version = version;
  if (kind != expected_kind)
    return fail(fault::kind_mismatch,
                "sealed as '" + kind + "', expected '" + std::string(expected_kind) + "'");
  if (version > max_version)
    return fail(fault::version_skew, "payload format v" + std::to_string(version) +
                                         ", this build reads up to v" +
                                         std::to_string(max_version));

  const std::string_view payload = text.substr(newline + 1);
  if (payload.size() < payload_size)
    return fail(fault::truncated, "payload truncated: header promises " +
                                      std::to_string(payload_size) + " bytes, file has " +
                                      std::to_string(payload.size()));
  // Trailing bytes beyond the declared size are corruption too (a splice of
  // two artefacts); the CRC below is computed over the declared window, so
  // reject the surplus explicitly.
  if (payload.size() > payload_size)
    return fail(fault::truncated, "payload size mismatch: header promises " +
                                      std::to_string(payload_size) + " bytes, file has " +
                                      std::to_string(payload.size()));
  const std::uint32_t expected_crc =
      static_cast<std::uint32_t>(std::strtoul(crc_hex.c_str(), nullptr, 16));
  const std::uint32_t actual_crc = crc32(payload);
  if (actual_crc != expected_crc)
    return fail(fault::checksum_mismatch,
                "crc32 " + hex32(actual_crc) + " != recorded " + hex32(expected_crc));
  out.payload.assign(payload);
  return out;
}

}  // namespace synergy::common::envelope

namespace synergy::common {

status atomic_write_file(const std::filesystem::path& path, std::string_view content) {
  std::error_code ec;
  const auto parent = path.parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec)
      return error{errc::internal,
                   "cannot create directory " + parent.string() + ": " + ec.message()};
  }
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) return error{errc::internal, "cannot open " + tmp + " for writing"};
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::filesystem::remove(tmp, ec);
      return error{errc::internal, "short write to " + tmp};
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return error{errc::internal,
                 "cannot rename " + tmp + " over " + path.string() + ": " + ec.message()};
  }
  return status::success();
}

}  // namespace synergy::common

#include "synergy/common/log.hpp"

#include <iostream>

namespace synergy::common {

logger::logger() {
  sink_ = [](log_level level, const std::string& message) {
    std::cerr << '[' << to_string(level) << "] " << message << '\n';
  };
}

logger& logger::instance() {
  static logger global;
  return global;
}

logger::sink_fn logger::set_sink(sink_fn sink) {
  auto previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

void logger::log(log_level level, const std::string& message) {
  if (level < level_ || level_ == log_level::off) return;
  if (sink_) sink_(level, message);
}

}  // namespace synergy::common

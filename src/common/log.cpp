#include "synergy/common/log.hpp"

#include <iostream>

namespace synergy::common {

std::string format_fields(const log_fields& fields) {
  std::string out;
  for (const auto& f : fields) {
    out += ' ';
    out += f.key;
    out += '=';
    if (f.value.find(' ') != std::string::npos) {
      out += '"';
      out += f.value;
      out += '"';
    } else {
      out += f.value;
    }
  }
  return out;
}

logger::logger() {
  sink_ = [](log_level level, const std::string& message) {
    std::cerr << '[' << to_string(level) << "] " << message << '\n';
  };
}

logger& logger::instance() {
  static logger global;
  return global;
}

logger::sink_fn logger::set_sink(sink_fn sink) {
  std::scoped_lock lock(mutex_);
  auto previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

logger::tap_fn logger::set_tap(tap_fn tap) {
  std::scoped_lock lock(mutex_);
  auto previous = std::move(tap_);
  tap_ = std::move(tap);
  return previous;
}

void logger::log(log_level level, const std::string& message, const log_fields& fields) {
  const log_level threshold = level_.load(std::memory_order_relaxed);
  if (level < threshold || threshold == log_level::off) return;
  // Invoke under the mutex: concurrent log() calls are serialised, so
  // capture sinks (tests) and stderr output need no locking of their own.
  std::scoped_lock lock(mutex_);
  if (sink_) sink_(level, fields.empty() ? message : message + format_fields(fields));
  if (tap_) tap_(level, message, fields);
}

}  // namespace synergy::common

#include "synergy/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace synergy::common {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty span");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_value(std::span<const double> xs) {
  double out = std::numeric_limits<double>::infinity();
  for (const double x : xs) out = std::min(out, x);
  return out;
}

double max_value(std::span<const double> xs) {
  double out = -std::numeric_limits<double>::infinity();
  for (const double x : xs) out = std::max(out, x);
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace synergy::common

#include "synergy/common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace synergy::common {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  bool digit_seen = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) digit_seen = true;
    else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' && c != '%') return false;
  }
  return digit_seen;
}

}  // namespace

void text_table::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void text_table::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void text_table::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) widths[i] = std::max(widths[i], r[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& r, bool align_numeric) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      const auto pad = widths[i] - r[i].size();
      const bool right = align_numeric && looks_numeric(r[i]);
      if (right) os << std::string(pad, ' ');
      os << r[i];
      if (!right) os << std::string(pad, ' ');
      if (i + 1 < r.size()) os << "  ";
    }
    os << '\n';
  };

  if (!header_.empty()) {
    print_row(header_, false);
    std::size_t total = 0;
    for (std::size_t i = 0; i < cols; ++i) total += widths[i] + (i + 1 < cols ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r, true);
}

std::string text_table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void print_banner(std::ostream& os, const std::string& title) {
  const std::string rule(std::max<std::size_t>(title.size() + 4, 60), '=');
  os << '\n' << rule << '\n' << "  " << title << '\n' << rule << '\n';
}

}  // namespace synergy::common

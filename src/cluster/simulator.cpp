#include "synergy/cluster/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <set>
#include <stdexcept>

#include "synergy/common/checksum.hpp"
#include "synergy/common/csv.hpp"
#include "synergy/common/log.hpp"
#include "synergy/common/stats.hpp"
#include "synergy/common/table.hpp"
#include "synergy/guarded_planner.hpp"
#include "synergy/lifecycle/lifecycle_manager.hpp"
#include "synergy/model_store.hpp"
#include "synergy/obs/slo_watchdog.hpp"
#include "synergy/plan_service.hpp"
#include "synergy/sched/plugin.hpp"
#include "synergy/telemetry/telemetry.hpp"
#include "synergy/tuning_table.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace synergy::cluster {

namespace tel = telemetry;

namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/// The whole launch stream of a job as one gpusim profile: `iterations`
/// launches of `work_items` items fold into a single work size, which the
/// analytic model prices identically (time and energy are linear in items;
/// only per-launch overhead is approximated away).
gpusim::kernel_profile folded_profile(const traced_job& job) {
  const auto& info = workloads::find(job.kernel).info;
  gpusim::kernel_profile p;
  p.name = job.kernel;
  p.features = info.features;
  p.bytes_per_access = info.bytes_per_access;
  p.cache_hit_rate = info.cache_hit_rate;
  p.coalescing_efficiency = info.coalescing_efficiency;
  p.compute_efficiency = info.compute_efficiency;
  p.work_items = job.work_items * job.iterations;
  return p;
}

}  // namespace

double drift_plan::factor(double core_mhz, double default_core_mhz) const {
  double f = power_skew;
  if (freq_exponent != 0.0 && default_core_mhz > 0.0 && core_mhz > 0.0)
    f *= std::pow(core_mhz / default_core_mhz, freq_exponent);
  return f;
}

double simulator::drift_factor_now(double core_mhz) const {
  if (config_.drift.enabled() && engine_.now() >= config_.drift.at_s)
    return config_.drift.factor(core_mhz, spec_.default_config().core.value);
  return 1.0;
}

simulator::simulator(cluster_config config, std::unique_ptr<scheduling_policy> policy)
    : config_(std::move(config)),
      policy_(std::move(policy)),
      spec_(gpusim::make_device_spec(config_.device)) {
  if (config_.n_nodes == 0 || config_.gpus_per_node == 0)
    throw std::invalid_argument("simulator: cluster needs nodes and GPUs");
  if (!policy_) throw std::invalid_argument("simulator: null scheduling policy");
  if (config_.governor.enabled) {
    // Fail fast on a bad spec instead of discovering it at the first
    // placement mid-run.
    auto probe = governor::make_governor(config_.governor.spec, spec_);
    if (!probe.has_value())
      throw std::invalid_argument("simulator: " + probe.err().message);
  }
  rebuild_controller();
}

sched::node_config simulator::make_node_config(const std::string& name) const {
  sched::node_config cfg;
  cfg.name = name;
  cfg.gpus.assign(config_.gpus_per_node, config_.device);
  cfg.host_power_w = config_.host_power_w;
  if (config_.tag_nvgpufreq) cfg.gres.insert(sched::nvgpufreq_plugin::gres_tag);
  return cfg;
}

void simulator::rebuild_controller() {
  std::vector<sched::node_config> nodes;
  nodes.reserve(config_.n_nodes);
  for (std::size_t i = 0; i < config_.n_nodes; ++i) {
    char name[16];
    std::snprintf(name, sizeof name, "cn%03u", static_cast<unsigned>(i));
    nodes.push_back(make_node_config(name));
  }
  ctl_ = std::make_unique<sched::controller>(std::move(nodes));
}

simulator::~simulator() = default;

job_result& simulator::result_of(int job_id) {
  const auto it =
      std::find_if(results_.begin(), results_.end(),
                   [job_id](const job_result& r) { return r.id == job_id; });
  if (it == results_.end()) throw std::out_of_range("simulator: unknown job id");
  return *it;
}

cluster_view simulator::make_view() const {
  // Sized off the *live* inventory: device-lost events shrink the cluster
  // mid-run, and slots_ / the controller stay index-aligned throughout.
  cluster_view view;
  view.now = engine_.now();
  view.nodes.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const auto& n = ctl_->node_at(i);
    cluster_view::node_view nv;
    nv.name = n.name();
    // The Sec. 7.2 prologue chain, evaluated for this simulated node: the
    // controller is reachable (we are it), jobs own their GPUs exclusively
    // by construction, so capability reduces to the node-side checks.
    nv.freq_capable =
        n.has_gres(sched::nvgpufreq_plugin::gres_tag) && n.config().nvml_available;
    nv.gpu_busy.reserve(config_.gpus_per_node);
    nv.busy_until.reserve(config_.gpus_per_node);
    for (const auto& s : slots_[i]) {
      nv.gpu_busy.push_back(s.busy);
      nv.busy_until.push_back(s.busy ? s.busy_until : view.now);
    }
    view.nodes.push_back(std::move(nv));
  }
  return view;
}

double simulator::shadow_time(int n_gpus) const {
  std::vector<double> avail;
  avail.reserve(slots_.size() * config_.gpus_per_node);
  for (const auto& node_slots : slots_)
    for (const auto& s : node_slots)
      avail.push_back(s.busy ? s.busy_until : engine_.now());
  if (static_cast<std::size_t>(n_gpus) > avail.size()) return inf;
  std::nth_element(avail.begin(), avail.begin() + (n_gpus - 1), avail.end());
  return avail[static_cast<std::size_t>(n_gpus) - 1];
}

bool simulator::admit(const traced_job& job, common::frequency_config& config,
                      bool& demoted) const {
  demoted = false;
  if (!budget_->capped()) return true;
  const auto folded = folded_profile(job);
  const auto& clocks = spec_.core_clocks;
  const auto start_clock = spec_.nearest_core_clock(config.core);
  auto it = std::find(clocks.begin(), clocks.end(), start_clock);
  auto ci = static_cast<std::ptrdiff_t>(it - clocks.begin());
  const double headroom = budget_->headroom_w();
  for (std::ptrdiff_t i = ci; i >= 0; --i) {
    const auto cost =
        model_.evaluate(spec_, folded, {config.memory, clocks[static_cast<std::size_t>(i)]});
    const double added =
        job.n_gpus * (cost.avg_power.value - spec_.idle_power_w);
    if (added <= headroom + 1e-9) {
      demoted = (i != ci);
      config.core = clocks[static_cast<std::size_t>(i)];
      return true;
    }
  }
  return false;
}

void simulator::integrate_to_now() {
  const double t = engine_.now();
  if (t > last_integrated_s_) {
    const double w = budget_->facility_power_w();
    facility_energy_j_ += w * (t - last_integrated_s_);
    // The cost integrator walks the same power signal over the same spans,
    // so facility cost is exactly the price-weighted facility energy.
    if (econ_meter_.active()) econ_meter_.integrate(w, last_integrated_s_, t);
    last_integrated_s_ = t;
  }
}

void simulator::sample_power() {
  const double w = budget_->facility_power_w();
  peak_power_w_ = std::max(peak_power_w_, w);
  power_samples_.emplace_back(engine_.now(), w);
}

void simulator::arrive(const traced_job& job) {
  last_live_t_ = engine_.now();
  integrate_to_now();
  SYNERGY_COUNTER_ADD("cluster.arrivals", 1);
  SYNERGY_INSTANT(tel::category::sched, "cluster.arrival",
                  {"id", static_cast<double>(job.id)},
                  {"n_gpus", static_cast<double>(job.n_gpus)});

  auto& r = result_of(job.id);
  const std::size_t total_gpus = slots_.size() * config_.gpus_per_node;
  if (static_cast<std::size_t>(job.n_gpus) > total_gpus) {
    r.state = sched::job_state::failed;
    r.failure_reason = "requests more GPUs than the cluster has";
    SYNERGY_COUNTER_ADD("cluster.jobs_failed", 1);
  } else if (budget_->capped()) {
    // Feasibility floor: the job's draw at the lowest clock on an
    // otherwise-idle cluster. Above the cap it can never be admitted, so
    // fail it now instead of starving the queue forever.
    const auto cost = model_.evaluate(
        spec_, folded_profile(job), {spec_.default_config().memory, spec_.min_core_clock()});
    const double idle_facility =
        static_cast<double>(slots_.size()) *
        (config_.host_power_w +
         static_cast<double>(config_.gpus_per_node) * spec_.idle_power_w);
    const double min_draw =
        idle_facility + job.n_gpus * (cost.avg_power.value - spec_.idle_power_w);
    if (min_draw > budget_->cap_w()) {
      r.state = sched::job_state::failed;
      r.failure_reason = "power cap below the job's minimum draw";
      SYNERGY_COUNTER_ADD("cluster.jobs_failed", 1);
    }
  }

  if (r.state != sched::job_state::failed) {
    const auto est =
        model_.evaluate(spec_, folded_profile(job), spec_.default_config()).time.value;
    queue_.push_back(queued_job{job, est});
    try_schedule();
  }
  sample_power();
}

void simulator::start(std::size_t queue_index, const placement& pl) {
  // Idempotent for every existing caller (they integrated at this instant
  // already); load-bearing for the econ tick, whose inert firings must not
  // move the accounting clock but whose job starts must close the facility
  // integral before the budget registers new draw.
  last_live_t_ = engine_.now();
  integrate_to_now();
  const queued_job qj = queue_[queue_index];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(queue_index));
  const double now = engine_.now();

  auto& r = result_of(qj.job.id);
  r.state = sched::job_state::running;
  r.start_s = now;
  r.queue_wait_s = now - qj.job.submit_s;
  auto config = pl.config.value_or(spec_.default_config());

  // Fault rolls happen in fixed order and count per placement, so a given
  // plan seed yields the same pattern on every replay of the same trace.
  const bool faults_on = config_.faults.enabled();
  bool lose_device_here = false;
  double lose_at_frac = 0.0;
  if (faults_on) {
    const double u_clock = fault_rng_.uniform();
    const double u_lost = fault_rng_.uniform();
    lose_at_frac = 0.1 + 0.8 * fault_rng_.uniform();
    if (u_clock < config_.faults.clock_set_fail_rate &&
        !(config == spec_.default_config())) {
      // Persistent clock-set failure: the node prologue retried and gave
      // up; the job runs at default clocks and its sample is degraded.
      config = spec_.default_config();
      r.clock_set_failed = true;
      ++clock_set_faults_;
      SYNERGY_COUNTER_ADD("cluster.clock_set_faults", 1);
    }
    lose_device_here = u_lost < config_.faults.device_lost_rate &&
                       nodes_lost_ < config_.faults.max_node_losses && slots_.size() > 1;
  }
  r.core_mhz = config.core.value;

  // Attribute the job's joules to the decision that priced its clocks. The
  // cause travels with the placement (the plan service reported the tier
  // with the decision itself), so attribution no longer reads mutable
  // planner state after the fact. Overrides, strongest last: a cap demotion
  // re-priced the clocks, and a clock-set fault means the job actually ran
  // at fallback clocks.
  obs::cause why = pl.config ? pl.plan_cause : obs::cause::default_clocks;
  if (const auto di = econ_deferred_ids_.find(qj.job.id); di != econ_deferred_ids_.end()) {
    // The job waited out a pricey window; its joules carry the deferral tag
    // unless the price-demotion rule already re-priced this placement.
    econ_deferred_ids_.erase(di);
    if (why != obs::cause::econ_price_demoted) why = obs::cause::econ_deferred;
  }
  if (r.demoted) why = obs::cause::cap_demoted;
  if (r.clock_set_failed) why = obs::cause::fault_degraded;
  if (watchdog_) watchdog_->observe_plan(why == obs::cause::model);

  auto cost = model_.evaluate(spec_, folded_profile(qj.job), config);
  // The model's belief about this job's draw, before any drift skew — the
  // hybrid governor's watt target. Drift-free boards match it (the tracker
  // holds the seeded clock); drifted boards overshoot it (the tracker
  // chases the true optimum down).
  const double predicted_power_w = cost.avg_power.value;
  if (config_.drift.enabled() && now >= config_.drift.at_s) {
    // The fleet's boards have drifted: modelled power picks up the skew at
    // this job's clock. The trained models know nothing about it — that gap
    // is what the drift monitor measures.
    const double f =
        config_.drift.factor(config.core.value, spec_.default_config().core.value);
    cost.avg_power = common::watts{cost.avg_power.value * f};
    cost.energy = cost.avg_power * cost.time;
  }
  const double duration = cost.time.value;
  // A clock-set fault pins the job to default clocks — broken clock-set
  // plumbing takes the governor down with it. Governed jobs are not
  // pre-charged: joules and busy-seconds accrue per tick segment.
  const bool governed =
      config_.governor.enabled && config_.tag_nvgpufreq && !r.clock_set_failed;
  r.gpu_energy_j = governed ? 0.0 : cost.energy.value * qj.job.n_gpus;
  if (!governed) busy_gpu_seconds_ += duration * qj.job.n_gpus;

  std::set<std::size_t> nodes_used;
  for (const auto& slot : pl.gpus) {
    slots_[slot.node][slot.gpu] = {true, now + duration};
    budget_->gpu_busy(slot.node, slot.gpu, cost.avg_power.value);
    nodes_used.insert(slot.node);
  }
  for (const std::size_t ni : nodes_used) ctl_->node_at(ni).add_job();
  const std::uint64_t epoch = next_epoch_++;
  {
    running_job rj;
    rj.id = qj.job.id;
    rj.epoch = epoch;
    rj.gpus = pl.gpus;
    rj.job = qj.job;
    rj.est = qj.est_runtime_s;
    rj.start_s = now;
    rj.duration = duration;
    rj.energy_j = r.gpu_energy_j;
    rj.avg_power_w = cost.avg_power.value;
    rj.why = why;
    rj.node = ctl_->node_at(pl.gpus.front().node).name();
    running_.push_back(std::move(rj));
  }
  if (governed) {
    auto& rj = running_.back();
    rj.gov = std::shared_ptr<governor::governor>(
        std::move(governor::make_governor(config_.governor.spec, spec_)).value());
    rj.gov->seed(config.core);
    // Under a facility cap the admitted clock is the ceiling: the governor
    // may save energy below it but must not undo the cap demotion.
    if (budget_->capped()) rj.gov->set_rails(spec_.min_core_clock(), config.core);
    rj.seed_clock = rj.gov->current();
    rj.last_tick_s = now;
    rj.cur_base_power_w = predicted_power_w;
    rj.cur_power_w = cost.avg_power.value;
    rj.cur_duration_full = duration;
    rj.cur_util = cost.compute_utilization;
    if (config_.governor.spec.hybrid) rj.target_w = predicted_power_w;
  }

  SYNERGY_COUNTER_ADD("cluster.placements", 1);
  SYNERGY_HISTOGRAM_OBSERVE("cluster.queue_wait_s", r.queue_wait_s, 0.0, 1.0, 10.0, 60.0,
                            300.0, 1800.0);
  SYNERGY_INSTANT(tel::category::sched, "cluster.placement",
                  {"id", static_cast<double>(qj.job.id)},
                  {"n_gpus", static_cast<double>(qj.job.n_gpus)},
                  {"core_mhz", r.core_mhz}, {"wait_s", r.queue_wait_s});

  budget_->rebalance();
  const int id = qj.job.id;
  const double tick = std::max(1e-3, config_.governor.tick_interval_s);
  {
    // Track the pending event on the job record so a checkpoint can
    // reschedule it with the exact (time, tie-break rank) it had.
    auto& rj = running_.back();
    rj.event_t = governed && duration > tick ? now + tick : now + duration;
    rj.event_seq =
        governed && duration > tick
            ? engine_.at(rj.event_t, [this, id, epoch] { governor_tick(id, epoch); })
            : engine_.at(rj.event_t, [this, id, epoch] { complete(id, epoch); });
  }
  if (lose_device_here) {
    // The board dies partway through this job. Nodes are addressed by name
    // because indices shift when earlier losses remove nodes. The event
    // lives in an explicit registry (id-keyed) so checkpoints can carry it.
    const std::string victim = ctl_->node_at(pl.gpus.front().node).name();
    const std::uint64_t eid = next_node_event_id_++;
    const double t = now + duration * lose_at_frac;
    const std::uint64_t seq = engine_.at(t, [this, eid] { device_lost_event(eid); });
    pending_faults_.push_back({eid, t, seq, victim});
  }
}

void simulator::device_lost_event(std::uint64_t event_id) {
  const auto it =
      std::find_if(pending_faults_.begin(), pending_faults_.end(),
                   [event_id](const pending_node_event& e) { return e.id == event_id; });
  if (it == pending_faults_.end()) return;  // dropped by a restore
  last_live_t_ = engine_.now();
  const std::string victim = it->node;
  pending_faults_.erase(it);
  device_lost(victim);
}

void simulator::complete(int job_id, std::uint64_t epoch) {
  const auto it = std::find_if(running_.begin(), running_.end(), [&](const running_job& rj) {
    return rj.id == job_id && rj.epoch == epoch;
  });
  // Stale completion: the job was requeued by a device-lost/node-crash event
  // after this event was scheduled (the engine cannot cancel). Ignore it —
  // the restarted incarnation carries a fresh epoch. The check runs before
  // any accounting so a stale event is a pure no-op: checkpoints then do not
  // need to carry stale events, and resumed runs integrate the facility
  // energy over the same spans as uninterrupted ones.
  if (it == running_.end()) return;
  last_live_t_ = engine_.now();
  integrate_to_now();

  std::set<std::size_t> nodes_used;
  for (const auto& slot : it->gpus) {
    slots_[slot.node][slot.gpu] = {false, 0.0};
    budget_->gpu_idle(slot.node, slot.gpu);
    nodes_used.insert(slot.node);
  }
  for (const std::size_t ni : nodes_used) ctl_->node_at(ni).remove_job();
  [[maybe_unused]] double governor_j = 0.0;
  if (it->gov) {
    // Close the final accrual segment and settle the job's energy from the
    // per-segment buckets (governed jobs were never pre-charged).
    accrue_governed(*it, engine_.now());
    auto& gr = result_of(job_id);
    gr.gpu_energy_j = it->seed_energy_j + it->gov_energy_j;
    gr.core_mhz = it->gov->current().value;
    governor_j = it->gov_energy_j;
  }
  const traced_job finished = it->job;
  [[maybe_unused]] const obs::cause attribution = it->why;
  [[maybe_unused]] const std::string obs_node = it->node;
  running_.erase(it);

  auto& r = result_of(job_id);
  r.state = sched::job_state::completed;
  r.end_s = engine_.now();
  if (config_.faults.enabled() &&
      fault_rng_.uniform() < config_.faults.power_read_dropout_rate) {
    // The end-of-job power read dropped out: the energy figure comes from
    // the model with no sensor corroboration. Keep it, but flag it.
    r.energy_degraded = true;
    ++degraded_samples_;
    SYNERGY_COUNTER_ADD("cluster.degraded_samples", 1);
  }
  SYNERGY_COUNTER_ADD("cluster.jobs_completed", 1);
  SYNERGY_GAUGE_ADD("cluster.gpu_energy_j", r.gpu_energy_j);
  // Ledger conservation contract: every completed job charges its full
  // GPU energy here; device-lost partials charge in device_lost(). Ledger
  // total == busy GPU energy + wasted energy. Governed jobs split the
  // charge: joules accrued before the governor first left the seeded clock
  // stay with the tier that seeded it, everything after is the governor's.
  SYNERGY_OBS_CHARGE((obs::charge_key{obs_node, config_.device, r.name, r.kernel}),
                     attribution, r.gpu_energy_j - governor_j);
  if (governor_j > 0.0)
    SYNERGY_OBS_CHARGE((obs::charge_key{obs_node, config_.device, r.name, r.kernel}),
                       obs::cause::governor, governor_j);
  if (watchdog_ && r.n_gpus > 0) watchdog_->observe_job(r.gpu_energy_j / r.n_gpus);
  if (econ_meter_.active()) {
    // Shadow-price the same charges the ledger takes (econ accounting works
    // with the telemetry plane compiled out, so this is not behind the
    // SYNERGY_OBS_CHARGE macro). Both buckets price at completion time, the
    // instant the joules are booked.
    const double now_s = engine_.now();
    econ_meter_.charge(attribution, r.gpu_energy_j - governor_j, now_s);
    if (governor_j > 0.0) econ_meter_.charge(obs::cause::governor, governor_j, now_s);
    econ_meter_.complete_job();
    if (watchdog_ && r.n_gpus > 0) {
      const double kwh_per_gpu = r.gpu_energy_j / r.n_gpus / econ::joules_per_kwh;
      watchdog_->observe_job_cost(kwh_per_gpu * econ_meter_.price_at(now_s),
                                  kwh_per_gpu * econ_meter_.carbon_at(now_s));
    }
  }
#if SYNERGY_TELEMETRY_ENABLED
  // Job lifetime on the cluster timeline (pid 3, virtual seconds).
  if (tel::enabled())
    tel::trace_recorder::instance().complete(
        tel::category::sched, r.name, r.start_s * 1e6, (r.end_s - r.start_s) * 1e6,
        tel::trace_event::cluster_pid,
        {{"gpu_energy_j", r.gpu_energy_j},
         {"core_mhz", r.core_mhz},
         {"n_gpus", static_cast<double>(r.n_gpus)},
         {"wait_s", r.queue_wait_s}});
#endif

  if (recovery_guard_ && recovery_manager_ && !r.clock_set_failed && !r.energy_degraded) {
    // Degradation contract: only trusted samples feed the lifecycle. Job
    // size cancels out of the comparison by normalising to per-item,
    // per-GPU energy — jobs of one kernel differ in iterations and gang
    // size, and the models predict per-item metrics.
    const double items = finished.work_items * finished.iterations;
    const double energy_per_item =
        items > 0.0 ? r.gpu_energy_j / finished.n_gpus / items : 0.0;
    const auto& features = workloads::find(finished.kernel).info.features;
    const common::megahertz core{r.core_mhz};
    recovery_guard_->observe(finished.kernel, features, core, energy_per_item);
    recovery_manager_->record(
        {finished.kernel, features, {spec_.default_config().memory, core}, energy_per_item});
    const bool quarantined = recovery_guard_->quarantined();
    if (quarantined && !recovery_was_quarantined_) {
      ++quarantines_;
      recovery_was_quarantined_ = true;
      SYNERGY_COUNTER_ADD("cluster.model_quarantines", 1);
      SYNERGY_INSTANT(tel::category::sched, "cluster.model_quarantine",
                      {"t_s", engine_.now()});
    }
    const auto action = recovery_manager_->step(quarantined, engine_.now());
    if (action == lifecycle::lifecycle_action::promoted ||
        action == lifecycle::lifecycle_action::rolled_back) {
      // Champion moved: install it into the shared guard. install() resets
      // the drift monitor, so the quarantine lifts and the scheduling
      // policy resumes model-tier planning from the next placement on.
      recovery_guard_->install(recovery_registry_ ? recovery_registry_->current_planner()
                                                  : nullptr);
      recovery_was_quarantined_ = false;
      if (action == lifecycle::lifecycle_action::promoted) {
        ++promotions_;
        SYNERGY_COUNTER_ADD("cluster.model_promotions", 1);
      } else {
        ++rollbacks_;
        SYNERGY_COUNTER_ADD("cluster.model_rollbacks", 1);
      }
      SYNERGY_INSTANT(tel::category::sched, "cluster.model_recovery",
                      {"t_s", engine_.now()},
                      {"promoted", action == lifecycle::lifecycle_action::promoted ? 1.0 : 0.0});
    }
  }

  if (watchdog_) {
    const guarded_planner* g =
        attribution_guard_ ? attribution_guard_.get() : recovery_guard_.get();
    if (g) watchdog_->observe_quarantine(engine_.now(), g->quarantined());
  }

  budget_->rebalance();
  try_schedule();
  sample_power();
}

void simulator::accrue_governed(running_job& rj, double now) {
  const double elapsed = now - rj.last_tick_s;
  if (elapsed <= 0.0) return;
  if (rj.cur_duration_full > 0.0)
    rj.frac_done = std::min(1.0, rj.frac_done + elapsed / rj.cur_duration_full);
  const double joules = rj.cur_power_w * elapsed * rj.job.n_gpus;
  if (rj.deviated)
    rj.gov_energy_j += joules;
  else
    rj.seed_energy_j += joules;
  busy_gpu_seconds_ += elapsed * rj.job.n_gpus;
  rj.last_tick_s = now;
}

void simulator::governor_tick(int job_id, std::uint64_t epoch) {
  const auto it = std::find_if(running_.begin(), running_.end(), [&](const running_job& rj) {
    return rj.id == job_id && rj.epoch == epoch;
  });
  // Stale tick: the job was requeued by a device-lost event after this tick
  // was scheduled; the restarted incarnation runs under a fresh epoch.
  if (it == running_.end() || !it->gov) return;
  last_live_t_ = engine_.now();
  integrate_to_now();
  running_job& rj = *it;
  const double now = engine_.now();
  accrue_governed(rj, now);
  ++governor_ticks_;
  SYNERGY_COUNTER_ADD("cluster.governor_ticks", 1);

  // Drift may have switched on since the segment opened: refresh observed
  // power at the current clock before the governor looks at it.
  rj.cur_power_w = rj.cur_base_power_w * drift_factor_now(rj.gov->current().value);

  const governor::device_sample sample{now, rj.cur_util, rj.cur_power_w, rj.target_w};
  const auto before = rj.gov->current();
  const auto decided = rj.gov->decide(sample);
  if (decided.value != before.value) {
    ++governor_clock_changes_;
    SYNERGY_COUNTER_ADD("cluster.governor_clock_changes", 1);
    // Re-price the rest of the job at the new clock. Work completed so far
    // is banked in frac_done; only the remaining fraction runs at the new
    // speed and draw.
    const auto c = model_.evaluate(spec_, folded_profile(rj.job),
                                   {spec_.default_config().memory, decided});
    rj.cur_base_power_w = c.avg_power.value;
    rj.cur_power_w = c.avg_power.value * drift_factor_now(decided.value);
    rj.cur_duration_full = c.time.value;
    rj.cur_util = c.compute_utilization;
    rj.avg_power_w = rj.cur_power_w;  // budget re-registration on node loss
    if (decided.value != rj.seed_clock.value) rj.deviated = true;
    result_of(job_id).core_mhz = decided.value;
    for (const auto& s : rj.gpus) budget_->gpu_busy(s.node, s.gpu, rj.cur_power_w);
    budget_->rebalance();
  }

  const double remaining =
      rj.cur_duration_full > 0.0 ? (1.0 - rj.frac_done) * rj.cur_duration_full : 0.0;
  for (const auto& s : rj.gpus) slots_[s.node][s.gpu].busy_until = now + remaining;
  const double tick = std::max(1e-3, config_.governor.tick_interval_s);
  const int id = job_id;
  if (remaining <= tick + 1e-9) {
    rj.event_t = now + std::max(0.0, remaining);
    rj.event_seq = engine_.at(rj.event_t, [this, id, epoch] { complete(id, epoch); });
  } else {
    rj.event_t = now + tick;
    rj.event_seq = engine_.at(rj.event_t, [this, id, epoch] { governor_tick(id, epoch); });
  }
  sample_power();
}

std::size_t simulator::drain_node(std::size_t ni) {
  // Every job with a GPU on the dying node is preempted and requeued — jobs
  // are never lost. Its partial execution is refunded from the pre-charged
  // accounting and booked as wasted work instead.
  std::vector<running_job> victims;
  for (auto it = running_.begin(); it != running_.end();) {
    const bool on_node = std::any_of(it->gpus.begin(), it->gpus.end(),
                                     [ni](const gpu_slot& s) { return s.node == ni; });
    if (on_node) {
      victims.push_back(*it);
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  const double now = engine_.now();
  for (auto& rj : victims) {
    std::set<std::size_t> nodes_used;
    for (const auto& s : rj.gpus) {
      slots_[s.node][s.gpu] = {false, 0.0};
      budget_->gpu_idle(s.node, s.gpu);
      nodes_used.insert(s.node);
    }
    for (const std::size_t n : nodes_used) ctl_->node_at(n).remove_job();

    auto& r = result_of(rj.id);
    const double elapsed = std::max(0.0, now - rj.start_s);
    double wasted = 0.0;
    if (rj.gov) {
      // Governed jobs accrued joules and busy-seconds per segment: close
      // the open segment, then everything accrued so far is wasted. Any
      // still-pending governor tick goes stale with the epoch.
      accrue_governed(rj, now);
      wasted = rj.seed_energy_j + rj.gov_energy_j;
    } else {
      const double done = rj.duration > 0.0 ? std::min(1.0, elapsed / rj.duration) : 1.0;
      busy_gpu_seconds_ -= (rj.duration - elapsed) * rj.job.n_gpus;
      wasted = rj.energy_j * done;
    }
    wasted_energy_j_ += wasted;
    // The partial execution's joules were spent and bought nothing: book
    // them as fault-wasted so the watchdog's wasted_energy_j rule sees the
    // incident on the next scrape.
    SYNERGY_OBS_CHARGE((obs::charge_key{rj.node, config_.device, r.name, r.kernel}),
                       obs::cause::fault_wasted, wasted);
    if (econ_meter_.active()) econ_meter_.charge(obs::cause::fault_wasted, wasted, now);
    r.gpu_energy_j = 0.0;
    r.state = sched::job_state::pending;
    r.start_s = -1.0;
    r.core_mhz = 0.0;
    ++r.requeues;
    ++requeues_;
    SYNERGY_COUNTER_ADD("cluster.requeues", 1);
    SYNERGY_INSTANT(tel::category::sched, "cluster.requeue",
                    {"id", static_cast<double>(rj.id)},
                    {"node", static_cast<double>(ni)});
    queue_.push_back(queued_job{rj.job, rj.est});
  }
  return victims.size();
}

void simulator::rebuild_budget() {
  // The budget is sized to the inventory, so node removal/re-admission
  // rebuilds it from scratch; counters fold into the base so run totals
  // survive the swap, and running jobs re-register their demand.
  budget_rebalances_base_ += budget_->rebalances();
  budget_demotions_base_ += budget_->demotions();
  budget_ = std::make_unique<power_budget>(*ctl_, config_.facility_cap_w);
  for (const auto& rj : running_)
    for (const auto& s : rj.gpus) budget_->gpu_busy(s.node, s.gpu, rj.avg_power_w);
}

bool simulator::remove_node_and_rebuild(std::size_t ni) {
  // Drained of jobs, the node leaves the inventory through the controller's
  // normal removal path; slot and budget bookkeeping shift down with it.
  if (!ctl_->remove_node(ctl_->node_at(ni).name())) return false;
  slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(ni));
  for (auto& rj : running_)
    for (auto& s : rj.gpus)
      if (s.node > ni) --s.node;
  rebuild_budget();
  return true;
}

void simulator::device_lost(const std::string& node_name) {
  // Resolve by name: earlier losses shift indices. A vanished name means the
  // node is already gone (double event) — nothing to do.
  std::size_t ni = slots_.size();
  for (std::size_t i = 0; i < ctl_->node_count(); ++i)
    if (ctl_->node_at(i).name() == node_name) {
      ni = i;
      break;
    }
  if (ni >= slots_.size() || slots_.size() <= 1 ||
      nodes_lost_ >= config_.faults.max_node_losses)
    return;
  integrate_to_now();

  [[maybe_unused]] const std::size_t requeued = drain_node(ni);
  if (remove_node_and_rebuild(ni)) {
    ++nodes_lost_;
    SYNERGY_COUNTER_ADD("cluster.nodes_lost", 1);
    SYNERGY_INSTANT(tel::category::sched, "cluster.device_lost",
                    {"node", static_cast<double>(ni)},
                    {"requeued", static_cast<double>(requeued)});
  }

  budget_->rebalance();
  try_schedule();
  sample_power();
}

void simulator::node_crash(std::uint64_t event_id) {
  const auto it =
      std::find_if(pending_crashes_.begin(), pending_crashes_.end(),
                   [event_id](const pending_node_event& e) { return e.id == event_id; });
  if (it == pending_crashes_.end()) return;
  last_live_t_ = engine_.now();
  pending_crashes_.erase(it);
  // At least one node always survives; a skipped crash consumes no RNG so
  // the victim stream stays aligned across replays regardless of timing.
  if (slots_.size() <= 1) return;
  integrate_to_now();

  const auto ni = static_cast<std::size_t>(
      chaos_rng_.bounded(static_cast<std::uint32_t>(slots_.size())));
  const std::string name = ctl_->node_at(ni).name();
  [[maybe_unused]] const std::size_t requeued = drain_node(ni);
  if (remove_node_and_rebuild(ni)) {
    ++node_crashes_;
    SYNERGY_COUNTER_ADD("cluster.node_crashes", 1);
    SYNERGY_INSTANT(tel::category::sched, "cluster.node_crash",
                    {"node", static_cast<double>(ni)},
                    {"requeued", static_cast<double>(requeued)});
    if (config_.chaos.restart_delay_s > 0.0) {
      const std::uint64_t eid = next_node_event_id_++;
      const double t = engine_.now() + config_.chaos.restart_delay_s;
      const std::uint64_t seq = engine_.at(t, [this, eid] { node_restart(eid); });
      pending_restarts_.push_back({eid, t, seq, name});
    }
  }

  budget_->rebalance();
  try_schedule();
  sample_power();
}

void simulator::node_restart(std::uint64_t event_id) {
  const auto it =
      std::find_if(pending_restarts_.begin(), pending_restarts_.end(),
                   [event_id](const pending_node_event& e) { return e.id == event_id; });
  if (it == pending_restarts_.end()) return;
  last_live_t_ = engine_.now();
  const std::string name = it->node;
  pending_restarts_.erase(it);
  integrate_to_now();

  // Warm restart: the node returns with fresh idle slots (whatever ran there
  // was requeued at crash time), is appended to the inventory — append never
  // shifts existing indices — and the budget re-spreads over the grown
  // fleet before an immediate scheduling pass picks up deferred work.
  ctl_->add_node(make_node_config(name));
  slots_.emplace_back(config_.gpus_per_node, slot_state{});
  rebuild_budget();
  ++node_restarts_;
  SYNERGY_COUNTER_ADD("cluster.node_restarts", 1);
  SYNERGY_INSTANT(tel::category::sched, "cluster.node_restart",
                  {"node", static_cast<double>(slots_.size() - 1)});

  budget_->rebalance();
  try_schedule();
  sample_power();
}

void simulator::try_schedule() {
  bool progressed = true;
  while (progressed && !queue_.empty()) {
    progressed = false;
    auto view = make_view();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (i > 0 && !policy_->backfills()) break;
      view.is_head = (i == 0);
      view.head_reservation_s = (i == 0) ? inf : shadow_time(queue_[0].job.n_gpus);
      if (econ_meter_.active() && policy_->defer(queue_[i], view)) {
        // The policy holds this job for a cheaper window; the econ tick
        // re-runs this scan at the next price boundary. Counted per
        // deferral episode (a requeued job may defer again).
        if (econ_deferred_ids_.insert(queue_[i].job.id).second) {
          ++econ_jobs_deferred_;
          SYNERGY_COUNTER_ADD("cluster.econ_deferrals", 1);
        }
        continue;
      }
      auto pl = policy_->place(queue_[i], view);
      if (!pl) continue;
      auto config = pl->config.value_or(spec_.default_config());
      // Price-threshold clock demotion: while the spot price sits above
      // demote_price_ratio x mean, every placement steps one entry down the
      // clock table before the cap has its say (the cap may demote further,
      // and its attribution still wins).
      bool price_demoted = false;
      if (econ_meter_.active() && config_.econ.demote_price_ratio > 0.0 &&
          econ_meter_.price_at(view.now) >
              config_.econ.demote_price_ratio * econ_meter_.mean_price()) {
        const auto& clocks = spec_.core_clocks;
        const auto cur = spec_.nearest_core_clock(config.core);
        const auto ci = std::find(clocks.begin(), clocks.end(), cur);
        if (ci != clocks.begin() && ci != clocks.end()) {
          config.core = *(ci - 1);
          price_demoted = true;
        }
      }
      bool demoted = false;
      if (!admit(queue_[i].job, config, demoted)) continue;  // defer under the cap
      if (demoted) {
        budget_->count_demotion();
        SYNERGY_COUNTER_ADD("cluster.cap_demotions", 1);
        result_of(queue_[i].job.id).demoted = true;
      }
      if (price_demoted) {
        pl->plan_cause = obs::cause::econ_price_demoted;
        ++econ_price_demotions_;
        SYNERGY_COUNTER_ADD("cluster.econ_price_demotions", 1);
      }
      pl->config = config;
      start(i, *pl);
      progressed = true;
      break;  // occupancy changed: rebuild the view and restart the scan
    }
  }
}

void simulator::schedule_arrival(const job_trace& trace, std::size_t index, double t) {
  const traced_job job = trace.jobs[index];
  arrival_seq_[index] = engine_.at(t, [this, job, index] {
    arrived_[index] = 1;
    --arrivals_pending_;
    arrive(job);
  });
}

bool simulator::has_live_work() const {
  return arrivals_pending_ > 0 || !running_.empty() || !pending_faults_.empty() ||
         !pending_crashes_.empty() || !pending_restarts_.empty();
}

run_summary simulator::run(const job_trace& trace) {
  // Reset per-run state so one simulator can replay several traces. A
  // previous faulty run may have removed nodes — restore the full inventory.
  if (ctl_->node_count() != config_.n_nodes) rebuild_controller();
  engine_ = event_engine{};
  budget_ = std::make_unique<power_budget>(*ctl_, config_.facility_cap_w);
  slots_.assign(config_.n_nodes, std::vector<slot_state>(config_.gpus_per_node));
  queue_.clear();
  running_.clear();
  results_.clear();
  power_samples_.clear();
  last_integrated_s_ = 0.0;
  last_live_t_ = 0.0;
  facility_energy_j_ = 0.0;
  busy_gpu_seconds_ = 0.0;
  peak_power_w_ = 0.0;
  fault_rng_ = common::pcg32{config_.faults.seed};
  recovery_was_quarantined_ = false;
  quarantines_ = 0;
  promotions_ = 0;
  rollbacks_ = 0;
  next_epoch_ = 0;
  clock_set_faults_ = 0;
  degraded_samples_ = 0;
  requeues_ = 0;
  nodes_lost_ = 0;
  wasted_energy_j_ = 0.0;
  governor_ticks_ = 0;
  governor_clock_changes_ = 0;
  budget_rebalances_base_ = 0;
  budget_demotions_base_ = 0;
  chaos_rng_ = common::pcg32{config_.chaos.seed};
  node_crashes_ = 0;
  node_restarts_ = 0;
  pending_faults_.clear();
  pending_crashes_.clear();
  pending_restarts_.clear();
  next_node_event_id_ = 0;
  arrival_seq_.assign(trace.jobs.size(), 0);
  arrived_.assign(trace.jobs.size(), 0);
  arrivals_pending_ = trace.jobs.size();
  next_scrape_t_ = -1.0;
  next_scrape_seq_ = 0;
  scrape_ticks_ = 0;
  econ_meter_ = econ::cost_meter{config_.econ, config_.n_nodes};
  econ_deferred_ids_.clear();
  econ_jobs_deferred_ = 0;
  econ_price_demotions_ = 0;
  next_econ_t_ = -1.0;
  next_econ_seq_ = 0;
  ckpt_index_ = 0;
  next_ckpt_t_ = -1.0;
  trace_crc_ = 0;
  restored_ = false;

  results_.reserve(trace.jobs.size());
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    const auto& job = trace.jobs[i];
    job_result r;
    r.id = job.id;
    r.name = job.name;
    r.kernel = job.kernel;
    r.target = job.target;
    r.n_gpus = job.n_gpus;
    r.submit_s = job.submit_s;
    results_.push_back(std::move(r));
    schedule_arrival(trace, i, job.submit_s);
  }
  sample_power();
  if (config_.obs_scrape_interval_s > 0.0) {
    next_scrape_t_ = config_.obs_scrape_interval_s;
    next_scrape_seq_ = engine_.at(next_scrape_t_, [this] { scrape_tick(); });
  }
  if (econ_meter_.active()) {
    // First econ wake-up at the first price boundary (a constant trace has
    // none — nothing can defer, so no tick stream at all).
    const double first = config_.econ.price.next_change_after(0.0);
    if (first > 0.0) {
      next_econ_t_ = first;
      next_econ_seq_ = engine_.at(next_econ_t_, [this] { econ_tick(); });
    }
  }
  if (config_.chaos.enabled()) {
    // All crash times are drawn up-front from the chaos stream (cumulative
    // exponential inter-arrivals), so neither simulation timing nor resume
    // point can shift them; the victim pick happens at fire time against
    // the then-live inventory.
    double t = 0.0;
    for (std::size_t k = 0; k < config_.chaos.max_crashes; ++k) {
      t += -config_.chaos.mtbf_s * std::log1p(-chaos_rng_.uniform());
      const std::uint64_t eid = next_node_event_id_++;
      const std::uint64_t seq = engine_.at(t, [this, eid] { node_crash(eid); });
      pending_crashes_.push_back({eid, t, seq, ""});
    }
  }
  if (ckpt_enabled_) {
    trace_crc_ = common::crc32(trace.to_csv());
    if (ckpt_.interval_s > 0.0) {
      next_ckpt_t_ = ckpt_.interval_s;
      engine_.at(next_ckpt_t_, [this] { checkpoint_tick(); });
    }
    if (ckpt_.crash_at_s >= 0.0)
      engine_.at(ckpt_.crash_at_s, [] {
        // Crash-injection harness: die hard, skipping destructors and
        // atexit, exactly like an OOM-kill would — whatever the last
        // checkpoint captured is all a resume gets.
        std::fflush(nullptr);
        std::_Exit(crash_injection_exit_code);
      });
  }
  return finish_run(trace);
}

run_summary simulator::finish_run(const job_trace& trace) {
  engine_.run();
  // Close accounting at the last live event, not engine_.now(): the drained
  // clock can sit on a trailing inert event (a checkpoint tick scheduled
  // before the work ran dry, or a stale completion of a requeued job) whose
  // presence depends on checkpointing/crash history — and the contract is
  // byte-identical output with checkpointing on or off.
  if (last_live_t_ > last_integrated_s_) {
    const double w = budget_->facility_power_w();
    facility_energy_j_ += w * (last_live_t_ - last_integrated_s_);
    if (econ_meter_.active()) econ_meter_.integrate(w, last_integrated_s_, last_live_t_);
    last_integrated_s_ = last_live_t_;
  }
  if (config_.obs_scrape_interval_s > 0.0) {
    // Closing sample: a run shorter than one interval still gets a series
    // point, and the watchdog sees the final state.
    obs::energy_ledger::instance().scrape(last_live_t_);
    if (watchdog_) watchdog_->evaluate(last_live_t_);
    if (scrape_hook_) scrape_hook_(last_live_t_);
  }

  // Anything still queued can never start (the queue only drains on
  // completions, and none are pending).
  for (const auto& qj : queue_) {
    auto& r = result_of(qj.job.id);
    r.state = sched::job_state::failed;
    r.failure_reason = "deferred by the power budget with nothing left to drain";
    SYNERGY_COUNTER_ADD("cluster.jobs_failed", 1);
  }
  queue_.clear();

  run_summary s;
  s.seed = trace.seed;
  s.policy = policy_->name();
  s.jobs = results_.size();
  std::vector<double> waits;
  for (const auto& r : results_) {
    if (r.state == sched::job_state::completed) {
      ++s.completed;
      s.makespan_s = std::max(s.makespan_s, r.end_s);
      s.total_gpu_energy_j += r.gpu_energy_j;
      waits.push_back(r.queue_wait_s);
    } else if (r.state == sched::job_state::failed) {
      ++s.failed;
    }
  }
  s.facility_energy_j = facility_energy_j_;
  if (!waits.empty()) {
    s.mean_wait_s = common::mean(waits);
    s.p50_wait_s = common::percentile(waits, 50.0);
    s.p95_wait_s = common::percentile(waits, 95.0);
    s.max_wait_s = common::max_value(waits);
  }
  if (s.makespan_s > 0.0) {
    s.throughput_jobs_per_h = static_cast<double>(s.completed) / s.makespan_s * 3600.0;
    s.gpu_utilization = busy_gpu_seconds_ /
                        (static_cast<double>(config_.n_nodes * config_.gpus_per_node) *
                         s.makespan_s);
  }
  s.peak_facility_power_w = peak_power_w_;
  s.cap_rebalances = budget_rebalances_base_ + budget_->rebalances();
  s.cap_demotions = budget_demotions_base_ + budget_->demotions();
  s.clock_set_faults = clock_set_faults_;
  s.degraded_samples = degraded_samples_;
  s.requeues = requeues_;
  s.nodes_lost = nodes_lost_;
  s.wasted_gpu_energy_j = wasted_energy_j_;
  s.node_crashes = node_crashes_;
  s.node_restarts = node_restarts_;
  s.quarantines = quarantines_;
  s.promotions = promotions_;
  s.rollbacks = rollbacks_;
  s.governor_ticks = governor_ticks_;
  s.governor_clock_changes = governor_clock_changes_;
  s.econ_cost_usd = econ_meter_.total_cost_usd();
  s.econ_capex_usd = econ_meter_.capex_usd();
  s.econ_carbon_g = econ_meter_.facility_carbon_g();
  s.econ_cost_per_job_usd = econ_meter_.cost_per_job_usd();
  s.econ_carbon_per_job_g = econ_meter_.carbon_per_job_g();
  s.econ_jobs_deferred = econ_jobs_deferred_;
  s.econ_price_demotions = econ_price_demotions_;
  return s;
}

void simulator::econ_tick() {
  // Price boundary: re-run the scheduling scan so jobs a defer() verdict
  // held back get another look under the new price. Inert firings (nothing
  // deferred, nothing startable) deliberately do not touch last_live_t_ —
  // econ-on/econ-off runs of a never-deferring policy stay byte-identical
  // in the energy columns.
  try_schedule();
  sample_power();
  bool waiting = false;
  if (econ_meter_.active() && !queue_.empty()) {
    const auto view = make_view();
    for (const auto& qj : queue_)
      if (policy_->defer(qj, view)) {
        waiting = true;
        break;
      }
  }
  // Re-arm while deferred jobs wait on a boundary or live work could still
  // defer later; same single-cursor discipline as the scrape tick, so the
  // engine's tie-break sequence stays deterministic.
  if (waiting || has_live_work()) {
    const double next = config_.econ.price.next_change_after(engine_.now());
    if (next > engine_.now()) {
      next_econ_t_ = next;
      next_econ_seq_ = engine_.at(next_econ_t_, [this] { econ_tick(); });
      return;
    }
  }
  next_econ_t_ = -1.0;
}

void simulator::scrape_tick() {
  last_live_t_ = engine_.now();
  ++scrape_ticks_;
  obs::energy_ledger::instance().scrape(engine_.now());
  if (watchdog_) watchdog_->evaluate(engine_.now());
  if (scrape_hook_) scrape_hook_(engine_.now());
  // Reschedule only while the run still has live work: keying off engine
  // emptiness would let the scrape and checkpoint tick streams keep each
  // other alive forever.
  if (has_live_work()) {
    next_scrape_t_ = engine_.now() + config_.obs_scrape_interval_s;
    next_scrape_seq_ = engine_.at(next_scrape_t_, [this] { scrape_tick(); });
  } else {
    next_scrape_t_ = -1.0;
  }
}

void simulator::attach_observability(std::shared_ptr<obs::slo_watchdog> watchdog,
                                     std::shared_ptr<guarded_planner> attribution_guard) {
  watchdog_ = std::move(watchdog);
  attribution_guard_ = std::move(attribution_guard);
}

void simulator::set_scrape_hook(std::function<void(double)> hook) {
  scrape_hook_ = std::move(hook);
}

void simulator::attach_recovery(std::shared_ptr<guarded_planner> guard,
                                std::shared_ptr<lifecycle::model_registry> registry,
                                std::shared_ptr<lifecycle::lifecycle_manager> manager) {
  recovery_guard_ = std::move(guard);
  recovery_registry_ = std::move(registry);
  recovery_manager_ = std::move(manager);
  recovery_was_quarantined_ = recovery_guard_ && recovery_guard_->quarantined();
  if (recovery_guard_ && recovery_manager_)
    recovery_guard_->set_quarantine_probe_every(
        recovery_manager_->options().quarantine_probe_every);
}

void simulator::report(std::ostream& os) const {
  common::text_table table;
  table.header({"job", "kernel", "target", "state", "gpus", "wait (s)", "run (s)",
                "core MHz", "GPU energy (J)"});
  for (const auto& r : results_) {
    const bool ran = r.start_s >= 0.0;
    table.row({std::to_string(r.id), r.kernel, r.target, to_string(r.state),
               std::to_string(r.n_gpus),
               ran ? common::text_table::fmt(r.queue_wait_s, 2) : "-",
               r.end_s >= 0.0 ? common::text_table::fmt(r.end_s - r.start_s, 2) : "-",
               ran ? common::text_table::fmt(r.core_mhz, 0) : "-",
               common::text_table::fmt(r.gpu_energy_j, 1)});
  }
  table.print(os);
}

void run_summary::print(std::ostream& os) const {
  common::text_table table;
  table.header({"metric", "value"});
  const auto fmt = [](double v, int p) { return common::text_table::fmt(v, p); };
  table.row({"policy", policy});
  table.row({"seed", std::to_string(seed)});
  table.row({"jobs (completed/failed)", std::to_string(jobs) + " (" +
                                            std::to_string(completed) + "/" +
                                            std::to_string(failed) + ")"});
  table.row({"makespan (s)", fmt(makespan_s, 2)});
  table.row({"throughput (jobs/h)", fmt(throughput_jobs_per_h, 1)});
  table.row({"GPU energy (J)", fmt(total_gpu_energy_j, 1)});
  table.row({"facility energy (J)", fmt(facility_energy_j, 1)});
  table.row({"queue wait mean/p50/p95/max (s)",
             fmt(mean_wait_s, 2) + " / " + fmt(p50_wait_s, 2) + " / " + fmt(p95_wait_s, 2) +
                 " / " + fmt(max_wait_s, 2)});
  table.row({"GPU utilization", fmt(gpu_utilization, 3)});
  table.row({"peak facility power (W)", fmt(peak_facility_power_w, 1)});
  table.row({"cap rebalances", std::to_string(cap_rebalances)});
  table.row({"cap demotions", std::to_string(cap_demotions)});
  if (clock_set_faults + degraded_samples + requeues + nodes_lost > 0 ||
      wasted_gpu_energy_j > 0.0) {
    table.row({"clock-set faults (default clocks)", std::to_string(clock_set_faults)});
    table.row({"degraded energy samples", std::to_string(degraded_samples)});
    table.row({"requeued jobs (device lost)", std::to_string(requeues)});
    table.row({"nodes lost", std::to_string(nodes_lost)});
    table.row({"wasted GPU energy (J)", fmt(wasted_gpu_energy_j, 1)});
  }
  if (node_crashes + node_restarts > 0) {
    table.row({"node crashes (chaos)", std::to_string(node_crashes)});
    table.row({"node restarts (chaos)", std::to_string(node_restarts)});
  }
  if (quarantines + promotions + rollbacks > 0) {
    table.row({"model quarantines", std::to_string(quarantines)});
    table.row({"model promotions", std::to_string(promotions)});
    table.row({"model rollbacks", std::to_string(rollbacks)});
  }
  if (governor_ticks > 0) {
    table.row({"governor ticks", std::to_string(governor_ticks)});
    table.row({"governor clock changes", std::to_string(governor_clock_changes)});
  }
  if (econ_cost_usd > 0.0 || econ_carbon_g > 0.0) {
    table.row({"facility cost (USD)", fmt(econ_cost_usd, 4)});
    table.row({"amortised capex (USD)", fmt(econ_capex_usd, 4)});
    table.row({"facility carbon (gCO2)", fmt(econ_carbon_g, 1)});
    table.row({"cost per job (USD)", fmt(econ_cost_per_job_usd, 5)});
    table.row({"carbon per job (gCO2)", fmt(econ_carbon_per_job_g, 2)});
    table.row({"jobs deferred (price)", std::to_string(econ_jobs_deferred)});
    table.row({"price clock demotions", std::to_string(econ_price_demotions)});
  }
  table.print(os);
}

void run_summary::csv(std::ostream& os, bool with_header) const {
  common::csv_writer csv{os};
  if (with_header) {
    os << "# seed=" << seed << " policy=" << policy << '\n';
    csv.row({"policy", "seed", "jobs", "completed", "failed", "makespan_s",
             "throughput_jobs_per_h", "gpu_energy_j", "facility_energy_j", "mean_wait_s",
             "p50_wait_s", "p95_wait_s", "max_wait_s", "gpu_utilization",
             "peak_facility_power_w", "cap_rebalances", "cap_demotions",
             "clock_set_faults", "degraded_samples", "requeues", "nodes_lost",
             "wasted_gpu_energy_j", "node_crashes", "node_restarts", "quarantines",
             "promotions", "rollbacks", "governor_ticks", "governor_clock_changes",
             "econ_cost_usd", "econ_capex_usd", "econ_carbon_g", "econ_cost_per_job_usd",
             "econ_carbon_per_job_g", "econ_jobs_deferred", "econ_price_demotions"});
  }
  csv.row({policy, std::to_string(seed), std::to_string(jobs), std::to_string(completed),
           std::to_string(failed), common::csv_writer::num(makespan_s),
           common::csv_writer::num(throughput_jobs_per_h),
           common::csv_writer::num(total_gpu_energy_j),
           common::csv_writer::num(facility_energy_j), common::csv_writer::num(mean_wait_s),
           common::csv_writer::num(p50_wait_s), common::csv_writer::num(p95_wait_s),
           common::csv_writer::num(max_wait_s), common::csv_writer::num(gpu_utilization),
           common::csv_writer::num(peak_facility_power_w), std::to_string(cap_rebalances),
           std::to_string(cap_demotions), std::to_string(clock_set_faults),
           std::to_string(degraded_samples), std::to_string(requeues),
           std::to_string(nodes_lost), common::csv_writer::num(wasted_gpu_energy_j),
           std::to_string(node_crashes), std::to_string(node_restarts),
           std::to_string(quarantines), std::to_string(promotions),
           std::to_string(rollbacks), std::to_string(governor_ticks),
           std::to_string(governor_clock_changes), common::csv_writer::num(econ_cost_usd),
           common::csv_writer::num(econ_capex_usd), common::csv_writer::num(econ_carbon_g),
           common::csv_writer::num(econ_cost_per_job_usd),
           common::csv_writer::num(econ_carbon_per_job_g),
           std::to_string(econ_jobs_deferred), std::to_string(econ_price_demotions)});
}

plan_fn make_suite_planner(const std::string& device) {
  auto spec = gpusim::make_device_spec(device);
  features::kernel_registry registry;
  workloads::register_all(registry);
  auto table = std::make_shared<tuning_table>(
      compile_tuning_table_oracle(registry, metrics::paper_objectives(), spec));
  return [spec = std::move(spec), table = std::move(table)](
             const std::string& kernel, const metrics::target& target) {
    if (const auto hit = table->find(kernel, target)) return *hit;
    // Kernel or target outside the compiled artefact: plan on the fly at a
    // representative size, as compile_tuning_table_oracle does.
    auto profile = workloads::find(kernel).info.to_profile(1);
    profile.work_items = 1 << 22;
    return oracle_plan(spec, profile, target);
  };
}

guarded_suite_planner make_guarded_suite_planner(const std::string& device,
                                                 const std::filesystem::path& model_dir) {
  auto spec = gpusim::make_device_spec(device);
  features::kernel_registry registry;
  workloads::register_all(registry);
  auto table = std::make_shared<tuning_table>(
      compile_tuning_table_oracle(registry, metrics::paper_objectives(), spec));

  guarded_suite_planner out;
  model_store store{model_dir};
  auto loaded = store.load(device);
  std::shared_ptr<const frequency_planner> planner;
  if (loaded.ok()) {
    planner = std::make_shared<frequency_planner>(spec, std::move(loaded.models));
    out.model_loaded = true;
  } else {
    out.load_summary = loaded.summary();
    common::log_warn("cluster: model set for '", device,
                     "' unusable; planning from the tuning-table tier\n", out.load_summary);
  }
  out.guard = std::make_shared<guarded_planner>(spec, std::move(planner), std::move(table));
  // The service fronts the shared guard with its generation-keyed cache.
  // Quarantined decisions flow through uncached so the per-admission probe
  // cadence (and quarantine accounting) stays exactly what the bare chain
  // would produce; healthy decisions are served from the cache until a
  // promotion or quarantine transition bumps the chain generation.
  plan_service_options service_opts;
  service_opts.cache_quarantined = false;
  out.service = std::make_shared<plan_service>(out.guard, service_opts);
  out.plan = [service = out.service](const std::string& kernel, const metrics::target& target) {
    const auto sp = service->plan(kernel, workloads::find(kernel).info.features, target);
    return planned_clocks{sp.decision.config, plan_cause(sp.decision)};
  };
  return out;
}

}  // namespace synergy::cluster

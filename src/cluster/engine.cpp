#include "synergy/cluster/engine.hpp"

#include <algorithm>
#include <utility>

namespace synergy::cluster {

std::uint64_t event_engine::at(double t, handler fn) {
  const std::uint64_t seq = next_seq_++;
  queue_.push(event{std::max(t, now_), seq, std::move(fn)});
  return seq;
}

std::size_t event_engine::run() {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Move the handler out before popping: the handler may push new events,
    // and priority_queue::top() is invalidated by push.
    event e = std::move(const_cast<event&>(queue_.top()));
    queue_.pop();
    now_ = e.t;
    ++fired;
    e.fn();
  }
  return fired;
}

std::size_t event_engine::run_until(double t) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().t <= t) {
    event e = std::move(const_cast<event&>(queue_.top()));
    queue_.pop();
    now_ = e.t;
    ++fired;
    e.fn();
  }
  now_ = std::max(now_, t);
  return fired;
}

}  // namespace synergy::cluster

#include "synergy/cluster/policy.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "synergy/econ/tco.hpp"

namespace synergy::cluster {

namespace {

/// First-fit: walk nodes in `order`, take free GPUs until `n` are found.
std::optional<std::vector<gpu_slot>> first_fit(const cluster_view& view,
                                               const std::vector<std::size_t>& order, int n) {
  std::vector<gpu_slot> slots;
  for (const std::size_t ni : order) {
    const auto& node = view.nodes[ni];
    for (std::size_t g = 0; g < node.gpu_busy.size(); ++g) {
      if (node.gpu_busy[g]) continue;
      slots.push_back({ni, g});
      if (static_cast<int>(slots.size()) == n) return slots;
    }
  }
  return std::nullopt;
}

std::vector<std::size_t> index_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

class fifo_policy final : public scheduling_policy {
 public:
  [[nodiscard]] std::string name() const override { return "fifo"; }

  std::optional<placement> place(const queued_job& job, const cluster_view& view) override {
    if (!view.is_head) return std::nullopt;  // strict arrival order
    auto slots = first_fit(view, index_order(view.nodes.size()), job.job.n_gpus);
    if (!slots) return std::nullopt;
    return placement{std::move(*slots), std::nullopt};
  }
};

class easy_backfill_policy final : public scheduling_policy {
 public:
  [[nodiscard]] std::string name() const override { return "backfill"; }
  [[nodiscard]] bool backfills() const override { return true; }

  std::optional<placement> place(const queued_job& job, const cluster_view& view) override {
    // EASY: a backfill candidate may start only if it finishes before the
    // head's reservation (shadow time), so the head is never delayed.
    if (!view.is_head && view.now + job.est_runtime_s > view.head_reservation_s)
      return std::nullopt;
    auto slots = first_fit(view, index_order(view.nodes.size()), job.job.n_gpus);
    if (!slots) return std::nullopt;
    return placement{std::move(*slots), std::nullopt};
  }
};

class energy_aware_policy : public scheduling_policy {
 public:
  energy_aware_policy(plan_fn plan, std::optional<metrics::target> override_target)
      : plan_(std::move(plan)), override_(override_target) {}

  [[nodiscard]] std::string name() const override { return "energy"; }
  [[nodiscard]] bool backfills() const override { return true; }

  std::optional<placement> place(const queued_job& job, const cluster_view& view) override {
    if (!view.is_head && view.now + job.est_runtime_s > view.head_reservation_s)
      return std::nullopt;

    // Prefer frequency-capable nodes, then emptier ones, so tunable jobs
    // land where the Sec. 7.2 chain grants clock privileges; ties resolve
    // by index for determinism.
    auto order = index_order(view.nodes.size());
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const auto& na = view.nodes[a];
      const auto& nb = view.nodes[b];
      if (na.freq_capable != nb.freq_capable) return na.freq_capable;
      const auto busy = [](const cluster_view::node_view& n) {
        return std::count(n.gpu_busy.begin(), n.gpu_busy.end(), true);
      };
      return busy(na) < busy(nb);
    });

    auto slots = first_fit(view, order, job.job.n_gpus);
    if (!slots) return std::nullopt;

    // The plan applies only when every allocated node passes the check
    // chain and the job opted into a target (Sec. 7.2: no privileges, no
    // clock change — the job runs at defaults).
    std::optional<common::frequency_config> config;
    obs::cause cause = obs::cause::oracle;
    const std::string target_name =
        override_ ? override_->to_string() : job.job.target;
    const bool wants_tuning = target_name != "default" && !target_name.empty();
    const bool all_capable =
        std::all_of(slots->begin(), slots->end(),
                    [&](const gpu_slot& s) { return view.nodes[s.node].freq_capable; });
    if (wants_tuning && all_capable && plan_) {
      const planned_clocks planned = plan_(job.job.kernel, metrics::target::parse(target_name));
      config = planned.config;
      cause = planned.cause;
    }

    return placement{std::move(*slots), config, cause};
  }

 private:
  plan_fn plan_;
  std::optional<metrics::target> override_;
};

/// energy_aware placement + the econ defer rule. The livelock argument: the
/// threshold is ratio (clamped >= 1) x the trace's time-weighted mean, so a
/// step trace always has some window at or below it; and a defer verdict
/// additionally requires a *reachable* next boundary that still fits the
/// job's deadline — so every deferred job either starts in a cheap window
/// or starts at the last boundary its deadline admits.
class cost_aware_policy final : public energy_aware_policy {
 public:
  cost_aware_policy(const econ::econ_config* econ, plan_fn plan,
                    std::optional<metrics::target> override_target)
      : energy_aware_policy(std::move(plan), override_target), econ_(econ) {}

  [[nodiscard]] std::string name() const override { return "cost-aware"; }

  [[nodiscard]] bool defer(const queued_job& job, const cluster_view& view) const override {
    if (!job.job.deferrable) return false;
    const double threshold =
        std::max(econ_->defer_price_ratio, 1.0) * econ_->price.mean();
    if (!(econ_->price.value_at(view.now) > threshold)) return false;
    const double boundary = econ_->price.next_change_after(view.now);
    if (boundary < 0.0) return false;  // flat from here on: waiting buys nothing
    // Deferring is only legal when starting at the boundary still meets the
    // deadline (estimated at default clocks, like EASY's reservations).
    if (job.job.deadline_s >= 0.0 &&
        boundary + job.est_runtime_s > job.job.deadline_s)
      return false;
    return true;
  }

 private:
  const econ::econ_config* econ_;
};

}  // namespace

std::size_t cluster_view::free_gpus() const {
  std::size_t n = 0;
  for (const auto& node : nodes)
    n += static_cast<std::size_t>(
        std::count(node.gpu_busy.begin(), node.gpu_busy.end(), false));
  return n;
}

std::unique_ptr<scheduling_policy> make_fifo() { return std::make_unique<fifo_policy>(); }

std::unique_ptr<scheduling_policy> make_easy_backfill() {
  return std::make_unique<easy_backfill_policy>();
}

std::unique_ptr<scheduling_policy> make_energy_aware(
    plan_fn plan, std::optional<metrics::target> override_target) {
  return std::make_unique<energy_aware_policy>(std::move(plan), override_target);
}

std::unique_ptr<scheduling_policy> make_cost_aware(
    const econ::econ_config* econ, plan_fn plan,
    std::optional<metrics::target> override_target) {
  if (econ == nullptr || !econ->usable())
    throw std::invalid_argument(
        "cost-aware policy needs an enabled econ config with a price trace");
  return std::make_unique<cost_aware_policy>(econ, std::move(plan), override_target);
}

std::unique_ptr<scheduling_policy> make_policy(const std::string& policy_name, plan_fn plan,
                                               std::optional<metrics::target> override_target,
                                               const econ::econ_config* econ) {
  if (policy_name == "fifo") return make_fifo();
  if (policy_name == "backfill" || policy_name == "easy") return make_easy_backfill();
  if (policy_name == "energy" || policy_name == "energy-aware")
    return make_energy_aware(std::move(plan), override_target);
  if (policy_name == "cost" || policy_name == "cost-aware")
    return make_cost_aware(econ, std::move(plan), override_target);
  throw std::invalid_argument("unknown scheduling policy: " + policy_name);
}

}  // namespace synergy::cluster

#pragma once

/// \file checkpoint.hpp
/// Crash-safe checkpoint/resume for long cluster replays.
///
/// A month of Marconi-100-scale traffic is hours of wall clock; without
/// checkpoints any crash, OOM-kill, or preemption throws the whole replay
/// away. The simulator therefore serializes its *complete* state on a
/// periodic virtual-time cadence: the pending event queue (rebuilt from
/// explicit registries — closures cannot serialize), per-node/per-slot
/// state, per-job results, the power-budget counters, both RNG streams
/// mid-draw, the drift/quarantine and plan-cache state of the guard chain,
/// the obs energy ledger, the SLO watchdog, and the metrics registry.
///
/// Artefacts ride the repository's sealed persistence stack: the payload is
/// wrapped by common::envelope (format magic + version + CRC-32 over the
/// payload) and written with common::atomic_write_file, so a torn write
/// leaves the previous checkpoint intact and any corruption is detected at
/// open time. Loads are fail-closed: a checkpoint that does not parse and
/// cross-validate completely (config fingerprint, trace CRC, structural
/// consistency) restores nothing.
///
/// Determinism contract: resuming from any checkpoint of a run produces
/// byte-identical final outputs (summary CSV, per-job table, obs JSON
/// snapshot, alerts JSONL) to the uninterrupted run of the same seed.
/// Floating-point state round-trips as IEEE-754 bit patterns, and pending
/// events are rescheduled in their original tie-break order (sequence
/// numbers are monotone in schedule time, so relative order is sufficient).

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>

#include "synergy/common/error.hpp"

namespace synergy {
class guarded_planner;
class plan_service;
}  // namespace synergy

namespace synergy::cluster {

/// Envelope kind sealing every checkpoint artefact.
inline constexpr std::string_view checkpoint_kind = "cluster_checkpoint";
/// Payload schema version (envelope-enforced upper bound on open).
inline constexpr unsigned checkpoint_version = 1;
/// Exit code of the crash-injection harness (checkpoint_options::crash_at_s)
/// — distinct from the tool's operational (1) and usage (2) failures so the
/// workflow fixture can tell an injected crash from a real one.
inline constexpr int crash_injection_exit_code = 42;

struct checkpoint_options {
  /// Checkpoint cadence on the cluster's virtual clock; <= 0 disables
  /// periodic checkpointing (restore/resume still work).
  double interval_s{0.0};
  /// Directory receiving ckpt-NNNNNN.synergy artefacts.
  std::filesystem::path dir;
  /// Crash-injection harness: when >= 0, the process calls _Exit with
  /// crash_injection_exit_code at this virtual time. Tests only.
  double crash_at_s{-1.0};
  /// The guard chain the scheduling policy plans through (nullptr when the
  /// run is table/default-planned). Serialized: generation, tier counters,
  /// drift monitor rolling state.
  std::shared_ptr<guarded_planner> guard;
  /// The plan service fronting `guard` (nullptr without one). Serialized:
  /// every current-generation cache entry — cache hits bypass the chain, so
  /// a cold cache would replay different counter sequences.
  std::shared_ptr<plan_service> service;
};

/// File name for checkpoint `index`: "ckpt-000042.synergy" (zero-padded so
/// lexical order is numeric order).
[[nodiscard]] std::string checkpoint_file_name(std::uint64_t index);

/// Highest-numbered checkpoint artefact in `dir`. Errors: missing/unreadable
/// directory, or no checkpoint files in it.
[[nodiscard]] common::result<std::filesystem::path> latest_checkpoint(
    const std::filesystem::path& dir);

/// Read + unseal one checkpoint artefact, fail-closed: any envelope fault
/// (wrong magic, kind, version skew, truncation, CRC mismatch) is an error
/// naming the fault — never a partial payload.
[[nodiscard]] common::result<std::string> read_checkpoint_payload(
    const std::filesystem::path& file);

/// Seal `payload` and atomically write it to `file`.
[[nodiscard]] common::status write_checkpoint_file(const std::filesystem::path& file,
                                                   std::string_view payload);

}  // namespace synergy::cluster

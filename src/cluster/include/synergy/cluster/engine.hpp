#pragma once

/// \file engine.hpp
/// Deterministic discrete-event engine on virtual time.
///
/// The cluster simulation advances by *events* (job arrivals, placements,
/// completions, cap rebalances), never by wall clock, so a 64-node /
/// 1000-job day of cluster operation replays in milliseconds and
/// bit-identically across runs and platforms. Events at equal timestamps
/// fire in schedule order (a monotone sequence number breaks ties), which
/// is what makes policy comparisons on the same trace meaningful.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace synergy::cluster {

class event_engine {
 public:
  using handler = std::function<void()>;

  /// Current virtual time in seconds (0 at construction).
  [[nodiscard]] double now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (clamped to now()). Returns
  /// the event's monotone sequence number — the tie-break rank among events
  /// at the same timestamp. Checkpointing records it so a resumed run can
  /// reschedule pending events in their original relative order.
  std::uint64_t at(double t, handler fn);

  /// Schedule `fn` `dt` seconds from now (clamped to non-negative delay).
  std::uint64_t after(double dt, handler fn) { return at(now_ + dt, std::move(fn)); }

  /// Fire events in (time, schedule-order) until none remain; returns how
  /// many fired. Handlers may schedule further events.
  std::size_t run();

  /// Fire events with timestamp <= t, then advance the clock to t.
  std::size_t run_until(double t);

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct event {
    double t{0.0};
    std::uint64_t seq{0};
    handler fn;
  };
  struct later {
    bool operator()(const event& a, const event& b) const {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  double now_{0.0};
  std::uint64_t next_seq_{0};
  std::priority_queue<event, std::vector<event>, later> queue_;
};

}  // namespace synergy::cluster

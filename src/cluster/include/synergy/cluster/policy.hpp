#pragma once

/// \file policy.hpp
/// Pluggable scheduling policies for the cluster simulator.
///
/// A policy answers one question per scheduling round: given a queued job
/// and the current cluster occupancy, which GPU slots should it start on
/// now — and at what clocks? Three policies ship:
///
///  - fifo: strict arrival order; a head job that does not fit blocks the
///    queue (the baseline every HPC scheduler paper compares against).
///  - easy_backfill: the head gets a reservation at the earliest time
///    enough GPUs drain (the EASY shadow time); later jobs may jump ahead
///    iff their estimated completion does not cross that reservation.
///  - energy_aware: EASY's queue discipline, plus placement that prefers
///    frequency-capable nodes (the paper's Sec. 7.2 check chain decides
///    capability) and a per-job frequency plan resolved from the kernel's
///    tuning-table / planner entry for the job's energy target.
///  - cost_aware: energy_aware's placement, plus the econ plane's defer
///    rule — deferrable jobs wait out expensive price windows (bounded by
///    their deadlines) and start in cheap/clean ones instead.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "synergy/cluster/job_trace.hpp"
#include "synergy/common/units.hpp"
#include "synergy/metrics/energy_metrics.hpp"
#include "synergy/obs/energy_ledger.hpp"

namespace synergy::econ {
struct econ_config;  // facility economics knobs (synergy/econ/tco.hpp)
}

namespace synergy::cluster {

/// One GPU of the cluster, addressed by (node index, gpu index).
struct gpu_slot {
  std::size_t node{0};
  std::size_t gpu{0};
  friend bool operator==(const gpu_slot&, const gpu_slot&) = default;
};

/// Occupancy snapshot a policy sees (built by the simulator each round).
struct cluster_view {
  struct node_view {
    std::string name;
    /// The Sec. 7.2 prologue chain outcome for this node: tagged with the
    /// nvgpufreq GRES, management library loadable. Placement on a node
    /// that fails the chain runs at default clocks.
    bool freq_capable{false};
    std::vector<bool> gpu_busy;
    /// Modelled completion time of the job holding each GPU (= now when
    /// the GPU is free).
    std::vector<double> busy_until;
  };

  double now{0.0};
  std::vector<node_view> nodes;
  /// True while the policy is asked about the queue head; false for
  /// backfill candidates behind a blocked head.
  bool is_head{true};
  /// EASY shadow time: earliest instant enough GPUs drain for the blocked
  /// head (+inf when the head is not blocked or unknown).
  double head_reservation_s{0.0};

  [[nodiscard]] std::size_t free_gpus() const;
};

/// A policy's verdict: the slots to occupy and the clocks to run at
/// (nullopt config = driver-default application clocks). `plan_cause` names
/// the chain tier that priced the clocks — the simulator tags the job's
/// joules with it, so the attribution travels with the placement instead of
/// being read back from planner state after the fact (which raced once plans
/// were served concurrently).
struct placement {
  std::vector<gpu_slot> gpus;
  std::optional<common::frequency_config> config;
  obs::cause plan_cause{obs::cause::oracle};
};

/// Job as the policy sees it: the trace row plus the simulator's runtime
/// estimate at default clocks (the "user-provided" estimate EASY needs).
struct queued_job {
  traced_job job;
  double est_runtime_s{0.0};
};

class scheduling_policy {
 public:
  virtual ~scheduling_policy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Decide whether `job` may start now and where. Empty optional leaves
  /// it queued for the next round.
  [[nodiscard]] virtual std::optional<placement> place(const queued_job& job,
                                                       const cluster_view& view) = 0;

  /// Whether jobs behind a blocked head may be offered to place().
  [[nodiscard]] virtual bool backfills() const { return false; }

  /// Econ hook, asked before place(): true leaves `job` queued for a
  /// cheaper/cleaner price window. The simulator re-asks at every price
  /// boundary (its econ tick), so a policy only answers "not now", never
  /// schedules a wake-up itself. Default: nothing defers.
  [[nodiscard]] virtual bool defer(const queued_job& job, const cluster_view& view) const {
    (void)job;
    (void)view;
    return false;
  }
};

/// A resolved frequency plan plus the attribution cause of the tier that
/// produced it. Implicitly constructible from a bare frequency_config
/// (attributed to the oracle) so simple resolvers — oracle tables, test
/// lambdas — keep returning configs directly.
struct planned_clocks {
  common::frequency_config config;
  obs::cause cause{obs::cause::oracle};
  planned_clocks(common::frequency_config c, obs::cause why = obs::cause::oracle)
      : config(c), cause(why) {}
};

/// Resolve (kernel, target) to a frequency plan. The simulator backs this
/// with the compiled tuning table and the oracle planner, or with the
/// guarded plan service (which reports the degradation tier per decision);
/// tests may inject anything.
using plan_fn = std::function<planned_clocks(const std::string& kernel,
                                             const metrics::target& target)>;

[[nodiscard]] std::unique_ptr<scheduling_policy> make_fifo();
[[nodiscard]] std::unique_ptr<scheduling_policy> make_easy_backfill();

/// `plan` resolves frequency targets; `override_target` (if set) replaces
/// every job's trace-recorded target, which lets one trace be replayed
/// under several objectives (the bench's Fig. 10-style sweep).
[[nodiscard]] std::unique_ptr<scheduling_policy> make_energy_aware(
    plan_fn plan, std::optional<metrics::target> override_target = std::nullopt);

/// The econ policy: energy_aware's placement plus price-window deferral
/// driven by `econ` (which must outlive the policy — the simulator's
/// cluster_config owns it). Deferrable jobs wait while the spot price sits
/// above defer_price_ratio x mean, but only when the next price boundary
/// still lets them finish inside their deadline. Throws
/// std::invalid_argument when `econ` is null or carries no price trace.
[[nodiscard]] std::unique_ptr<scheduling_policy> make_cost_aware(
    const econ::econ_config* econ, plan_fn plan = {},
    std::optional<metrics::target> override_target = std::nullopt);

/// Policy registry by name ("fifo", "backfill", "energy", "cost"); the
/// energy policy needs `plan`, the cost policy needs `econ`. Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<scheduling_policy> make_policy(
    const std::string& policy_name, plan_fn plan = {},
    std::optional<metrics::target> override_target = std::nullopt,
    const econ::econ_config* econ = nullptr);

}  // namespace synergy::cluster

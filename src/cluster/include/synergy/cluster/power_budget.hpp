#pragma once

/// \file power_budget.hpp
/// Facility-wide power budgeting for the cluster simulator.
///
/// SLURM's power management (paper Sec. 2.3) distributes a system cap over
/// nodes; this manager layers the cluster-scale half on top of
/// sched::power_manager. It keeps the *modelled* facility draw — host power
/// plus per-GPU busy/idle power on the simulation timeline — and enforces
/// the cap two ways:
///
///  1. admission: a job may only start if the facility draw with the job
///     added stays under the cap; if its planned frequency does not fit,
///     the plan is demoted down the clock table until it does (counted as
///     a demotion), and the job waits if even the lowest clock is too hot;
///  2. rebalancing: after every placement/completion the per-node caps are
///     recomputed from modelled demand via
///     sched::power_manager::rebalance_with_demand, which locks GPU clock
///     bounds on each node so no application clock can exceed its share.

#include <cstddef>
#include <vector>

#include "synergy/sched/power_manager.hpp"

namespace synergy::cluster {

class power_budget {
 public:
  /// `facility_cap_w` covers hosts + GPUs across every node; <= 0 disables
  /// capping (admission always passes, no rebalances).
  power_budget(sched::controller& ctl, double facility_cap_w);

  [[nodiscard]] bool capped() const { return cap_w_ > 0.0; }
  [[nodiscard]] double cap_w() const { return cap_w_; }

  /// Modelled facility draw right now (hosts + busy GPU job power + idle
  /// GPU floor).
  [[nodiscard]] double facility_power_w() const;

  /// Watts still available under the cap (+inf when uncapped).
  [[nodiscard]] double headroom_w() const;

  /// Account one GPU switching to a job drawing `busy_power_w` (board
  /// average power at the job's operating point).
  void gpu_busy(std::size_t node, std::size_t gpu, double busy_power_w);

  /// Account one GPU returning to idle.
  void gpu_idle(std::size_t node, std::size_t gpu);

  /// Recompute per-node caps from the modelled demand and lock clock
  /// bounds through the underlying sched::power_manager. No-op when
  /// uncapped. Counts as one rebalance.
  void rebalance();

  /// Per-node caps of the last rebalance (empty when uncapped).
  [[nodiscard]] const std::vector<double>& node_caps() const;

  [[nodiscard]] std::size_t rebalances() const { return rebalances_; }
  [[nodiscard]] std::size_t demotions() const { return demotions_; }
  void count_demotion() { ++demotions_; }

 private:
  sched::controller* ctl_;
  double cap_w_;
  sched::power_manager pm_;
  /// Modelled per-GPU draw, indexed [node][gpu]; idle floor when no job.
  std::vector<std::vector<double>> gpu_power_w_;
  std::size_t rebalances_{0};
  std::size_t demotions_{0};
};

}  // namespace synergy::cluster

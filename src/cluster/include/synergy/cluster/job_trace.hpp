#pragma once

/// \file job_trace.hpp
/// SLURM-style job traces: a synthetic generator and a CSV round-trip.
///
/// A trace is the replayable input of the cluster simulator — the analogue
/// of a Marconi-100 accounting dump. The generator draws Poisson arrivals
/// and configurable job-size / duration / energy-target mixes from the
/// suite's 23 SYCL-bench kernel profiles through an explicitly seeded
/// pcg32, and the seed is recorded in the CSV header, so any run can be
/// regenerated or replayed bit-identically from either the config or the
/// file.

#include <cstdint>
#include <string>
#include <vector>

namespace synergy::cluster {

/// One job of a trace (sacct row analogue). `kernel` names a benchmark of
/// the 23-kernel suite; the job launches it `iterations` times on each of
/// its `n_gpus` GPUs (weak scaling, as in the paper's Sec. 8.4 apps).
struct traced_job {
  int id{0};
  std::string name{"job"};
  double submit_s{0.0};    ///< arrival on the cluster timeline
  int n_gpus{1};           ///< GPUs requested (gang-scheduled)
  std::string kernel;      ///< benchmark name (suite kernel profile)
  double work_items{1.0};  ///< work items per launch
  int iterations{1};       ///< launches per GPU
  /// Energy target resolved at placement ("default" = driver clocks).
  std::string target{"default"};
  /// Econ columns (PR 10): a deferrable job may be shifted by a cost-aware
  /// policy into a cheaper/cleaner price window; `deadline_s` bounds the
  /// shift (latest acceptable completion on the cluster timeline, < 0 = no
  /// deadline). Both default so 8-column traces parse unchanged.
  bool deferrable{false};
  double deadline_s{-1.0};

  friend bool operator==(const traced_job&, const traced_job&) = default;
};

struct job_trace {
  std::uint64_t seed{0};  ///< generator seed (0 for hand-written traces)
  std::vector<traced_job> jobs;

  /// Serialise: a `# synergy-cluster-trace v1 seed=S jobs=N` comment line,
  /// a column-header row, then one row per job.
  [[nodiscard]] std::string to_csv() const;

  /// Inverse of to_csv(); throws std::invalid_argument on malformed input.
  [[nodiscard]] static job_trace from_csv(const std::string& text);

  friend bool operator==(const job_trace&, const job_trace&) = default;
};

/// Mix knobs of the synthetic generator. Arrivals are Poisson
/// (exponential inter-arrival times of mean `mean_interarrival_s`); job
/// sizes, durations (iteration counts), kernels, and targets are drawn
/// uniformly from their mix vectors.
struct trace_config {
  std::size_t n_jobs{1000};
  double mean_interarrival_s{2.0};
  /// GPU-count mix; repeated entries weight a size (default: mostly small
  /// jobs with a tail of 4- and 8-GPU gangs, as real HPC queues show).
  std::vector<int> gpu_mix{1, 1, 1, 1, 2, 2, 4, 8};
  /// Launches per GPU; with the default work size a job runs seconds to a
  /// couple of minutes, loading a 64-GPU cluster to ~60% at the default
  /// inter-arrival time (queues form, but the system is stable).
  int min_iterations{150};
  int max_iterations{1200};
  double work_items{1 << 28};
  /// Energy-target mix stamped on jobs ("default" disables tuning).
  std::vector<std::string> target_mix{"ES_50"};
  /// Kernel names to draw from; empty = the full 23-benchmark suite.
  std::vector<std::string> kernels;
  std::uint64_t seed{42};
  /// Fraction of jobs stamped deferrable (0 draws nothing from the rng, so
  /// pre-econ traces regenerate bit-identically from the same seed).
  double deferrable_fraction{0.0};
  /// Deadline slack for deferrable jobs: deadline_s lands uniformly in
  /// submit_s + [0.5, 1.5] x this.
  double deadline_slack_s{120.0};
};

/// Generate a trace; deterministic in `config` (same config, same bytes).
[[nodiscard]] job_trace generate_trace(const trace_config& config);

}  // namespace synergy::cluster

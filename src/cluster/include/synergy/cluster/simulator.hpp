#pragma once

/// \file simulator.hpp
/// The discrete-event cluster simulator: trace in, summary out.
///
/// The simulator replays a job trace against a modelled cluster: nodes are
/// sched::node inventory (host power, GRES tags, simulated boards), job
/// costs are charged through the gpusim DVFS model at the clocks the
/// scheduling policy picked, and a facility power budget admits/demotes/
/// defers placements. Everything advances on the event engine's virtual
/// time, so a 1000-job / 64-node run takes milliseconds and is
/// bit-reproducible: same trace + policy + config, same summary CSV.
///
/// Telemetry: arrivals, placements, completions, queue waits, and cap
/// rebalances are emitted as sched-category events; job lifetimes render
/// on a dedicated cluster timeline (trace_event::cluster_pid) next to the
/// host and device lanes in tools/synergy_trace exports.

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "synergy/cluster/checkpoint.hpp"
#include "synergy/cluster/engine.hpp"
#include "synergy/common/error.hpp"
#include "synergy/common/rng.hpp"
#include "synergy/cluster/job_trace.hpp"
#include "synergy/cluster/policy.hpp"
#include "synergy/cluster/power_budget.hpp"
#include "synergy/econ/tco.hpp"
#include "synergy/governor/governor.hpp"
#include "synergy/obs/energy_ledger.hpp"
#include "synergy/sched/controller.hpp"

namespace synergy {
class guarded_planner;  // core guardrail chain (synergy/guarded_planner.hpp)
class plan_service;     // concurrent plan cache over the chain (synergy/plan_service.hpp)
}

namespace synergy::obs {
class slo_watchdog;  // SLO rule evaluator (synergy/obs/slo_watchdog.hpp)
}

namespace synergy::lifecycle {
class model_registry;     // lifecycle champion ledger (synergy/lifecycle/model_registry.hpp)
class lifecycle_manager;  // retrain/shadow-eval worker (synergy/lifecycle/lifecycle_manager.hpp)
enum class lifecycle_action;
}  // namespace synergy::lifecycle

namespace synergy::cluster {

/// Seeded fault plan for a cluster replay (mirrors the vendor-layer
/// fault_injector at job granularity). All rolls come from one pcg32 seeded
/// with `seed` and consumed in deterministic event order, so a given
/// (trace, policy, plan) triple injects a bit-identical fault pattern —
/// the acceptance contract: same seed, same summary CSV.
///
/// Degradation semantics (ARCHITECTURE.md Sec. 10):
///  - clock-set failure: the prologue's retries were exhausted, the job runs
///    at default clocks and is flagged `clock_set_failed` (degraded sample);
///    its energy lies between the planned-clock and default-clock cost, so
///    a faulty run's total GPU energy is bounded by the fault-free totals of
///    the same trace under the tuned and default-clock policies.
///  - power-read dropout: the job's energy sample is flagged degraded
///    (`energy_degraded`) but still accounted.
///  - device-lost: one GPU dies mid-job; every job on that node is requeued
///    (never lost), the node is drained and removed via
///    sched::controller::remove_node, and the partial execution is charged
///    to `wasted_gpu_energy_j`.
struct fault_plan {
  std::uint64_t seed{0xfa0175eedULL};
  double clock_set_fail_rate{0.0};    ///< per placement
  double power_read_dropout_rate{0.0};  ///< per completion
  double device_lost_rate{0.0};       ///< per placement
  /// Upper bound on nodes the plan may kill (at least one node always
  /// survives regardless).
  std::size_t max_node_losses{std::numeric_limits<std::size_t>::max()};

  [[nodiscard]] bool enabled() const {
    return clock_set_fail_rate > 0.0 || power_read_dropout_rate > 0.0 ||
           device_lost_rate > 0.0;
  }
};

/// Deterministic mid-run power drift for the fleet's boards: from `at_s`
/// on, every job's modelled GPU power is multiplied by
/// `power_skew * (core_clock / default_clock)^freq_exponent` — aging or a
/// firmware regression that changes the boards' *frequency response*, not
/// just their absolute draw. A non-zero exponent is what makes drift
/// model-relevant: the trained models' normalised frequency curves become
/// wrong (the drift monitor trips), and only a retrain measured on drifted
/// hardware can restore the model tier.
struct drift_plan {
  double at_s{-1.0};          ///< onset on the cluster timeline; < 0 disables
  double power_skew{1.0};     ///< clock-independent power multiplier
  double freq_exponent{0.0};  ///< clock-dependent component (gamma)

  [[nodiscard]] bool enabled() const {
    return at_s >= 0.0 && power_skew > 0.0 &&
           (power_skew != 1.0 || freq_exponent != 0.0);
  }
  /// Multiplier applied to modelled power at `core_mhz`.
  [[nodiscard]] double factor(double core_mhz, double default_core_mhz) const;
};

/// Seeded node-level chaos for a cluster replay: whole nodes crash at
/// exponentially distributed virtual times and (optionally) warm-restart
/// after a fixed outage. A crash drains the node exactly like the PR 3
/// device-lost path — every in-flight job there is requeued (never lost),
/// its partial execution is charged to `wasted_gpu_energy_j` with ledger
/// cause `fault_wasted`, and the facility power budget is rebuilt and
/// rebalanced over the surviving inventory. A restart re-admits the node
/// (fresh idle slots, budget rebuild + rebalance, immediate scheduling
/// pass). All crash times and victim picks come from one pcg32 seeded with
/// `seed`, independent of the device-fault stream, so chaos replays are
/// bit-identical per seed.
struct chaos_plan {
  std::uint64_t seed{0xc4a05c4a05ULL};
  /// Mean time between node crashes (virtual seconds); <= 0 disables.
  double mtbf_s{0.0};
  /// Outage duration before the crashed node warm-restarts; <= 0 means
  /// crashed nodes never return (cold loss, like device-lost removal).
  double restart_delay_s{0.0};
  /// Upper bound on crash events for the run; 0 disables.
  std::size_t max_crashes{0};

  [[nodiscard]] bool enabled() const { return mtbf_s > 0.0 && max_crashes > 0; }
};

/// Reactive-governor regime for the replay. When enabled, every placed job
/// runs under its own governor instance: the placement's clock (the
/// scheduling policy's pick — the planner's prediction under a planning
/// policy, driver default under a baseline policy) seeds the governor, and
/// governor tick events on the engine's virtual clock re-observe the job's
/// modelled power/utilisation and may move the clock mid-job. Jobs whose
/// joules accrue before the governor first deviates from the seed stay
/// attributed to the seeding tier; everything after charges the `governor`
/// ledger cause. All ticks are virtual-time events, so governed replays
/// remain byte-identical per seed.
struct governor_config {
  bool enabled{false};
  governor::governor_spec spec{};
  /// Poll cadence on the cluster's virtual clock (seconds).
  double tick_interval_s{0.25};
};

struct cluster_config {
  std::size_t n_nodes{16};
  std::size_t gpus_per_node{4};
  std::string device{"V100"};
  double host_power_w{350.0};
  /// Facility power cap in watts (hosts + GPUs); <= 0 disables capping.
  double facility_cap_w{0.0};
  /// Tag every node with the nvgpufreq GRES (Sec. 7.2 capability); false
  /// models a cluster where the plugin is not deployed, so energy-aware
  /// placements run at default clocks.
  bool tag_nvgpufreq{true};
  /// Fault injection for the replay; disabled by default.
  fault_plan faults{};
  /// Mid-run power drift for the fleet; disabled by default.
  drift_plan drift{};
  /// Node-level chaos (crash/restart) for the replay; disabled by default.
  chaos_plan chaos{};
  /// Reactive governor regime; disabled by default.
  governor_config governor{};
  /// Facility economics: price/carbon traces, capex amortisation, and the
  /// defer/demote thresholds. Disabled by default — an unconfigured replay
  /// produces byte-identical output to the pre-econ simulator.
  econ::econ_config econ{};
  /// Observability scrape cadence on the cluster's virtual clock: every
  /// `obs_scrape_interval_s` simulated seconds the global energy ledger
  /// samples a time-series point, the attached watchdog evaluates its
  /// rules, and the scrape hook (live snapshot writer) runs. <= 0 disables.
  double obs_scrape_interval_s{0.0};
};

/// Per-job outcome (sacct row of the simulated run).
struct job_result {
  int id{0};
  std::string name;
  std::string kernel;
  std::string target;
  sched::job_state state{sched::job_state::pending};
  int n_gpus{0};
  double submit_s{0.0};
  double start_s{-1.0};
  double end_s{-1.0};
  double queue_wait_s{0.0};
  double gpu_energy_j{0.0};
  double core_mhz{0.0};  ///< core clock the job ran at
  bool demoted{false};   ///< plan lowered by the power budget
  bool clock_set_failed{false};  ///< ran at default clocks after clock-set faults
  bool energy_degraded{false};   ///< power-read dropout: energy sample untrusted
  int requeues{0};               ///< times requeued after a device-lost event
  std::string failure_reason;
};

/// Whole-run metrics; `csv` output starts with a `# seed=... policy=...`
/// comment so any summary names the trace that produced it.
struct run_summary {
  std::uint64_t seed{0};
  std::string policy;
  std::size_t jobs{0};
  std::size_t completed{0};
  std::size_t failed{0};
  double makespan_s{0.0};
  double total_gpu_energy_j{0.0};   ///< busy GPU energy across jobs
  double facility_energy_j{0.0};    ///< hosts + busy/idle GPUs over the run
  double mean_wait_s{0.0};
  double p50_wait_s{0.0};
  double p95_wait_s{0.0};
  double max_wait_s{0.0};
  double throughput_jobs_per_h{0.0};
  double gpu_utilization{0.0};      ///< busy GPU-seconds / (GPUs x makespan)
  double peak_facility_power_w{0.0};
  std::size_t cap_rebalances{0};
  std::size_t cap_demotions{0};
  // --- fault / degradation accounting (all zero on fault-free runs) ---
  std::size_t clock_set_faults{0};   ///< placements that fell back to default clocks
  std::size_t degraded_samples{0};   ///< completions with an untrusted energy sample
  std::size_t requeues{0};           ///< job requeues caused by device-lost events
  std::size_t nodes_lost{0};         ///< nodes drained + removed after device loss
  double wasted_gpu_energy_j{0.0};   ///< partial executions killed by device loss
  // --- node-level chaos (zero unless a chaos_plan was enabled) ---
  std::size_t node_crashes{0};   ///< whole-node crash events injected
  std::size_t node_restarts{0};  ///< crashed nodes warm-restarted and re-admitted
  // --- model lifecycle (zero unless attach_recovery was wired) ---
  std::size_t quarantines{0};  ///< drift-monitor trips observed during the run
  std::size_t promotions{0};   ///< retrained challengers promoted mid-run
  std::size_t rollbacks{0};    ///< probation rollbacks performed mid-run
  // --- reactive governor (zero on ungoverned runs) ---
  std::size_t governor_ticks{0};          ///< governor polls across all jobs
  std::size_t governor_clock_changes{0};  ///< decisions that moved a clock
  // --- facility economics (zero unless an econ_config was enabled) ---
  double econ_cost_usd{0.0};          ///< facility opex + amortised capex
  double econ_capex_usd{0.0};         ///< amortised capex share of the above
  double econ_carbon_g{0.0};          ///< facility carbon over the run
  double econ_cost_per_job_usd{0.0};  ///< total cost / completed jobs
  double econ_carbon_per_job_g{0.0};  ///< facility carbon / completed jobs
  std::size_t econ_jobs_deferred{0};      ///< jobs shifted out of pricey windows
  std::size_t econ_price_demotions{0};    ///< placements clock-stepped by price

  void print(std::ostream& os) const;
  /// One header + one row; `with_header` also writes the comment and
  /// column rows (false appends a row to an existing block).
  void csv(std::ostream& os, bool with_header = true) const;
};

class simulator {
 public:
  simulator(cluster_config config, std::unique_ptr<scheduling_policy> policy);
  ~simulator();

  /// Replay `trace` to completion; resets all per-run state first, so one
  /// simulator can replay several traces.
  run_summary run(const job_trace& trace);

  [[nodiscard]] const std::vector<job_result>& results() const { return results_; }

  /// Modelled facility power sampled after every event, as (time, watts)
  /// pairs — the budget test asserts every sample respects the cap.
  [[nodiscard]] const std::vector<std::pair<double, double>>& power_samples() const {
    return power_samples_;
  }

  [[nodiscard]] sched::controller& controller() { return *ctl_; }
  [[nodiscard]] const cluster_config& config() const { return config_; }

  /// Close the model-lifecycle loop over this cluster: every trusted job
  /// completion feeds `guard`'s drift monitor and `manager`'s replay buffer
  /// (per-item, per-GPU energies, so job size cancels out), and the manager
  /// is stepped on simulation time. When it promotes or rolls back, the new
  /// champion from `registry` is installed into `guard` mid-run — the
  /// scheduling policy built on the guard resumes model-tier planning
  /// without a restart. Attach before run(); all three must share the
  /// device of this cluster and outlive the simulator.
  void attach_recovery(std::shared_ptr<guarded_planner> guard,
                       std::shared_ptr<lifecycle::model_registry> registry,
                       std::shared_ptr<lifecycle::lifecycle_manager> manager);

  /// Wire the observability plane: `watchdog` (may be nullptr) is fed job
  /// completions / planner tiers / quarantine state and evaluated on every
  /// scrape tick; `attribution_guard` is the guarded_planner the scheduling
  /// policy plans through, read per placement to tag the job's joules with
  /// the tier that priced them (falls back to the recovery guard, then — for
  /// un-guarded plan_fns — to cause::oracle). Attach before run().
  void attach_observability(std::shared_ptr<obs::slo_watchdog> watchdog,
                            std::shared_ptr<guarded_planner> attribution_guard = nullptr);

  /// Called after every scrape tick (and once at end of run) with the
  /// current virtual time — tools use it to emit live snapshot files.
  void set_scrape_hook(std::function<void(double)> hook);

  /// Enable periodic virtual-time checkpointing (and/or crash injection) for
  /// subsequent run()/resume() calls. Throws std::invalid_argument when the
  /// config has the reactive governor enabled — per-job governor state is
  /// not serialisable (see ARCHITECTURE §17's operational contract); the
  /// lifecycle regime is excluded the same way by the tool layer. Pass the
  /// guard/service the scheduling policy plans through via `opts` so their
  /// state (drift window, tier counters, plan cache) rides in the artefact.
  void set_checkpointing(checkpoint_options opts);

  /// Serialize the full simulator state at the current virtual time into a
  /// checkpoint payload (unsealed; callers wrap it with envelope::seal).
  /// Normally driven by the periodic tick, but public for tests.
  [[nodiscard]] std::string serialize_checkpoint() const;

  /// Restore state from a checkpoint payload (already opened fail-closed
  /// through the envelope). `trace` must be the same trace the exporting
  /// run replayed — identity is verified by CRC over its CSV rendering.
  /// On any parse/consistency error the simulator is left untouched and
  /// the status names the offending section. Call set_checkpointing() and
  /// attach_observability() (when the exporting run had them) first.
  [[nodiscard]] common::status restore_checkpoint(const std::string& payload,
                                                  const job_trace& trace);

  /// Continue a restored run to completion. The event queue is rebuilt from
  /// the restored state in original tie-break order, so the summary, per-job
  /// results, ledger, and snapshot rendering are byte-identical to the
  /// uninterrupted run. Precondition: restore_checkpoint() succeeded.
  [[nodiscard]] run_summary resume(const job_trace& trace);

  /// Scrape ticks fired so far (restored across resume) — tools use it to
  /// re-seed the snapshot sequence number.
  [[nodiscard]] std::uint64_t scrape_ticks() const { return scrape_ticks_; }
  /// The run's cost/carbon accumulators (inactive unless config().econ is
  /// usable) — tools read it for snapshot fields and the cost report.
  [[nodiscard]] const econ::cost_meter& econ_meter() const { return econ_meter_; }
  /// Checkpoint files written by this simulator so far.
  [[nodiscard]] std::uint64_t checkpoints_written() const { return ckpt_index_; }

  /// Print the per-job sacct-style table of the last run.
  void report(std::ostream& os) const;

 private:
  struct slot_state {
    bool busy{false};
    double busy_until{0.0};
  };

  void rebuild_controller();
  [[nodiscard]] sched::node_config make_node_config(const std::string& name) const;
  void arrive(const traced_job& job);
  void schedule_arrival(const job_trace& trace, std::size_t index, double t);
  void complete(int job_id, std::uint64_t epoch);
  /// A GPU on `node_name` fell off the bus: requeue every job running
  /// there, drain and remove the node, shrink the inventory.
  void device_lost(const std::string& node_name);
  /// Requeue every job running on node index `ni` with wasted-energy
  /// attribution (cause::fault_wasted); returns how many were drained.
  /// Shared by the device-lost and node-crash paths.
  std::size_t drain_node(std::size_t ni);
  /// Remove node `ni` from the inventory and rebuild the power budget over
  /// the survivors (folding the old budget's counters into the base).
  /// False when the controller refused the removal (node not idle/absent).
  bool remove_node_and_rebuild(std::size_t ni);
  /// Rebuild the power budget against the current inventory, re-registering
  /// every running job's demand and folding counters into the base.
  void rebuild_budget();
  /// Node-level chaos events (id-keyed so pending events are serialisable).
  void node_crash(std::uint64_t event_id);
  void node_restart(std::uint64_t event_id);
  void device_lost_event(std::uint64_t event_id);
  /// Periodic checkpoint tick: serialize + seal + atomic write, reschedule.
  void checkpoint_tick();
  /// True while undrained work can still schedule events: pending arrivals,
  /// running jobs, or pending fault/chaos events. The self-rescheduling
  /// ticks (scrape, checkpoint) key off this instead of engine emptiness so
  /// two tick streams cannot keep each other alive forever.
  [[nodiscard]] bool has_live_work() const;
  /// Shared tail of run()/resume(): drive the engine dry, close accounting,
  /// fail whatever never scheduled, assemble the summary.
  run_summary finish_run(const job_trace& trace);
  /// Stable digest of the replay-relevant configuration; a checkpoint only
  /// restores into a simulator whose digest matches.
  [[nodiscard]] std::string config_fingerprint() const;
  void try_schedule();
  [[nodiscard]] cluster_view make_view() const;
  [[nodiscard]] double shadow_time(int n_gpus) const;
  /// Facility-cap admission: demote `config` down the clock table until
  /// the job fits the headroom; false = defer (or can never fit).
  bool admit(const traced_job& job, common::frequency_config& config, bool& demoted) const;
  void start(std::size_t queue_index, const placement& pl);
  void integrate_to_now();
  /// Governor poll for one governed job (epoch-guarded like complete()).
  void governor_tick(int job_id, std::uint64_t epoch);
  /// Drift multiplier on modelled power at `core_mhz`, as of now.
  [[nodiscard]] double drift_factor_now(double core_mhz) const;
  void sample_power();
  [[nodiscard]] job_result& result_of(int job_id);

  cluster_config config_;
  std::unique_ptr<scheduling_policy> policy_;
  std::unique_ptr<sched::controller> ctl_;
  gpusim::device_spec spec_;
  gpusim::dvfs_model model_;

  event_engine engine_;
  std::unique_ptr<power_budget> budget_;
  std::vector<std::vector<slot_state>> slots_;
  std::vector<queued_job> queue_;
  std::vector<job_result> results_;
  struct running_job {
    int id{0};
    /// Generation counter: a requeued job's stale completion event (which
    /// the engine cannot cancel) no longer matches and is ignored.
    std::uint64_t epoch{0};
    std::vector<gpu_slot> gpus;
    traced_job job;          ///< original submission, for requeueing
    double est{0.0};         ///< default-clock runtime estimate (queue entry)
    double start_s{0.0};
    double duration{0.0};
    double energy_j{0.0};    ///< total pre-charged GPU energy (0 when governed)
    double avg_power_w{0.0};  ///< per-GPU busy power (budget re-registration)
    obs::cause why{obs::cause::unattributed};  ///< attribution of this job's joules
    std::string node;        ///< primary node name (multi-node gangs charge here)
    // --- reactive-governor state (null/zero on ungoverned jobs). Governed
    // jobs are not pre-charged: energy accrues segment by segment at each
    // tick, split into the seed-attributed and governor-attributed buckets.
    std::shared_ptr<governor::governor> gov;  ///< shared: running_job is copied
    common::megahertz seed_clock{0.0};  ///< clock the planner/default seeded
    bool deviated{false};          ///< governor has left the seeded clock
    double seed_energy_j{0.0};     ///< accrued before the first deviation
    double gov_energy_j{0.0};      ///< accrued after it (cause::governor)
    double frac_done{0.0};         ///< fraction of the job's work completed
    double last_tick_s{0.0};       ///< start of the open accrual segment
    double cur_power_w{0.0};       ///< per-GPU watts at the current clock (drifted)
    double cur_base_power_w{0.0};  ///< same, pre-drift (model's belief)
    double cur_duration_full{0.0};  ///< whole-job seconds at the current clock
    double cur_util{0.0};          ///< modelled compute utilisation at it
    double target_w{0.0};          ///< hybrid watt target (predicted power)
    // --- checkpoint bookkeeping: the pending completion (or governor tick)
    // event for this job, so a resumed run can reschedule it exactly.
    double event_t{0.0};
    std::uint64_t event_seq{0};
  };
  /// Close `rj`'s open accrual segment at `now`: advance work fraction,
  /// book the segment's joules into the seed/governor bucket, and advance
  /// busy GPU-seconds.
  void accrue_governed(running_job& rj, double now);
  std::vector<running_job> running_;
  std::vector<std::pair<double, double>> power_samples_;
  double last_integrated_s_{0.0};
  /// Virtual time of the newest accounting-relevant event. finish_run()
  /// closes integration and the final scrape here rather than at
  /// engine_.now(): a trailing (inert) checkpoint tick may outlive all live
  /// work, and the contract is byte-identical output with checkpointing on
  /// or off.
  double last_live_t_{0.0};
  double facility_energy_j_{0.0};
  double busy_gpu_seconds_{0.0};
  double peak_power_w_{0.0};
  // --- observability (optional) ---
  /// Scrape tick: ledger sample + watchdog evaluation + hook, rescheduled
  /// while the engine still has events.
  void scrape_tick();
  std::shared_ptr<obs::slo_watchdog> watchdog_;
  std::shared_ptr<guarded_planner> attribution_guard_;
  std::function<void(double)> scrape_hook_;
  // --- lifecycle recovery (optional; counters reset per run) ---
  std::shared_ptr<guarded_planner> recovery_guard_;
  std::shared_ptr<lifecycle::model_registry> recovery_registry_;
  std::shared_ptr<lifecycle::lifecycle_manager> recovery_manager_;
  bool recovery_was_quarantined_{false};
  std::size_t quarantines_{0};
  std::size_t promotions_{0};
  std::size_t rollbacks_{0};
  // --- fault state (reset per run) ---
  common::pcg32 fault_rng_{0};
  std::uint64_t next_epoch_{0};
  std::size_t clock_set_faults_{0};
  std::size_t degraded_samples_{0};
  std::size_t requeues_{0};
  std::size_t nodes_lost_{0};
  double wasted_energy_j_{0.0};
  // --- governor counters (reset per run) ---
  std::size_t governor_ticks_{0};
  std::size_t governor_clock_changes_{0};
  // Budget counters accumulated across budget rebuilds (node removal).
  std::size_t budget_rebalances_base_{0};
  std::size_t budget_demotions_base_{0};
  // --- node-level chaos state (reset per run) ---
  common::pcg32 chaos_rng_{0};
  std::size_t node_crashes_{0};
  std::size_t node_restarts_{0};
  // --- explicit pending-event registries (closures cannot serialize; the
  // checkpoint rebuilds the event queue from these + running_/arrivals) ---
  struct pending_node_event {
    std::uint64_t id{0};   ///< registry key (captured by the closure)
    double t{0.0};         ///< fire time
    std::uint64_t seq{0};  ///< engine tie-break rank
    std::string node;      ///< victim (device-lost / restart); empty for crash
  };
  std::vector<pending_node_event> pending_faults_;    ///< device-lost events
  std::vector<pending_node_event> pending_crashes_;   ///< chaos crash events
  std::vector<pending_node_event> pending_restarts_;  ///< chaos restart events
  std::uint64_t next_node_event_id_{0};
  std::vector<std::uint64_t> arrival_seq_;  ///< per trace index: arrival event seq
  std::vector<char> arrived_;               ///< per trace index: arrival fired
  std::size_t arrivals_pending_{0};
  // --- scrape/checkpoint tick bookkeeping (restored across resume) ---
  double next_scrape_t_{-1.0};
  std::uint64_t next_scrape_seq_{0};
  std::uint64_t scrape_ticks_{0};
  // --- facility economics (reset per run; restored across resume) ---
  /// Wake-up at the next price boundary while deferrable jobs wait: a
  /// single self-rescheduling tick (scrape pattern), so econ replays keep
  /// the engine's tie-break sequence deterministic.
  void econ_tick();
  econ::cost_meter econ_meter_;
  /// Jobs a defer() verdict is currently holding in the queue — their
  /// eventual start attributes to cause::econ_deferred.
  std::set<int> econ_deferred_ids_;
  std::size_t econ_jobs_deferred_{0};
  std::size_t econ_price_demotions_{0};
  double next_econ_t_{-1.0};
  std::uint64_t next_econ_seq_{0};
  // --- checkpointing (configured once; index/cursor reset per run) ---
  checkpoint_options ckpt_;
  bool ckpt_enabled_{false};
  std::uint64_t ckpt_index_{0};
  double next_ckpt_t_{-1.0};
  std::uint64_t trace_crc_{0};  ///< CRC-32 of the running trace's CSV form
  bool restored_{false};        ///< restore_checkpoint() succeeded; resume() legal
};

/// Tuning-table-backed plan resolver for `device`: compiled once from the
/// 23 registered suite kernels over the paper's ten objectives (oracle
/// planning, Sec. 8.3 ground truth); other (kernel, target) pairs fall
/// back to an on-the-fly oracle plan.
[[nodiscard]] plan_fn make_suite_planner(const std::string& device);

/// A suite resolver wired through the prediction guardrails: the trained
/// model set under `model_dir` is the first tier, the compiled oracle
/// table the second, default clocks the last. The guard is shared with the
/// returned plan_fn so callers can inspect fallback counters and the drift
/// quarantine — a quarantined model set makes every scheduling policy
/// built on `plan` follow the degradation automatically.
struct guarded_suite_planner {
  plan_fn plan;                              ///< resolver for scheduling policies
  std::shared_ptr<guarded_planner> guard;    ///< shared rail state
  /// Plan service fronting `guard`: generation-keyed decision cache (healthy
  /// tiers only — quarantined decisions flow through so probe cadence stays
  /// per-admission) and the batch resolution API.
  std::shared_ptr<plan_service> service;
  bool model_loaded{false};  ///< model tier active (structured load verified)
  std::string load_summary;  ///< per-file diagnostics when it is not
};

/// Build the guarded resolver for `device`, loading models from
/// `model_dir` via the crash-safe store. A missing or corrupt model set
/// never fails: the resolver degrades to the tuning-table tier and the
/// diagnostics land in `load_summary` (and the warning log).
[[nodiscard]] guarded_suite_planner make_guarded_suite_planner(
    const std::string& device, const std::filesystem::path& model_dir);

}  // namespace synergy::cluster

#include "synergy/cluster/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "synergy/cluster/simulator.hpp"
#include "synergy/common/checksum.hpp"
#include "synergy/common/envelope.hpp"
#include "synergy/common/log.hpp"
#include "synergy/guarded_planner.hpp"
#include "synergy/obs/slo_watchdog.hpp"
#include "synergy/plan_service.hpp"
#include "synergy/telemetry/metrics_registry.hpp"

namespace synergy::cluster {

namespace fs = std::filesystem;
using common::errc;
using common::error;

namespace {

/// Parse failures inside the payload raise this; restore_checkpoint catches
/// it (and everything else) and reports a fail-closed status — a corrupt
/// payload that survived the CRC must still never produce UB or a throw.
struct parse_fail : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Upper bound on any serialized collection count: a CRC-valid but hostile
/// payload (the fuzz suite re-seals mutated payloads) must not drive a
/// multi-gigabyte reserve.
constexpr std::uint64_t max_count = 1ull << 24;

constexpr char hex_digits[] = "0123456789abcdef";

/// Doubles travel as the 16-hex IEEE-754 bit pattern: decimal round-trips
/// are not bit-exact, and byte-identical resume hangs on every last bit.
std::string hexd(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) out[static_cast<std::size_t>(i)] = hex_digits[(bits >> (4 * (15 - i))) & 0xF];
  return out;
}

double unhexd(const std::string& tok) {
  if (tok.size() != 16) throw parse_fail("bad double token '" + tok + "'");
  std::uint64_t bits = 0;
  for (const char c : tok) {
    bits <<= 4;
    if (c >= '0' && c <= '9')
      bits |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      throw parse_fail("bad hex digit in double token '" + tok + "'");
  }
  return std::bit_cast<double>(bits);
}

/// Strings travel percent-encoded so whitespace tokenization stays trivial:
/// the empty string encodes as "~"; '~', '%', spaces, and control bytes
/// escape as %XX (a literal "~" therefore encodes as "%7e" — no ambiguity).
std::string enc(std::string_view in) {
  if (in.empty()) return "~";
  std::string out;
  out.reserve(in.size());
  for (const char ch : in) {
    const auto c = static_cast<unsigned char>(ch);
    if (c <= 0x20 || c == 0x7F || c == '%' || c == '~') {
      out += '%';
      out += hex_digits[c >> 4];
      out += hex_digits[c & 0xF];
    } else {
      out += ch;
    }
  }
  return out;
}

int unhex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  throw parse_fail("bad percent escape in string token");
}

std::string dec(const std::string& in) {
  if (in == "~") return {};
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out += in[i];
      continue;
    }
    if (i + 2 >= in.size()) throw parse_fail("truncated percent escape");
    out += static_cast<char>((unhex_nibble(in[i + 1]) << 4) | unhex_nibble(in[i + 2]));
    i += 2;
  }
  return out;
}

/// Whitespace tokenizer over the payload. Newlines and spaces are equal
/// separators — the format is fixed-order and tagged, so line structure is
/// for human eyes only.
class tokenizer {
 public:
  explicit tokenizer(std::string_view text) : text_(text) {}

  std::string next() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
    if (pos_ >= text_.size()) throw parse_fail("unexpected end of payload");
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ' && text_[pos_] != '\n' && text_[pos_] != '\r')
      ++pos_;
    return std::string(text_.substr(begin, pos_ - begin));
  }

  void expect(std::string_view tag) {
    const std::string got = next();
    if (got != tag)
      throw parse_fail("expected section '" + std::string(tag) + "', found '" + got + "'");
  }

  std::uint64_t u64() {
    const std::string tok = next();
    std::uint64_t v = 0;
    const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || end != tok.data() + tok.size())
      throw parse_fail("bad integer token '" + tok + "'");
    return v;
  }

  std::uint64_t count() {
    const std::uint64_t v = u64();
    if (v > max_count) throw parse_fail("collection count " + std::to_string(v) + " out of range");
    return v;
  }

  std::int64_t i64() {
    const std::string tok = next();
    std::int64_t v = 0;
    const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || end != tok.data() + tok.size())
      throw parse_fail("bad integer token '" + tok + "'");
    return v;
  }

  double d() { return unhexd(next()); }
  std::string str() { return dec(next()); }

  bool b01() {
    const std::uint64_t v = u64();
    if (v > 1) throw parse_fail("bad boolean token");
    return v == 1;
  }

 private:
  std::string_view text_;
  std::size_t pos_{0};
};

/// Payload writer: space-separated tokens, newline per record.
class writer {
 public:
  writer& tag(std::string_view t) {
    begin();
    out_ += t;
    return *this;
  }
  writer& u(std::uint64_t v) { return raw(std::to_string(v)); }
  writer& i(std::int64_t v) { return raw(std::to_string(v)); }
  writer& d(double v) { return raw(hexd(v)); }
  writer& s(std::string_view v) { return raw(enc(v)); }
  writer& nl() {
    out_ += '\n';
    at_line_start_ = true;
    return *this;
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void begin() {
    if (!at_line_start_) out_ += ' ';
    at_line_start_ = false;
  }
  writer& raw(std::string_view v) {
    begin();
    out_ += v;
    return *this;
  }
  std::string out_;
  bool at_line_start_{true};
};

void write_rng(writer& w, std::string_view tag, const common::pcg32& rng) {
  const auto s = rng.state();
  w.tag(tag).u(s.state).u(s.inc).u(s.has_spare ? 1 : 0).d(s.spare).nl();
}

common::pcg32_state read_rng(tokenizer& t, std::string_view tag) {
  t.expect(tag);
  common::pcg32_state s;
  s.state = t.u64();
  s.inc = t.u64();
  s.has_spare = t.b01();
  s.spare = t.d();
  return s;
}

void write_cause_array(writer& w, const obs::cause_array& a) {
  for (const double v : a) w.d(v);
}

obs::cause_array read_cause_array(tokenizer& t) {
  obs::cause_array a{};
  for (auto& v : a) v = t.d();
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// Checkpoint artefact file helpers
// ---------------------------------------------------------------------------

std::string checkpoint_file_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%06llu.synergy", static_cast<unsigned long long>(index));
  return buf;
}

common::result<fs::path> latest_checkpoint(const fs::path& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    return error{errc::not_found, "checkpoint directory missing: " + dir.string()};
  // Zero-padded names make lexical order numeric order, so the maximum
  // filename is the newest checkpoint.
  std::string best;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == std::string("ckpt-000000.synergy").size() &&
        name.starts_with("ckpt-") && name.ends_with(".synergy") && name > best)
      best = name;
  }
  if (ec) return error{errc::unavailable, "cannot list " + dir.string() + ": " + ec.message()};
  if (best.empty())
    return error{errc::not_found, "no checkpoint artefacts in " + dir.string()};
  return dir / best;
}

common::result<std::string> read_checkpoint_payload(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return error{errc::unavailable, "cannot read checkpoint " + file.string()};
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto op = common::envelope::open(buf.str(), checkpoint_kind, checkpoint_version);
  if (!op.ok())
    return error{errc::invalid_argument,
                 "checkpoint " + file.string() + " failed to open (" +
                     common::envelope::to_string(op.error) + "): " + op.detail};
  return op.payload;
}

common::status write_checkpoint_file(const fs::path& file, std::string_view payload) {
  return common::atomic_write_file(
      file, common::envelope::seal(checkpoint_kind, checkpoint_version, payload));
}

// ---------------------------------------------------------------------------
// simulator: checkpoint configuration
// ---------------------------------------------------------------------------

void simulator::set_checkpointing(checkpoint_options opts) {
  if (config_.governor.enabled)
    throw std::invalid_argument(
        "simulator: checkpointing is incompatible with the reactive governor "
        "(per-job governor state is not serialisable; see ARCHITECTURE Sec. 17)");
  if (recovery_manager_)
    throw std::invalid_argument(
        "simulator: checkpointing is incompatible with the lifecycle recovery loop "
        "(in-memory retrain state is not serialisable; see ARCHITECTURE Sec. 17)");
  ckpt_ = std::move(opts);
  ckpt_enabled_ = true;
}

std::string simulator::config_fingerprint() const {
  // Everything that shapes replay decisions. A checkpoint refuses to restore
  // into a simulator whose fingerprint differs — resuming under a different
  // policy or fault plan would silently diverge instead of failing loudly.
  writer w;
  w.tag("cfg").u(config_.n_nodes).u(config_.gpus_per_node).s(config_.device);
  w.d(config_.host_power_w).d(config_.facility_cap_w).u(config_.tag_nvgpufreq ? 1 : 0);
  w.u(config_.faults.seed).d(config_.faults.clock_set_fail_rate);
  w.d(config_.faults.power_read_dropout_rate).d(config_.faults.device_lost_rate);
  w.u(config_.faults.max_node_losses == std::numeric_limits<std::size_t>::max()
          ? 0
          : config_.faults.max_node_losses + 1);
  w.d(config_.drift.at_s).d(config_.drift.power_skew).d(config_.drift.freq_exponent);
  w.u(config_.chaos.seed).d(config_.chaos.mtbf_s).d(config_.chaos.restart_delay_s);
  w.u(config_.chaos.max_crashes);
  w.u(config_.governor.enabled ? 1 : 0).d(config_.obs_scrape_interval_s);
  w.s(policy_->name());
  // Econ parameters shape deferral/demotion decisions and every cost figure;
  // the step traces hash via their canonical CSV rendering.
  w.u(config_.econ.enabled ? 1 : 0).d(config_.econ.capex_usd_per_node_hour);
  w.d(config_.econ.defer_price_ratio).d(config_.econ.demote_price_ratio);
  w.u(common::crc32(config_.econ.price.to_csv("price")));
  w.u(common::crc32(config_.econ.carbon.to_csv("carbon")));
  return w.take();
}

// ---------------------------------------------------------------------------
// simulator: serialize
// ---------------------------------------------------------------------------

std::string simulator::serialize_checkpoint() const {
  for (const auto& rj : running_)
    if (rj.gov)
      throw std::logic_error("simulator: cannot checkpoint a governed job");

  writer w;
  w.tag("synergy_ckpt").u(1).nl();
  w.tag("fingerprint").u(common::crc32(config_fingerprint())).nl();
  w.tag("trace").u(trace_crc_).u(results_.size()).nl();
  w.tag("engine").d(engine_.now()).nl();
  w.tag("integ").d(last_integrated_s_).d(facility_energy_j_).d(busy_gpu_seconds_);
  w.d(peak_power_w_).d(wasted_energy_j_).d(last_live_t_).nl();
  w.tag("counts").u(clock_set_faults_).u(degraded_samples_).u(requeues_).u(nodes_lost_);
  w.u(node_crashes_).u(node_restarts_).u(quarantines_).u(promotions_).u(rollbacks_);
  w.u(governor_ticks_).u(governor_clock_changes_).nl();
  // Budget counters travel as the folded run totals: the resuming process
  // builds a fresh budget (counters zero) and carries these in the base.
  w.tag("budget").u(budget_rebalances_base_ + budget_->rebalances());
  w.u(budget_demotions_base_ + budget_->demotions()).nl();
  w.tag("epoch").u(next_epoch_).u(next_node_event_id_).nl();
  write_rng(w, "rng_fault", fault_rng_);
  write_rng(w, "rng_chaos", chaos_rng_);

  w.tag("nodes").u(ctl_->node_count()).nl();
  for (std::size_t i = 0; i < ctl_->node_count(); ++i)
    w.tag("node").s(ctl_->node_at(i).name()).nl();

  w.tag("slots").u(slots_.size()).u(config_.gpus_per_node).nl();
  for (const auto& row : slots_) {
    w.tag("srow");
    for (const auto& s : row) w.u(s.busy ? 1 : 0).d(s.busy_until);
    w.nl();
  }

  w.tag("results").u(results_.size()).nl();
  for (const auto& r : results_) {
    w.tag("res").i(r.id).s(r.name).s(r.kernel).s(r.target);
    w.u(static_cast<std::uint64_t>(r.state)).i(r.n_gpus);
    w.d(r.submit_s).d(r.start_s).d(r.end_s).d(r.queue_wait_s).d(r.gpu_energy_j).d(r.core_mhz);
    w.u(r.demoted ? 1 : 0).u(r.clock_set_failed ? 1 : 0).u(r.energy_degraded ? 1 : 0);
    w.i(r.requeues).s(r.failure_reason).nl();
  }

  const auto write_traced = [&w](const traced_job& j) {
    w.i(j.id).s(j.name).d(j.submit_s).i(j.n_gpus).s(j.kernel).d(j.work_items).i(j.iterations);
    w.s(j.target).u(j.deferrable ? 1 : 0).d(j.deadline_s);
  };

  w.tag("queue").u(queue_.size()).nl();
  for (const auto& qj : queue_) {
    w.tag("q");
    write_traced(qj.job);
    w.d(qj.est_runtime_s).nl();
  }

  w.tag("running").u(running_.size()).nl();
  for (const auto& rj : running_) {
    w.tag("runj").i(rj.id).u(rj.epoch).u(rj.gpus.size());
    for (const auto& s : rj.gpus) w.u(s.node).u(s.gpu);
    write_traced(rj.job);
    w.d(rj.est).d(rj.start_s).d(rj.duration).d(rj.energy_j).d(rj.avg_power_w);
    w.u(static_cast<std::uint64_t>(rj.why)).s(rj.node).d(rj.event_t).u(rj.event_seq).nl();
  }

  w.tag("arrivals").u(arrivals_pending_).nl();
  for (std::size_t i = 0; i < arrived_.size(); ++i)
    if (!arrived_[i]) w.tag("arr").u(i).u(arrival_seq_[i]).nl();

  const auto write_pending = [&w](std::string_view sect, std::string_view row, bool with_node,
                                  const std::vector<pending_node_event>& v) {
    w.tag(sect).u(v.size()).nl();
    for (const auto& e : v) {
      w.tag(row).u(e.id).d(e.t).u(e.seq);
      if (with_node) w.s(e.node);
      w.nl();
    }
  };
  write_pending("pfault", "pf", true, pending_faults_);
  write_pending("pcrash", "pc", false, pending_crashes_);
  write_pending("prestart", "pr", true, pending_restarts_);

  w.tag("scrape").u(next_scrape_t_ >= 0.0 ? 1 : 0).d(next_scrape_t_).u(next_scrape_seq_);
  w.u(scrape_ticks_).nl();
  w.tag("ckpt").u(ckpt_index_).d(next_ckpt_t_).nl();

  w.tag("guard").u(ckpt_.guard ? 1 : 0).nl();
  if (ckpt_.guard) {
    const guard_state gs = ckpt_.guard->export_state();
    w.tag("ggen").u(gs.generation).nl();
    w.tag("gcounts").u(gs.model_plans).u(gs.table_fallbacks).u(gs.default_fallbacks);
    w.u(gs.ood_rejections).u(gs.prediction_rejections).u(gs.quarantine_rejections);
    w.u(gs.quarantine_probes).nl();
    w.tag("gdrift").u(gs.drift.total).u(gs.drift.rejected).u(gs.drift.quarantined ? 1 : 0);
    w.u(gs.drift.next).d(gs.drift.window_sum).s(gs.drift.reason).nl();
    w.tag("gscale").u(gs.drift.scale.size()).nl();
    for (const auto& [kernel, scale] : gs.drift.scale) w.tag("gs").s(kernel).d(scale).nl();
    w.tag("gwin").u(gs.drift.window.size()).nl();
    for (const double v : gs.drift.window) w.tag("gw").d(v).nl();
  }

  w.tag("service").u(ckpt_.service ? 1 : 0).nl();
  if (ckpt_.service) {
    const auto cache = ckpt_.service->export_cache();
    w.tag("cache").u(cache.size()).nl();
    for (const auto& e : cache) {
      w.tag("ce").s(e.kernel).s(e.target);
      w.d(e.decision.config.memory.value).d(e.decision.config.core.value);
      w.u(static_cast<std::uint64_t>(e.decision.tier)).u(e.decision.ood ? 1 : 0);
      w.u(e.decision.clamped ? 1 : 0).u(e.decision.probe ? 1 : 0).s(e.decision.reason).nl();
    }
  }

  const obs::ledger_state ls = obs::energy_ledger::instance().export_state();
  w.tag("ledger").u(ls.cells.size()).nl();
  for (const auto& cell : ls.cells) {
    w.tag("lc").s(cell.key.node).s(cell.key.device).s(cell.key.job).s(cell.key.kernel);
    write_cause_array(w, cell.by_cause);
    w.d(cell.total_j).nl();
  }
  w.tag("ltot");
  write_cause_array(w, ls.totals);
  w.d(ls.total_j).u(ls.charges).nl();
  w.tag("lseries").u(ls.series.size()).nl();
  for (const auto& sample : ls.series) {
    w.tag("ls").d(sample.t_s);
    write_cause_array(w, sample.by_cause);
    w.d(sample.total_j).u(sample.charges).nl();
  }

  w.tag("watchdog").u(watchdog_ ? 1 : 0).nl();
  if (watchdog_) {
    const obs::watchdog_state ws = watchdog_->export_state();
    w.tag("wstate").u(ws.firing.size());
    for (const bool f : ws.firing) w.u(f ? 1 : 0);
    w.u(ws.plans_total).u(ws.plans_model).d(ws.quarantine_since).u(ws.breaker_opens_base).nl();
    w.tag("wjobs").u(ws.job_energies.size()).nl();
    for (const double v : ws.job_energies) w.tag("wj").d(v).nl();
    w.tag("wcosts").u(ws.job_costs.size()).nl();
    for (const double v : ws.job_costs) w.tag("wc").d(v).nl();
    w.tag("wcarbons").u(ws.job_carbons.size()).nl();
    for (const double v : ws.job_carbons) w.tag("wb").d(v).nl();
    w.tag("walerts").u(ws.alerts.size()).nl();
    for (const auto& a : ws.alerts) {
      w.tag("wa").d(a.t_s).s(a.rule).s(a.kind_name).d(a.value).d(a.threshold).s(a.detail).nl();
    }
  }

  const auto metrics = telemetry::metrics_registry::instance().snapshot();
  w.tag("metrics").u(metrics.size()).nl();
  for (const auto& m : metrics) {
    using kind = telemetry::metric_snapshot::kind;
    switch (m.type) {
      case kind::counter:
        // Counter totals are exact in a double far beyond any event count
        // this simulator produces; serialize the integer form.
        w.tag("mc").s(m.name).u(static_cast<std::uint64_t>(m.value)).nl();
        break;
      case kind::gauge: w.tag("mg").s(m.name).d(m.value).nl(); break;
      case kind::histogram: {
        w.tag("mh").s(m.name).u(m.count).d(m.sum).d(m.min).d(m.max);
        w.u(m.bounds.size());
        for (const double b : m.bounds) w.d(b);
        w.u(m.buckets.size());
        for (const std::uint64_t c : m.buckets) w.u(c);
        w.nl();
        break;
      }
    }
  }

  // Econ accumulators travel verbatim (never recomputed) so the resumed
  // run's cost report is byte-identical; the pending econ tick carries its
  // original engine sequence number like the scrape tick above.
  w.tag("econ").u(econ_meter_.active() ? 1 : 0).nl();
  if (econ_meter_.active()) {
    const econ::cost_meter::state es = econ_meter_.export_state();
    w.tag("emeter").d(es.facility_cost_usd).d(es.facility_carbon_g).d(es.capex_usd);
    w.d(es.attributed_cost_usd).d(es.attributed_carbon_g).u(es.jobs_completed).nl();
    w.tag("eca");
    write_cause_array(w, es.cost_by_cause);
    w.nl();
    w.tag("ecb");
    write_cause_array(w, es.carbon_by_cause);
    w.nl();
    w.tag("ecounts").u(econ_jobs_deferred_).u(econ_price_demotions_).nl();
    w.tag("etick").u(next_econ_t_ >= 0.0 ? 1 : 0).d(next_econ_t_).u(next_econ_seq_).nl();
    w.tag("edef").u(econ_deferred_ids_.size()).nl();
    for (const int id : econ_deferred_ids_) w.tag("ed").i(id).nl();
  }

  w.tag("end").nl();
  return w.take();
}

// ---------------------------------------------------------------------------
// simulator: restore
// ---------------------------------------------------------------------------

namespace {

/// Everything a checkpoint payload parses into. The restore path fills this
/// completely and cross-validates it before mutating one byte of simulator
/// state, so a failed restore really does restore nothing.
struct parsed_checkpoint {
  std::uint32_t fingerprint{0};
  std::uint64_t trace_crc{0};
  std::uint64_t n_jobs{0};
  double now{0.0};
  double last_integrated{0.0}, facility_energy{0.0}, busy_gpu_seconds{0.0};
  double peak_power{0.0}, wasted_energy{0.0}, last_live_t{0.0};
  std::uint64_t clock_set_faults{0}, degraded{0}, requeues{0}, nodes_lost{0};
  std::uint64_t node_crashes{0}, node_restarts{0};
  std::uint64_t quarantines{0}, promotions{0}, rollbacks{0};
  std::uint64_t governor_ticks{0}, governor_clock_changes{0};
  std::uint64_t budget_rebalances{0}, budget_demotions{0};
  std::uint64_t next_epoch{0}, next_node_event_id{0};
  common::pcg32_state rng_fault, rng_chaos;
  std::vector<std::string> node_names;
  std::vector<std::vector<std::pair<bool, double>>> slots;
  std::vector<job_result> results;
  std::vector<queued_job> queue;
  struct running_row {
    int id{0};
    std::uint64_t epoch{0};
    std::vector<gpu_slot> gpus;
    traced_job job;
    double est{0.0}, start_s{0.0}, duration{0.0}, energy_j{0.0}, avg_power_w{0.0};
    obs::cause why{obs::cause::unattributed};
    std::string node;
    double event_t{0.0};
    std::uint64_t event_seq{0};
  };
  std::vector<running_row> running;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> arrivals;  ///< (index, seq)
  struct pending_row {
    std::uint64_t id{0};
    double t{0.0};
    std::uint64_t seq{0};
    std::string node;
  };
  std::vector<pending_row> pfault, pcrash, prestart;
  bool scrape_pending{false};
  double scrape_t{-1.0};
  std::uint64_t scrape_seq{0}, scrape_ticks{0};
  std::uint64_t ckpt_index{0};
  double next_ckpt_t{-1.0};
  bool has_guard{false};
  guard_state guard;
  bool has_service{false};
  std::vector<cached_plan> cache;
  obs::ledger_state ledger;
  bool has_watchdog{false};
  obs::watchdog_state watchdog;
  std::vector<telemetry::metric_snapshot> metrics;
  bool has_econ{false};
  econ::cost_meter::state econ_state;
  std::uint64_t econ_jobs_deferred{0}, econ_price_demotions{0};
  bool econ_tick_pending{false};
  double econ_tick_t{-1.0};
  std::uint64_t econ_tick_seq{0};
  std::vector<int> econ_deferred_ids;
};

traced_job read_traced(tokenizer& t) {
  traced_job j;
  j.id = static_cast<int>(t.i64());
  j.name = t.str();
  j.submit_s = t.d();
  j.n_gpus = static_cast<int>(t.i64());
  j.kernel = t.str();
  j.work_items = t.d();
  j.iterations = static_cast<int>(t.i64());
  j.target = t.str();
  j.deferrable = t.b01();
  j.deadline_s = t.d();
  return j;
}

parsed_checkpoint parse_checkpoint(const std::string& payload) {
  tokenizer t{payload};
  parsed_checkpoint p;

  t.expect("synergy_ckpt");
  if (t.u64() != 1) throw parse_fail("unknown payload schema version");
  t.expect("fingerprint");
  p.fingerprint = static_cast<std::uint32_t>(t.u64());
  t.expect("trace");
  p.trace_crc = t.u64();
  p.n_jobs = t.count();
  t.expect("engine");
  p.now = t.d();
  t.expect("integ");
  p.last_integrated = t.d();
  p.facility_energy = t.d();
  p.busy_gpu_seconds = t.d();
  p.peak_power = t.d();
  p.wasted_energy = t.d();
  p.last_live_t = t.d();
  t.expect("counts");
  p.clock_set_faults = t.u64();
  p.degraded = t.u64();
  p.requeues = t.u64();
  p.nodes_lost = t.u64();
  p.node_crashes = t.u64();
  p.node_restarts = t.u64();
  p.quarantines = t.u64();
  p.promotions = t.u64();
  p.rollbacks = t.u64();
  p.governor_ticks = t.u64();
  p.governor_clock_changes = t.u64();
  t.expect("budget");
  p.budget_rebalances = t.u64();
  p.budget_demotions = t.u64();
  t.expect("epoch");
  p.next_epoch = t.u64();
  p.next_node_event_id = t.u64();
  p.rng_fault = read_rng(t, "rng_fault");
  p.rng_chaos = read_rng(t, "rng_chaos");

  t.expect("nodes");
  const std::uint64_t n_nodes = t.count();
  p.node_names.reserve(n_nodes);
  for (std::uint64_t i = 0; i < n_nodes; ++i) {
    t.expect("node");
    p.node_names.push_back(t.str());
  }

  t.expect("slots");
  const std::uint64_t nrows = t.count();
  const std::uint64_t ncols = t.count();
  p.slots.reserve(nrows);
  for (std::uint64_t r = 0; r < nrows; ++r) {
    t.expect("srow");
    std::vector<std::pair<bool, double>> row;
    row.reserve(ncols);
    for (std::uint64_t c = 0; c < ncols; ++c) {
      const bool busy = t.b01();
      row.emplace_back(busy, t.d());
    }
    p.slots.push_back(std::move(row));
  }

  t.expect("results");
  const std::uint64_t n_results = t.count();
  p.results.reserve(n_results);
  for (std::uint64_t i = 0; i < n_results; ++i) {
    t.expect("res");
    job_result r;
    r.id = static_cast<int>(t.i64());
    r.name = t.str();
    r.kernel = t.str();
    r.target = t.str();
    const std::uint64_t state = t.u64();
    if (state > static_cast<std::uint64_t>(sched::job_state::cancelled))
      throw parse_fail("job state out of range");
    r.state = static_cast<sched::job_state>(state);
    r.n_gpus = static_cast<int>(t.i64());
    r.submit_s = t.d();
    r.start_s = t.d();
    r.end_s = t.d();
    r.queue_wait_s = t.d();
    r.gpu_energy_j = t.d();
    r.core_mhz = t.d();
    r.demoted = t.b01();
    r.clock_set_failed = t.b01();
    r.energy_degraded = t.b01();
    r.requeues = static_cast<int>(t.i64());
    r.failure_reason = t.str();
    p.results.push_back(std::move(r));
  }

  t.expect("queue");
  const std::uint64_t n_queue = t.count();
  p.queue.reserve(n_queue);
  for (std::uint64_t i = 0; i < n_queue; ++i) {
    t.expect("q");
    queued_job qj;
    qj.job = read_traced(t);
    qj.est_runtime_s = t.d();
    p.queue.push_back(std::move(qj));
  }

  t.expect("running");
  const std::uint64_t n_running = t.count();
  p.running.reserve(n_running);
  for (std::uint64_t i = 0; i < n_running; ++i) {
    t.expect("runj");
    parsed_checkpoint::running_row rj;
    rj.id = static_cast<int>(t.i64());
    rj.epoch = t.u64();
    const std::uint64_t n_gpus = t.count();
    rj.gpus.reserve(n_gpus);
    for (std::uint64_t g = 0; g < n_gpus; ++g) {
      gpu_slot s;
      s.node = static_cast<std::size_t>(t.u64());
      s.gpu = static_cast<std::size_t>(t.u64());
      rj.gpus.push_back(s);
    }
    rj.job = read_traced(t);
    rj.est = t.d();
    rj.start_s = t.d();
    rj.duration = t.d();
    rj.energy_j = t.d();
    rj.avg_power_w = t.d();
    const std::uint64_t why = t.u64();
    if (why >= obs::n_causes) throw parse_fail("attribution cause out of range");
    rj.why = static_cast<obs::cause>(why);
    rj.node = t.str();
    rj.event_t = t.d();
    rj.event_seq = t.u64();
    p.running.push_back(std::move(rj));
  }

  t.expect("arrivals");
  const std::uint64_t n_arrivals = t.count();
  p.arrivals.reserve(n_arrivals);
  for (std::uint64_t i = 0; i < n_arrivals; ++i) {
    t.expect("arr");
    const std::uint64_t index = t.u64();
    const std::uint64_t seq = t.u64();
    p.arrivals.emplace_back(index, seq);
  }

  const auto read_pending = [&t](std::string_view sect, std::string_view row, bool with_node,
                                 std::vector<parsed_checkpoint::pending_row>& out) {
    t.expect(sect);
    const std::uint64_t n = t.count();
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      t.expect(row);
      parsed_checkpoint::pending_row e;
      e.id = t.u64();
      e.t = t.d();
      e.seq = t.u64();
      if (with_node) e.node = t.str();
      out.push_back(std::move(e));
    }
  };
  read_pending("pfault", "pf", true, p.pfault);
  read_pending("pcrash", "pc", false, p.pcrash);
  read_pending("prestart", "pr", true, p.prestart);

  t.expect("scrape");
  p.scrape_pending = t.b01();
  p.scrape_t = t.d();
  p.scrape_seq = t.u64();
  p.scrape_ticks = t.u64();
  t.expect("ckpt");
  p.ckpt_index = t.u64();
  p.next_ckpt_t = t.d();

  t.expect("guard");
  p.has_guard = t.b01();
  if (p.has_guard) {
    t.expect("ggen");
    p.guard.generation = t.u64();
    t.expect("gcounts");
    p.guard.model_plans = t.u64();
    p.guard.table_fallbacks = t.u64();
    p.guard.default_fallbacks = t.u64();
    p.guard.ood_rejections = t.u64();
    p.guard.prediction_rejections = t.u64();
    p.guard.quarantine_rejections = t.u64();
    p.guard.quarantine_probes = t.u64();
    t.expect("gdrift");
    p.guard.drift.total = t.u64();
    p.guard.drift.rejected = t.u64();
    p.guard.drift.quarantined = t.b01();
    p.guard.drift.next = t.u64();
    p.guard.drift.window_sum = t.d();
    p.guard.drift.reason = t.str();
    t.expect("gscale");
    const std::uint64_t n_scale = t.count();
    for (std::uint64_t i = 0; i < n_scale; ++i) {
      t.expect("gs");
      const std::string kernel = t.str();
      p.guard.drift.scale[kernel] = t.d();
    }
    t.expect("gwin");
    const std::uint64_t n_win = t.count();
    p.guard.drift.window.reserve(n_win);
    for (std::uint64_t i = 0; i < n_win; ++i) {
      t.expect("gw");
      p.guard.drift.window.push_back(t.d());
    }
  }

  t.expect("service");
  p.has_service = t.b01();
  if (p.has_service) {
    t.expect("cache");
    const std::uint64_t n_cache = t.count();
    p.cache.reserve(n_cache);
    for (std::uint64_t i = 0; i < n_cache; ++i) {
      t.expect("ce");
      cached_plan e;
      e.kernel = t.str();
      e.target = t.str();
      e.decision.config.memory = common::megahertz{t.d()};
      e.decision.config.core = common::megahertz{t.d()};
      const std::uint64_t tier = t.u64();
      if (tier > static_cast<std::uint64_t>(plan_tier::default_clocks))
        throw parse_fail("plan tier out of range");
      e.decision.tier = static_cast<plan_tier>(tier);
      e.decision.ood = t.b01();
      e.decision.clamped = t.b01();
      e.decision.probe = t.b01();
      e.decision.reason = t.str();
      p.cache.push_back(std::move(e));
    }
  }

  t.expect("ledger");
  const std::uint64_t n_cells = t.count();
  p.ledger.cells.reserve(n_cells);
  for (std::uint64_t i = 0; i < n_cells; ++i) {
    t.expect("lc");
    obs::ledger_entry cell;
    cell.key.node = t.str();
    cell.key.device = t.str();
    cell.key.job = t.str();
    cell.key.kernel = t.str();
    cell.by_cause = read_cause_array(t);
    cell.total_j = t.d();
    p.ledger.cells.push_back(std::move(cell));
  }
  t.expect("ltot");
  p.ledger.totals = read_cause_array(t);
  p.ledger.total_j = t.d();
  p.ledger.charges = t.u64();
  t.expect("lseries");
  const std::uint64_t n_series = t.count();
  p.ledger.series.reserve(n_series);
  for (std::uint64_t i = 0; i < n_series; ++i) {
    t.expect("ls");
    obs::scrape_sample sample;
    sample.t_s = t.d();
    sample.by_cause = read_cause_array(t);
    sample.total_j = t.d();
    sample.charges = t.u64();
    p.ledger.series.push_back(sample);
  }

  t.expect("watchdog");
  p.has_watchdog = t.b01();
  if (p.has_watchdog) {
    t.expect("wstate");
    const std::uint64_t n_rules = t.count();
    p.watchdog.firing.reserve(n_rules);
    for (std::uint64_t i = 0; i < n_rules; ++i) p.watchdog.firing.push_back(t.b01());
    p.watchdog.plans_total = t.u64();
    p.watchdog.plans_model = t.u64();
    p.watchdog.quarantine_since = t.d();
    p.watchdog.breaker_opens_base = t.u64();
    t.expect("wjobs");
    const std::uint64_t n_jobs = t.count();
    p.watchdog.job_energies.reserve(n_jobs);
    for (std::uint64_t i = 0; i < n_jobs; ++i) {
      t.expect("wj");
      p.watchdog.job_energies.push_back(t.d());
    }
    t.expect("wcosts");
    const std::uint64_t n_costs = t.count();
    p.watchdog.job_costs.reserve(n_costs);
    for (std::uint64_t i = 0; i < n_costs; ++i) {
      t.expect("wc");
      p.watchdog.job_costs.push_back(t.d());
    }
    t.expect("wcarbons");
    const std::uint64_t n_carbons = t.count();
    p.watchdog.job_carbons.reserve(n_carbons);
    for (std::uint64_t i = 0; i < n_carbons; ++i) {
      t.expect("wb");
      p.watchdog.job_carbons.push_back(t.d());
    }
    t.expect("walerts");
    const std::uint64_t n_alerts = t.count();
    p.watchdog.alerts.reserve(n_alerts);
    for (std::uint64_t i = 0; i < n_alerts; ++i) {
      t.expect("wa");
      obs::alert a;
      a.t_s = t.d();
      a.rule = t.str();
      a.kind_name = t.str();
      a.value = t.d();
      a.threshold = t.d();
      a.detail = t.str();
      p.watchdog.alerts.push_back(std::move(a));
    }
  }

  t.expect("metrics");
  const std::uint64_t n_metrics = t.count();
  p.metrics.reserve(n_metrics);
  for (std::uint64_t i = 0; i < n_metrics; ++i) {
    using kind = telemetry::metric_snapshot::kind;
    telemetry::metric_snapshot m;
    const std::string row = t.next();
    if (row == "mc") {
      m.type = kind::counter;
      m.name = t.str();
      m.value = static_cast<double>(t.u64());
    } else if (row == "mg") {
      m.type = kind::gauge;
      m.name = t.str();
      m.value = t.d();
    } else if (row == "mh") {
      m.type = kind::histogram;
      m.name = t.str();
      m.count = t.u64();
      m.sum = t.d();
      m.min = t.d();
      m.max = t.d();
      const std::uint64_t n_bounds = t.count();
      m.bounds.reserve(n_bounds);
      for (std::uint64_t b = 0; b < n_bounds; ++b) m.bounds.push_back(t.d());
      const std::uint64_t n_buckets = t.count();
      if (n_buckets != n_bounds + 1) throw parse_fail("histogram bucket count mismatch");
      m.buckets.reserve(n_buckets);
      for (std::uint64_t b = 0; b < n_buckets; ++b) m.buckets.push_back(t.u64());
    } else {
      throw parse_fail("unknown metric row '" + row + "'");
    }
    p.metrics.push_back(std::move(m));
  }

  t.expect("econ");
  p.has_econ = t.b01();
  if (p.has_econ) {
    t.expect("emeter");
    p.econ_state.facility_cost_usd = t.d();
    p.econ_state.facility_carbon_g = t.d();
    p.econ_state.capex_usd = t.d();
    p.econ_state.attributed_cost_usd = t.d();
    p.econ_state.attributed_carbon_g = t.d();
    p.econ_state.jobs_completed = t.u64();
    t.expect("eca");
    p.econ_state.cost_by_cause = read_cause_array(t);
    t.expect("ecb");
    p.econ_state.carbon_by_cause = read_cause_array(t);
    t.expect("ecounts");
    p.econ_jobs_deferred = t.u64();
    p.econ_price_demotions = t.u64();
    t.expect("etick");
    p.econ_tick_pending = t.b01();
    p.econ_tick_t = t.d();
    p.econ_tick_seq = t.u64();
    t.expect("edef");
    const std::uint64_t n_deferred = t.count();
    p.econ_deferred_ids.reserve(n_deferred);
    for (std::uint64_t i = 0; i < n_deferred; ++i) {
      t.expect("ed");
      p.econ_deferred_ids.push_back(static_cast<int>(t.i64()));
    }
  }

  t.expect("end");
  return p;
}

}  // namespace

common::status simulator::restore_checkpoint(const std::string& payload,
                                             const job_trace& trace) {
  if (!ckpt_enabled_)
    return error{errc::invalid_argument,
                 "restore: call set_checkpointing() before restore_checkpoint()"};
  parsed_checkpoint p;
  try {
    p = parse_checkpoint(payload);
  } catch (const std::exception& e) {
    return error{errc::invalid_argument, std::string("restore: malformed checkpoint: ") + e.what()};
  }

  // --- cross-validation: everything checks out before anything mutates ---
  if (p.fingerprint != common::crc32(config_fingerprint()))
    return error{errc::invalid_argument,
                 "restore: config fingerprint mismatch (different cluster/policy/fault setup)"};
  if (p.trace_crc != common::crc32(trace.to_csv()) || p.n_jobs != trace.jobs.size())
    return error{errc::invalid_argument,
                 "restore: trace mismatch (checkpoint was taken replaying a different trace)"};
  if (p.has_guard != (ckpt_.guard != nullptr) || p.has_service != (ckpt_.service != nullptr))
    return error{errc::invalid_argument,
                 "restore: planner guard/service presence differs from the exporting run"};
  if (p.has_watchdog != (watchdog_ != nullptr))
    return error{errc::invalid_argument,
                 "restore: watchdog presence differs from the exporting run"};
  if (p.node_names.empty() || p.slots.size() != p.node_names.size())
    return error{errc::invalid_argument, "restore: node/slot tables inconsistent"};
  for (const auto& row : p.slots)
    if (row.size() != config_.gpus_per_node)
      return error{errc::invalid_argument, "restore: GPU slot row width mismatch"};
  if (p.results.size() != trace.jobs.size())
    return error{errc::invalid_argument, "restore: per-job result count mismatch"};
  for (std::size_t i = 0; i < p.results.size(); ++i)
    if (p.results[i].id != trace.jobs[i].id)
      return error{errc::invalid_argument, "restore: job id order mismatch"};
  for (const auto& rj : p.running) {
    if (rj.epoch >= p.next_epoch)
      return error{errc::invalid_argument, "restore: running-job epoch out of range"};
    for (const auto& s : rj.gpus)
      if (s.node >= p.slots.size() || s.gpu >= config_.gpus_per_node)
        return error{errc::invalid_argument, "restore: running-job GPU slot out of range"};
  }
  for (const auto& [index, seq] : p.arrivals) {
    (void)seq;
    if (index >= trace.jobs.size())
      return error{errc::invalid_argument, "restore: pending arrival index out of range"};
  }
  if (p.has_econ != config_.econ.usable())
    return error{errc::invalid_argument,
                 "restore: econ accounting presence differs from the exporting run"};
  for (const int id : p.econ_deferred_ids) {
    bool queued = false;
    for (const auto& qj : p.queue)
      if (qj.job.id == id) {
        queued = true;
        break;
      }
    if (!queued)
      return error{errc::invalid_argument,
                   "restore: econ-deferred job id not present in the queue"};
  }

  // --- external subsystem imports (each is individually atomic) ---
  if (!telemetry::metrics_registry::instance().restore(p.metrics))
    return error{errc::invalid_argument, "restore: metrics registry shape mismatch"};
  if (ckpt_.guard && !ckpt_.guard->import_state(p.guard))
    return error{errc::invalid_argument,
                 "restore: guard/drift state inconsistent with this guard's options"};
  if (watchdog_ && !watchdog_->import_state(p.watchdog))
    return error{errc::invalid_argument,
                 "restore: watchdog rule count differs from the exporting run"};
  obs::energy_ledger::instance().import_state(p.ledger);

  // --- simulator state proper (cannot fail past this point) ---
  engine_ = event_engine{};
  engine_.run_until(p.now);  // empty queue: clock restore only

  std::vector<sched::node_config> nodes;
  nodes.reserve(p.node_names.size());
  for (const auto& name : p.node_names) nodes.push_back(make_node_config(name));
  ctl_ = std::make_unique<sched::controller>(std::move(nodes));

  slots_.assign(p.slots.size(), std::vector<slot_state>(config_.gpus_per_node));
  for (std::size_t n = 0; n < p.slots.size(); ++n)
    for (std::size_t g = 0; g < config_.gpus_per_node; ++g)
      slots_[n][g] = {p.slots[n][g].first, p.slots[n][g].second};

  results_ = std::move(p.results);
  queue_ = std::move(p.queue);
  running_.clear();
  running_.reserve(p.running.size());
  for (auto& rr : p.running) {
    running_job rj;
    rj.id = rr.id;
    rj.epoch = rr.epoch;
    rj.gpus = std::move(rr.gpus);
    rj.job = std::move(rr.job);
    rj.est = rr.est;
    rj.start_s = rr.start_s;
    rj.duration = rr.duration;
    rj.energy_j = rr.energy_j;
    rj.avg_power_w = rr.avg_power_w;
    rj.why = rr.why;
    rj.node = std::move(rr.node);
    rj.event_t = rr.event_t;
    rj.event_seq = rr.event_seq;
    running_.push_back(std::move(rj));
  }

  // Fresh budget over the restored inventory; running jobs re-register their
  // demand and node occupancy. No restore-time rebalance — the folded totals
  // carry the exporting run's counters, and a gratuitous rebalance here
  // would put the resumed summary one count ahead.
  budget_ = std::make_unique<power_budget>(*ctl_, config_.facility_cap_w);
  for (const auto& rj : running_) {
    std::set<std::size_t> nodes_used;
    for (const auto& s : rj.gpus) {
      budget_->gpu_busy(s.node, s.gpu, rj.avg_power_w);
      nodes_used.insert(s.node);
    }
    for (const std::size_t n : nodes_used) ctl_->node_at(n).add_job();
  }
  budget_rebalances_base_ = p.budget_rebalances;
  budget_demotions_base_ = p.budget_demotions;

  last_integrated_s_ = p.last_integrated;
  facility_energy_j_ = p.facility_energy;
  busy_gpu_seconds_ = p.busy_gpu_seconds;
  peak_power_w_ = p.peak_power;
  wasted_energy_j_ = p.wasted_energy;
  last_live_t_ = p.last_live_t;
  power_samples_.clear();  // diagnostics only; not part of any output artefact
  clock_set_faults_ = p.clock_set_faults;
  degraded_samples_ = p.degraded;
  requeues_ = p.requeues;
  nodes_lost_ = p.nodes_lost;
  node_crashes_ = p.node_crashes;
  node_restarts_ = p.node_restarts;
  quarantines_ = p.quarantines;
  promotions_ = p.promotions;
  rollbacks_ = p.rollbacks;
  governor_ticks_ = p.governor_ticks;
  governor_clock_changes_ = p.governor_clock_changes;
  next_epoch_ = p.next_epoch;
  next_node_event_id_ = p.next_node_event_id;
  fault_rng_.set_state(p.rng_fault);
  chaos_rng_.set_state(p.rng_chaos);
  recovery_was_quarantined_ = false;

  arrival_seq_.assign(trace.jobs.size(), 0);
  arrived_.assign(trace.jobs.size(), 1);
  for (const auto& [index, seq] : p.arrivals) {
    arrived_[index] = 0;
    arrival_seq_[index] = seq;
  }
  arrivals_pending_ = p.arrivals.size();

  const auto to_pending = [](std::vector<parsed_checkpoint::pending_row>&& in) {
    std::vector<pending_node_event> out;
    out.reserve(in.size());
    for (auto& e : in) out.push_back({e.id, e.t, e.seq, std::move(e.node)});
    return out;
  };
  pending_faults_ = to_pending(std::move(p.pfault));
  pending_crashes_ = to_pending(std::move(p.pcrash));
  pending_restarts_ = to_pending(std::move(p.prestart));

  next_scrape_t_ = p.scrape_pending ? p.scrape_t : -1.0;
  next_scrape_seq_ = p.scrape_seq;
  scrape_ticks_ = p.scrape_ticks;
  ckpt_index_ = p.ckpt_index;
  next_ckpt_t_ = p.next_ckpt_t;
  trace_crc_ = p.trace_crc;

  econ_meter_ = econ::cost_meter{config_.econ, config_.n_nodes};
  if (p.has_econ) econ_meter_.import_state(p.econ_state);
  econ_deferred_ids_.clear();
  econ_deferred_ids_.insert(p.econ_deferred_ids.begin(), p.econ_deferred_ids.end());
  econ_jobs_deferred_ = p.econ_jobs_deferred;
  econ_price_demotions_ = p.econ_price_demotions;
  next_econ_t_ = p.econ_tick_pending ? p.econ_tick_t : -1.0;
  next_econ_seq_ = p.econ_tick_seq;

  if (ckpt_.service) ckpt_.service->import_cache(p.cache);

  restored_ = true;
  return common::status::success();
}

// ---------------------------------------------------------------------------
// simulator: resume + periodic tick
// ---------------------------------------------------------------------------

run_summary simulator::resume(const job_trace& trace) {
  if (!restored_)
    throw std::logic_error("simulator::resume without a successful restore_checkpoint");
  restored_ = false;

  // Rebuild the event queue. Closures do not serialize, so each pending
  // event was recorded in a registry with the sequence number it held in the
  // exporting engine. Sequence numbers are monotone in schedule time, so
  // every event scheduled *after* the checkpoint outranks every pending one
  // — rescheduling the pending set in ascending original-seq order into a
  // fresh engine reproduces all tie-break orderings exactly.
  enum class ev_kind { arrival, completion, fault, crash, restart, scrape, econ };
  struct ev {
    std::uint64_t old_seq{0};
    ev_kind kind{ev_kind::arrival};
    std::size_t index{0};  ///< arrival trace index / running_ or registry index
  };
  std::vector<ev> events;
  for (std::size_t i = 0; i < arrived_.size(); ++i)
    if (!arrived_[i]) events.push_back({arrival_seq_[i], ev_kind::arrival, i});
  for (std::size_t i = 0; i < running_.size(); ++i)
    events.push_back({running_[i].event_seq, ev_kind::completion, i});
  for (std::size_t i = 0; i < pending_faults_.size(); ++i)
    events.push_back({pending_faults_[i].seq, ev_kind::fault, i});
  for (std::size_t i = 0; i < pending_crashes_.size(); ++i)
    events.push_back({pending_crashes_[i].seq, ev_kind::crash, i});
  for (std::size_t i = 0; i < pending_restarts_.size(); ++i)
    events.push_back({pending_restarts_[i].seq, ev_kind::restart, i});
  if (next_scrape_t_ >= 0.0) events.push_back({next_scrape_seq_, ev_kind::scrape, 0});
  if (next_econ_t_ >= 0.0) events.push_back({next_econ_seq_, ev_kind::econ, 0});
  std::sort(events.begin(), events.end(),
            [](const ev& a, const ev& b) { return a.old_seq < b.old_seq; });

  for (const auto& e : events) {
    switch (e.kind) {
      case ev_kind::arrival:
        schedule_arrival(trace, e.index, trace.jobs[e.index].submit_s);
        break;
      case ev_kind::completion: {
        auto& rj = running_[e.index];
        const int id = rj.id;
        const std::uint64_t epoch = rj.epoch;
        rj.event_seq = engine_.at(rj.event_t, [this, id, epoch] { complete(id, epoch); });
        break;
      }
      case ev_kind::fault: {
        auto& pe = pending_faults_[e.index];
        const std::uint64_t eid = pe.id;
        pe.seq = engine_.at(pe.t, [this, eid] { device_lost_event(eid); });
        break;
      }
      case ev_kind::crash: {
        auto& pe = pending_crashes_[e.index];
        const std::uint64_t eid = pe.id;
        pe.seq = engine_.at(pe.t, [this, eid] { node_crash(eid); });
        break;
      }
      case ev_kind::restart: {
        auto& pe = pending_restarts_[e.index];
        const std::uint64_t eid = pe.id;
        pe.seq = engine_.at(pe.t, [this, eid] { node_restart(eid); });
        break;
      }
      case ev_kind::scrape:
        next_scrape_seq_ = engine_.at(next_scrape_t_, [this] { scrape_tick(); });
        break;
      case ev_kind::econ:
        next_econ_seq_ = engine_.at(next_econ_t_, [this] { econ_tick(); });
        break;
    }
  }

  // Periodic checkpointing continues on the exporting run's cadence. The
  // tick is inert (no accounting), so its tie-break rank among co-timed
  // events does not need restoring.
  if (ckpt_.interval_s > 0.0 && next_ckpt_t_ >= 0.0)
    engine_.at(next_ckpt_t_, [this] { checkpoint_tick(); });
  if (ckpt_.crash_at_s >= 0.0 && ckpt_.crash_at_s > engine_.now())
    engine_.at(ckpt_.crash_at_s, [] {
      std::fflush(nullptr);
      std::_Exit(crash_injection_exit_code);
    });

  return finish_run(trace);
}

void simulator::checkpoint_tick() {
  // Decide the next tick *before* serializing so the artefact carries the
  // resumed run's cadence. The tick itself is inert: no integrate, no power
  // sample — a checkpointed run's accounting spans are identical to an
  // uncheckpointed one's.
  const bool more = has_live_work();
  next_ckpt_t_ = more ? engine_.now() + ckpt_.interval_s : -1.0;
  ++ckpt_index_;

  const std::string payload = serialize_checkpoint();
  const fs::path file = ckpt_.dir / checkpoint_file_name(ckpt_index_ - 1);
  if (const auto st = write_checkpoint_file(file, payload); !st.ok()) {
    // Warn-and-continue: a full disk must not kill the replay it exists to
    // protect; the previous checkpoint (atomic rename) is still intact.
    common::log_warn("cluster: checkpoint write failed: ", st.err().to_string());
  }

  if (more) engine_.at(next_ckpt_t_, [this] { checkpoint_tick(); });
}

}  // namespace synergy::cluster

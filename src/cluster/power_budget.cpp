#include "synergy/cluster/power_budget.hpp"

#include <limits>

#include "synergy/telemetry/telemetry.hpp"

namespace synergy::cluster {

power_budget::power_budget(sched::controller& ctl, double facility_cap_w)
    : ctl_(&ctl), cap_w_(facility_cap_w), pm_(ctl, facility_cap_w) {
  gpu_power_w_.resize(ctl.node_count());
  for (std::size_t i = 0; i < ctl.node_count(); ++i) {
    const auto& n = ctl.node_at(i);
    gpu_power_w_[i].assign(n.devices().size(), 0.0);
    for (std::size_t g = 0; g < n.devices().size(); ++g)
      gpu_power_w_[i][g] = n.devices()[g].spec().idle_power_w;
  }
}

double power_budget::facility_power_w() const {
  double total = 0.0;
  for (std::size_t i = 0; i < ctl_->node_count(); ++i) {
    total += ctl_->node_at(i).config().host_power_w;
    for (const double w : gpu_power_w_[i]) total += w;
  }
  return total;
}

double power_budget::headroom_w() const {
  if (!capped()) return std::numeric_limits<double>::infinity();
  return cap_w_ - facility_power_w();
}

void power_budget::gpu_busy(std::size_t node, std::size_t gpu, double busy_power_w) {
  gpu_power_w_.at(node).at(gpu) = busy_power_w;
}

void power_budget::gpu_idle(std::size_t node, std::size_t gpu) {
  gpu_power_w_.at(node).at(gpu) =
      ctl_->node_at(node).devices().at(gpu).spec().idle_power_w;
}

void power_budget::rebalance() {
  if (!capped()) return;
  std::vector<double> demand(ctl_->node_count(), 0.0);
  for (std::size_t i = 0; i < demand.size(); ++i) {
    demand[i] = ctl_->node_at(i).config().host_power_w;
    for (const double w : gpu_power_w_[i]) demand[i] += w;
  }
  pm_.rebalance_with_demand(demand);
  ++rebalances_;
  SYNERGY_COUNTER_ADD("cluster.cap_rebalances", 1);
  SYNERGY_INSTANT(telemetry::category::sched, "cluster.cap_rebalance",
                  {"facility_w", facility_power_w()}, {"cap_w", cap_w_});
}

const std::vector<double>& power_budget::node_caps() const { return pm_.node_caps(); }

}  // namespace synergy::cluster

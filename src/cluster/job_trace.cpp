#include "synergy/cluster/job_trace.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "synergy/common/csv.hpp"
#include "synergy/common/rng.hpp"
#include "synergy/workloads/benchmark.hpp"

namespace synergy::cluster {

namespace {

/// Shortest representation that round-trips a double exactly (the trace is
/// a replay artefact: load(save(t)) must equal t bit-for-bit, which the
/// display-precision common::csv_writer::num does not guarantee).
std::string exact(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

constexpr const char* header_magic = "# synergy-cluster-trace v1";

}  // namespace

std::string job_trace::to_csv() const {
  std::ostringstream os;
  os << header_magic << " seed=" << seed << " jobs=" << jobs.size() << '\n';
  common::csv_writer csv{os};
  csv.row({"id", "name", "submit_s", "n_gpus", "kernel", "work_items", "iterations", "target",
           "deferrable", "deadline_s"});
  for (const auto& j : jobs) {
    csv.row({std::to_string(j.id), j.name, exact(j.submit_s), std::to_string(j.n_gpus),
             j.kernel, exact(j.work_items), std::to_string(j.iterations), j.target,
             j.deferrable ? "1" : "0", exact(j.deadline_s)});
  }
  return os.str();
}

job_trace job_trace::from_csv(const std::string& text) {
  // Quote-aware record splitting: survives CRLF line endings, a missing
  // trailing newline, and newlines embedded in quoted job names — a getline
  // loop would split the latter mid-record and corrupt the row.
  const auto records = common::split_csv_records(text);
  if (records.empty() || records.front().rfind(header_magic, 0) != 0)
    throw std::invalid_argument("job_trace: missing trace header line");

  job_trace trace;
  const std::string& header = records.front();
  const auto seed_pos = header.find("seed=");
  if (seed_pos == std::string::npos)
    throw std::invalid_argument("job_trace: header records no seed");
  trace.seed = std::stoull(header.substr(seed_pos + 5));

  bool saw_columns = false;
  for (std::size_t ri = 1; ri < records.size(); ++ri) {
    const std::string& line = records[ri];
    if (line.empty() || line[0] == '#') continue;
    if (!saw_columns) {  // column-header row
      saw_columns = true;
      continue;
    }
    const auto f = common::parse_csv_line(line);
    // 8 fields is the pre-econ row shape; the two econ columns default so
    // existing traces parse unchanged.
    if (f.size() != 8 && f.size() != 10)
      throw std::invalid_argument("job_trace: expected 8 or 10 fields, got " +
                                  std::to_string(f.size()));
    traced_job j;
    j.id = std::stoi(f[0]);
    j.name = f[1];
    j.submit_s = std::stod(f[2]);
    j.n_gpus = std::stoi(f[3]);
    j.kernel = f[4];
    j.work_items = std::stod(f[5]);
    j.iterations = std::stoi(f[6]);
    j.target = f[7];
    if (f.size() == 10) {
      if (f[8] != "0" && f[8] != "1")
        throw std::invalid_argument("job_trace: deferrable must be 0 or 1 for id " + f[0]);
      j.deferrable = f[8] == "1";
      j.deadline_s = std::stod(f[9]);
      if (std::isnan(j.deadline_s) ||
          (j.deadline_s >= 0.0 && !(j.deadline_s >= j.submit_s)))
        throw std::invalid_argument("job_trace: deadline before submit for id " + f[0]);
    }
    if (j.n_gpus < 1 || j.iterations < 1 || !(j.work_items > 0.0) ||
        !(j.submit_s >= 0.0))
      throw std::invalid_argument("job_trace: invalid job row for id " + f[0]);
    trace.jobs.push_back(std::move(j));
  }
  return trace;
}

job_trace generate_trace(const trace_config& config) {
  if (config.n_jobs == 0) return {config.seed, {}};
  if (config.gpu_mix.empty() || config.target_mix.empty())
    throw std::invalid_argument("generate_trace: empty gpu or target mix");
  if (config.min_iterations < 1 || config.max_iterations < config.min_iterations)
    throw std::invalid_argument("generate_trace: bad iteration range");
  if (config.deferrable_fraction < 0.0 || config.deferrable_fraction > 1.0)
    throw std::invalid_argument("generate_trace: deferrable fraction outside [0, 1]");
  if (config.deferrable_fraction > 0.0 && !(config.deadline_slack_s > 0.0))
    throw std::invalid_argument("generate_trace: deadline slack must be > 0");

  const std::vector<std::string>& kernels =
      config.kernels.empty() ? workloads::names() : config.kernels;

  common::pcg32 rng{config.seed};
  job_trace trace;
  trace.seed = config.seed;
  trace.jobs.reserve(config.n_jobs);

  double t = 0.0;
  for (std::size_t i = 0; i < config.n_jobs; ++i) {
    // Poisson arrivals: exponential inter-arrival times.
    t += -config.mean_interarrival_s * std::log(1.0 - rng.uniform());
    traced_job j;
    j.id = static_cast<int>(i) + 1;
    j.kernel = kernels[rng.bounded(static_cast<std::uint32_t>(kernels.size()))];
    j.name = j.kernel + "_" + std::to_string(j.id);
    j.submit_s = t;
    j.n_gpus = config.gpu_mix[rng.bounded(static_cast<std::uint32_t>(config.gpu_mix.size()))];
    j.work_items = config.work_items;
    j.iterations =
        config.min_iterations +
        static_cast<int>(rng.bounded(
            static_cast<std::uint32_t>(config.max_iterations - config.min_iterations + 1)));
    j.target =
        config.target_mix[rng.bounded(static_cast<std::uint32_t>(config.target_mix.size()))];
    if (config.deferrable_fraction > 0.0) {
      // Econ draws happen only when the feature is on: a pre-econ config
      // consumes the exact pre-econ rng sequence and regenerates the same
      // bytes.
      j.deferrable = rng.uniform() < config.deferrable_fraction;
      if (j.deferrable)
        j.deadline_s = j.submit_s + config.deadline_slack_s * (0.5 + rng.uniform());
    }
    trace.jobs.push_back(std::move(j));
  }
  return trace;
}

}  // namespace synergy::cluster

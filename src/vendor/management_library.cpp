#include "synergy/vendor/management_library.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "synergy/telemetry/telemetry.hpp"
#include "synergy/vendor/nvml_sim.hpp"
#include "synergy/vendor/lzero_sim.hpp"
#include "synergy/vendor/rsmi_sim.hpp"

namespace synergy::vendor {

using common::errc;
using common::error;
using common::frequency_config;
using common::megahertz;
using common::result;
using common::status;
using common::watts;

result<double> management_library::utilization(std::size_t index) const {
  const auto dev = board(index);
  if (!dev)
    return error{errc::not_found, "device index " + std::to_string(index) + " out of range"};
  const sensor_model defaults{};
  const double u = dev->windowed_utilization(defaults.window);
  return std::clamp(u, 0.0, 1.0);
}

result<watts> management_library::smoothed_power(std::size_t index) const {
  auto raw = power_usage(index);
  if (!raw.has_value()) return raw.err();
  std::scoped_lock lock(smoothing_mutex_);
  auto& smooth =
      power_ewma_.try_emplace(index, common::ewma{smoothing_alpha_}).first->second;
  smooth.observe(raw.value().value);
  return watts{smooth.value()};
}

void management_library::reset_power_smoothing() const {
  std::scoped_lock lock(smoothing_mutex_);
  power_ewma_.clear();
}

void management_library::set_power_smoothing_alpha(double alpha) {
  std::scoped_lock lock(smoothing_mutex_);
  smoothing_alpha_ = alpha <= 0.0 ? 1e-3 : alpha > 1.0 ? 1.0 : alpha;
  power_ewma_.clear();
}

management_library_base::management_library_base(
    std::vector<std::shared_ptr<gpusim::device>> boards, sensor_model sensor)
    : boards_(std::move(boards)), sensor_(sensor) {}

status management_library_base::init() {
  initialized_.store(true, std::memory_order_release);
  return status::success();
}

status management_library_base::shutdown() {
  initialized_.store(false, std::memory_order_release);
  return status::success();
}

std::size_t management_library_base::device_count() const { return boards_.size(); }

status management_library_base::check_index(std::size_t index) const {
  if (!initialized()) return error{errc::uninitialized, "library not initialised"};
  if (index >= boards_.size())
    return error{errc::not_found, "device index " + std::to_string(index) + " out of range"};
  return status::success();
}

result<std::string> management_library_base::device_name(std::size_t index) const {
  if (auto st = check_index(index); !st) return st.err();
  return boards_[index]->spec().name;
}

result<std::vector<megahertz>> management_library_base::supported_memory_clocks(
    std::size_t index) const {
  if (auto st = check_index(index); !st) return st.err();
  return boards_[index]->spec().supported_memory_clocks();
}

result<std::vector<megahertz>> management_library_base::supported_core_clocks(
    std::size_t index, megahertz memory_clock) const {
  if (auto st = check_index(index); !st) return st.err();
  const auto& spec = boards_[index]->spec();
  if (!spec.supports_memory_clock(memory_clock))
    return error{errc::invalid_argument, "unsupported memory clock"};
  return spec.core_clocks;
}

result<frequency_config> management_library_base::application_clocks(std::size_t index) const {
  if (auto st = check_index(index); !st) return st.err();
  return boards_[index]->current_config();
}

void management_library_base::record_clock_set([[maybe_unused]] std::size_t index,
                                               [[maybe_unused]] common::frequency_config config,
                                               [[maybe_unused]] const common::status& st) const {
  SYNERGY_COUNTER_ADD("vendor.clock_set_attempts", 1);
  if (!st.ok()) SYNERGY_COUNTER_ADD("vendor.clock_set_rejections", 1);
  SYNERGY_INSTANT(telemetry::category::freq_change, "vendor.set_application_clocks",
                  {"device", static_cast<double>(index)}, {"ok", st.ok() ? 1.0 : 0.0},
                  {"mem_mhz", config.memory.value}, {"core_mhz", config.core.value});
}

result<watts> management_library_base::power_usage(std::size_t index) const {
  if (auto st = check_index(index); !st) return st.err();
  SYNERGY_COUNTER_ADD("vendor.power_samples", 1);
  const auto& dev = *boards_[index];
  // Sensor quantisation: the reported value refreshes only every
  // update_interval and averages over the trailing window.
  const double now = dev.now().value;
  const double interval = sensor_.update_interval.value;
  const double quantised = interval > 0.0 ? std::floor(now / interval) * interval : now;
  // Clip the averaging window to the history that actually exists (see the
  // sensor_model contract): the first reads before a full window has elapsed
  // average over [0, t], a zero-width window or a read at t <= 0 degrades to
  // the instantaneous model power, and a rewound virtual clock can never
  // yield a negative span or a division by zero.
  const double t1 = std::max(0.0, std::min(quantised, now));
  const double t0 = std::max(0.0, t1 - std::max(0.0, sensor_.window.value));
  const double span = t1 - t0;
  watts reading =
      span > 0.0
          ? dev.energy_between(common::seconds{t0}, common::seconds{t1}) /
                common::seconds{span}
          : dev.instantaneous_power();
  if (reading.value < 0.0) reading = watts{0.0};
  SYNERGY_INSTANT(telemetry::category::power_sample, "vendor.power_usage",
                  {"device", static_cast<double>(index)}, {"watts", reading.value},
                  {"sim_time_s", now});
  return reading;
}

result<double> management_library_base::utilization(std::size_t index) const {
  if (auto st = check_index(index); !st) return st.err();
  SYNERGY_COUNTER_ADD("vendor.utilization_samples", 1);
  // Same sensor window as power: utilisation sensors accumulate over the
  // same trailing interval, so sub-interval governor polls see a smoothed
  // busy fraction, not per-kernel spikes.
  const double u = boards_[index]->windowed_utilization(sensor_.window);
  return std::clamp(u, 0.0, 1.0);
}

std::shared_ptr<gpusim::device> management_library_base::board(std::size_t index) const {
  if (index >= boards_.size()) return nullptr;
  return boards_[index];
}

std::unique_ptr<management_library> make_management_library(
    std::vector<std::shared_ptr<gpusim::device>> boards, sensor_model sensor) {
  if (boards.empty()) throw std::invalid_argument("no boards");
  const gpusim::vendor_kind kind = boards.front()->spec().vendor;
  for (const auto& b : boards)
    if (b->spec().vendor != kind)
      throw std::invalid_argument("boards of mixed vendors in one management library");
  switch (kind) {
    case gpusim::vendor_kind::nvidia:
      return std::make_unique<nvml_sim>(std::move(boards), sensor);
    case gpusim::vendor_kind::amd:
      return std::make_unique<rsmi_sim>(std::move(boards), sensor);
    case gpusim::vendor_kind::intel:
      return std::make_unique<lzero_sim>(std::move(boards), sensor);
  }
  throw std::logic_error("unreachable vendor kind");
}

}  // namespace synergy::vendor

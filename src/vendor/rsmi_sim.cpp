#include "synergy/vendor/rsmi_sim.hpp"

namespace synergy::vendor {

using common::errc;
using common::error;
using common::frequency_config;
using common::joules;
using common::megahertz;
using common::result;
using common::status;

rsmi_sim::rsmi_sim(std::vector<std::shared_ptr<gpusim::device>> boards, sensor_model sensor)
    : management_library_base(std::move(boards), sensor) {}

status rsmi_sim::check_write(const user_context& caller, std::size_t index) const {
  if (auto st = check_index(index); !st) return st;
  if (!caller.is_root() && !sysfs_writable_)
    return error{errc::no_permission, "sclk sysfs files are not writable by this user"};
  return status::success();
}

status rsmi_sim::set_application_clocks(const user_context& caller, std::size_t index,
                                        frequency_config config) {
  if (auto st = check_write(caller, index); !st) {
    record_clock_set(index, config, st);
    return st;
  }
  auto dev = board(index);
  if (config.memory != dev->spec().memory_clock) {
    const status st = error{errc::invalid_argument, "unsupported memory clock"};
    record_clock_set(index, config, st);
    return st;
  }
  // ROCm SMI exposes discrete performance levels; arbitrary clocks snap to
  // the nearest level instead of failing, which is sysfs behaviour.
  const megahertz snapped = dev->spec().nearest_core_clock(config.core);
  const status st = dev->set_core_clock(snapped);
  if (st) dev->advance_idle(clock_set_latency);
  record_clock_set(index, {config.memory, snapped}, st);
  return st;
}

status rsmi_sim::reset_application_clocks(const user_context& caller, std::size_t index) {
  if (auto st = check_write(caller, index); !st) return st;
  auto dev = board(index);
  dev->reset_core_clock();
  dev->advance_idle(clock_set_latency);
  return status::success();
}

status rsmi_sim::set_api_restriction(const user_context&, std::size_t index, restricted_api,
                                     bool) {
  if (auto st = check_index(index); !st) return st;
  return error{errc::not_supported, "ROCm SMI has no per-API restriction mechanism"};
}

result<bool> rsmi_sim::api_restricted(std::size_t index, restricted_api) const {
  if (auto st = check_index(index); !st) return st.err();
  return !sysfs_writable_;
}

status rsmi_sim::set_clock_bounds(const user_context& caller, std::size_t index, megahertz lo,
                                  megahertz hi) {
  if (auto st = check_index(index); !st) return st;
  if (!caller.is_root()) return error{errc::no_permission, "clock bounds require root"};
  return board(index)->set_clock_bounds(lo, hi);
}

status rsmi_sim::clear_clock_bounds(const user_context& caller, std::size_t index) {
  if (auto st = check_index(index); !st) return st;
  if (!caller.is_root()) return error{errc::no_permission, "clock bounds require root"};
  board(index)->clear_clock_bounds();
  return status::success();
}

result<joules> rsmi_sim::total_energy(std::size_t index) const {
  if (auto st = check_index(index); !st) return st.err();
  return error{errc::not_supported,
               "MI100-class parts expose no cumulative energy counter; integrate power samples"};
}

status rsmi_sim::set_perf_level(const user_context& caller, std::size_t index,
                                std::size_t level) {
  if (auto st = check_write(caller, index); !st) return st;
  auto dev = board(index);
  const auto& clocks = dev->spec().core_clocks;
  if (level >= clocks.size())
    return error{errc::invalid_argument, "performance level out of range"};
  const status st = dev->set_core_clock(clocks[level]);
  if (st) dev->advance_idle(clock_set_latency);
  return st;
}

}  // namespace synergy::vendor

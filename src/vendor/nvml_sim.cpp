#include "synergy/vendor/nvml_sim.hpp"

namespace synergy::vendor {

using common::errc;
using common::error;
using common::frequency_config;
using common::joules;
using common::megahertz;
using common::result;
using common::status;

nvml_sim::nvml_sim(std::vector<std::shared_ptr<gpusim::device>> boards, sensor_model sensor)
    : management_library_base(std::move(boards), sensor) {
  app_clock_restricted_.assign(device_count(), true);
  power_limit_w_.assign(device_count(), 0.0);
}

status nvml_sim::set_power_limit(const user_context& caller, std::size_t index,
                                 double limit_w) {
  if (auto st = check_index(index); !st) return st;
  if (!caller.is_root())
    return error{errc::no_permission, "setPowerManagementLimit requires root"};
  auto dev = board(index);
  const auto& spec = dev->spec();
  if (limit_w < spec.idle_power_w || limit_w > spec.max_board_power_w)
    return error{errc::invalid_argument, "power limit outside [idle, TDP]"};
  // Firmware realises the cap by throttling: lock the clock ceiling to the
  // fastest clock whose worst-case power fits the limit.
  const auto ceiling = gpusim::max_core_clock_under_cap(spec, limit_w);
  if (auto st = dev->set_clock_bounds(spec.min_core_clock(), ceiling); !st) return st;
  std::scoped_lock lock(mutex_);
  power_limit_w_[index] = limit_w;
  return status::success();
}

status nvml_sim::reset_power_limit(const user_context& caller, std::size_t index) {
  if (auto st = check_index(index); !st) return st;
  if (!caller.is_root())
    return error{errc::no_permission, "setPowerManagementLimit requires root"};
  board(index)->clear_clock_bounds();
  std::scoped_lock lock(mutex_);
  power_limit_w_[index] = 0.0;
  return status::success();
}

result<double> nvml_sim::power_limit(std::size_t index) const {
  if (auto st = check_index(index); !st) return st.err();
  std::scoped_lock lock(mutex_);
  const double limit = power_limit_w_[index];
  return limit > 0.0 ? limit : board(index)->spec().max_board_power_w;
}

status nvml_sim::check_clock_permission(const user_context& caller, std::size_t index) const {
  if (auto st = check_index(index); !st) return st;
  std::scoped_lock lock(mutex_);
  if (!caller.is_root() && app_clock_restricted_[index])
    return error{errc::no_permission,
                 "application clocks are restricted to root on device " + std::to_string(index)};
  return status::success();
}

status nvml_sim::set_application_clocks(const user_context& caller, std::size_t index,
                                        frequency_config config) {
  if (auto st = check_clock_permission(caller, index); !st) {
    record_clock_set(index, config, st);
    return st;
  }
  auto dev = board(index);
  if (!dev->spec().supports_memory_clock(config.memory)) {
    const status st = error{errc::invalid_argument, "unsupported memory clock"};
    record_clock_set(index, config, st);
    return st;
  }
  const status st = dev->set_application_clocks(config);
  record_clock_set(index, config, st);
  if (st) {
    // The driver round-trip is real time the device spends before the next
    // kernel can launch; the paper measures this overhead growing with the
    // number of submitted kernels (Sec. 4.4).
    dev->advance_idle(clock_set_latency);
    std::scoped_lock lock(mutex_);
    ++clock_changes_;
  }
  return st;
}

status nvml_sim::reset_application_clocks(const user_context& caller, std::size_t index) {
  if (auto st = check_clock_permission(caller, index); !st) return st;
  auto dev = board(index);
  dev->reset_core_clock();
  dev->advance_idle(clock_set_latency);
  std::scoped_lock lock(mutex_);
  ++clock_changes_;
  return status::success();
}

status nvml_sim::set_api_restriction(const user_context& caller, std::size_t index,
                                     restricted_api api, bool restricted) {
  if (auto st = check_index(index); !st) return st;
  if (!caller.is_root())
    return error{errc::no_permission, "setAPIRestriction requires root"};
  if (api != restricted_api::set_application_clocks)
    return error{errc::not_supported, "unsupported restricted API"};
  std::scoped_lock lock(mutex_);
  app_clock_restricted_[index] = restricted;
  return status::success();
}

result<bool> nvml_sim::api_restricted(std::size_t index, restricted_api api) const {
  if (auto st = check_index(index); !st) return st.err();
  if (api != restricted_api::set_application_clocks)
    return error{errc::not_supported, "unsupported restricted API"};
  std::scoped_lock lock(mutex_);
  return static_cast<bool>(app_clock_restricted_[index]);
}

status nvml_sim::set_clock_bounds(const user_context& caller, std::size_t index, megahertz lo,
                                  megahertz hi) {
  if (auto st = check_index(index); !st) return st;
  // Hard bounds are root-only and their privilege cannot be lowered
  // (paper Sec. 7.1).
  if (!caller.is_root()) return error{errc::no_permission, "locked clocks require root"};
  return board(index)->set_clock_bounds(lo, hi);
}

status nvml_sim::clear_clock_bounds(const user_context& caller, std::size_t index) {
  if (auto st = check_index(index); !st) return st;
  if (!caller.is_root()) return error{errc::no_permission, "locked clocks require root"};
  board(index)->clear_clock_bounds();
  return status::success();
}

result<joules> nvml_sim::total_energy(std::size_t index) const {
  if (auto st = check_index(index); !st) return st.err();
  return board(index)->total_energy();
}

}  // namespace synergy::vendor

#include "synergy/vendor/lzero_sim.hpp"

namespace synergy::vendor {

using common::errc;
using common::error;
using common::frequency_config;
using common::joules;
using common::megahertz;
using common::result;
using common::status;

lzero_sim::lzero_sim(std::vector<std::shared_ptr<gpusim::device>> boards, sensor_model sensor)
    : management_library_base(std::move(boards), sensor) {}

status lzero_sim::check_sysman(const user_context& caller, std::size_t index) const {
  if (auto st = check_index(index); !st) return st;
  std::scoped_lock lock(mutex_);
  if (!caller.is_root() && !sysman_enabled_)
    return error{errc::no_permission,
                 "Sysman is not enabled for this user (ZES_ENABLE_SYSMAN / udev rules)"};
  return status::success();
}

status lzero_sim::set_application_clocks(const user_context& caller, std::size_t index,
                                         frequency_config config) {
  // Level Zero has no "application clocks": a pinned frequency is a
  // degenerate range [f, f].
  if (auto st = check_index(index); !st) {
    record_clock_set(index, config, st);
    return st;
  }
  auto dev = board(index);
  if (config.memory != dev->spec().memory_clock) {
    const status st = error{errc::invalid_argument, "unsupported memory clock"};
    record_clock_set(index, config, st);
    return st;
  }
  const status st = set_frequency_range(caller, index, config.core, config.core);
  record_clock_set(index, config, st);
  return st;
}

status lzero_sim::reset_application_clocks(const user_context& caller, std::size_t index) {
  if (auto st = check_sysman(caller, index); !st) return st;
  auto dev = board(index);
  dev->reset_core_clock();
  dev->advance_idle(clock_set_latency);
  return status::success();
}

status lzero_sim::set_api_restriction(const user_context&, std::size_t index, restricted_api,
                                      bool) {
  if (auto st = check_index(index); !st) return st;
  return error{errc::not_supported,
               "Level Zero gates management through Sysman, not per-API restrictions"};
}

result<bool> lzero_sim::api_restricted(std::size_t index, restricted_api) const {
  if (auto st = check_index(index); !st) return st.err();
  return !sysman_enabled();
}

status lzero_sim::set_clock_bounds(const user_context& caller, std::size_t index, megahertz lo,
                                   megahertz hi) {
  if (auto st = check_index(index); !st) return st;
  if (!caller.is_root()) return error{errc::no_permission, "hard bounds require root"};
  return board(index)->set_clock_bounds(lo, hi);
}

status lzero_sim::clear_clock_bounds(const user_context& caller, std::size_t index) {
  if (auto st = check_index(index); !st) return st;
  if (!caller.is_root()) return error{errc::no_permission, "hard bounds require root"};
  board(index)->clear_clock_bounds();
  return status::success();
}

result<joules> lzero_sim::total_energy(std::size_t index) const {
  if (auto st = check_index(index); !st) return st.err();
  // zesPowerGetEnergyCounter: microjoule-resolution cumulative counter.
  return board(index)->total_energy();
}

status lzero_sim::set_frequency_range(const user_context& caller, std::size_t index,
                                      megahertz lo, megahertz hi) {
  if (auto st = check_sysman(caller, index); !st) return st;
  if (lo > hi) return error{errc::invalid_argument, "inverted frequency range"};
  auto dev = board(index);
  const auto& spec = dev->spec();
  // Snap the request into the supported table: the device runs at the
  // highest supported clock inside [lo, hi].
  megahertz chosen = spec.min_core_clock();
  bool found = false;
  for (const megahertz f : spec.core_clocks) {
    if (f.value >= lo.value - 1e-9 && f.value <= hi.value + 1e-9) {
      chosen = f;
      found = true;
    }
  }
  if (!found) {
    // Empty intersection: clamp to the nearest supported clock, as the
    // driver clamps out-of-range requests.
    chosen = spec.nearest_core_clock(megahertz{0.5 * (lo.value + hi.value)});
  }
  const status st = dev->set_core_clock(chosen);
  if (st) dev->advance_idle(clock_set_latency);
  return st;
}

}  // namespace synergy::vendor

#include "synergy/vendor/resilient_library.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "synergy/obs/energy_ledger.hpp"
#include "synergy/telemetry/telemetry.hpp"

namespace synergy::vendor {

namespace tel = telemetry;

using common::errc;
using common::error;
using common::frequency_config;
using common::joules;
using common::megahertz;
using common::result;
using common::status;
using common::watts;

namespace {

bool call_ok(const status& s) { return s.ok(); }
const error& call_err(const status& s) { return s.err(); }
template <typename T>
bool call_ok(const result<T>& r) {
  return r.has_value();
}
template <typename T>
const error& call_err(const result<T>& r) {
  return r.err();
}

}  // namespace

resilient_library::resilient_library(std::unique_ptr<management_library> inner,
                                     retry_policy policy)
    : inner_(std::move(inner)), policy_(policy), rng_(policy.seed) {
  if (!inner_) throw std::invalid_argument("resilient_library: null inner library");
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  breakers_.resize(std::max<std::size_t>(1, inner_->device_count()));
}

resilient_library::breaker_state& resilient_library::breaker_of(std::size_t index) const {
  if (index >= breakers_.size()) breakers_.resize(index + 1);
  return breakers_[index];
}

bool resilient_library::admit(std::size_t index, error& out) const {
  std::scoped_lock lock(mutex_);
  auto& b = breaker_of(index);
  if (!b.open) return true;
  if (b.cooldown_left > 0) {
    --b.cooldown_left;
    ++fail_fast_;
    SYNERGY_COUNTER_ADD("resilience.fail_fast", 1);
    out = error{errc::unavailable,
                "circuit breaker open for device " + std::to_string(index)};
    return false;
  }
  // Half-open: let exactly this call through as a probe.
  return true;
}

void resilient_library::on_success(std::size_t index) const {
  std::scoped_lock lock(mutex_);
  auto& b = breaker_of(index);
  if (b.open) SYNERGY_COUNTER_ADD("resilience.breaker_closes", 1);
  b = breaker_state{};
}

void resilient_library::on_failure(std::size_t index, errc code) const {
  // Only infrastructure failures feed the breaker: a permission or argument
  // rejection says nothing about device health.
  if (!retryable(code) && code != errc::device_lost) return;
  std::scoped_lock lock(mutex_);
  auto& b = breaker_of(index);
  ++b.consecutive_failures;
  if (b.open) {
    // Failed half-open probe: stay open for another cooldown.
    b.cooldown_left = policy_.breaker_cooldown_calls;
    return;
  }
  if (b.consecutive_failures >= policy_.breaker_threshold) {
    b.open = true;
    b.cooldown_left = policy_.breaker_cooldown_calls;
    ++breaker_opens_;
    SYNERGY_COUNTER_ADD("resilience.breaker_opens", 1);
    SYNERGY_INSTANT(tel::category::other, "resilience.breaker_open",
                    {"device", static_cast<double>(index)});
  }
}

bool resilient_library::backoff(std::size_t index, int attempt, double& spent) const {
  double d = policy_.base_backoff_s;
  for (int i = 1; i < attempt; ++i) d *= policy_.backoff_multiplier;
  d = std::min(d, policy_.max_backoff_s);
  {
    std::scoped_lock lock(mutex_);
    d *= 1.0 + policy_.jitter * (2.0 * rng_.uniform() - 1.0);
  }
  d = std::max(0.0, d);
  if (spent + d > policy_.call_timeout_s) return false;  // per-call budget gone
  spent += d;
  // Sleeping between attempts costs virtual wall time (and idle energy) on
  // the device, like the management thread blocking on a real node. The
  // ledger books that burn as fault-wasted spend, not ordinary idle.
  if (auto b = inner_->board(index)) {
#if SYNERGY_TELEMETRY_ENABLED
    obs::attribution_scope burn{obs::cause::fault_wasted};
#endif
    b->advance_idle(common::seconds{d});
  }
  return true;
}

template <typename Call>
auto resilient_library::execute(std::size_t index, const char* op, Call&& call) const
    -> decltype(call()) {
  using R = decltype(call());
  if (error gate{}; !admit(index, gate)) return R{gate};

  double spent = 0.0;
  for (int attempt = 1;; ++attempt) {
    R r = call();
    if (call_ok(r)) {
      on_success(index);
      return r;
    }
    const error& e = call_err(r);
    on_failure(index, e.code);
    if (!retryable(e.code)) return r;
    if (attempt >= policy_.max_attempts || !backoff(index, attempt, spent)) {
      {
        std::scoped_lock lock(mutex_);
        ++exhausted_;
      }
      SYNERGY_COUNTER_ADD("resilience.exhausted", 1);
      return r;
    }
    {
      std::scoped_lock lock(mutex_);
      ++retries_;
    }
    SYNERGY_COUNTER_ADD("resilience.retries", 1);
    SYNERGY_INSTANT(tel::category::other, "resilience.retry",
                    {"device", static_cast<double>(index)},
                    {"attempt", static_cast<double>(attempt)});
    (void)op;
  }
}

std::string resilient_library::backend_name() const { return inner_->backend_name(); }
status resilient_library::init() { return inner_->init(); }
status resilient_library::shutdown() { return inner_->shutdown(); }
std::size_t resilient_library::device_count() const { return inner_->device_count(); }

result<std::string> resilient_library::device_name(std::size_t index) const {
  return inner_->device_name(index);
}

result<std::vector<megahertz>> resilient_library::supported_memory_clocks(
    std::size_t index) const {
  return inner_->supported_memory_clocks(index);
}

result<std::vector<megahertz>> resilient_library::supported_core_clocks(
    std::size_t index, megahertz memory_clock) const {
  return inner_->supported_core_clocks(index, memory_clock);
}

result<frequency_config> resilient_library::application_clocks(std::size_t index) const {
  return execute(index, "application_clocks",
                 [&] { return inner_->application_clocks(index); });
}

status resilient_library::set_application_clocks(const user_context& caller, std::size_t index,
                                                 frequency_config config) {
  SYNERGY_SPAN_VAR(span, tel::category::freq_change, "resilience.set_application_clocks");
  span.arg("device", static_cast<double>(index));
  return execute(index, "set_application_clocks",
                 [&] { return inner_->set_application_clocks(caller, index, config); });
}

status resilient_library::reset_application_clocks(const user_context& caller,
                                                   std::size_t index) {
  return execute(index, "reset_application_clocks",
                 [&] { return inner_->reset_application_clocks(caller, index); });
}

status resilient_library::set_api_restriction(const user_context& caller, std::size_t index,
                                              restricted_api api, bool restricted) {
  return execute(index, "set_api_restriction",
                 [&] { return inner_->set_api_restriction(caller, index, api, restricted); });
}

result<bool> resilient_library::api_restricted(std::size_t index, restricted_api api) const {
  return inner_->api_restricted(index, api);
}

status resilient_library::set_clock_bounds(const user_context& caller, std::size_t index,
                                           megahertz lo, megahertz hi) {
  return execute(index, "set_clock_bounds",
                 [&] { return inner_->set_clock_bounds(caller, index, lo, hi); });
}

status resilient_library::clear_clock_bounds(const user_context& caller, std::size_t index) {
  return execute(index, "clear_clock_bounds",
                 [&] { return inner_->clear_clock_bounds(caller, index); });
}

result<watts> resilient_library::power_usage(std::size_t index) const {
  return execute(index, "power_usage", [&] { return inner_->power_usage(index); });
}

result<double> resilient_library::utilization(std::size_t index) const {
  return execute(index, "utilization", [&] { return inner_->utilization(index); });
}

result<joules> resilient_library::total_energy(std::size_t index) const {
  return execute(index, "total_energy", [&] { return inner_->total_energy(index); });
}

std::shared_ptr<gpusim::device> resilient_library::board(std::size_t index) const {
  return inner_->board(index);
}

std::size_t resilient_library::retries() const {
  std::scoped_lock lock(mutex_);
  return retries_;
}

std::size_t resilient_library::exhausted() const {
  std::scoped_lock lock(mutex_);
  return exhausted_;
}

std::size_t resilient_library::breaker_opens() const {
  std::scoped_lock lock(mutex_);
  return breaker_opens_;
}

std::size_t resilient_library::fail_fast_rejections() const {
  std::scoped_lock lock(mutex_);
  return fail_fast_;
}

bool resilient_library::breaker_open(std::size_t index) const {
  std::scoped_lock lock(mutex_);
  return index < breakers_.size() && breakers_[index].open;
}

}  // namespace synergy::vendor

#include "synergy/vendor/fault_injector.hpp"

#include <stdexcept>
#include <string>

#include "synergy/telemetry/telemetry.hpp"

namespace synergy::vendor {

using common::errc;
using common::error;
using common::frequency_config;
using common::joules;
using common::megahertz;
using common::result;
using common::status;
using common::watts;

const char* to_string(fault_op op) noexcept {
  switch (op) {
    case fault_op::clock_set: return "clock_set";
    case fault_op::power_read: return "power_read";
    case fault_op::energy_read: return "energy_read";
    case fault_op::query: return "query";
    case fault_op::any: return "any";
  }
  return "unknown";
}

const char* to_string(fault_kind kind) noexcept {
  switch (kind) {
    case fault_kind::transient: return "transient";
    case fault_kind::clock_reject: return "clock_reject";
    case fault_kind::privilege_lost: return "privilege_lost";
    case fault_kind::dropout: return "dropout";
    case fault_kind::stale_power: return "stale_power";
    case fault_kind::device_lost: return "device_lost";
  }
  return "unknown";
}

fault_injector::fault_injector(std::unique_ptr<management_library> inner, fault_config config)
    : inner_(std::move(inner)), config_(std::move(config)), rng_(config_.seed) {
  if (!inner_) throw std::invalid_argument("fault_injector: null inner library");
  schedule_fired_.assign(config_.schedule.size(), false);
}

void fault_injector::note([[maybe_unused]] fault_op op, [[maybe_unused]] std::size_t index,
                          fault_kind kind) const {
  ++injected_total_;
  ++injected_[kind];
  SYNERGY_COUNTER_ADD("fault.injected", 1);
#if SYNERGY_TELEMETRY_ENABLED
  // Per-kind counter name is dynamic, so bypass the static-handle macro.
  if (telemetry::enabled())
    telemetry::metrics_registry::instance()
        .get_counter(std::string("fault.") + to_string(kind))
        .add(1);
#endif
  SYNERGY_INSTANT(telemetry::category::other, "fault.injected",
                  {"device", static_cast<double>(index)},
                  {"op", static_cast<double>(static_cast<int>(op))},
                  {"kind", static_cast<double>(static_cast<int>(kind))});
}

fault_injector::decision fault_injector::decide(fault_op op, std::size_t index) const {
  std::scoped_lock lock(mutex_);
  const std::size_t nth = call_counts_[{index, op}]++;
  ++op_calls_[op];

  const auto make_error = [&](fault_kind kind) -> decision {
    note(op, index, kind);
    switch (kind) {
      case fault_kind::transient:
        return {error{errc::unavailable, "injected transient fault"}, false};
      case fault_kind::clock_reject:
        return {error{errc::invalid_argument, "injected clock-set rejection"}, false};
      case fault_kind::privilege_lost:
        return {error{errc::no_permission, "injected privilege revocation"}, false};
      case fault_kind::dropout:
        return {error{errc::unavailable, "injected sensor dropout"}, false};
      case fault_kind::stale_power:
        return {std::nullopt, true};
      case fault_kind::device_lost:
        lost_.insert(index);
        return {error{errc::device_lost,
                      "injected device-lost: device " + std::to_string(index) +
                          " has fallen off the bus"},
                false};
    }
    return {};
  };

  // A lost device stays lost: every later call fails the same way, without
  // consuming randomness (so the fault pattern elsewhere is unaffected).
  if (lost_.count(index) != 0)
    return {error{errc::device_lost,
                  "device " + std::to_string(index) + " is lost"},
            false};

  // Scripted one-shots take precedence over the probabilistic plan.
  for (std::size_t i = 0; i < config_.schedule.size(); ++i) {
    const auto& s = config_.schedule[i];
    if (schedule_fired_[i]) continue;
    if (s.device != index || s.call_index != nth) continue;
    if (s.op != fault_op::any && s.op != op) continue;
    schedule_fired_[i] = true;
    return make_error(s.kind);
  }

  // Device-lost can strike on any faultable operation.
  if (op != fault_op::query && config_.device_lost_rate > 0.0 &&
      rng_.uniform() < config_.device_lost_rate)
    return make_error(fault_kind::device_lost);

  switch (op) {
    case fault_op::clock_set:
      if (config_.privilege_revocation_rate > 0.0 &&
          rng_.uniform() < config_.privilege_revocation_rate)
        return make_error(fault_kind::privilege_lost);
      if (config_.clock_set_reject_rate > 0.0 &&
          rng_.uniform() < config_.clock_set_reject_rate)
        return make_error(fault_kind::clock_reject);
      if (config_.clock_set_transient_rate > 0.0 &&
          rng_.uniform() < config_.clock_set_transient_rate)
        return make_error(fault_kind::transient);
      break;
    case fault_op::power_read:
      if (config_.power_read_dropout_rate > 0.0 &&
          rng_.uniform() < config_.power_read_dropout_rate)
        return make_error(fault_kind::dropout);
      if (config_.stale_power_rate > 0.0 && rng_.uniform() < config_.stale_power_rate)
        return make_error(fault_kind::stale_power);
      break;
    case fault_op::energy_read:
    case fault_op::query:
    case fault_op::any:
      break;
  }
  return {};
}

std::string fault_injector::backend_name() const { return inner_->backend_name(); }
common::status fault_injector::init() { return inner_->init(); }
common::status fault_injector::shutdown() { return inner_->shutdown(); }
std::size_t fault_injector::device_count() const { return inner_->device_count(); }

result<std::string> fault_injector::device_name(std::size_t index) const {
  if (auto d = decide(fault_op::query, index); d.fail) return *d.fail;
  return inner_->device_name(index);
}

result<std::vector<megahertz>> fault_injector::supported_memory_clocks(std::size_t index) const {
  if (auto d = decide(fault_op::query, index); d.fail) return *d.fail;
  return inner_->supported_memory_clocks(index);
}

result<std::vector<megahertz>> fault_injector::supported_core_clocks(
    std::size_t index, megahertz memory_clock) const {
  if (auto d = decide(fault_op::query, index); d.fail) return *d.fail;
  return inner_->supported_core_clocks(index, memory_clock);
}

result<frequency_config> fault_injector::application_clocks(std::size_t index) const {
  if (auto d = decide(fault_op::query, index); d.fail) return *d.fail;
  return inner_->application_clocks(index);
}

status fault_injector::set_application_clocks(const user_context& caller, std::size_t index,
                                              frequency_config config) {
  if (auto d = decide(fault_op::clock_set, index); d.fail) return *d.fail;
  return inner_->set_application_clocks(caller, index, config);
}

status fault_injector::reset_application_clocks(const user_context& caller, std::size_t index) {
  if (auto d = decide(fault_op::clock_set, index); d.fail) return *d.fail;
  return inner_->reset_application_clocks(caller, index);
}

status fault_injector::set_api_restriction(const user_context& caller, std::size_t index,
                                           restricted_api api, bool restricted) {
  if (auto d = decide(fault_op::query, index); d.fail) return *d.fail;
  return inner_->set_api_restriction(caller, index, api, restricted);
}

result<bool> fault_injector::api_restricted(std::size_t index, restricted_api api) const {
  if (auto d = decide(fault_op::query, index); d.fail) return *d.fail;
  return inner_->api_restricted(index, api);
}

status fault_injector::set_clock_bounds(const user_context& caller, std::size_t index,
                                        megahertz lo, megahertz hi) {
  if (auto d = decide(fault_op::query, index); d.fail) return *d.fail;
  return inner_->set_clock_bounds(caller, index, lo, hi);
}

status fault_injector::clear_clock_bounds(const user_context& caller, std::size_t index) {
  if (auto d = decide(fault_op::query, index); d.fail) return *d.fail;
  return inner_->clear_clock_bounds(caller, index);
}

result<watts> fault_injector::power_usage(std::size_t index) const {
  const auto d = decide(fault_op::power_read, index);
  if (d.fail) return *d.fail;
  if (d.stale) {
    std::scoped_lock lock(mutex_);
    // Serve the previous reading if one exists (a sensor that stopped
    // refreshing); with no history yet, fall through to a live read.
    if (const auto it = last_power_.find(index); it != last_power_.end()) return it->second;
  }
  auto r = inner_->power_usage(index);
  if (r.has_value()) {
    std::scoped_lock lock(mutex_);
    last_power_[index] = r.value();
  }
  return r;
}

result<double> fault_injector::utilization(std::size_t index) const {
  // Utilisation shares the power sensors' failure surface: dropouts and
  // device loss apply; a stale fault serves the previous reading.
  const auto d = decide(fault_op::power_read, index);
  if (d.fail) return *d.fail;
  if (d.stale) {
    std::scoped_lock lock(mutex_);
    if (const auto it = last_utilization_.find(index); it != last_utilization_.end())
      return it->second;
  }
  auto r = inner_->utilization(index);
  if (r.has_value()) {
    std::scoped_lock lock(mutex_);
    last_utilization_[index] = r.value();
  }
  return r;
}

result<joules> fault_injector::total_energy(std::size_t index) const {
  if (auto d = decide(fault_op::energy_read, index); d.fail) return *d.fail;
  return inner_->total_energy(index);
}

std::shared_ptr<gpusim::device> fault_injector::board(std::size_t index) const {
  return inner_->board(index);
}

void fault_injector::set_config(fault_config config) {
  std::scoped_lock lock(mutex_);
  config_ = std::move(config);
  schedule_fired_.assign(config_.schedule.size(), false);
}

void fault_injector::lose_device(std::size_t index) {
  std::scoped_lock lock(mutex_);
  lost_.insert(index);
}

bool fault_injector::device_lost(std::size_t index) const {
  std::scoped_lock lock(mutex_);
  return lost_.count(index) != 0;
}

std::size_t fault_injector::injected() const {
  std::scoped_lock lock(mutex_);
  return injected_total_;
}

std::size_t fault_injector::injected(fault_kind kind) const {
  std::scoped_lock lock(mutex_);
  const auto it = injected_.find(kind);
  return it == injected_.end() ? 0 : it->second;
}

std::size_t fault_injector::calls(fault_op op) const {
  std::scoped_lock lock(mutex_);
  const auto it = op_calls_.find(op);
  return it == op_calls_.end() ? 0 : it->second;
}

}  // namespace synergy::vendor

#pragma once

/// \file lzero_sim.hpp
/// Emulated Intel Level Zero (Sysman) backend.
///
/// The paper's Sec. 2.1 names Level Zero as the third vendor interface next
/// to NVML and ROCm SMI; this backend demonstrates the portability claim by
/// implementing the same abstract management interface with Level Zero
/// semantics:
///  - frequency control is expressed as a *range* (zesFrequencySetRange):
///    requested clocks clamp into the set [min, max] window; setting
///    application clocks maps to a degenerate range [f, f];
///  - Sysman access is gated process-wide (ZES_ENABLE_SYSMAN + udev
///    permissions) rather than per-API: modelled as a library-wide
///    `sysman_enabled` switch, root bypasses it;
///  - an energy counter is available (zesPowerGetEnergyCounter).

#include <mutex>

#include "synergy/vendor/management_library.hpp"

namespace synergy::vendor {

/// Level Zero emulation over one or more simulated Intel boards.
class lzero_sim final : public management_library_base {
 public:
  /// Frequency-range writes are cheap sysfs-backed operations.
  static constexpr common::seconds clock_set_latency{0.0001};

  explicit lzero_sim(std::vector<std::shared_ptr<gpusim::device>> boards,
                     sensor_model sensor = {});

  [[nodiscard]] std::string backend_name() const override { return "Level Zero"; }

  common::status set_application_clocks(const user_context& caller, std::size_t index,
                                        common::frequency_config config) override;
  common::status reset_application_clocks(const user_context& caller,
                                          std::size_t index) override;
  common::status set_api_restriction(const user_context& caller, std::size_t index,
                                     restricted_api api, bool restricted) override;
  [[nodiscard]] common::result<bool> api_restricted(std::size_t index,
                                                    restricted_api api) const override;
  common::status set_clock_bounds(const user_context& caller, std::size_t index,
                                  common::megahertz lo, common::megahertz hi) override;
  common::status clear_clock_bounds(const user_context& caller, std::size_t index) override;
  [[nodiscard]] common::result<common::joules> total_energy(std::size_t index) const override;

  /// zesFrequencySetRange: constrain the device to [lo, hi]; the current
  /// clock snaps into the window. Caller needs sysman access.
  common::status set_frequency_range(const user_context& caller, std::size_t index,
                                     common::megahertz lo, common::megahertz hi);

  /// Whether Sysman management is enabled for non-root users.
  void set_sysman_enabled(bool enabled) {
    std::scoped_lock lock(mutex_);
    sysman_enabled_ = enabled;
  }
  [[nodiscard]] bool sysman_enabled() const {
    std::scoped_lock lock(mutex_);
    return sysman_enabled_;
  }

 private:
  [[nodiscard]] common::status check_sysman(const user_context& caller,
                                            std::size_t index) const;
  mutable std::mutex mutex_;
  bool sysman_enabled_{false};
};

}  // namespace synergy::vendor

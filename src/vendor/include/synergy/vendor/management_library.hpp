#pragma once

/// \file management_library.hpp
/// Abstract vendor device-management interface.
///
/// This is the portability seam of SYnergy (paper Sec. 2.1 and 4): the core
/// library is written against this interface exactly as the real system wraps
/// NVML and ROCm SMI. Two emulated backends exist in this repository
/// (nvml_sim, rsmi_sim); binding a real vendor library would mean writing a
/// third implementation of this class, nothing else changes.
///
/// Semantics intentionally mirror the vendor C APIs:
///  - the library must be initialised before use and can be shut down;
///  - state-changing calls are privilege-checked per device, like
///    nvmlDeviceSetApplicationClocks under nvmlDeviceSetAPIRestriction
///    (paper Sec. 7.1);
///  - power reads go through a sensor model with a finite update interval
///    and averaging window (paper Sec. 4.4: ~15 ms sampling granularity).

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "synergy/common/error.hpp"
#include "synergy/common/ewma.hpp"
#include "synergy/common/units.hpp"
#include "synergy/gpusim/device.hpp"

namespace synergy::vendor {

/// Identity of the process calling into the library. Root may perform any
/// operation; regular users may only perform operations whose restriction has
/// been lifted on the target device.
struct user_context {
  int uid{1000};
  [[nodiscard]] bool is_root() const { return uid == 0; }

  static user_context root() { return {0}; }
  static user_context user(int uid = 1000) { return {uid}; }
};

/// Restrictable device APIs (subset of nvmlRestrictedAPI_t relevant here).
enum class restricted_api {
  set_application_clocks,
};

/// Power sensor behaviour: readings update every `update_interval` and report
/// the average power over the trailing `window` (Burtscher et al. measured
/// ~15 ms effective granularity on data-centre GPUs; short kernels therefore
/// cannot be profiled accurately — paper Sec. 4.4).
///
/// Guaranteed read behaviour, regardless of the parameters:
///  - before one full `window` has elapsed, the average covers only the
///    history that exists ([0, read time]) — no division by zero;
///  - a zero (or negative) `window` or `update_interval`, or a read at
///    virtual time <= 0, degrades to the instantaneous model power;
///  - a rewound / non-monotonic virtual clock can never produce a negative
///    averaging span, and readings are clamped to >= 0 W.
struct sensor_model {
  common::seconds update_interval{0.005};
  common::seconds window{0.015};
};

/// Abstract management library over a fixed set of simulated boards.
class management_library {
 public:
  virtual ~management_library() = default;

  /// Human-readable backend name ("NVML", "ROCm SMI").
  [[nodiscard]] virtual std::string backend_name() const = 0;

  /// Initialise the library; all other calls fail with `uninitialized`
  /// before this succeeds.
  virtual common::status init() = 0;

  /// Release the library. Idempotent.
  virtual common::status shutdown() = 0;

  [[nodiscard]] virtual std::size_t device_count() const = 0;

  /// Product name of device `index`.
  [[nodiscard]] virtual common::result<std::string> device_name(std::size_t index) const = 0;

  /// Supported memory clocks (single entry on HBM parts).
  [[nodiscard]] virtual common::result<std::vector<common::megahertz>> supported_memory_clocks(
      std::size_t index) const = 0;

  /// Supported core clocks for a given memory clock.
  [[nodiscard]] virtual common::result<std::vector<common::megahertz>> supported_core_clocks(
      std::size_t index, common::megahertz memory_clock) const = 0;

  /// Current (memory, core) application clocks.
  [[nodiscard]] virtual common::result<common::frequency_config> application_clocks(
      std::size_t index) const = 0;

  /// Set application clocks; privilege-checked against the device's API
  /// restriction state.
  virtual common::status set_application_clocks(const user_context& caller, std::size_t index,
                                                common::frequency_config config) = 0;

  /// Restore default application clocks; privilege-checked like set.
  virtual common::status reset_application_clocks(const user_context& caller,
                                                  std::size_t index) = 0;

  /// Root-only: allow or forbid unprivileged use of a restricted API on one
  /// device (nvmlDeviceSetAPIRestriction). Backends that have no privilege
  /// concept return not_supported.
  virtual common::status set_api_restriction(const user_context& caller, std::size_t index,
                                             restricted_api api, bool restricted) = 0;

  /// Whether `api` is currently restricted to root on device `index`.
  [[nodiscard]] virtual common::result<bool> api_restricted(std::size_t index,
                                                            restricted_api api) const = 0;

  /// Root-only hard clock bounds that application clocks cannot override
  /// (paper Sec. 7.1: min/max clock privileges cannot be lowered).
  virtual common::status set_clock_bounds(const user_context& caller, std::size_t index,
                                          common::megahertz lo, common::megahertz hi) = 0;
  virtual common::status clear_clock_bounds(const user_context& caller, std::size_t index) = 0;

  /// Sensor-modelled board power draw at the device's current virtual time.
  /// Emulated backends guarantee the edge-case behaviour documented on
  /// `sensor_model`: early reads, zero-width windows, and non-monotonic
  /// virtual time all yield a finite, non-negative reading.
  [[nodiscard]] virtual common::result<common::watts> power_usage(std::size_t index) const = 0;

  /// Windowed pipeline utilisation in [0, 1] (nvmlDeviceGetUtilizationRates /
  /// rsmi busy-percent): time-weighted mean utilisation of the device trace
  /// over the trailing sensor window. The default implementation derives it
  /// from `board(index)`; decorators forward it through their fault/retry
  /// machinery like any other sensor read. Feeds the reactive governors.
  [[nodiscard]] virtual common::result<double> utilization(std::size_t index) const;

  /// EWMA-smoothed board power: folds each `power_usage` reading (through
  /// whatever decorator stack `this` is) into a per-device
  /// `common::ewma` and returns the smoothed value. Smoothing state lives in
  /// the outermost library object the caller holds; `reset_power_smoothing`
  /// forgets it. Non-virtual by design — the raw read underneath stays the
  /// decorated virtual path.
  [[nodiscard]] common::result<common::watts> smoothed_power(std::size_t index) const;
  void reset_power_smoothing() const;

  /// EWMA alpha used by smoothed_power (default 0.25).
  void set_power_smoothing_alpha(double alpha);

  /// Cumulative energy counter in joules (nvmlDeviceGetTotalEnergyConsumption);
  /// not all backends support it.
  [[nodiscard]] virtual common::result<common::joules> total_energy(std::size_t index) const = 0;

  /// Direct access to the underlying simulated board (the emulation
  /// equivalent of "the physical GPU"; used by the runtime to execute
  /// kernels, never by the SYnergy energy API).
  [[nodiscard]] virtual std::shared_ptr<gpusim::device> board(std::size_t index) const = 0;

 private:
  mutable std::mutex smoothing_mutex_;
  mutable std::map<std::size_t, common::ewma> power_ewma_;
  double smoothing_alpha_{0.25};
};

/// Shared plumbing for the emulated backends.
class management_library_base : public management_library {
 public:
  explicit management_library_base(std::vector<std::shared_ptr<gpusim::device>> boards,
                                   sensor_model sensor = {});

  common::status init() override;
  common::status shutdown() override;
  [[nodiscard]] std::size_t device_count() const override;
  [[nodiscard]] common::result<std::string> device_name(std::size_t index) const override;
  [[nodiscard]] common::result<std::vector<common::megahertz>> supported_memory_clocks(
      std::size_t index) const override;
  [[nodiscard]] common::result<std::vector<common::megahertz>> supported_core_clocks(
      std::size_t index, common::megahertz memory_clock) const override;
  [[nodiscard]] common::result<common::frequency_config> application_clocks(
      std::size_t index) const override;
  [[nodiscard]] common::result<common::watts> power_usage(std::size_t index) const override;
  [[nodiscard]] common::result<double> utilization(std::size_t index) const override;
  [[nodiscard]] std::shared_ptr<gpusim::device> board(std::size_t index) const override;

 protected:
  /// errc::uninitialized / errc::not_found guard shared by every entry point.
  [[nodiscard]] common::status check_index(std::size_t index) const;

  /// Telemetry hook shared by the backends: records one app-clock set
  /// attempt (category freq_change) with its outcome, and counts attempts
  /// vs. rejections in the metrics registry.
  void record_clock_set(std::size_t index, common::frequency_config config,
                        const common::status& st) const;
  [[nodiscard]] bool initialized() const { return initialized_.load(std::memory_order_acquire); }
  [[nodiscard]] const sensor_model& sensor() const { return sensor_; }

 private:
  std::vector<std::shared_ptr<gpusim::device>> boards_;
  sensor_model sensor_;
  /// Atomic: one library session is shared by every thread of a node, and
  /// init/shutdown may race with queries (use-after-shutdown must fail with
  /// `uninitialized`, never read torn state).
  std::atomic<bool> initialized_{false};
};

/// Create the appropriate emulated backend (NVML for NVIDIA boards, ROCm SMI
/// for AMD). All boards passed in must share one vendor.
[[nodiscard]] std::unique_ptr<management_library> make_management_library(
    std::vector<std::shared_ptr<gpusim::device>> boards, sensor_model sensor = {});

}  // namespace synergy::vendor

#pragma once

/// \file nvml_sim.hpp
/// Emulated NVIDIA Management Library.
///
/// Reproduces the NVML behaviours SYnergy depends on (paper Secs. 2.1, 4.4,
/// 7.1):
///  - application clocks settable only from the supported clock table;
///  - setApplicationClocks restricted to root unless the restriction has been
///    lifted per device via setAPIRestriction (root-only), which is exactly
///    the mechanism the SLURM nvgpufreq plugin toggles in its prologue;
///  - root-only hard min/max locked clocks whose privilege can never be
///    lowered;
///  - a cumulative energy counter (nvmlDeviceGetTotalEnergyConsumption);
///  - each set-application-clocks call costs a fixed driver latency on the
///    device timeline, the overhead the paper measures growing with the
///    number of submitted kernels (Sec. 4.4).

#include <mutex>

#include "synergy/vendor/management_library.hpp"

namespace synergy::vendor {

/// NVML emulation over one or more simulated NVIDIA boards.
class nvml_sim final : public management_library_base {
 public:
  /// Wall-time cost charged to the device timeline per clock change
  /// (driver ioctl + PLL relock; sub-millisecond on data-centre parts, but
  /// large enough that per-kernel retuning of very short kernels hurts —
  /// the overhead the paper reports growing with submitted kernels,
  /// Sec. 4.4).
  static constexpr common::seconds clock_set_latency{0.0002};

  explicit nvml_sim(std::vector<std::shared_ptr<gpusim::device>> boards,
                    sensor_model sensor = {});

  [[nodiscard]] std::string backend_name() const override { return "NVML"; }

  common::status set_application_clocks(const user_context& caller, std::size_t index,
                                        common::frequency_config config) override;
  common::status reset_application_clocks(const user_context& caller,
                                          std::size_t index) override;
  common::status set_api_restriction(const user_context& caller, std::size_t index,
                                     restricted_api api, bool restricted) override;
  [[nodiscard]] common::result<bool> api_restricted(std::size_t index,
                                                    restricted_api api) const override;
  common::status set_clock_bounds(const user_context& caller, std::size_t index,
                                  common::megahertz lo, common::megahertz hi) override;
  common::status clear_clock_bounds(const user_context& caller, std::size_t index) override;
  [[nodiscard]] common::result<common::joules> total_energy(std::size_t index) const override;

  /// Number of successful application-clock changes (overhead accounting).
  [[nodiscard]] std::size_t clock_change_count() const {
    std::scoped_lock lock(mutex_);
    return clock_changes_;
  }

  /// nvmlDeviceSetPowerManagementLimit: root-only board power cap. The
  /// emulation enforces it by locking the core-clock upper bound to the
  /// largest clock whose worst-case power fits the limit (what the firmware
  /// achieves by throttling). Limits outside [idle, TDP] are rejected.
  common::status set_power_limit(const user_context& caller, std::size_t index,
                                 double limit_w);

  /// Restore the default (TDP) power limit.
  common::status reset_power_limit(const user_context& caller, std::size_t index);

  /// Current power limit (TDP when unset).
  [[nodiscard]] common::result<double> power_limit(std::size_t index) const;

 private:
  [[nodiscard]] common::status check_clock_permission(const user_context& caller,
                                                      std::size_t index) const;

  /// Guards the restriction flags and counters: one NVML session is shared
  /// by every thread of a node (MPI ranks, the sampling thread).
  mutable std::mutex mutex_;
  std::vector<bool> app_clock_restricted_;  ///< per device, default true
  std::vector<double> power_limit_w_;       ///< per device; 0 = default (TDP)
  std::size_t clock_changes_{0};
};

}  // namespace synergy::vendor

#pragma once

/// \file resilient_library.hpp
/// Retry / backoff / circuit-breaker decorator for management libraries.
///
/// The production-hardening layer the paper's deployment sections imply: a
/// clock set or power read that fails with a *retryable* category
/// (errc::unavailable, errc::internal) is retried with exponential backoff
/// plus deterministic jitter, bounded both by an attempt count and by a
/// per-call cumulative backoff budget (the "timeout"). A device that keeps
/// failing trips a per-device circuit breaker: further calls fail fast with
/// errc::unavailable until a cooldown number of calls has passed, after
/// which one half-open probe is let through and, if it succeeds, closes the
/// breaker again.
///
/// Backoff is charged to the device's *virtual* timeline (advance_idle), the
/// emulation equivalent of the management thread sleeping between attempts —
/// so retries cost simulated wall time and energy exactly like the real
/// thing, and remain bit-reproducible.
///
/// Permission, argument, capability and device-lost failures are never
/// retried: retrying cannot fix them and on a real cluster only hammers the
/// driver. Callers see the original error and degrade (synergy::queue falls
/// back to default clocks, the cluster simulator requeues and removes the
/// node).
///
/// Everything is counted in the telemetry metrics registry
/// (resilience.retries / exhausted / breaker_opens / fail_fast) and retried
/// calls appear as `resilience.retry` instants on the trace timeline.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "synergy/common/rng.hpp"
#include "synergy/vendor/management_library.hpp"

namespace synergy::vendor {

/// Tunables of the resilience layer. Defaults are deliberately mild: four
/// attempts, sub-millisecond first backoff, a 100 ms per-call budget.
struct retry_policy {
  int max_attempts{4};              ///< total attempts per call (>= 1)
  double base_backoff_s{0.0005};    ///< backoff before the 2nd attempt
  double backoff_multiplier{2.0};   ///< exponential growth per attempt
  double max_backoff_s{0.02};       ///< ceiling per individual backoff
  double jitter{0.5};               ///< +/- fraction applied to each backoff
  double call_timeout_s{0.1};       ///< cumulative backoff budget per call
  int breaker_threshold{8};         ///< consecutive failures that open the breaker
  int breaker_cooldown_calls{16};   ///< fail-fast calls before a half-open probe
  std::uint64_t seed{0xb0ff5eedULL};  ///< jitter RNG seed
};

/// Decorator adding bounded retry and per-device circuit breaking to any
/// management library (typically stacked on top of a fault_injector in
/// tests and sweeps, and directly on a backend in production-shaped runs).
class resilient_library final : public management_library {
 public:
  explicit resilient_library(std::unique_ptr<management_library> inner,
                             retry_policy policy = {});

  [[nodiscard]] std::string backend_name() const override;
  common::status init() override;
  common::status shutdown() override;
  [[nodiscard]] std::size_t device_count() const override;
  [[nodiscard]] common::result<std::string> device_name(std::size_t index) const override;
  [[nodiscard]] common::result<std::vector<common::megahertz>> supported_memory_clocks(
      std::size_t index) const override;
  [[nodiscard]] common::result<std::vector<common::megahertz>> supported_core_clocks(
      std::size_t index, common::megahertz memory_clock) const override;
  [[nodiscard]] common::result<common::frequency_config> application_clocks(
      std::size_t index) const override;
  common::status set_application_clocks(const user_context& caller, std::size_t index,
                                        common::frequency_config config) override;
  common::status reset_application_clocks(const user_context& caller,
                                          std::size_t index) override;
  common::status set_api_restriction(const user_context& caller, std::size_t index,
                                     restricted_api api, bool restricted) override;
  [[nodiscard]] common::result<bool> api_restricted(std::size_t index,
                                                    restricted_api api) const override;
  common::status set_clock_bounds(const user_context& caller, std::size_t index,
                                  common::megahertz lo, common::megahertz hi) override;
  common::status clear_clock_bounds(const user_context& caller, std::size_t index) override;
  [[nodiscard]] common::result<common::watts> power_usage(std::size_t index) const override;
  [[nodiscard]] common::result<double> utilization(std::size_t index) const override;
  [[nodiscard]] common::result<common::joules> total_energy(std::size_t index) const override;
  [[nodiscard]] std::shared_ptr<gpusim::device> board(std::size_t index) const override;

  /// True when `code` is worth retrying (infrastructure hiccups, not policy
  /// or permanent failures).
  [[nodiscard]] static bool retryable(common::errc code) {
    return code == common::errc::unavailable || code == common::errc::internal;
  }

  // --- observability -------------------------------------------------------
  [[nodiscard]] std::size_t retries() const;        ///< individual re-attempts
  [[nodiscard]] std::size_t exhausted() const;      ///< calls that gave up retrying
  [[nodiscard]] std::size_t breaker_opens() const;  ///< closed -> open transitions
  [[nodiscard]] std::size_t fail_fast_rejections() const;
  [[nodiscard]] bool breaker_open(std::size_t index) const;

  [[nodiscard]] const retry_policy& policy() const { return policy_; }
  [[nodiscard]] management_library& inner() { return *inner_; }

 private:
  struct breaker_state {
    int consecutive_failures{0};
    bool open{false};
    int cooldown_left{0};
  };

  /// Breaker gate: false means fail fast, `out` carries the rejection.
  bool admit(std::size_t index, common::error& out) const;
  void on_success(std::size_t index) const;
  void on_failure(std::size_t index, common::errc code) const;
  /// Charge one backoff to the device timeline; false = per-call budget
  /// exhausted, stop retrying.
  bool backoff(std::size_t index, int attempt, double& spent) const;
  [[nodiscard]] breaker_state& breaker_of(std::size_t index) const;

  template <typename Call>
  auto execute(std::size_t index, const char* op, Call&& call) const
      -> decltype(call());

  std::unique_ptr<management_library> inner_;
  retry_policy policy_;
  mutable std::mutex mutex_;
  mutable common::pcg32 rng_;
  mutable std::vector<breaker_state> breakers_;
  mutable std::size_t retries_{0};
  mutable std::size_t exhausted_{0};
  mutable std::size_t breaker_opens_{0};
  mutable std::size_t fail_fast_{0};
};

}  // namespace synergy::vendor

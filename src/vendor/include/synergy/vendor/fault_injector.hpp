#pragma once

/// \file fault_injector.hpp
/// Deterministic fault injection for vendor management libraries.
///
/// Production management stacks misbehave: NVML calls transiently fail on
/// busy nodes, sensors return stale or no data, privileges get revoked
/// between prologue and job, and occasionally a board falls off the bus
/// (paper Sec. 4.4 and 7.1 describe exactly these failure surfaces on
/// Marconi-100). The fault injector wraps any `management_library` and
/// reproduces those behaviours on demand so the resilience layer and the
/// degradation paths above it can be tested, swept, and regression-pinned.
///
/// Faults are drawn from an explicitly seeded pcg32, so a given seed and
/// call sequence injects a bit-identical fault pattern on every run — the
/// same reproducibility contract as the rest of the repository. One-shot
/// faults can also be scripted at an exact (operation, device, call-index)
/// triple, which is how tests pin "the 3rd clock set on device 1 fails".

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "synergy/common/rng.hpp"
#include "synergy/vendor/management_library.hpp"

namespace synergy::vendor {

/// Call-site classes faults can target.
enum class fault_op : std::uint8_t {
  clock_set,    ///< set/reset application clocks
  power_read,   ///< power_usage
  energy_read,  ///< total_energy
  query,        ///< name/clock-table/restriction queries and bound sets
  any,          ///< schedule wildcard: matches every operation
};
[[nodiscard]] const char* to_string(fault_op op) noexcept;

/// Failure shapes the injector can produce.
enum class fault_kind : std::uint8_t {
  transient,       ///< errc::unavailable; succeeds if retried
  clock_reject,    ///< errc::invalid_argument from the clock-set path
  privilege_lost,  ///< errc::no_permission (revoked between calls)
  dropout,         ///< sensor read fails with errc::unavailable
  stale_power,     ///< power read silently returns the previous value
  device_lost,     ///< errc::device_lost; permanent for that device
};
[[nodiscard]] const char* to_string(fault_kind kind) noexcept;

/// One scripted fault: fires on the `call_index`-th (0-based) call of `op`
/// on `device`, once.
struct scripted_fault {
  fault_op op{fault_op::any};
  std::size_t device{0};
  std::size_t call_index{0};
  fault_kind kind{fault_kind::transient};
};

/// Injection plan: per-call-site probabilities plus a scripted schedule.
/// All rates are per matching call, in [0, 1].
struct fault_config {
  std::uint64_t seed{0x5fa017u};
  double clock_set_transient_rate{0.0};
  double clock_set_reject_rate{0.0};
  double privilege_revocation_rate{0.0};  ///< clock sets fail no_permission
  double power_read_dropout_rate{0.0};
  double stale_power_rate{0.0};
  double device_lost_rate{0.0};  ///< rolled on every faultable call
  std::vector<scripted_fault> schedule;

  [[nodiscard]] bool enabled() const {
    return clock_set_transient_rate > 0.0 || clock_set_reject_rate > 0.0 ||
           privilege_revocation_rate > 0.0 || power_read_dropout_rate > 0.0 ||
           stale_power_rate > 0.0 || device_lost_rate > 0.0 || !schedule.empty();
  }
};

/// Decorator that injects faults in front of any management library. A lost
/// device stays lost for the lifetime of the injector (like a fallen-off-bus
/// board staying gone until a node reboot). Thread-safe like the backends.
class fault_injector final : public management_library {
 public:
  fault_injector(std::unique_ptr<management_library> inner, fault_config config);

  [[nodiscard]] std::string backend_name() const override;
  common::status init() override;
  common::status shutdown() override;
  [[nodiscard]] std::size_t device_count() const override;
  [[nodiscard]] common::result<std::string> device_name(std::size_t index) const override;
  [[nodiscard]] common::result<std::vector<common::megahertz>> supported_memory_clocks(
      std::size_t index) const override;
  [[nodiscard]] common::result<std::vector<common::megahertz>> supported_core_clocks(
      std::size_t index, common::megahertz memory_clock) const override;
  [[nodiscard]] common::result<common::frequency_config> application_clocks(
      std::size_t index) const override;
  common::status set_application_clocks(const user_context& caller, std::size_t index,
                                        common::frequency_config config) override;
  common::status reset_application_clocks(const user_context& caller,
                                          std::size_t index) override;
  common::status set_api_restriction(const user_context& caller, std::size_t index,
                                     restricted_api api, bool restricted) override;
  [[nodiscard]] common::result<bool> api_restricted(std::size_t index,
                                                    restricted_api api) const override;
  common::status set_clock_bounds(const user_context& caller, std::size_t index,
                                  common::megahertz lo, common::megahertz hi) override;
  common::status clear_clock_bounds(const user_context& caller, std::size_t index) override;
  [[nodiscard]] common::result<common::watts> power_usage(std::size_t index) const override;
  [[nodiscard]] common::result<double> utilization(std::size_t index) const override;
  [[nodiscard]] common::result<common::joules> total_energy(std::size_t index) const override;
  [[nodiscard]] std::shared_ptr<gpusim::device> board(std::size_t index) const override;

  /// Replace the injection plan at runtime (tests flip rates mid-scenario;
  /// already-lost devices stay lost).
  void set_config(fault_config config);

  /// Force a device-lost event from outside the probabilistic plan.
  void lose_device(std::size_t index);
  [[nodiscard]] bool device_lost(std::size_t index) const;

  /// Total faults injected so far / broken down by kind.
  [[nodiscard]] std::size_t injected() const;
  [[nodiscard]] std::size_t injected(fault_kind kind) const;

  /// Calls observed per operation class (fired or not).
  [[nodiscard]] std::size_t calls(fault_op op) const;

  [[nodiscard]] management_library& inner() { return *inner_; }

 private:
  struct decision {
    std::optional<common::error> fail;
    bool stale{false};
  };

  /// Count the call, consult the schedule and the rates, and decide what —
  /// if anything — to inject. Mutates RNG/counters, hence const + mutable.
  decision decide(fault_op op, std::size_t index) const;
  void note(fault_op op, std::size_t index, fault_kind kind) const;

  std::unique_ptr<management_library> inner_;
  mutable std::mutex mutex_;
  fault_config config_;
  mutable common::pcg32 rng_;
  mutable std::map<std::pair<std::size_t, fault_op>, std::size_t> call_counts_;
  mutable std::map<fault_op, std::size_t> op_calls_;
  mutable std::map<fault_kind, std::size_t> injected_;
  mutable std::size_t injected_total_{0};
  mutable std::set<std::size_t> lost_;
  mutable std::vector<bool> schedule_fired_;
  mutable std::map<std::size_t, common::watts> last_power_;
  mutable std::map<std::size_t, double> last_utilization_;
};

}  // namespace synergy::vendor

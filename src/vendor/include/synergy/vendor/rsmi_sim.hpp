#pragma once

/// \file rsmi_sim.hpp
/// Emulated AMD ROCm System Management Interface.
///
/// Captures the ROCm-SMI quirks that matter for SYnergy's portability story
/// (paper Secs. 2.1, 8.2):
///  - the core clock is selected from a small table of discrete performance
///    levels (16 on MI100) rather than a fine-grained clock list;
///  - there is no per-API restriction mechanism: writability follows sysfs
///    file permissions, modelled as a single library-wide writable flag;
///  - there is no cumulative energy counter on MI100-class parts, so energy
///    must be obtained by integrating power samples (total_energy returns
///    not_supported);
///  - with auto-DVFS the "default" operating point is the top performance
///    level for compute workloads, which is why no configuration beats the
///    default on MI100 in the paper's Fig. 8.

#include "synergy/vendor/management_library.hpp"

namespace synergy::vendor {

/// ROCm SMI emulation over one or more simulated AMD boards.
class rsmi_sim final : public management_library_base {
 public:
  /// Clock-change latency on AMD parts (sysfs write, cheaper than NVML).
  static constexpr common::seconds clock_set_latency{0.0001};

  explicit rsmi_sim(std::vector<std::shared_ptr<gpusim::device>> boards,
                    sensor_model sensor = {});

  [[nodiscard]] std::string backend_name() const override { return "ROCm SMI"; }

  common::status set_application_clocks(const user_context& caller, std::size_t index,
                                        common::frequency_config config) override;
  common::status reset_application_clocks(const user_context& caller,
                                          std::size_t index) override;
  common::status set_api_restriction(const user_context& caller, std::size_t index,
                                     restricted_api api, bool restricted) override;
  [[nodiscard]] common::result<bool> api_restricted(std::size_t index,
                                                    restricted_api api) const override;
  common::status set_clock_bounds(const user_context& caller, std::size_t index,
                                  common::megahertz lo, common::megahertz hi) override;
  common::status clear_clock_bounds(const user_context& caller, std::size_t index) override;
  [[nodiscard]] common::result<common::joules> total_energy(std::size_t index) const override;

  /// Select a performance level by index into the sclk table (rsmi-style).
  common::status set_perf_level(const user_context& caller, std::size_t index,
                                std::size_t level);

  /// Whether the sysfs clock files are writable by non-root users.
  void set_sysfs_writable(bool writable) { sysfs_writable_ = writable; }

 private:
  [[nodiscard]] common::status check_write(const user_context& caller,
                                           std::size_t index) const;
  bool sysfs_writable_{false};
};

}  // namespace synergy::vendor

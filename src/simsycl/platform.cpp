#include "simsycl/platform.hpp"

#include <mutex>
#include <stdexcept>

namespace simsycl {

namespace {
std::shared_ptr<platform>& default_slot() {
  static std::shared_ptr<platform> slot;
  return slot;
}
std::mutex& default_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

platform::platform(const std::vector<std::string>& device_names,
                   synergy::gpusim::noise_config noise) {
  for (std::size_t i = 0; i < device_names.size(); ++i) {
    auto spec = synergy::gpusim::make_device_spec(device_names[i]);
    auto per_device = noise;
    per_device.seed += i;  // decorrelate noise across boards
    devices_.emplace_back(spec, per_device);
  }
}

platform::platform(const std::vector<synergy::gpusim::device_spec>& specs,
                   synergy::gpusim::noise_config noise) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto per_device = noise;
    per_device.seed += i;
    devices_.emplace_back(specs[i], per_device);
  }
}

device platform::get_device(std::size_t index) const {
  if (index >= devices_.size()) throw std::out_of_range("platform device index");
  return devices_[index];
}

platform& platform::default_platform() {
  std::scoped_lock lock(default_mutex());
  auto& slot = default_slot();
  if (!slot) slot = std::make_shared<platform>(std::vector<std::string>{"V100"});
  return *slot;
}

void platform::set_default(std::shared_ptr<platform> p) {
  std::scoped_lock lock(default_mutex());
  default_slot() = std::move(p);
}

}  // namespace simsycl

#include "simsycl/queue.hpp"

#include <stdexcept>

namespace simsycl {

using synergy::common::seconds;

void handler::record_launch(std::size_t items, std::function<void()> run) {
  if (has_launch_)
    throw std::logic_error("a command group may contain at most one kernel launch");
  run_ = std::move(run);
  items_ = items;
  has_launch_ = true;
}

event queue::finalize(handler& h) {
  if (!h.has_launch_) return event{};

  auto board = device_.board();
  auto state = std::make_shared<event::state>();
  state->kernel_name = h.info_.name;
  state->submit = board->now();
  state->board = board;

  // Host execution produces the real numerical results...
  h.run_();
  // ...and the simulated board charges virtual time and energy.
  state->record = board->execute(h.info_.to_profile(h.items_));
  ++submitted_;
  return event{std::move(state)};
}

seconds event::profiling(info::event_profiling which) const {
  if (!state_) throw std::logic_error("profiling query on a default event");
  switch (which) {
    case info::event_profiling::command_submit: return state_->submit;
    case info::event_profiling::command_start: return state_->record.start;
    case info::event_profiling::command_end:
      return seconds{state_->record.start.value + state_->record.cost.time.value};
  }
  throw std::logic_error("unknown profiling query");
}

const synergy::gpusim::execution_record& event::record() const {
  if (!state_) throw std::logic_error("record query on a default event");
  return state_->record;
}

}  // namespace simsycl

#pragma once

/// \file sycl.hpp
/// Umbrella header: include this to write SYCL-style code against the
/// simulated runtime, as application code includes <sycl/sycl.hpp>.

#include "simsycl/buffer.hpp"    // IWYU pragma: export
#include "simsycl/device.hpp"    // IWYU pragma: export
#include "simsycl/event.hpp"     // IWYU pragma: export
#include "simsycl/kernel_info.hpp"  // IWYU pragma: export
#include "simsycl/platform.hpp"  // IWYU pragma: export
#include "simsycl/queue.hpp"     // IWYU pragma: export
#include "simsycl/types.hpp"     // IWYU pragma: export

#pragma once

/// \file kernel_info.hpp
/// Per-kernel cost annotation attached to a launch.
///
/// In the real SYnergy toolchain the compiler's feature-extraction pass
/// produces a static feature vector per kernel (paper Sec. 3.1, Fig. 6 step
/// 4). Here the same artefact is produced by src/features and attached to
/// launches as a kernel_info. Launches without one are costed with a generic
/// default profile — mirroring a kernel the compiler pass could not analyse.

#include <string>

#include "synergy/gpusim/kernel_profile.hpp"

namespace simsycl {

/// Static + dynamic cost annotation for one kernel.
struct kernel_info {
  std::string name{"anonymous"};
  synergy::gpusim::static_features features{};

  /// Bytes per global access (4 float, 8 double).
  double bytes_per_access{4.0};
  /// Fraction of global accesses served by cache (dynamic, not in features).
  double cache_hit_rate{0.0};
  /// Achieved fraction of peak DRAM bandwidth.
  double coalescing_efficiency{0.85};
  /// Achieved fraction of peak issue rate.
  double compute_efficiency{0.75};
  /// Virtual work items per real (host-executed) work item. Lets tests run
  /// small problem sizes while the simulated device sees GPU-scale launches.
  double work_multiplier{1.0};

  /// Materialise the gpusim profile for a launch of `real_items` work items.
  [[nodiscard]] synergy::gpusim::kernel_profile to_profile(std::size_t real_items) const {
    synergy::gpusim::kernel_profile p;
    p.name = name;
    p.features = features;
    p.work_items = static_cast<double>(real_items) * work_multiplier;
    p.bytes_per_access = bytes_per_access;
    p.cache_hit_rate = cache_hit_rate;
    p.coalescing_efficiency = coalescing_efficiency;
    p.compute_efficiency = compute_efficiency;
    return p;
  }

  /// Cost annotation used for launches with no attached info: a light,
  /// slightly memory-leaning kernel.
  [[nodiscard]] static kernel_info generic() {
    kernel_info info;
    info.name = "generic";
    info.features.float_add = 4;
    info.features.float_mul = 4;
    info.features.int_add = 2;
    info.features.gl_access = 3;
    return info;
  }
};

}  // namespace simsycl

#pragma once

/// \file buffer.hpp
/// SYCL-style buffers and accessors.
///
/// Buffers own a host-side copy of the data; accessors view it. As in SYCL,
/// a buffer constructed over host memory writes back on destruction of the
/// last buffer copy. There is no real device memory in the simulation, so
/// "device" accessors simply alias the buffer storage — data movement cost is
/// part of the kernel's modelled memory traffic.

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "simsycl/types.hpp"

namespace simsycl {

class handler;

template <typename T, int Dim = 1>
class buffer {
 public:
  /// Uninitialised buffer of the given extent.
  explicit buffer(range<Dim> r) : state_(std::make_shared<state>()) {
    state_->data.resize(r.size());
    state_->extent = r;
  }

  /// Buffer over host memory; contents are copied in now and written back
  /// when the last copy of this buffer is destroyed.
  buffer(T* host_ptr, range<Dim> r) : buffer(r) {
    if (host_ptr == nullptr) throw std::invalid_argument("null host pointer");
    std::copy(host_ptr, host_ptr + r.size(), state_->data.begin());
    state_->writeback_ptr = host_ptr;
  }

  /// Buffer initialised from (and written back to) a host vector.
  explicit buffer(std::vector<T>& host)
    requires(Dim == 1)
      : buffer(host.data(), range<1>{host.size()}) {}

  [[nodiscard]] range<Dim> get_range() const { return state_->extent; }
  [[nodiscard]] std::size_t size() const { return state_->data.size(); }

 private:
  struct state {
    std::vector<T> data;
    range<Dim> extent;
    T* writeback_ptr{nullptr};

    ~state() {
      if (writeback_ptr != nullptr)
        std::copy(data.begin(), data.end(), writeback_ptr);
    }
  };

  std::shared_ptr<state> state_;

  template <typename U, int D, access_mode M>
  friend class accessor;
  template <typename U, int D>
  friend class host_accessor;
  template <typename U, typename BinaryOp>
  friend class reduction_descriptor;
};

/// Device-side view of a buffer, requested inside a command group.
template <typename T, int Dim = 1, access_mode Mode = access_mode::read_write>
class accessor {
 public:
  /// SYCL-style: accessor<...> acc{buf, cgh};
  accessor(buffer<T, Dim>& buf, handler&) : state_(buf.state_) {}

  /// Convenience for tests that need a view without a live handler.
  explicit accessor(buffer<T, Dim>& buf) : state_(buf.state_) {}

  [[nodiscard]] std::size_t size() const { return state_->data.size(); }
  [[nodiscard]] range<Dim> get_range() const { return state_->extent; }

  /// Linear indexing (any Dim).
  T& operator[](std::size_t i) const
    requires(Mode != access_mode::read)
  {
    return state_->data[i];
  }
  const T& operator[](std::size_t i) const
    requires(Mode == access_mode::read)
  {
    return state_->data[i];
  }

  /// Multi-dimensional indexing via id.
  T& operator[](id<Dim> idx) const
    requires(Mode != access_mode::read && Dim >= 2)
  {
    return state_->data[linearise(idx)];
  }
  const T& operator[](id<Dim> idx) const
    requires(Mode == access_mode::read && Dim >= 2)
  {
    return state_->data[linearise(idx)];
  }

 private:
  [[nodiscard]] std::size_t linearise(id<Dim> idx) const {
    std::size_t linear = idx.get(0);
    for (int d = 1; d < Dim; ++d) linear = linear * state_->extent.get(d) + idx.get(d);
    return linear;
  }

  std::shared_ptr<typename buffer<T, Dim>::state> state_;
};

/// Reduction identity/combination descriptor (sycl::reduction). Created by
/// the simsycl::reduction() factory and passed to handler::parallel_for;
/// the kernel receives a reducer whose combine() folds per-item
/// contributions into element 0 of the bound buffer.
template <typename T, typename BinaryOp>
class reduction_descriptor {
 public:
  reduction_descriptor(buffer<T, 1>& buf, T identity, BinaryOp op)
      : state_(buf.state_), identity_(identity), op_(op) {}

  /// The mutable reducer handed to the kernel.
  class reducer {
   public:
    explicit reducer(T identity, BinaryOp op) : value_(identity), op_(op) {}
    void combine(T partial) { value_ = op_(value_, partial); }
    reducer& operator+=(T partial) {
      combine(partial);
      return *this;
    }
    [[nodiscard]] T value() const { return value_; }

   private:
    T value_;
    BinaryOp op_;
  };

  [[nodiscard]] reducer make_reducer() const { return reducer{identity_, op_}; }
  void finalize(const reducer& r) const {
    state_->data.at(0) = op_(state_->data.at(0), r.value());
  }

 private:
  std::shared_ptr<typename buffer<T, 1>::state> state_;
  T identity_;
  BinaryOp op_;
};

/// sycl::reduction analogue: bind a buffer's element 0 as reduction target.
template <typename T, typename BinaryOp>
[[nodiscard]] reduction_descriptor<T, BinaryOp> reduction(buffer<T, 1>& buf, T identity,
                                                          BinaryOp op) {
  return reduction_descriptor<T, BinaryOp>{buf, identity, op};
}

/// Host-side view (sycl::host_accessor): read/write the buffer from host code
/// after kernels complete.
template <typename T, int Dim = 1>
class host_accessor {
 public:
  explicit host_accessor(buffer<T, Dim>& buf) : state_(buf.state_) {}

  [[nodiscard]] std::size_t size() const { return state_->data.size(); }
  T& operator[](std::size_t i) const { return state_->data[i]; }
  T* begin() const { return state_->data.data(); }
  T* end() const { return state_->data.data() + state_->data.size(); }

 private:
  std::shared_ptr<typename buffer<T, Dim>::state> state_;
};

}  // namespace simsycl

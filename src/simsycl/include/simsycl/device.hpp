#pragma once

/// \file device.hpp
/// SYCL-style device: a handle onto one simulated GPU board.
///
/// Copies of a device share the underlying board (and its virtual clock),
/// matching SYCL's reference semantics for devices.

#include <memory>
#include <string>

#include "synergy/gpusim/device.hpp"

namespace simsycl {

class device {
 public:
  device() = default;
  explicit device(std::shared_ptr<synergy::gpusim::device> board) : board_(std::move(board)) {}

  /// Construct a fresh board from a product spec.
  explicit device(const synergy::gpusim::device_spec& spec,
                  synergy::gpusim::noise_config noise = {})
      : board_(std::make_shared<synergy::gpusim::device>(spec, noise)) {}

  [[nodiscard]] bool valid() const { return board_ != nullptr; }
  [[nodiscard]] std::string name() const { return board_->spec().name; }
  [[nodiscard]] const synergy::gpusim::device_spec& spec() const { return board_->spec(); }

  /// Underlying simulated board (the SYnergy layer and vendor emulation use
  /// this; application code has no reason to).
  [[nodiscard]] const std::shared_ptr<synergy::gpusim::device>& board() const { return board_; }

  friend bool operator==(const device& a, const device& b) { return a.board_ == b.board_; }

 private:
  std::shared_ptr<synergy::gpusim::device> board_;
};

}  // namespace simsycl

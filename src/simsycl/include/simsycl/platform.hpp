#pragma once

/// \file platform.hpp
/// Device discovery and the default device selector.
///
/// A platform owns a set of simulated boards; `gpu_selector_v` picks the
/// first device of the process-default platform, as `sycl::queue{
/// gpu_selector_v}` does in the paper's listings. Tests construct platforms
/// explicitly; examples rely on the default (a single V100).

#include <memory>
#include <string>
#include <vector>

#include "simsycl/device.hpp"
#include "synergy/gpusim/device_spec.hpp"

namespace simsycl {

/// Selector tag mirroring sycl::gpu_selector_v.
struct gpu_selector_tag {};
inline constexpr gpu_selector_tag gpu_selector_v{};

class platform {
 public:
  /// Create a platform of named devices ("V100", "A100", "MI100").
  explicit platform(const std::vector<std::string>& device_names,
                    synergy::gpusim::noise_config noise = {});

  /// Create a platform from explicit specs.
  explicit platform(const std::vector<synergy::gpusim::device_spec>& specs,
                    synergy::gpusim::noise_config noise = {});

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] device get_device(std::size_t index) const;
  [[nodiscard]] const std::vector<device>& devices() const { return devices_; }

  /// Process-default platform; lazily one V100 unless set_default was called.
  static platform& default_platform();

  /// Replace the process-default platform (examples/benches use this to pick
  /// the device under test). Pass nullptr to reset to the lazy default.
  static void set_default(std::shared_ptr<platform> p);

 private:
  std::vector<device> devices_;
};

}  // namespace simsycl

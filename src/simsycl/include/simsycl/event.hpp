#pragma once

/// \file event.hpp
/// SYCL-style event with virtual-time profiling info.
///
/// Events are how SYnergy measures per-kernel energy (paper Sec. 4.2): the
/// fine-grained profiler tracks a kernel from submission to completion and
/// attributes the energy consumed in that interval. In the simulation a
/// kernel is complete by the time submit() returns, but the virtual
/// start/end timestamps delimit exactly the device-time interval the kernel
/// occupied, which is what the profiling queries need.

#include <memory>
#include <string>

#include "synergy/common/units.hpp"
#include "synergy/gpusim/device.hpp"

namespace simsycl {

namespace info {
/// Subset of sycl::info::event_profiling.
enum class event_profiling { command_submit, command_start, command_end };
enum class event_command_status { submitted, running, complete };
}  // namespace info

class event {
 public:
  event() = default;

  /// Wait for completion. Execution is eager in the simulation, so this is
  /// an ordering no-op kept for API fidelity.
  void wait() const {}

  /// SYCL's wait_and_throw: waits, then rethrows asynchronous errors (none
  /// can occur in the simulation).
  void wait_and_throw() const {}

  [[nodiscard]] info::event_command_status get_status() const {
    return state_ ? info::event_command_status::complete
                  : info::event_command_status::submitted;
  }

  /// Profiling timestamps on the device's virtual timeline.
  [[nodiscard]] synergy::common::seconds profiling(info::event_profiling which) const;

  /// Name of the kernel this event tracks ("" for a default event).
  [[nodiscard]] std::string kernel_name() const { return state_ ? state_->kernel_name : ""; }

  /// The execution record charged by the simulated device.
  [[nodiscard]] const synergy::gpusim::execution_record& record() const;

  /// Board the kernel ran on (used by the SYnergy profiler).
  [[nodiscard]] std::shared_ptr<synergy::gpusim::device> board() const {
    return state_ ? state_->board : nullptr;
  }

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

 private:
  struct state {
    std::string kernel_name;
    synergy::common::seconds submit{0.0};
    synergy::gpusim::execution_record record;
    std::shared_ptr<synergy::gpusim::device> board;
  };

  explicit event(std::shared_ptr<state> s) : state_(std::move(s)) {}
  std::shared_ptr<state> state_;

  friend class queue;
};

}  // namespace simsycl

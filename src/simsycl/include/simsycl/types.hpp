#pragma once

/// \file types.hpp
/// SYCL-2020-style index space types: range, id, item.
///
/// simsycl is the minimal SYCL runtime the SYnergy API wraps (the real system
/// wraps Intel DPC++ / Open SYCL). Kernels written against these types look
/// like the paper's listings and execute for real on the host, while the
/// device cost is charged in virtual time by the bound gpusim device.

#include <array>
#include <cstddef>

namespace simsycl {

/// Dim-dimensional extent of an index space (Dim in 1..3).
template <int Dim = 1>
class range {
  static_assert(Dim >= 1 && Dim <= 3, "range supports 1-3 dimensions");

 public:
  range() = default;
  explicit range(std::size_t d0)
    requires(Dim == 1)
      : dims_{d0} {}
  range(std::size_t d0, std::size_t d1)
    requires(Dim == 2)
      : dims_{d0, d1} {}
  range(std::size_t d0, std::size_t d1, std::size_t d2)
    requires(Dim == 3)
      : dims_{d0, d1, d2} {}

  [[nodiscard]] std::size_t get(int dim) const { return dims_[dim]; }
  [[nodiscard]] std::size_t operator[](int dim) const { return dims_[dim]; }

  /// Total number of work items.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 1;
    for (int i = 0; i < Dim; ++i) total *= dims_[i];
    return total;
  }

  friend bool operator==(const range&, const range&) = default;

 private:
  std::array<std::size_t, Dim> dims_{};
};

/// Dim-dimensional index of a work item.
template <int Dim = 1>
class id {
  static_assert(Dim >= 1 && Dim <= 3, "id supports 1-3 dimensions");

 public:
  id() = default;
  explicit id(std::size_t d0)
    requires(Dim == 1)
      : dims_{d0} {}
  id(std::size_t d0, std::size_t d1)
    requires(Dim == 2)
      : dims_{d0, d1} {}
  id(std::size_t d0, std::size_t d1, std::size_t d2)
    requires(Dim == 3)
      : dims_{d0, d1, d2} {}

  [[nodiscard]] std::size_t get(int dim) const { return dims_[dim]; }
  [[nodiscard]] std::size_t operator[](int dim) const { return dims_[dim]; }

  /// 1-D ids convert implicitly to the linear index, as in SYCL.
  operator std::size_t() const  // NOLINT(google-explicit-constructor)
    requires(Dim == 1)
  {
    return dims_[0];
  }

  friend bool operator==(const id&, const id&) = default;

 private:
  std::array<std::size_t, Dim> dims_{};
};

/// A work item: its id plus the launch range.
template <int Dim = 1>
class item {
 public:
  item(id<Dim> idx, range<Dim> rng) : id_(idx), range_(rng) {}

  [[nodiscard]] id<Dim> get_id() const { return id_; }
  [[nodiscard]] std::size_t get_id(int dim) const { return id_.get(dim); }
  [[nodiscard]] range<Dim> get_range() const { return range_; }
  [[nodiscard]] std::size_t get_range(int dim) const { return range_.get(dim); }

  /// Row-major linearised index.
  [[nodiscard]] std::size_t get_linear_id() const {
    std::size_t linear = id_.get(0);
    for (int d = 1; d < Dim; ++d) linear = linear * range_.get(d) + id_.get(d);
    return linear;
  }

 private:
  id<Dim> id_;
  range<Dim> range_;
};

/// A work item of hierarchical parallelism: local id within its group plus
/// the group's identity (sycl::h_item).
template <int Dim = 1>
class h_item {
 public:
  h_item(id<Dim> local, range<Dim> local_range, id<Dim> group, range<Dim> group_range)
      : local_(local), local_range_(local_range), group_(group), group_range_(group_range) {}

  [[nodiscard]] id<Dim> get_local_id() const { return local_; }
  [[nodiscard]] std::size_t get_local_id(int dim) const { return local_.get(dim); }
  [[nodiscard]] range<Dim> get_local_range() const { return local_range_; }

  [[nodiscard]] id<Dim> get_group_id() const { return group_; }
  [[nodiscard]] range<Dim> get_group_range() const { return group_range_; }

  /// Global id: group * local_range + local, per dimension.
  [[nodiscard]] id<Dim> get_global_id() const {
    if constexpr (Dim == 1) {
      return id<1>{group_.get(0) * local_range_.get(0) + local_.get(0)};
    } else if constexpr (Dim == 2) {
      return id<2>{group_.get(0) * local_range_.get(0) + local_.get(0),
                   group_.get(1) * local_range_.get(1) + local_.get(1)};
    } else {
      return id<3>{group_.get(0) * local_range_.get(0) + local_.get(0),
                   group_.get(1) * local_range_.get(1) + local_.get(1),
                   group_.get(2) * local_range_.get(2) + local_.get(2)};
    }
  }
  [[nodiscard]] std::size_t get_global_id(int dim) const { return get_global_id().get(dim); }

  /// Row-major linearised local index.
  [[nodiscard]] std::size_t get_local_linear_id() const {
    std::size_t linear = local_.get(0);
    for (int d = 1; d < Dim; ++d) linear = linear * local_range_.get(d) + local_.get(d);
    return linear;
  }

 private:
  id<Dim> local_;
  range<Dim> local_range_;
  id<Dim> group_;
  range<Dim> group_range_;
};

/// A work group of hierarchical parallelism (sycl::group). Code in the
/// group scope runs once per group; parallel_for_work_item launches a
/// work-item phase with an implicit barrier before and after, which is what
/// makes sequential host execution semantically correct for tiled kernels:
/// each phase completes entirely before the next reads its results.
/// Variables declared at group scope (e.g. a std::vector tile) are the
/// hierarchical-parallelism form of local memory.
template <int Dim = 1>
class group {
 public:
  group(id<Dim> group_id, range<Dim> group_range, range<Dim> local_range)
      : id_(group_id), group_range_(group_range), local_range_(local_range) {}

  [[nodiscard]] id<Dim> get_group_id() const { return id_; }
  [[nodiscard]] std::size_t get_group_id(int dim) const { return id_.get(dim); }
  [[nodiscard]] range<Dim> get_group_range() const { return group_range_; }
  [[nodiscard]] range<Dim> get_local_range() const { return local_range_; }

  /// One work-item phase: invokes f(h_item<Dim>) for every local id.
  template <typename F>
  void parallel_for_work_item(F&& f) const {
    if constexpr (Dim == 1) {
      for (std::size_t i = 0; i < local_range_.get(0); ++i)
        f(h_item<1>{id<1>{i}, local_range_, id_, group_range_});
    } else if constexpr (Dim == 2) {
      for (std::size_t i = 0; i < local_range_.get(0); ++i)
        for (std::size_t j = 0; j < local_range_.get(1); ++j)
          f(h_item<2>{id<2>{i, j}, local_range_, id_, group_range_});
    } else {
      for (std::size_t i = 0; i < local_range_.get(0); ++i)
        for (std::size_t j = 0; j < local_range_.get(1); ++j)
          for (std::size_t k = 0; k < local_range_.get(2); ++k)
            f(h_item<3>{id<3>{i, j, k}, local_range_, id_, group_range_});
    }
  }

 private:
  id<Dim> id_;
  range<Dim> group_range_;
  range<Dim> local_range_;
};

/// Access intent of an accessor (subset of sycl::access_mode).
enum class access_mode { read, write, read_write };

inline constexpr access_mode read_only = access_mode::read;
inline constexpr access_mode write_only = access_mode::write;
inline constexpr access_mode read_write = access_mode::read_write;

}  // namespace simsycl

#pragma once

/// \file queue.hpp
/// SYCL-style queue and command-group handler.
///
/// Kernels submitted to a queue execute immediately on the host over the
/// full index space (so their numerical results are real and testable) and
/// are charged to the bound simulated board's virtual timeline. The queue is
/// in-order, matching how SYnergy sets the device frequency in the command
/// group right before each kernel (paper Sec. 4.4).

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "simsycl/buffer.hpp"
#include "simsycl/device.hpp"
#include "simsycl/event.hpp"
#include "simsycl/kernel_info.hpp"
#include "simsycl/platform.hpp"
#include "simsycl/types.hpp"

namespace simsycl {

/// Command-group handler: records exactly one kernel launch per group.
class handler {
 public:
  /// Attach a cost annotation to the launch recorded by this group.
  void set_kernel_info(kernel_info info) {
    info_ = std::move(info);
    has_info_ = true;
  }

  /// Launch `f` over an n-dimensional range. The functor may take
  /// item<Dim>, id<Dim>, or (for 1-D) std::size_t.
  template <int Dim, typename F>
  void parallel_for(range<Dim> r, F&& f) {
    record_launch(r.size(), [r, fn = std::forward<F>(f)]() { run_over(r, fn); });
  }

  /// Launch with an explicit cost annotation (what SYnergy's compiled kernel
  /// registry attaches automatically).
  template <int Dim, typename F>
  void parallel_for(range<Dim> r, kernel_info info, F&& f) {
    set_kernel_info(std::move(info));
    parallel_for(r, std::forward<F>(f));
  }

  /// 1-D convenience: parallel_for(n, f).
  template <typename F>
  void parallel_for(std::size_t n, F&& f) {
    parallel_for(range<1>{n}, std::forward<F>(f));
  }
  template <typename F>
  void parallel_for(std::size_t n, kernel_info info, F&& f) {
    parallel_for(range<1>{n}, std::move(info), std::forward<F>(f));
  }

  /// Single work item (sycl::handler::single_task).
  template <typename F>
  void single_task(F&& f) {
    record_launch(1, [fn = std::forward<F>(f)]() { fn(); });
  }

  /// Reduction launch (sycl::reduction): `f(index, reducer&)` combines one
  /// contribution per item; the result folds into the bound buffer's
  /// element 0 when the launch completes.
  template <int Dim, typename T, typename BinaryOp, typename F>
  void parallel_for(range<Dim> r, reduction_descriptor<T, BinaryOp> red, F&& f) {
    record_launch(r.size(), [r, red, fn = std::forward<F>(f)]() {
      auto acc = red.make_reducer();
      if constexpr (Dim == 1) {
        for (std::size_t i = 0; i < r.get(0); ++i) fn(id<1>{i}, acc);
      } else if constexpr (Dim == 2) {
        for (std::size_t i = 0; i < r.get(0); ++i)
          for (std::size_t j = 0; j < r.get(1); ++j) fn(id<2>{i, j}, acc);
      } else {
        for (std::size_t i = 0; i < r.get(0); ++i)
          for (std::size_t j = 0; j < r.get(1); ++j)
            for (std::size_t k = 0; k < r.get(2); ++k) fn(id<3>{i, j, k}, acc);
      }
      red.finalize(acc);
    });
  }
  template <int Dim, typename T, typename BinaryOp, typename F>
  void parallel_for(range<Dim> r, reduction_descriptor<T, BinaryOp> red, kernel_info info,
                    F&& f) {
    set_kernel_info(std::move(info));
    parallel_for(r, std::move(red), std::forward<F>(f));
  }

  /// Hierarchical parallelism (sycl::handler::parallel_for_work_group):
  /// `f` runs once per group with a group<Dim>; work-item phases launched
  /// via group::parallel_for_work_item carry implicit barriers, so tiled
  /// kernels with group-scope local memory execute correctly.
  template <int Dim, typename F>
  void parallel_for_work_group(range<Dim> group_range, range<Dim> local_range, F&& f) {
    const std::size_t items = group_range.size() * local_range.size();
    record_launch(items, [group_range, local_range, fn = std::forward<F>(f)]() {
      if constexpr (Dim == 1) {
        for (std::size_t i = 0; i < group_range.get(0); ++i)
          fn(group<1>{id<1>{i}, group_range, local_range});
      } else if constexpr (Dim == 2) {
        for (std::size_t i = 0; i < group_range.get(0); ++i)
          for (std::size_t j = 0; j < group_range.get(1); ++j)
            fn(group<2>{id<2>{i, j}, group_range, local_range});
      } else {
        for (std::size_t i = 0; i < group_range.get(0); ++i)
          for (std::size_t j = 0; j < group_range.get(1); ++j)
            for (std::size_t k = 0; k < group_range.get(2); ++k)
              fn(group<3>{id<3>{i, j, k}, group_range, local_range});
      }
    });
  }
  template <int Dim, typename F>
  void parallel_for_work_group(range<Dim> group_range, range<Dim> local_range,
                               kernel_info info, F&& f) {
    set_kernel_info(std::move(info));
    parallel_for_work_group(group_range, local_range, std::forward<F>(f));
  }

  /// Whether this group recorded a kernel launch.
  [[nodiscard]] bool has_launch() const { return has_launch_; }
  /// Whether an explicit cost annotation was attached.
  [[nodiscard]] bool has_info() const { return has_info_; }
  /// The launch's cost annotation (generic default if none was attached).
  [[nodiscard]] const kernel_info& info() const { return info_; }
  /// Work items of the recorded launch.
  [[nodiscard]] std::size_t launch_items() const { return items_; }

 private:
  template <int Dim, typename F>
  static void run_over(range<Dim> r, const F& f) {
    if constexpr (Dim == 1) {
      for (std::size_t i = 0; i < r.get(0); ++i) invoke_item(f, id<1>{i}, r);
    } else if constexpr (Dim == 2) {
      for (std::size_t i = 0; i < r.get(0); ++i)
        for (std::size_t j = 0; j < r.get(1); ++j) invoke_item(f, id<2>{i, j}, r);
    } else {
      for (std::size_t i = 0; i < r.get(0); ++i)
        for (std::size_t j = 0; j < r.get(1); ++j)
          for (std::size_t k = 0; k < r.get(2); ++k) invoke_item(f, id<3>{i, j, k}, r);
    }
  }

  template <typename F, int Dim>
  static void invoke_item(const F& f, id<Dim> idx, range<Dim> r) {
    if constexpr (std::is_invocable_v<const F&, item<Dim>>) {
      f(item<Dim>{idx, r});
    } else if constexpr (std::is_invocable_v<const F&, id<Dim>>) {
      f(idx);
    } else if constexpr (Dim == 1 && std::is_invocable_v<const F&, std::size_t>) {
      f(idx.get(0));
    } else {
      static_assert(std::is_invocable_v<const F&, item<Dim>>,
                    "kernel functor must accept item<Dim>, id<Dim>, or size_t");
    }
  }

  void record_launch(std::size_t items, std::function<void()> run);

  friend class queue;
  std::function<void()> run_;
  std::size_t items_{0};
  kernel_info info_{kernel_info::generic()};
  bool has_info_{false};
  bool has_launch_{false};
};

/// In-order queue bound to one simulated device.
class queue {
 public:
  /// Default queue on the process-default platform's first device.
  queue() : device_(platform::default_platform().get_device(0)) {}
  explicit queue(gpu_selector_tag) : queue() {}
  explicit queue(device d) : device_(std::move(d)) {}

  /// Submit a command group; returns the event of its kernel launch.
  template <typename CGF>
  event submit(CGF&& cgf) {
    handler h;
    std::forward<CGF>(cgf)(h);
    return finalize(h);
  }

  /// Shortcut: queue::parallel_for (SYCL 2020).
  template <int Dim, typename F>
  event parallel_for(range<Dim> r, F&& f) {
    return submit([&](handler& h) { h.parallel_for(r, std::forward<F>(f)); });
  }
  template <int Dim, typename F>
  event parallel_for(range<Dim> r, kernel_info info, F&& f) {
    return submit(
        [&](handler& h) { h.parallel_for(r, std::move(info), std::forward<F>(f)); });
  }

  /// Block until all submitted work completes (eager execution: no-op).
  void wait() const {}
  void wait_and_throw() const {}

  // --- USM (SYCL 2020 unified shared memory, device allocations) -----------
  // There is no separate device memory in the simulation, so USM pointers
  // are host allocations tracked per queue; data-movement cost is part of
  // the kernels' modelled memory traffic, as with buffers.

  /// sycl::malloc_device analogue; freed by free() or queue destruction.
  template <typename T>
  [[nodiscard]] T* malloc_device(std::size_t count) {
    auto storage = std::make_shared<std::vector<std::byte>>(count * sizeof(T));
    usm_allocations_.push_back(storage);
    return reinterpret_cast<T*>(storage->data());
  }

  /// sycl::free analogue. Unknown pointers throw.
  void free(void* ptr) {
    for (auto it = usm_allocations_.begin(); it != usm_allocations_.end(); ++it) {
      if ((*it)->data() == static_cast<std::byte*>(ptr)) {
        usm_allocations_.erase(it);
        return;
      }
    }
    throw std::invalid_argument("free of pointer not allocated by this queue");
  }

  /// queue::memcpy analogue: submits a copy "kernel" whose cost is pure
  /// memory traffic (one read + one write per byte at DRAM bandwidth).
  event memcpy(void* dest, const void* src, std::size_t bytes) {
    return submit([&](handler& h) {
      kernel_info info;
      info.name = "usm_memcpy";
      info.features.gl_access = 2;
      info.bytes_per_access = 1.0;
      info.coalescing_efficiency = 0.95;
      info.work_multiplier = static_cast<double>(std::max<std::size_t>(1, bytes));
      // One real work item performs the whole copy; the virtual cost is
      // scaled to `bytes` items via the multiplier.
      h.parallel_for(range<1>{1}, info, [=](id<1>) {
        std::copy_n(static_cast<const std::byte*>(src), bytes,
                    static_cast<std::byte*>(dest));
      });
    });
  }

  /// Number of live USM allocations (diagnostics/tests).
  [[nodiscard]] std::size_t usm_allocation_count() const { return usm_allocations_.size(); }

  [[nodiscard]] device get_device() const { return device_; }

  /// Number of kernels this queue has launched.
  [[nodiscard]] std::size_t kernels_submitted() const { return submitted_; }

 protected:
  /// Execute the recorded launch and charge the device. Exposed to the
  /// SYnergy queue wrapper, which sets clocks between recording and launch.
  event finalize(handler& h);

 private:
  device device_;
  std::size_t submitted_{0};
  std::vector<std::shared_ptr<std::vector<std::byte>>> usm_allocations_;
};

}  // namespace simsycl

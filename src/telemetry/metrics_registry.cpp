#include "synergy/telemetry/metrics_registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "synergy/common/table.hpp"

namespace synergy::telemetry {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

std::size_t counter::stripe_index() noexcept {
  // One stripe per thread, assigned round-robin on first use; threads beyond
  // n_stripes share, which only costs contention, never correctness.
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % n_stripes;
  return idx;
}

histogram::histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty())
    for (double b = 1e-6; b <= 1e3; b *= 10.0) bounds_.push_back(b);
  std::sort(bounds_.begin(), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo && !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi && !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

double histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double histogram::mean() const noexcept {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& buckets, double min_observed,
                          double max_observed, double p) noexcept {
  if (buckets.size() != bounds.size() + 1) return 0.0;
  std::uint64_t total = 0;
  for (const auto b : buckets) total += b;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (cum + in_bucket < rank || in_bucket == 0.0) {
      cum += in_bucket;
      continue;
    }
    if (i == bounds.size()) return max_observed;  // +inf bucket: no upper edge
    const double hi = bounds[i];
    const double lo = i == 0 ? std::min(min_observed, bounds[0]) : bounds[i - 1];
    const double frac = (rank - cum) / in_bucket;
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_observed;
}

double histogram::quantile(double p) const noexcept {
  std::vector<std::uint64_t> buckets;
  buckets.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets.push_back(bucket_count(i));
  return histogram_quantile(bounds_, buckets, min(), max(), p);
}

bool histogram::restore(std::uint64_t count, double sum, double min_v, double max_v,
                        const std::vector<std::uint64_t>& buckets) noexcept {
  if (buckets.size() != bounds_.size() + 1) return false;
  reset();
  if (count == 0) return true;
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(buckets[i], std::memory_order_relaxed);
  count_.store(count, std::memory_order_relaxed);
  sum_.store(sum, std::memory_order_relaxed);
  min_.store(min_v, std::memory_order_relaxed);
  max_.store(max_v, std::memory_order_relaxed);
  return true;
}

void histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

metrics_registry& metrics_registry::instance() {
  static metrics_registry global;
  return global;
}

counter& metrics_registry::get_counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string{name}, std::make_unique<counter>()).first;
  return *it->second;
}

gauge& metrics_registry::get_gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string{name}, std::make_unique<gauge>()).first;
  return *it->second;
}

histogram& metrics_registry::get_histogram(std::string_view name, std::vector<double> bounds) {
  std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string{name}, std::make_unique<histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

std::vector<metric_snapshot> metrics_registry::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<metric_snapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    metric_snapshot s;
    s.name = name;
    s.type = metric_snapshot::kind::counter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    metric_snapshot s;
    s.name = name;
    s.type = metric_snapshot::kind::gauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    metric_snapshot s;
    s.name = name;
    s.type = metric_snapshot::kind::histogram;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.mean = h->mean();
    s.bounds = h->bounds();
    s.buckets.reserve(s.bounds.size() + 1);
    for (std::size_t i = 0; i <= s.bounds.size(); ++i) s.buckets.push_back(h->bucket_count(i));
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

void metrics_registry::reset_values() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

bool metrics_registry::restore(const std::vector<metric_snapshot>& snaps) {
  reset_values();
  bool ok = true;
  for (const auto& s : snaps) {
    switch (s.type) {
      case metric_snapshot::kind::counter:
        get_counter(s.name).restore(static_cast<std::uint64_t>(s.value));
        break;
      case metric_snapshot::kind::gauge:
        get_gauge(s.name).set(s.value);
        break;
      case metric_snapshot::kind::histogram:
        if (!get_histogram(s.name, s.bounds).restore(s.count, s.sum, s.min, s.max, s.buckets))
          ok = false;
        break;
    }
  }
  return ok;
}

void metrics_registry::summary_table(std::ostream& os) const {
  common::text_table table;
  table.header({"metric", "kind", "value", "count", "mean", "min", "max"});
  for (const auto& s : snapshot()) {
    switch (s.type) {
      case metric_snapshot::kind::counter:
        table.row({s.name, "counter", common::text_table::fmt(s.value, 0), "-", "-", "-", "-"});
        break;
      case metric_snapshot::kind::gauge:
        table.row({s.name, "gauge", common::text_table::fmt(s.value, 4), "-", "-", "-", "-"});
        break;
      case metric_snapshot::kind::histogram:
        table.row({s.name, "histogram", common::text_table::fmt(s.sum, 4),
                   std::to_string(s.count), common::text_table::fmt(s.mean, 6),
                   common::text_table::fmt(s.min, 6), common::text_table::fmt(s.max, 6)});
        break;
    }
  }
  table.print(os);
}

}  // namespace synergy::telemetry

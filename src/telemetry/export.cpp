#include "synergy/telemetry/export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <string_view>

namespace synergy::telemetry {

namespace {

/// Shortest round-trippable formatting that is still valid JSON (no bare
/// NaN/Inf, which the trace-event spec does not allow).
std::string json_number(double v) {
  if (!(v == v)) return "0";                       // NaN
  if (v > 1.7e308 || v < -1.7e308) return "0";     // +-Inf
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

void write_args(std::ostream& os, const trace_event& e) {
  os << "\"args\":{";
  bool first = true;
  for (std::uint8_t i = 0; i < e.n_args; ++i) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(e.args[i].key) << "\":" << json_number(e.args[i].value);
  }
  if (e.str_key != nullptr) {
    if (!first) os << ',';
    os << '"' << json_escape(e.str_key) << "\":\"" << json_escape(e.str_value) << '"';
  }
  os << '}';
}

void write_metadata(std::ostream& os, std::uint32_t pid, const char* name) {
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
}

/// RFC-4180 quoting for the free-form CSV columns: inner quotes are
/// doubled, so names containing `"`, `,` or newlines survive a round trip
/// through any conforming CSV parser.
std::string csv_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const std::vector<trace_event>& events) {
  os << "{\"traceEvents\":[\n";
  write_metadata(os, trace_event::host_pid, "synergy host");
  os << ",\n";
  write_metadata(os, trace_event::device_pid, "gpusim device (virtual time)");
  os << ",\n";
  write_metadata(os, trace_event::cluster_pid, "cluster (virtual time)");
  for (const auto& e : events) {
    os << ",\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"" << to_string(e.cat)
       << "\",\"ph\":\"" << e.phase << "\",\"ts\":" << json_number(e.ts_us);
    if (e.phase == 'X') os << ",\"dur\":" << json_number(e.dur_us);
    if (e.phase == 'i') os << ",\"s\":\"t\"";  // instant scope: thread
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ',';
    write_args(os, e);
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_csv(std::ostream& os, const std::vector<trace_event>& events) {
  os << "ts_us,dur_us,pid,tid,category,phase,name,args\n";
  for (const auto& e : events) {
    os << json_number(e.ts_us) << ',' << json_number(e.dur_us) << ',' << e.pid << ','
       << e.tid << ',' << to_string(e.cat) << ',' << e.phase << ',';
    // CSV-quote the free-form columns; args are key=value joined with ';'.
    // Quoting must double inner quotes, or a span name like `foo "bar"`
    // silently corrupts every column after it for CSV consumers.
    os << csv_quote(e.name) << ',';
    std::string args;
    for (std::uint8_t i = 0; i < e.n_args; ++i) {
      if (i) args += ';';
      args += e.args[i].key;
      args += '=';
      args += json_number(e.args[i].value);
    }
    if (e.str_key != nullptr) {
      if (e.n_args) args += ';';
      args += e.str_key;
      args += '=';
      args += e.str_value;
    }
    os << csv_quote(args) << '\n';
  }
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, trace_recorder::instance().snapshot());
  return static_cast<bool>(out);
}

bool write_csv_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out, trace_recorder::instance().snapshot());
  return static_cast<bool>(out);
}

}  // namespace synergy::telemetry

#include "synergy/telemetry/telemetry.hpp"

#include "synergy/common/log.hpp"

namespace synergy::telemetry {

#if SYNERGY_TELEMETRY_ENABLED
namespace {
bool g_tap_installed = false;
common::logger::tap_fn g_previous_tap;
}  // namespace
#endif

bool install_log_tap() {
#if SYNERGY_TELEMETRY_ENABLED
  if (g_tap_installed) return false;
  g_tap_installed = true;
  g_previous_tap = common::logger::instance().set_tap(
      [](common::log_level level, const std::string& message,
         const common::log_fields& fields) {
        if (!enabled()) return;
        trace_event e;
        e.name = message;
        e.cat = category::log;
        e.phase = 'i';
        e.ts_us = trace_recorder::now_us();
        e.str_key = "level";
        // Structured fields ride along in the string arg so the exported
        // trace preserves them without risking dangling key pointers.
        e.str_value = common::to_string(level);
        if (!fields.empty()) e.str_value += common::format_fields(fields);
        trace_recorder::instance().record(std::move(e));
      });
  return true;
#else
  return false;
#endif
}

void remove_log_tap() {
#if SYNERGY_TELEMETRY_ENABLED
  if (!g_tap_installed) return;
  common::logger::instance().set_tap(std::move(g_previous_tap));
  g_previous_tap = nullptr;
  g_tap_installed = false;
#endif
}

}  // namespace synergy::telemetry

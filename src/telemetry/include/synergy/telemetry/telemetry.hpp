#pragma once

/// \file telemetry.hpp
/// Umbrella header and instrumentation macros for the SYnergy telemetry
/// plane.
///
/// The paper's central argument (Sec. 2.2, 4.2) is that *fine-grained,
/// per-kernel* visibility into energy and frequency decisions is what makes
/// scalable savings possible. This subsystem is that visibility for the
/// reproduction itself: a process-wide metrics registry (counters, gauges,
/// fixed-bucket histograms) plus a ring-buffered structured trace recorder
/// with Chrome trace-event JSON and CSV exporters.
///
/// Instrumentation sites use the SYNERGY_* macros below, never the classes
/// directly, so that the whole plane can be compiled out to literally zero
/// code with -DSYNERGY_TELEMETRY=OFF (the CMake option sets
/// SYNERGY_TELEMETRY_ENABLED=0 on the telemetry target and every consumer).
/// With telemetry compiled in, a process-wide runtime kill switch
/// (set_enabled) reduces every site to one relaxed atomic load, which is
/// what bench/microbench_perf.cpp compares against to price the overhead.

#include "synergy/telemetry/metrics_registry.hpp"
#include "synergy/telemetry/trace.hpp"

#if !defined(SYNERGY_TELEMETRY_ENABLED)
#define SYNERGY_TELEMETRY_ENABLED 1
#endif

namespace synergy::telemetry {

/// Do-nothing stand-in for scoped_span so that compiled-out SYNERGY_SPAN_VAR
/// call sites (which attach args to the named span) still compile.
struct null_span {
  void arg(const char*, double) noexcept {}
  void str(const char*, std::string_view) noexcept {}
};

/// Install a logger tap that mirrors every accepted log record into the
/// trace ring as an instant event (category::log), so exported traces
/// interleave log lines with spans. Returns false when telemetry is
/// compiled out or the tap was already installed.
bool install_log_tap();
void remove_log_tap();

}  // namespace synergy::telemetry

#define SYNERGY_TELEMETRY_CAT2(a, b) a##b
#define SYNERGY_TELEMETRY_CAT(a, b) SYNERGY_TELEMETRY_CAT2(a, b)

#if SYNERGY_TELEMETRY_ENABLED

/// Evaluates to its arguments only when telemetry is compiled in; use for
/// locals that exist solely to feed instrumentation.
#define SYNERGY_TELEMETRY_ONLY(...) __VA_ARGS__

/// Anonymous RAII span covering the rest of the scope.
#define SYNERGY_SPAN(cat, name) \
  ::synergy::telemetry::scoped_span SYNERGY_TELEMETRY_CAT(syn_span_, __LINE__)(cat, name)

/// Named RAII span the site can attach args to: var.arg("k", v), var.str(...).
#define SYNERGY_SPAN_VAR(var, cat, name) ::synergy::telemetry::scoped_span var(cat, name)

/// Zero-duration event; optional trailing {key, value} numeric args.
#define SYNERGY_INSTANT(cat, name, ...)                             \
  do {                                                              \
    if (::synergy::telemetry::enabled())                            \
      ::synergy::telemetry::trace_recorder::instance().instant(     \
          (cat), (name), {__VA_ARGS__});                            \
  } while (0)

/// Bump a named counter. The registry lookup happens once per call site
/// (static handle), so the name must be constant at each site; the hot
/// path is one striped atomic add.
#define SYNERGY_COUNTER_ADD(name, delta)                                        \
  do {                                                                          \
    if (::synergy::telemetry::enabled()) {                                      \
      static auto& syn_ctr =                                                    \
          ::synergy::telemetry::metrics_registry::instance().get_counter(name); \
      syn_ctr.add(delta);                                                       \
    }                                                                           \
  } while (0)

/// Set a named gauge to an absolute value.
#define SYNERGY_GAUGE_SET(name, value)                                        \
  do {                                                                        \
    if (::synergy::telemetry::enabled()) {                                    \
      static auto& syn_g =                                                    \
          ::synergy::telemetry::metrics_registry::instance().get_gauge(name); \
      syn_g.set(value);                                                       \
    }                                                                         \
  } while (0)

/// Accumulate into a named gauge (e.g. joules of energy attributed so far).
#define SYNERGY_GAUGE_ADD(name, delta)                                        \
  do {                                                                        \
    if (::synergy::telemetry::enabled()) {                                    \
      static auto& syn_g =                                                    \
          ::synergy::telemetry::metrics_registry::instance().get_gauge(name); \
      syn_g.add(delta);                                                       \
    }                                                                         \
  } while (0)

/// Observe a sample in a named histogram; trailing args are the fixed
/// bucket upper bounds (used on first observation, default buckets if
/// omitted).
#define SYNERGY_HISTOGRAM_OBSERVE(name, value, ...)                     \
  do {                                                                  \
    if (::synergy::telemetry::enabled()) {                              \
      static auto& syn_h =                                              \
          ::synergy::telemetry::metrics_registry::instance().get_histogram( \
              name, {__VA_ARGS__});                                     \
      syn_h.observe(value);                                             \
    }                                                                   \
  } while (0)

#else  // SYNERGY_TELEMETRY_ENABLED == 0: every site compiles to nothing.

#define SYNERGY_TELEMETRY_ONLY(...)
#define SYNERGY_SPAN(cat, name) ((void)0)
#define SYNERGY_SPAN_VAR(var, cat, name) \
  [[maybe_unused]] ::synergy::telemetry::null_span var
#define SYNERGY_INSTANT(cat, name, ...) ((void)0)
#define SYNERGY_COUNTER_ADD(name, delta) ((void)0)
#define SYNERGY_GAUGE_SET(name, value) ((void)0)
#define SYNERGY_GAUGE_ADD(name, delta) ((void)0)
#define SYNERGY_HISTOGRAM_OBSERVE(name, value, ...) ((void)0)

#endif  // SYNERGY_TELEMETRY_ENABLED

#pragma once

/// \file trace.hpp
/// Ring-buffered structured trace recorder.
///
/// Events carry a category (the observability dimensions the paper's
/// argument needs: per-kernel execution, frequency changes, power samples,
/// planning decisions, scheduler decisions), a phase in the Chrome
/// trace-event sense ('X' complete span, 'i' instant), a timestamp/duration
/// in microseconds, and up to four numeric {key, value} args plus one
/// string arg. Keys are expected to be string literals (they are stored as
/// const char* and never freed).
///
/// Two timelines coexist, distinguished by pid, exactly as a real profile
/// of this system would show host threads next to the device:
///   pid 1 — host wall clock (steady_clock, zeroed at recorder creation);
///   pid 2 — the simulated device timeline (gpusim virtual seconds).
/// Chrome's trace viewer renders them as two process lanes.
///
/// The buffer is a bounded ring: recording never allocates beyond the fixed
/// capacity and never blocks progress for longer than one mutex-protected
/// slot write; once full, the oldest events are overwritten and counted in
/// dropped(). Capacity defaults to 65536 events and can be set via the
/// SYNERGY_TRACE_CAPACITY environment variable or set_capacity().

#include <array>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace synergy::telemetry {

enum class category : std::uint8_t {
  kernel,        ///< kernel submission/execution
  freq_change,   ///< frequency-change attempts and outcomes
  power_sample,  ///< power-sensor reads
  plan,          ///< energy-target → frequency resolution
  sched,         ///< cluster controller / plugin decisions
  train,         ///< model training and inference
  log,           ///< mirrored log records (install_log_tap)
  alert,         ///< SLO watchdog rule violations (obs::slo_watchdog)
  other,
};

[[nodiscard]] const char* to_string(category c) noexcept;

/// Numeric key/value attached to an event; `key` must outlive the recorder
/// (pass string literals).
struct trace_arg {
  const char* key{nullptr};
  double value{0.0};
};

struct trace_event {
  static constexpr std::size_t max_args = 4;
  static constexpr std::uint32_t host_pid = 1;
  static constexpr std::uint32_t device_pid = 2;
  /// Cluster-simulation timeline (synergy::cluster virtual seconds): job
  /// lifetimes and power-budget decisions render as a third process lane.
  static constexpr std::uint32_t cluster_pid = 3;

  std::string name;
  category cat{category::other};
  char phase{'X'};  ///< 'X' complete (has dur), 'i' instant
  double ts_us{0.0};
  double dur_us{0.0};
  std::uint32_t pid{host_pid};
  std::uint32_t tid{0};
  std::array<trace_arg, max_args> args{};
  std::uint8_t n_args{0};
  const char* str_key{nullptr};  ///< optional string arg (literal key)
  std::string str_value;

  void add_arg(const char* key, double value) noexcept {
    if (n_args < max_args) args[n_args++] = {key, value};
  }
};

class trace_recorder {
 public:
  /// Process-global recorder used by the SYNERGY_* macros.
  static trace_recorder& instance();

  explicit trace_recorder(std::size_t capacity = default_capacity());
  trace_recorder(const trace_recorder&) = delete;
  trace_recorder& operator=(const trace_recorder&) = delete;

  /// Microseconds of host wall clock since the global recorder's epoch.
  [[nodiscard]] static double now_us() noexcept;

  /// Append one event (fills ts for instants with ts_us < 0).
  void record(trace_event e);

  /// Zero-duration host-timeline event at the current wall clock.
  void instant(category cat, std::string_view name,
               std::initializer_list<trace_arg> args = {});

  /// Complete event with caller-provided timestamps — used by the simulated
  /// device timeline (pid 2), where time is gpusim virtual seconds.
  void complete(category cat, std::string_view name, double ts_us, double dur_us,
                std::uint32_t pid, std::initializer_list<trace_arg> args = {});

  /// Oldest-to-newest copy of the buffered events.
  [[nodiscard]] std::vector<trace_event> snapshot() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::size_t dropped() const;

  /// Replace the buffer with an empty one of `capacity` slots.
  void set_capacity(std::size_t capacity);
  void clear();

  /// Stable small id of the calling thread (1-based, assigned on first use).
  [[nodiscard]] static std::uint32_t thread_id() noexcept;

 private:
  static std::size_t default_capacity() noexcept;

  mutable std::mutex mutex_;
  std::vector<trace_event> ring_;
  std::size_t head_{0};   ///< next slot to write
  std::size_t count_{0};  ///< live events (<= ring_.size())
  std::size_t dropped_{0};
};

/// RAII span: times a scope on the host timeline and records one complete
/// event at destruction. Construction is a no-op when telemetry is
/// runtime-disabled.
class scoped_span {
 public:
  scoped_span(category cat, std::string_view name);
  ~scoped_span();
  scoped_span(const scoped_span&) = delete;
  scoped_span& operator=(const scoped_span&) = delete;

  /// Attach a numeric arg (no-op on inactive spans).
  void arg(const char* key, double value) noexcept {
    if (active_) ev_.add_arg(key, value);
  }
  /// Attach the string arg (no-op on inactive spans).
  void str(const char* key, std::string_view value) {
    if (active_) {
      ev_.str_key = key;
      ev_.str_value = value;
    }
  }

 private:
  bool active_{false};
  trace_event ev_;
};

}  // namespace synergy::telemetry

#pragma once

/// \file export.hpp
/// Trace and metrics exporters.
///
/// The Chrome exporter emits the trace-event JSON object format
/// ({"traceEvents": [...]}) understood by chrome://tracing and Perfetto:
/// one 'X' (complete) or 'i' (instant) event per recorded trace_event, with
/// the category as "cat", numeric and string args under "args", plus
/// process_name metadata events labelling the host and simulated-device
/// timelines. The CSV exporter writes the same events flat, one row each,
/// for spreadsheet-style analysis.

#include <iosfwd>
#include <string>
#include <vector>

#include "synergy/telemetry/trace.hpp"

namespace synergy::telemetry {

/// JSON-escape `s` (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Write `events` as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& os, const std::vector<trace_event>& events);

/// Write `events` as CSV: ts_us,dur_us,pid,tid,category,phase,name,args.
void write_csv(std::ostream& os, const std::vector<trace_event>& events);

/// Snapshot the global recorder and write it to `path` as Chrome JSON.
/// Returns false if the file could not be opened.
bool write_chrome_trace_file(const std::string& path);

/// Snapshot the global recorder and write it to `path` as CSV.
bool write_csv_file(const std::string& path);

}  // namespace synergy::telemetry

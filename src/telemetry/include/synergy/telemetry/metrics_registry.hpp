#pragma once

/// \file metrics_registry.hpp
/// Process-wide registry of named counters, gauges, and fixed-bucket
/// histograms.
///
/// Hot-path cost model: instrumentation sites cache a reference to their
/// instrument (the SYNERGY_COUNTER_ADD macro does this with a static local),
/// so the per-event cost is one relaxed atomic op. Counters stripe their
/// atomics across cache lines so concurrent submission threads do not
/// contend on one word; gauges and histograms use single atomics (their
/// sites are not per-kernel-hot). Registration is mutex-guarded and returns
/// stable references: instruments are never removed, only reset.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace synergy::telemetry {

/// Process-wide runtime kill switch (independent of the compile-time gate):
/// every macro site checks this with one relaxed load before doing work.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonically increasing event count, striped to avoid false sharing
/// between submission threads.
class counter {
 public:
  static constexpr std::size_t n_stripes = 16;

  void add(std::uint64_t delta = 1) noexcept {
    stripes_[stripe_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

  /// Overwrite the total with `v` (checkpoint restore): stripe 0 carries the
  /// whole value, the rest are zeroed. value() is a stripe sum, so the
  /// observable total is exact.
  void restore(std::uint64_t v) noexcept {
    reset();
    stripes_[0].v.store(v, std::memory_order_relaxed);
  }

 private:
  static std::size_t stripe_index() noexcept;
  struct alignas(64) stripe {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<stripe, n_stripes> stripes_{};
};

/// Last-writer-wins scalar (also supports accumulate for running totals
/// such as joules attributed to a queue).
class gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }

  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration and
/// never change, so observation is a linear scan over a handful of doubles
/// plus one atomic increment (bucket counts), one CAS (sum), and two
/// bounded CAS loops (min/max).
class histogram {
 public:
  /// `bounds` are inclusive upper bounds; an implicit +inf bucket is added.
  /// An empty list gets a decade-spaced default covering 1e-6 .. 1e3.
  explicit histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Estimated p-quantile (p in [0,1]) by linear interpolation within the
  /// bucket holding the target rank — see histogram_quantile() for the edge
  /// conventions. 0 on an empty histogram.
  [[nodiscard]] double quantile(double p) const noexcept;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the +inf overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }

  void reset() noexcept;

  /// Overwrite every accumulator (checkpoint restore). `buckets` must have
  /// bounds().size() + 1 entries; returns false (histogram untouched)
  /// otherwise. A count of 0 restores the pristine state regardless of the
  /// min/max passed (snapshots render empty min/max as 0).
  bool restore(std::uint64_t count, double sum, double min_v, double max_v,
               const std::vector<std::uint64_t>& buckets) noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Quantile estimate over fixed buckets: find the bucket holding rank
/// p * count, then interpolate linearly inside it. Edge conventions:
///  - empty histogram (count 0): 0;
///  - first bucket's lower edge is min(min_observed, bounds[0]) so a
///    single-bucket histogram interpolates over the observed range;
///  - ranks landing in the +inf overflow bucket return max_observed (there
///    is no upper edge to interpolate toward).
/// `buckets` must have bounds.size() + 1 entries (the snapshot layout).
[[nodiscard]] double histogram_quantile(const std::vector<double>& bounds,
                                        const std::vector<std::uint64_t>& buckets,
                                        double min_observed, double max_observed,
                                        double p) noexcept;

/// Point-in-time view of one instrument, for reporting/export.
struct metric_snapshot {
  enum class kind { counter, gauge, histogram };
  std::string name;
  kind type{kind::counter};
  double value{0.0};          ///< counter total or gauge value
  std::uint64_t count{0};     ///< histogram observations
  double sum{0.0}, min{0.0}, max{0.0}, mean{0.0};
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
};

class metrics_registry {
 public:
  /// Process-global registry used by the SYNERGY_* macros.
  static metrics_registry& instance();

  metrics_registry() = default;
  metrics_registry(const metrics_registry&) = delete;
  metrics_registry& operator=(const metrics_registry&) = delete;

  /// Get-or-create; returned references stay valid for the registry's
  /// lifetime (instruments are never erased).
  counter& get_counter(std::string_view name);
  gauge& get_gauge(std::string_view name);
  /// `bounds` applies on first registration only; later callers share the
  /// existing instrument regardless of the bounds they pass.
  histogram& get_histogram(std::string_view name, std::vector<double> bounds = {});

  /// All instruments, sorted by name.
  [[nodiscard]] std::vector<metric_snapshot> snapshot() const;

  /// Zero every instrument's value (handles stay valid) — test isolation.
  void reset_values();

  /// Restore instrument values from a snapshot() taken earlier (checkpoint
  /// resume): every existing instrument is reset, snapshot instruments are
  /// get-or-created (histograms with the snapshot's bounds) and overwritten.
  /// Returns false when any histogram entry is shaped inconsistently with
  /// the instrument registered under that name; consistent entries are
  /// still applied.
  bool restore(const std::vector<metric_snapshot>& snaps);

  /// Render a "metric | value | ..." summary table of the current snapshot.
  void summary_table(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<histogram>, std::less<>> histograms_;
};

}  // namespace synergy::telemetry

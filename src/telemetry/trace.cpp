#include "synergy/telemetry/trace.hpp"

#include <chrono>
#include <cstdlib>

#include "synergy/telemetry/metrics_registry.hpp"

namespace synergy::telemetry {

namespace {

using steady = std::chrono::steady_clock;

steady::time_point process_epoch() noexcept {
  static const steady::time_point epoch = steady::now();
  return epoch;
}

}  // namespace

const char* to_string(category c) noexcept {
  switch (c) {
    case category::kernel: return "kernel";
    case category::freq_change: return "freq_change";
    case category::power_sample: return "power_sample";
    case category::plan: return "plan";
    case category::sched: return "sched";
    case category::train: return "train";
    case category::log: return "log";
    case category::alert: return "alert";
    case category::other: return "other";
  }
  return "?";
}

std::size_t trace_recorder::default_capacity() noexcept {
  if (const char* env = std::getenv("SYNERGY_TRACE_CAPACITY")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1 << 16;
}

trace_recorder& trace_recorder::instance() {
  static trace_recorder global;
  return global;
}

trace_recorder::trace_recorder(std::size_t capacity) {
  process_epoch();  // anchor the wall clock at first recorder construction
  ring_.resize(capacity == 0 ? 1 : capacity);
}

double trace_recorder::now_us() noexcept {
  return std::chrono::duration<double, std::micro>(steady::now() - process_epoch()).count();
}

std::uint32_t trace_recorder::thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  static thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void trace_recorder::record(trace_event e) {
  if (e.tid == 0) e.tid = thread_id();
  std::scoped_lock lock(mutex_);
  if (count_ == ring_.size()) ++dropped_;  // overwriting the oldest slot
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

void trace_recorder::instant(category cat, std::string_view name,
                             std::initializer_list<trace_arg> args) {
  trace_event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.ts_us = now_us();
  for (const auto& a : args) e.add_arg(a.key, a.value);
  record(std::move(e));
}

void trace_recorder::complete(category cat, std::string_view name, double ts_us, double dur_us,
                              std::uint32_t pid, std::initializer_list<trace_arg> args) {
  trace_event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  for (const auto& a : args) e.add_arg(a.key, a.value);
  record(std::move(e));
}

std::vector<trace_event> trace_recorder::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<trace_event> out;
  out.reserve(count_);
  const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i) out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::size_t trace_recorder::size() const {
  std::scoped_lock lock(mutex_);
  return count_;
}

std::size_t trace_recorder::capacity() const {
  std::scoped_lock lock(mutex_);
  return ring_.size();
}

std::size_t trace_recorder::dropped() const {
  std::scoped_lock lock(mutex_);
  return dropped_;
}

void trace_recorder::set_capacity(std::size_t capacity) {
  std::scoped_lock lock(mutex_);
  ring_.assign(capacity == 0 ? 1 : capacity, trace_event{});
  head_ = count_ = dropped_ = 0;
}

void trace_recorder::clear() {
  std::scoped_lock lock(mutex_);
  for (auto& e : ring_) e = trace_event{};
  head_ = count_ = dropped_ = 0;
}

scoped_span::scoped_span(category cat, std::string_view name) {
  if (!enabled()) return;
  active_ = true;
  ev_.name = name;
  ev_.cat = cat;
  ev_.phase = 'X';
  ev_.ts_us = trace_recorder::now_us();
}

scoped_span::~scoped_span() {
  if (!active_) return;
  ev_.dur_us = trace_recorder::now_us() - ev_.ts_us;
  trace_recorder::instance().record(std::move(ev_));
}

}  // namespace synergy::telemetry

#include "synergy/tuning_table.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace synergy {

using common::frequency_config;
using common::megahertz;

std::optional<frequency_config> tuning_table::find(const std::string& kernel,
                                                   const metrics::target& target) const {
  const auto it = entries_.find({kernel, target.to_string()});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void tuning_table::put(const std::string& kernel, const metrics::target& target,
                       frequency_config config) {
  entries_[{kernel, target.to_string()}] = config;
}

std::vector<std::string> tuning_table::kernels() const {
  std::set<std::string> names;
  for (const auto& [entry_key, config] : entries_) names.insert(entry_key.first);
  return {names.begin(), names.end()};
}

std::string tuning_table::serialize() const {
  std::ostringstream oss;
  oss << "synergy_tuning v1\n";
  oss << "device " << (device_key_.empty() ? "-" : device_key_) << '\n';
  for (const auto& [entry_key, config] : entries_)
    oss << entry_key.first << ' ' << entry_key.second << ' ' << config.memory.value << ' '
        << config.core.value << '\n';
  return oss.str();
}

tuning_table tuning_table::deserialize(const std::string& text) {
  std::istringstream in{text};
  std::string header;
  std::getline(in, header);
  if (header != "synergy_tuning v1")
    throw std::invalid_argument("bad tuning table header: " + header);
  std::string tag, device;
  in >> tag >> device;
  if (tag != "device") throw std::invalid_argument("tuning table missing device line");
  tuning_table table;
  if (device != "-") table.set_device_key(device);
  std::string kernel, target_name;
  double mem = 0.0, core = 0.0;
  while (in >> kernel >> target_name >> mem >> core) {
    table.put(kernel, metrics::target::parse(target_name),
              {megahertz{mem}, megahertz{core}});
  }
  return table;
}

tuning_table compile_tuning_table(const features::kernel_registry& registry,
                                  const std::vector<metrics::target>& targets,
                                  const frequency_planner& planner,
                                  const std::string& device_key) {
  tuning_table table;
  table.set_device_key(device_key);
  for (const auto& name : registry.names()) {
    const auto info = registry.at(name);
    for (const auto& target : targets)
      table.put(name, target, planner.plan(info.features, target));
  }
  return table;
}

tuning_table compile_tuning_table_oracle(const features::kernel_registry& registry,
                                         const std::vector<metrics::target>& targets,
                                         const gpusim::device_spec& spec,
                                         double representative_items) {
  tuning_table table;
  table.set_device_key(spec.name);
  for (const auto& name : registry.names()) {
    auto info = registry.at(name);
    auto profile = info.to_profile(1);
    profile.work_items = representative_items;
    for (const auto& target : targets)
      table.put(name, target, oracle_plan(spec, profile, target));
  }
  return table;
}

}  // namespace synergy

#include "synergy/tuning_table.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "synergy/common/envelope.hpp"

namespace synergy {

using common::frequency_config;
using common::megahertz;

namespace {

constexpr const char* table_kind = "tuning_table";
constexpr unsigned table_payload_version = 1;

/// Parse one whitespace-split token as a positive finite clock value.
/// Requires the whole token to be consumed — "123x" and "nan" both fail —
/// so stream extraction can never leave a half-read line behind.
std::optional<double> parse_clock(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || errno == ERANGE) return std::nullopt;
  if (!std::isfinite(v) || v <= 0.0) return std::nullopt;
  return v;
}

std::string line_prefix(std::size_t line_no) {
  return "line " + std::to_string(line_no) + ": ";
}

}  // namespace

std::optional<frequency_config> tuning_table::find(const std::string& kernel,
                                                   const metrics::target& target) const {
  const auto it = entries_.find({kernel, target.to_string()});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void tuning_table::put(const std::string& kernel, const metrics::target& target,
                       frequency_config config) {
  entries_[{kernel, target.to_string()}] = config;
}

std::vector<std::string> tuning_table::kernels() const {
  std::set<std::string> names;
  for (const auto& [entry_key, config] : entries_) names.insert(entry_key.first);
  return {names.begin(), names.end()};
}

std::string tuning_table::serialize() const {
  std::ostringstream oss;
  oss << "synergy_tuning v1\n";
  oss << "device " << (device_key_.empty() ? "-" : device_key_) << '\n';
  for (const auto& [entry_key, config] : entries_)
    oss << entry_key.first << ' ' << entry_key.second << ' ' << config.memory.value << ' '
        << config.core.value << '\n';
  return oss.str();
}

tuning_table_parse_result tuning_table::parse(const std::string& text) {
  tuning_table_parse_result out;
  std::istringstream in{text};
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line)) {
    out.diagnostics.push_back("line 1: empty input (expected 'synergy_tuning v1')");
    return out;
  }
  ++line_no;
  if (line != "synergy_tuning v1") {
    out.diagnostics.push_back("line 1: bad tuning table header: '" + line + "'");
    return out;
  }

  if (!std::getline(in, line)) {
    out.diagnostics.push_back("line 2: missing device line");
    return out;
  }
  ++line_no;
  {
    std::istringstream dev{line};
    std::string tag, device, extra;
    if (!(dev >> tag >> device) || tag != "device" || (dev >> extra)) {
      out.diagnostics.push_back("line 2: malformed device line: '" + line + "'");
      return out;
    }
    if (device != "-") out.table.set_device_key(device);
  }
  out.header_ok = true;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream ls{line};
    std::string kernel, target_name, mem_tok, core_tok, extra;
    if (!(ls >> kernel >> target_name >> mem_tok >> core_tok)) {
      ++out.skipped;
      out.diagnostics.push_back(line_prefix(line_no) +
                                "entry needs 4 fields (kernel target mem core): '" + line +
                                "'");
      continue;
    }
    if (ls >> extra) {
      ++out.skipped;
      out.diagnostics.push_back(line_prefix(line_no) + "trailing fields after core clock: '" +
                                line + "'");
      continue;
    }
    const auto mem = parse_clock(mem_tok);
    if (!mem) {
      ++out.skipped;
      out.diagnostics.push_back(line_prefix(line_no) + "non-numeric memory clock '" + mem_tok +
                                "'");
      continue;
    }
    const auto core = parse_clock(core_tok);
    if (!core) {
      ++out.skipped;
      out.diagnostics.push_back(line_prefix(line_no) + "non-numeric core clock '" + core_tok +
                                "'");
      continue;
    }
    metrics::target target = metrics::target::min_energy();
    try {
      target = metrics::target::parse(target_name);
    } catch (const std::exception& e) {
      ++out.skipped;
      out.diagnostics.push_back(line_prefix(line_no) + "bad target '" + target_name +
                                "': " + e.what());
      continue;
    }
    if (out.table.find(kernel, target)) {
      ++out.skipped;
      out.diagnostics.push_back(line_prefix(line_no) + "duplicate entry for (" + kernel + ", " +
                                target.to_string() + "), keeping the first");
      continue;
    }
    out.table.put(kernel, target, {megahertz{*mem}, megahertz{*core}});
    ++out.parsed;
  }
  return out;
}

tuning_table tuning_table::deserialize(const std::string& text) {
  auto result = parse(text);
  if (!result.clean()) {
    const std::string why =
        result.diagnostics.empty() ? "malformed tuning table" : result.diagnostics.front();
    throw std::invalid_argument("tuning table: " + why);
  }
  return std::move(result.table);
}

std::string tuning_table_load_result::summary() const {
  std::ostringstream oss;
  for (const auto& d : diagnostics) oss << d << '\n';
  return oss.str();
}

common::status save_tuning_table(const std::filesystem::path& path, const tuning_table& table) {
  const auto sealed =
      common::envelope::seal(table_kind, table_payload_version, table.serialize());
  return common::atomic_write_file(path, sealed);
}

tuning_table_load_result load_tuning_table(const std::filesystem::path& path) {
  tuning_table_load_result out;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    out.diagnostics.push_back("missing tuning table file: " + path.string());
    return out;
  }
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    out.diagnostics.push_back("cannot read tuning table file: " + path.string());
    return out;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  if (in.bad()) {
    out.diagnostics.push_back("read error on tuning table file: " + path.string());
    return out;
  }
  std::string payload = oss.str();

  if (common::envelope::looks_sealed(payload)) {
    auto opened = common::envelope::open(payload, table_kind, table_payload_version);
    if (!opened.ok()) {
      out.diagnostics.push_back(std::string(common::envelope::to_string(opened.error)) + ": " +
                                opened.detail);
      return out;
    }
    out.sealed = true;
    payload = std::move(opened.payload);
  } else {
    out.diagnostics.push_back(
        "unsealed legacy artefact (re-save to add version/checksum protection)");
  }

  auto parsed = tuning_table::parse(payload);
  out.diagnostics.insert(out.diagnostics.end(), parsed.diagnostics.begin(),
                         parsed.diagnostics.end());
  // Lenient salvage: a verified header with some bad lines still yields a
  // usable (partial) table; the defects stay visible in the diagnostics.
  if (parsed.header_ok) out.table = std::move(parsed.table);
  return out;
}

tuning_table compile_tuning_table(const features::kernel_registry& registry,
                                  const std::vector<metrics::target>& targets,
                                  const frequency_planner& planner,
                                  const std::string& device_key) {
  tuning_table table;
  table.set_device_key(device_key);
  for (const auto& name : registry.names()) {
    const auto info = registry.at(name);
    for (const auto& target : targets)
      table.put(name, target, planner.plan(info.features, target));
  }
  return table;
}

tuning_table compile_tuning_table_oracle(const features::kernel_registry& registry,
                                         const std::vector<metrics::target>& targets,
                                         const gpusim::device_spec& spec,
                                         double representative_items) {
  tuning_table table;
  table.set_device_key(spec.name);
  for (const auto& name : registry.names()) {
    auto info = registry.at(name);
    auto profile = info.to_profile(1);
    profile.work_items = representative_items;
    for (const auto& target : targets)
      table.put(name, target, oracle_plan(spec, profile, target));
  }
  return table;
}

}  // namespace synergy

#include "synergy/queue.hpp"

#include "synergy/tuning_table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "synergy/common/table.hpp"
#include "synergy/telemetry/telemetry.hpp"

namespace synergy {

namespace tel = telemetry;

using common::frequency_config;
using common::seconds;

queue::queue(simsycl::device dev, std::shared_ptr<context> ctx)
    : simsycl::queue(dev), ctx_(ctx ? std::move(ctx) : context::global()) {
  binding_ = ctx_->bind(dev);
  if (!binding_.valid())
    throw std::invalid_argument(
        "device is not part of the SYnergy context; construct a context over it first");
  created_at_ = dev.board()->now();
}

void queue::set_fixed_frequency(frequency_config config) {
  fixed_ = config;
  target_.reset();
}

void queue::set_target(const metrics::target& t) {
  target_ = t;
  fixed_.reset();
}

void queue::clear_policy() {
  fixed_.reset();
  target_.reset();
}

void queue::rebuild_service(std::shared_ptr<const tuning_table> guard_table,
                            drift_options drift) {
  if (!planner_) {
    service_.reset();
    return;
  }
  auto guard = std::make_shared<guarded_planner>(get_device().spec(), planner_,
                                                 std::move(guard_table), drift);
  // The queue memoises every resolution, probes included, so the service
  // caches quarantined decisions too (flow-through would change nothing the
  // memo doesn't already pin).
  service_ = std::make_shared<plan_service>(std::move(guard), plan_service_options{});
}

void queue::set_planner(std::shared_ptr<const frequency_planner> planner, drift_options drift) {
  planner_ = std::move(planner);
  // The model tier always answers through the rails; the queue keeps its own
  // tuning-table tier ahead of the guard (compiled artefacts win, paper
  // Fig. 3), so the guard is built without one.
  rebuild_service(nullptr, drift);
  source_.reset();
  quarantine_seen_ = false;
  plan_cache_.clear();
}

void queue::set_plan_service(std::shared_ptr<plan_service> service) {
  service_ = std::move(service);
  planner_ = service_ ? service_->guard()->planner() : nullptr;
  source_.reset();
  quarantine_seen_ = false;
  plan_cache_.clear();
}

void queue::set_planner_source(std::shared_ptr<const planner_source> source,
                               drift_options drift,
                               std::shared_ptr<const tuning_table> fallback_table) {
  source_ = std::move(source);
  source_drift_ = drift;
  source_table_ = std::move(fallback_table);
  planner_.reset();
  service_.reset();
  quarantine_seen_ = false;
  plan_cache_.clear();
  if (!source_) return;
  // Read the generation BEFORE the planner: if a swap lands in between, the
  // recorded generation is stale and the next submission re-pulls — the
  // other order could record a fresh generation with the old planner and
  // miss the swap entirely.
  source_generation_ = source_->generation();
  if (auto planner = source_->current_planner()) {
    planner_ = std::move(planner);
    rebuild_service(source_table_, drift);
    service_->guard()->set_quarantine_probe_every(probe_every_);
  }
}

void queue::set_quarantine_probe_every(std::size_t n) {
  probe_every_ = n;
  if (service_) service_->guard()->set_quarantine_probe_every(n);
}

void queue::refresh_from_source() {
  if (!source_) return;
  const auto generation = source_->generation();
  if (generation == source_generation_) return;
  source_generation_ = generation;
  planner_ = source_->current_planner();
  if (service_) {
    service_->install(planner_);
  } else if (planner_) {
    rebuild_service(source_table_, source_drift_);
    service_->guard()->set_quarantine_probe_every(probe_every_);
  }
  // Cached plans were resolved by the previous champion; install() bumped
  // the service generation (its cache invalidates lazily), the local memo
  // flushes here, and the drift reset inside install() lifted any
  // quarantine, so re-arm the latch too.
  plan_cache_.clear();
  quarantine_seen_ = false;
  ++planner_refreshes_;
  SYNERGY_COUNTER_ADD("queue.planner_refreshes", 1);
}

void queue::reset_model_quarantine() {
  if (!service_) return;
  service_->reset_quarantine();
  plan_cache_.clear();
  quarantine_seen_ = false;
}

common::status queue::set_governor(const governor::governor_spec& spec) {
  // Validate policy + parameter vocabulary against this device up front so
  // the CLI can fail fast with a usage error.
  auto probe = governor::make_governor(spec, get_device().spec());
  if (!probe.has_value()) return probe.err();
  governor_spec_ = spec;
  governors_.clear();
  binding_.library->reset_power_smoothing();
  return common::status::success();
}

void queue::clear_governor() {
  governor_spec_.reset();
  governors_.clear();
}

std::size_t queue::governor_decisions() const {
  std::size_t n = 0;
  for (const auto& [name, kg] : governors_)
    if (kg.gov) n += kg.gov->decisions();
  return n;
}

std::size_t queue::governor_clock_changes() const {
  std::size_t n = 0;
  for (const auto& [name, kg] : governors_)
    if (kg.gov) n += kg.gov->clock_changes();
  return n;
}

obs::cause queue::govern_submission(const simsycl::handler& h,
                                    const std::optional<metrics::target>& target) {
  const auto& spec = get_device().spec();
  auto& kg = governors_[h.info().name];
  if (!kg.gov) {
    auto made = governor::make_governor(*governor_spec_, spec);
    if (!made.has_value()) return obs::cause::default_clocks;  // validated at set time
    kg.gov = std::move(made).value();
  }
  if (!kg.seeded) {
    // Seed: hybrid hands the planner chain's pick (tuning table, guarded
    // model, oracle — exactly what a plain submission would have used) to
    // the governor; pure-reactive starts from the driver default.
    frequency_config seed_cfg = spec.default_config();
    obs::cause seed_cause = obs::cause::default_clocks;
    if (governor_spec_->hybrid) {
      if (target) {
        const auto [config, cause] = resolve_target(h, *target);
        seed_cfg = config;
        seed_cause = cause;
      } else if (fixed_) {
        seed_cfg = *fixed_;
        seed_cause = obs::cause::fixed;
      } else if (target_) {
        const auto [config, cause] = resolve_target(h, *target_);
        seed_cfg = config;
        seed_cause = cause;
      }
    }
    kg.gov->seed(seed_cfg.core);
    // Hybrid watt target: the model-predicted (pre-drift) power at the
    // seeded clock. While the board matches the prediction the tracker
    // holds the seed; drift pushes observed power off target and the
    // governor chases the sweet spot from there.
    const auto profile = h.info().to_profile(h.launch_items());
    const auto predicted = get_device().board()->model().evaluate(
        spec, profile, {spec.memory_clock, kg.gov->current()});
    kg.target_w = predicted.avg_power.value;
    if (governor_spec_->hybrid)
      if (auto* tracker =
              dynamic_cast<governor::powercap_tracker_governor*>(kg.gov.get()))
        tracker->set_target_w(kg.target_w);
    kg.seeded = true;
    apply_frequency({spec.memory_clock, kg.gov->current()});
    return seed_cause;
  }
  // Steady state: poll the windowed sensors through the vendor library
  // (fault injection and retries included) and apply the decision. A failed
  // sensor read holds the current clock — no sample, no movement.
  const auto util = binding_.library->utilization(binding_.index);
  const auto power = binding_.library->smoothed_power(binding_.index);
  if (util.has_value() && power.has_value()) {
    const governor::device_sample sample{get_device().board()->now().value, util.value(),
                                         power.value().value,
                                         governor_spec_->hybrid ? kg.target_w : 0.0};
    const auto f = kg.gov->decide(sample);
    apply_frequency({spec.memory_clock, f});
  } else {
    apply_frequency({spec.memory_clock, kg.gov->current()});
  }
  return obs::cause::governor;
}

void queue::set_tuning_table(std::shared_ptr<const tuning_table> table) {
  if (table && !table->device_key().empty() &&
      table->device_key() != get_device().spec().name &&
      get_device().spec().name.find(table->device_key()) == std::string::npos)
    throw std::invalid_argument("tuning table compiled for '" + table->device_key() +
                                "' installed on '" + get_device().spec().name + "'");
  tuning_ = std::move(table);
  plan_cache_.clear();
}

std::pair<frequency_config, obs::cause> queue::resolve_target(const simsycl::handler& h,
                                                              const metrics::target& t) {
  const auto key = std::make_pair(h.info().name, t.to_string());
  if (const auto it = plan_cache_.find(key); it != plan_cache_.end()) {
    // Steady-state fast path: a counter only — opening a span here would put
    // a ring write on every cached submission.
    ++plan_cache_hits_;
    SYNERGY_COUNTER_ADD("queue.plan_cache_hits", 1);
    return it->second;
  }
  SYNERGY_SPAN_VAR(span, tel::category::plan, "queue.resolve_target");
  span.str("kernel", h.info().name);
  SYNERGY_COUNTER_ADD("queue.plan_cache_misses", 1);
  frequency_config config;
  obs::cause why = obs::cause::oracle;
  if (tuning_ && tuning_->find(h.info().name, t)) {
    // Compiled artefact: the decision was made at build time (paper Fig. 3).
    config = *tuning_->find(h.info().name, t);
    span.arg("tuning_table", 1.0);
    plan_cache_.emplace(key, std::make_pair(config, obs::cause::tuning_table));
    return {config, obs::cause::tuning_table};
  }
  if (service_) {
    // Guarded model tier behind the plan service: sanity rails, OOD envelope
    // and drift quarantine; an untrustworthy model degrades the decision to
    // default clocks (the compiled tuning table was already consulted above).
    const auto serviced = service_->plan(h.info().name, h.info().features, t);
    const plan_decision& decision = serviced.decision;
    config = decision.config;
    why = plan_cause(decision);
    span.arg("tier", static_cast<double>(static_cast<int>(decision.tier)));
    span.arg("service_hit", serviced.cache_hit ? 1.0 : 0.0);
  } else {
    // Oracle fallback: exact per-kernel optimum from the simulator model.
    const auto profile = h.info().to_profile(h.launch_items());
    config = oracle_plan(get_device().spec(), profile, t);
  }
  span.arg("core_mhz", config.core.value);
  plan_cache_.emplace(key, std::make_pair(config, why));
  return {config, why};
}

void queue::apply_frequency(frequency_config config) {
  // Skip the driver round-trip when the device is already there, as the real
  // runtime does: NVML clock changes are expensive (Sec. 4.4).
  const auto current = binding_.library->application_clocks(binding_.index);
  if (current.has_value() && current.value() == config) {
    SYNERGY_COUNTER_ADD("queue.freq_change_skipped", 1);
    return;
  }
  const auto st = binding_.library->set_application_clocks(ctx_->user(), binding_.index, config);
  SYNERGY_INSTANT(tel::category::freq_change, "queue.freq_change",
                  {"ok", st.ok() ? 1.0 : 0.0}, {"mem_mhz", config.memory.value},
                  {"core_mhz", config.core.value});
  if (!st.ok()) {
    ++freq_failures_;
    SYNERGY_COUNTER_ADD("queue.freq_change_failures", 1);
    common::log_warn("synergy::queue frequency change rejected: ", st.err().to_string());
    // Degradation contract (ARCHITECTURE.md Sec. 10): a *persistent
    // infrastructure* failure — retries exhausted or breaker open
    // (unavailable/internal) or the board gone (device_lost) — means the
    // device may be at arbitrary clocks. Fall back toward driver defaults
    // (best effort) and flag the sample so trainers exclude it. Policy
    // rejections (permissions, invalid clocks) keep the old behaviour: the
    // kernel runs at the current, known clocks and the sample stays valid.
    const auto code = st.err().code;
    if (code == common::errc::unavailable || code == common::errc::internal ||
        code == common::errc::device_lost) {
      (void)binding_.library->reset_application_clocks(ctx_->user(), binding_.index);
      degrade_next_ = true;
      SYNERGY_COUNTER_ADD("queue.degraded_submissions", 1);
    }
  }
}

simsycl::event queue::submit_recorded(simsycl::handler& h,
                                      std::optional<frequency_config> freq,
                                      std::optional<metrics::target> target) {
  SYNERGY_SPAN_VAR(span, tel::category::kernel, "queue.submit");
  SYNERGY_COUNTER_ADD("queue.submissions", 1);
  degrade_next_ = false;
  refresh_from_source();
  std::optional<gpusim::static_features> features;
  obs::cause why = obs::cause::unattributed;
  if (h.has_launch()) {
    if (service_ || observer_) features = h.info().features;
    span.str("kernel", h.info().name);
    // Per-submission settings take precedence over the queue policy; an
    // attached governor owns the clock otherwise (seeded from the planner
    // chain in hybrid mode).
    if (freq) {
      apply_frequency(*freq);
      why = obs::cause::fixed;
    } else if (governor_spec_) {
      why = govern_submission(h, target);
    } else if (target) {
      const auto [config, cause] = resolve_target(h, *target);
      apply_frequency(config);
      why = cause;
    } else if (fixed_) {
      apply_frequency(*fixed_);
      why = obs::cause::fixed;
    } else if (target_) {
      const auto [config, cause] = resolve_target(h, *target_);
      apply_frequency(config);
      why = cause;
    }
  }
  // Persistent infrastructure failure overrides the planner attribution:
  // the kernel runs at fallback clocks, so its joules are fault-degraded
  // spend, not the tier's.
  if (degrade_next_) why = obs::cause::fault_degraded;
  // The device prices the kernel inside finalize(); the scope tells the
  // ledger who is spending and why.
  obs::attribution_scope obs_scope{"host", "", why};
  auto event = finalize(h);
  if (event.valid()) {
    auto& s = stats_[event.kernel_name()];
    ++s.launches;
    s.total_time_s += event.record().cost.time.value;
    s.total_energy_j += event.record().cost.energy.value;
    if (degrade_next_) {
      ++s.degraded_launches;
      ++degraded_submissions_;
      span.arg("degraded", 1.0);
    }
    samples_.push_back({event.kernel_name(), event.record().config,
                        event.record().cost.time.value, event.record().cost.energy.value,
                        degrade_next_});
    // Drift tracking: compare the model's energy prediction at the executed
    // clock against the measurement. Degraded samples are excluded — their
    // clocks are untrustworthy, so they would poison the error statistic.
    if (service_ && features && !degrade_next_) {
      service_->observe(event.kernel_name(), *features, event.record().config.core,
                        event.record().cost.energy.value);
      if (service_->quarantined()) {
        if (!quarantine_seen_) {
          quarantine_seen_ = true;
          // Cached plans were made by the now-distrusted model set; flush
          // the local memo (the service's own cache invalidated itself via
          // the quarantine-onset generation bump) so every kernel
          // re-resolves down the degradation chain.
          plan_cache_.clear();
          common::log_warn("synergy::queue model set quarantined (",
                           service_->guard()->drift().quarantine_reason(),
                           "); resolving via tuning-table/default clocks until retrained");
        }
      } else {
        // The quarantine lifted (drift reset or champion promotion): re-arm
        // the latch so a second trip flushes the cache and warns again.
        quarantine_seen_ = false;
      }
    }
    // Lifecycle tap runs after the drift monitor so the observer sees the
    // up-to-date quarantine state when it decides to retrain.
    if (observer_ && features && !degrade_next_)
      observer_(event.kernel_name(), *features, event.record().config,
                event.record().cost.energy.value);
    span.arg("sim_time_ms", event.record().cost.time.value * 1e3);
    span.arg("energy_j", event.record().cost.energy.value);
    SYNERGY_HISTOGRAM_OBSERVE("queue.kernel_time_ms", event.record().cost.time.value * 1e3,
                              0.01, 0.1, 1.0, 10.0, 100.0, 1000.0);
    SYNERGY_HISTOGRAM_OBSERVE("queue.kernel_energy_j", event.record().cost.energy.value,
                              0.001, 0.01, 0.1, 1.0, 10.0, 100.0);
    SYNERGY_GAUGE_ADD("queue.total_energy_j", event.record().cost.energy.value);
  }
  return event;
}

double queue::kernel_energy_consumption(const simsycl::event& e) const {
  if (!e.valid()) throw std::invalid_argument("invalid event");
  const auto board = e.board();
  const auto start = e.profiling(simsycl::info::event_profiling::command_start);
  const auto end = e.profiling(simsycl::info::event_profiling::command_end);
  return board->energy_between(start, end).value;
}

double queue::device_energy_consumption() const {
  const auto board = get_device().board();
  return board->energy_between(created_at_, board->now()).value;
}

double queue::kernel_energy_consumption_sampled(const simsycl::event& e,
                                                double interval_s) const {
  if (!e.valid()) throw std::invalid_argument("invalid event");
  if (interval_s <= 0.0) return kernel_energy_consumption(e);
  const auto board = e.board();
  const double start = e.profiling(simsycl::info::event_profiling::command_start).value;
  const double end = e.profiling(simsycl::info::event_profiling::command_end).value;
  const auto trace = board->trace_copy();

  // Poll the sensor on a fixed grid aligned to the device timeline (the
  // sampling thread of Sec. 4.2 has no phase relationship with the kernel).
  const double first_tick = std::ceil(start / interval_s) * interval_s;
  double estimate = 0.0;
  std::size_t samples = 0;
  for (double t = first_tick; t < end + interval_s; t += interval_s) {
    estimate += trace.power_at(seconds{std::min(t, trace.end_time().value)}).value * interval_s;
    ++samples;
    if (t >= end) break;
  }
  if (samples == 0) return 0.0;  // kernel entirely between two sensor ticks
  // Clip the last sample's window to the kernel end, mirroring how a real
  // profiler truncates its integration at kernel completion.
  const double overshoot = (first_tick + static_cast<double>(samples) * interval_s) - end;
  if (overshoot > 0.0 && samples > 0)
    estimate -= trace.power_at(seconds{end}).value * std::min(overshoot, interval_s);
  return std::max(0.0, estimate);
}

double queue::device_energy_consumption_sampled(double interval_s) const {
  if (interval_s <= 0.0) return device_energy_consumption();
  const auto board = get_device().board();
  const double start = created_at_.value;
  const double end = board->now().value;
  if (end <= start) return 0.0;
  const auto trace = board->trace_copy();
  // Left-rectangle integration of instantaneous power samples, the way a
  // polling thread accumulates readings (Sec. 4.2).
  double estimate = 0.0;
  for (double t = start; t < end; t += interval_s) {
    const double width = std::min(interval_s, end - t);
    estimate += trace.power_at(seconds{t}).value * width;
  }
  return estimate;
}

void queue::print_energy_report(std::ostream& os) const {
  std::vector<std::pair<std::string, kernel_stats>> rows(stats_.begin(), stats_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_energy_j > b.second.total_energy_j;
  });
  double total = 0.0;
  for (const auto& [name, s] : rows) total += s.total_energy_j;

  common::text_table table;
  table.header({"kernel", "launches", "time (ms)", "energy (J)", "energy %"});
  for (const auto& [name, s] : rows)
    table.row({name, std::to_string(s.launches),
               common::text_table::fmt(s.total_time_s * 1e3, 3),
               common::text_table::fmt(s.total_energy_j, 4),
               common::text_table::fmt(total > 0 ? s.total_energy_j / total * 100.0 : 0.0, 1)});
  table.print(os);
}

std::vector<queue::energy_sample> queue::training_samples() const {
  std::vector<energy_sample> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_)
    if (!s.degraded) out.push_back(s);
  return out;
}

frequency_config queue::current_clocks() const {
  return get_device().board()->current_config();
}

}  // namespace synergy

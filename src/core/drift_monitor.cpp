#include "synergy/drift_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "synergy/common/log.hpp"
#include "synergy/telemetry/telemetry.hpp"

namespace synergy {

drift_monitor::drift_monitor(drift_options options) : opt_(options) {
  opt_.window = std::max<std::size_t>(1, opt_.window);
  opt_.min_samples = std::max<std::size_t>(1, opt_.min_samples);
}

void drift_monitor::observe(const std::string& kernel, double predicted, double measured) {
  if (!std::isfinite(predicted) || !std::isfinite(measured) || predicted <= 0.0 ||
      measured <= 0.0) {
    ++rejected_;
    SYNERGY_COUNTER_ADD("planner.drift_rejected_samples", 1);
    return;
  }
  const auto [it, inserted] = scale_.emplace(kernel, measured / predicted);
  const double err = inserted ? 0.0 : std::fabs(measured / (it->second * predicted) - 1.0);

  if (window_.size() < opt_.window) {
    window_.push_back(err);
    window_sum_ += err;
  } else {
    window_sum_ += err - window_[next_];
    window_[next_] = err;
    next_ = (next_ + 1) % opt_.window;
  }
  ++total_;
  SYNERGY_COUNTER_ADD("planner.drift_samples", 1);
  SYNERGY_GAUGE_SET("planner.drift_error", rolling_error());

  if (!quarantined_ && total_ >= opt_.min_samples && rolling_error() > opt_.threshold) {
    quarantined_ = true;
    reason_ = "rolling prediction error " + std::to_string(rolling_error()) +
              " exceeds threshold " + std::to_string(opt_.threshold) + " after " +
              std::to_string(total_) + " samples (last kernel: " + kernel + ")";
    SYNERGY_COUNTER_ADD("planner.quarantines", 1);
    SYNERGY_INSTANT(telemetry::category::plan, "planner.model_quarantined",
                    {"rolling_error", rolling_error()}, {"threshold", opt_.threshold},
                    {"samples", static_cast<double>(total_)});
    SYNERGY_INSTANT(telemetry::category::plan, "planner.retrain_recommended",
                    {"rolling_error", rolling_error()});
    common::log_warn("synergy::drift_monitor model set quarantined: ", reason_,
                     " — retrain with synergy_train and redeploy");
  }
}

double drift_monitor::rolling_error() const {
  if (window_.empty()) return 0.0;
  return window_sum_ / static_cast<double>(window_.size());
}

drift_state drift_monitor::export_state() const {
  drift_state s;
  s.scale = scale_;
  s.window = window_;
  s.next = next_;
  s.window_sum = window_sum_;
  s.total = total_;
  s.rejected = rejected_;
  s.quarantined = quarantined_;
  s.reason = reason_;
  return s;
}

bool drift_monitor::import_state(const drift_state& s) {
  if (s.window.size() > opt_.window) return false;
  if (s.window.size() == opt_.window) {
    if (s.next >= opt_.window) return false;
  } else if (s.next != 0) {
    // While the ring is still filling, observe() appends; next_ stays 0.
    return false;
  }
  scale_ = s.scale;
  window_ = s.window;
  next_ = s.next;
  window_sum_ = s.window_sum;
  total_ = s.total;
  rejected_ = s.rejected;
  quarantined_ = s.quarantined;
  reason_ = s.reason;
  return true;
}

void drift_monitor::reset() {
  scale_.clear();
  window_.clear();
  next_ = 0;
  window_sum_ = 0.0;
  total_ = 0;
  rejected_ = 0;
  quarantined_ = false;
  reason_.clear();
}

}  // namespace synergy

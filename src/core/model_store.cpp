#include "synergy/model_store.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace synergy {

namespace {

constexpr const char* metric_files[] = {"time.model", "energy.model", "edp.model",
                                        "ed2p.model"};

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << text;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace

void model_store::save(const std::string& device_key, const trained_models& models) const {
  if (!models.complete()) throw std::invalid_argument("model set incomplete");
  const auto dir = dir_for(device_key);
  std::filesystem::create_directories(dir);
  write_file(dir / metric_files[0], models.time->serialize());
  write_file(dir / metric_files[1], models.energy->serialize());
  write_file(dir / metric_files[2], models.edp->serialize());
  write_file(dir / metric_files[3], models.ed2p->serialize());
}

trained_models model_store::load(const std::string& device_key) const {
  const auto dir = dir_for(device_key);
  trained_models models;
  models.time = ml::deserialize_regressor(read_file(dir / metric_files[0]));
  models.energy = ml::deserialize_regressor(read_file(dir / metric_files[1]));
  models.edp = ml::deserialize_regressor(read_file(dir / metric_files[2]));
  models.ed2p = ml::deserialize_regressor(read_file(dir / metric_files[3]));
  return models;
}

bool model_store::contains(const std::string& device_key) const {
  const auto dir = dir_for(device_key);
  for (const char* file : metric_files)
    if (!std::filesystem::exists(dir / file)) return false;
  return true;
}

}  // namespace synergy

#include "synergy/model_store.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "synergy/common/envelope.hpp"
#include "synergy/telemetry/telemetry.hpp"

namespace synergy {

namespace env = common::envelope;

namespace {

constexpr const char* metric_files[] = {"time.model", "energy.model", "edp.model",
                                        "ed2p.model"};
constexpr const char* envelope_file = "features.envelope";

/// Envelope kinds and payload format versions this build writes/reads.
constexpr const char* model_kind = "regressor";
constexpr const char* feature_kind = "feature_envelope";
constexpr unsigned payload_version = 1;

/// Read a whole file; distinguishes missing from unreadable.
common::result<std::string> read_file(const std::filesystem::path& path,
                                      model_file_status& status) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    status = model_file_status::missing;
    return common::error{common::errc::not_found, "missing metric file"};
  }
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    status = model_file_status::io_error;
    return common::error{common::errc::internal, "cannot read " + path.string()};
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  if (in.bad()) {
    status = model_file_status::io_error;
    return common::error{common::errc::internal, "read error on " + path.string()};
  }
  return oss.str();
}

/// Unseal one artefact file into its payload, mapping every envelope fault
/// onto a model_file_status. Legacy bare payloads pass through with a note.
common::result<std::string> unseal(const std::filesystem::path& path, const char* kind,
                                   model_file_diagnostic& diag) {
  auto text = read_file(path, diag.status);
  if (!text.has_value()) {
    diag.detail = text.err().message;
    return text;
  }
  if (!env::looks_sealed(text.value())) {
    diag.status = model_file_status::legacy;
    diag.detail = "unsealed legacy artefact (re-save to add version/checksum protection)";
    return text;
  }
  auto opened = env::open(text.value(), kind, payload_version);
  if (!opened.ok()) {
    diag.status = opened.error == env::fault::version_skew ? model_file_status::version_skew
                                                           : model_file_status::corrupt;
    diag.detail = std::string(env::to_string(opened.error)) + ": " + opened.detail;
    return common::error{common::errc::invalid_argument, diag.detail};
  }
  diag.status = model_file_status::ok;
  return std::move(opened.payload);
}

/// Load one metric model file into `slot`, appending its diagnostic.
void load_model_file(const std::filesystem::path& dir, const char* file,
                     std::unique_ptr<ml::regressor>& slot,
                     std::vector<model_file_diagnostic>& diags) {
  model_file_diagnostic diag;
  diag.file = file;
  const auto payload = unseal(dir / file, model_kind, diag);
  if (payload.has_value()) {
    auto model = ml::try_deserialize_regressor(payload.value());
    if (model.has_value()) {
      slot = std::move(model).value();
    } else {
      diag.status = model_file_status::corrupt;
      diag.detail = model.err().message;
    }
  }
  diags.push_back(std::move(diag));
}

}  // namespace

bool load_result::ok() const {
  // Judged on the per-file verdicts, not on `models`: validate() drops the
  // parsed models but its ok/corrupt verdict must match load()'s. Inside
  // load(), a metric file only reaches status ok/legacy after its regressor
  // deserialized and reported fitted, so file-ok implies a complete set.
  for (const char* f : metric_files) {
    const auto it = std::find_if(files.begin(), files.end(),
                                 [&](const model_file_diagnostic& d) { return d.file == f; });
    if (it == files.end() ||
        (it->status != model_file_status::ok && it->status != model_file_status::legacy))
      return false;
  }
  return true;
}

bool load_result::corrupt() const {
  return std::any_of(files.begin(), files.end(), [](const model_file_diagnostic& d) {
    return d.status == model_file_status::io_error ||
           d.status == model_file_status::corrupt ||
           d.status == model_file_status::version_skew;
  });
}

std::string load_result::summary() const {
  std::ostringstream oss;
  for (const auto& d : files) {
    oss << d.file << ": " << to_string(d.status);
    if (!d.detail.empty()) oss << " (" << d.detail << ')';
    oss << '\n';
  }
  return oss.str();
}

common::status model_store::save(const std::string& device_key,
                                 const trained_models& models) const {
  if (!models.complete())
    return common::error{common::errc::invalid_argument, "model set incomplete"};
  const auto dir = dir_for(device_key);
  const std::unique_ptr<ml::regressor>* slots[] = {&models.time, &models.energy, &models.edp,
                                                   &models.ed2p};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto sealed = env::seal(model_kind, payload_version, (*slots[i])->serialize());
    if (auto st = common::atomic_write_file(dir / metric_files[i], sealed); !st.ok())
      return st;
  }
  if (models.envelope.fitted()) {
    const auto sealed = env::seal(feature_kind, payload_version, models.envelope.serialize());
    if (auto st = common::atomic_write_file(dir / envelope_file, sealed); !st.ok()) return st;
  }
  SYNERGY_COUNTER_ADD("model_store.saves", 1);
  return common::status::success();
}

load_result model_store::load(const std::string& device_key) const {
  SYNERGY_SPAN_VAR(span, telemetry::category::plan, "model_store.load");
  span.str("device", device_key);
  const auto dir = dir_for(device_key);
  load_result result;

  load_model_file(dir, metric_files[0], result.models.time, result.files);
  load_model_file(dir, metric_files[1], result.models.energy, result.files);
  load_model_file(dir, metric_files[2], result.models.edp, result.files);
  load_model_file(dir, metric_files[3], result.models.ed2p, result.files);

  // The feature envelope is optional: absence only disables the OOD rail.
  model_file_diagnostic env_diag;
  env_diag.file = envelope_file;
  const auto payload = unseal(dir / envelope_file, feature_kind, env_diag);
  if (payload.has_value()) {
    auto parsed = ml::feature_envelope::deserialize(payload.value());
    if (parsed.has_value()) {
      result.models.envelope = std::move(parsed).value();
    } else {
      env_diag.status = model_file_status::corrupt;
      env_diag.detail = parsed.err().message;
    }
  }
  result.files.push_back(std::move(env_diag));

  if (!result.ok()) {
    SYNERGY_COUNTER_ADD("model_store.load_failures", 1);
    // A failed load must not hand out a half-parsed set: all or nothing.
    result.models = trained_models{};
  } else {
    SYNERGY_COUNTER_ADD("model_store.loads", 1);
  }
  return result;
}

load_result model_store::validate(const std::string& device_key) const {
  auto result = load(device_key);
  result.models = trained_models{};
  return result;
}

bool model_store::contains(const std::string& device_key) const {
  const auto dir = dir_for(device_key);
  std::error_code ec;
  for (const char* file : metric_files)
    if (!std::filesystem::exists(dir / file, ec)) return false;
  return true;
}

std::vector<std::string> model_store::device_keys() const {
  std::vector<std::string> keys;
  std::error_code ec;
  if (!std::filesystem::is_directory(root_, ec)) return keys;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (!entry.is_directory(ec)) continue;
    for (const char* file : metric_files) {
      if (std::filesystem::exists(entry.path() / file, ec)) {
        keys.push_back(entry.path().filename().string());
        break;
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace synergy

#include "synergy/context.hpp"

#include <mutex>

#include "simsycl/platform.hpp"

namespace synergy {

namespace {
std::shared_ptr<context>& global_slot() {
  static std::shared_ptr<context> slot;
  return slot;
}
std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

context::context(std::vector<simsycl::device> devices, vendor::user_context user,
                 vendor::sensor_model sensor)
    : context(std::move(devices), context_options{user, sensor, std::nullopt, std::nullopt}) {}

context::context(std::vector<simsycl::device> devices, context_options options)
    : devices_(std::move(devices)), user_(options.user) {
  // Group boards by vendor, preserving device order within each group.
  std::map<gpusim::vendor_kind, std::vector<std::shared_ptr<gpusim::device>>> groups;
  for (const auto& dev : devices_) groups[dev.spec().vendor].push_back(dev.board());

  for (auto& [kind, boards] : groups) {
    auto lib = vendor::make_management_library(boards, options.sensor);
    // Assemble the stack inside-out: backend -> fault injector -> resilience.
    // Calls through bind() always hit the outermost layer.
    if (options.faults) {
      auto inj = std::make_unique<vendor::fault_injector>(std::move(lib), *options.faults);
      injectors_.push_back(inj.get());
      lib = std::move(inj);
    }
    if (options.retry) {
      auto res = std::make_unique<vendor::resilient_library>(std::move(lib), *options.retry);
      resilience_.push_back(res.get());
      lib = std::move(res);
    }
    lib->init();
    const std::size_t lib_index = libraries_.size();
    for (std::size_t i = 0; i < boards.size(); ++i)
      bindings_[boards[i].get()] = {lib_index, i};
    libraries_.push_back(std::move(lib));
  }
}

context::binding context::bind(const simsycl::device& dev) const {
  const auto it = bindings_.find(dev.board().get());
  if (it == bindings_.end()) return {};
  return {libraries_[it->second.first].get(), it->second.second};
}

std::vector<vendor::management_library*> context::libraries() const {
  std::vector<vendor::management_library*> out;
  out.reserve(libraries_.size());
  for (const auto& lib : libraries_) out.push_back(lib.get());
  return out;
}

std::vector<vendor::resilient_library*> context::resilience_layers() const {
  return resilience_;
}

std::vector<vendor::fault_injector*> context::fault_layers() const { return injectors_; }

std::shared_ptr<context> context::global() {
  std::scoped_lock lock(global_mutex());
  auto& slot = global_slot();
  if (!slot)
    slot = std::make_shared<context>(simsycl::platform::default_platform().devices());
  return slot;
}

void context::set_global(std::shared_ptr<context> ctx) {
  std::scoped_lock lock(global_mutex());
  global_slot() = std::move(ctx);
}

}  // namespace synergy

#include "synergy/plan_service.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "synergy/telemetry/telemetry.hpp"

namespace synergy {

plan_service::plan_service(std::shared_ptr<guarded_planner> guard, plan_service_options opts)
    : guard_(std::move(guard)), opts_(opts) {
  if (opts_.shards == 0) opts_.shards = 1;
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) shards_.push_back(std::make_unique<shard>());
}

std::string plan_service::make_key(const std::string& kernel, const metrics::target& target) {
  std::string key;
  key.reserve(kernel.size() + 16);
  key += kernel;
  key += '\0';
  key += target.to_string();
  return key;
}

plan_service::shard& plan_service::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool plan_service::lookup(const std::string& key, std::uint64_t gen, plan_decision& out) {
  shard& s = shard_for(key);
  std::lock_guard lk(s.m);
  if (s.epoch != gen) {
    // Lazy invalidation: entries tagged with an older generation are dead;
    // drop them now that this shard is touched. A shard tagged newer (a
    // racing bump between our generation read and this lock) is simply a
    // miss — never retag downward.
    if (s.epoch < gen) {
      s.entries.clear();
      s.epoch = gen;
    }
    return false;
  }
  const auto it = s.entries.find(key);
  if (it == s.entries.end()) return false;
  out = it->second;
  return true;
}

void plan_service::store(const std::string& key, std::uint64_t gen, const plan_decision& d) {
  shard& s = shard_for(key);
  std::lock_guard lk(s.m);
  if (s.epoch > gen) return;  // a newer generation owns this shard; drop
  if (s.epoch < gen) {
    s.entries.clear();
    s.epoch = gen;
  }
  s.entries.insert_or_assign(key, d);
}

serviced_plan plan_service::plan(const std::string& kernel,
                                 const gpusim::static_features& features,
                                 const metrics::target& target) {
  const std::uint64_t gen = generation();
  const std::string key = make_key(kernel, target);
  serviced_plan out;
  out.generation = gen;
  if (lookup(key, gen, out.decision)) {
    out.cache_hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    SYNERGY_COUNTER_ADD("plan_service.hits", 1);
    return out;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  SYNERGY_COUNTER_ADD("plan_service.misses", 1);
  bool cacheable = true;
  {
    std::shared_lock lk(mu_);
    out.decision = guard_->plan(kernel, features, target);
    cacheable = opts_.cache_quarantined || !guard_->quarantined();
  }
  if (cacheable) store(key, gen, out.decision);
  return out;
}

std::vector<serviced_plan> plan_service::plan_batch(std::span<const plan_request> reqs) {
  std::vector<serviced_plan> out(reqs.size());
  if (reqs.empty()) return out;
  const std::uint64_t gen = generation();

  // Pass 1: serve cache hits; collect the misses, deduplicating identical
  // (kernel, target) twins onto one chain request. Quarantined chains skip
  // dedupe so the per-request probe cadence stays exact.
  std::vector<std::string> keys(reqs.size());
  std::vector<std::size_t> miss;          // unique miss → request index
  std::unordered_map<std::string, std::size_t> first;  // key → position in `miss`
  std::vector<std::size_t> twin(reqs.size(), SIZE_MAX);  // request → position in `miss`
  bool quarantined = false;
  {
    std::shared_lock lk(mu_);
    quarantined = guard_->quarantined();
  }
  const bool dedupe = !quarantined;
  std::size_t n_hits = 0;
  std::size_t n_deduped = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    keys[i] = make_key(reqs[i].kernel, reqs[i].target);
    out[i].generation = gen;
    if (lookup(keys[i], gen, out[i].decision)) {
      out[i].cache_hit = true;
      ++n_hits;
      continue;
    }
    if (dedupe) {
      const auto [it, inserted] = first.try_emplace(keys[i], miss.size());
      if (!inserted) {
        twin[i] = it->second;
        ++n_deduped;
        continue;
      }
    }
    twin[i] = miss.size();
    miss.push_back(i);
  }
  hits_.fetch_add(n_hits, std::memory_order_relaxed);
  misses_.fetch_add(miss.size(), std::memory_order_relaxed);
  deduped_.fetch_add(n_deduped, std::memory_order_relaxed);
  SYNERGY_COUNTER_ADD("plan_service.hits", static_cast<double>(n_hits));
  SYNERGY_COUNTER_ADD("plan_service.misses", static_cast<double>(miss.size()));
  SYNERGY_COUNTER_ADD("plan_service.batch_deduped", static_cast<double>(n_deduped));

  if (miss.empty()) return out;

  // Pass 2: one batched chain resolution for the unique misses.
  std::vector<plan_request> chain_reqs;
  chain_reqs.reserve(miss.size());
  for (const std::size_t i : miss) chain_reqs.push_back(reqs[i]);
  std::vector<plan_decision> resolved;
  bool cacheable = true;
  {
    std::shared_lock lk(mu_);
    resolved = guard_->plan_batch(chain_reqs);
    cacheable = opts_.cache_quarantined || !guard_->quarantined();
  }

  // Pass 3: fan results back out to every request and populate the cache.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (out[i].cache_hit) continue;
    out[i].decision = resolved[twin[i]];
  }
  if (cacheable)
    for (std::size_t m = 0; m < miss.size(); ++m)
      store(keys[miss[m]], gen, resolved[m]);
  return out;
}

void plan_service::observe(const std::string& kernel, const gpusim::static_features& features,
                           common::megahertz core_clock, double measured_energy_j) {
  std::unique_lock lk(mu_);
  guard_->observe(kernel, features, core_clock, measured_energy_j);
}

void plan_service::install(std::shared_ptr<const frequency_planner> planner) {
  std::unique_lock lk(mu_);
  guard_->install(std::move(planner));  // bumps the chain generation
}

void plan_service::reset_quarantine() {
  std::unique_lock lk(mu_);
  guard_->reset_quarantine();  // bumps the chain generation
}

std::vector<cached_plan> plan_service::export_cache() {
  const std::uint64_t gen = generation();
  std::vector<cached_plan> out;
  for (const auto& sp : shards_) {
    std::lock_guard lk(sp->m);
    if (sp->epoch != gen) continue;  // stale shard: entries are already dead
    for (const auto& [key, decision] : sp->entries) {
      const auto sep = key.find('\0');
      if (sep == std::string::npos) continue;
      out.push_back({key.substr(0, sep), key.substr(sep + 1), decision});
    }
  }
  std::sort(out.begin(), out.end(), [](const cached_plan& a, const cached_plan& b) {
    return a.kernel != b.kernel ? a.kernel < b.kernel : a.target < b.target;
  });
  return out;
}

void plan_service::import_cache(const std::vector<cached_plan>& entries) {
  const std::uint64_t gen = generation();
  for (const auto& e : entries) {
    std::string key;
    key.reserve(e.kernel.size() + e.target.size() + 1);
    key += e.kernel;
    key += '\0';
    key += e.target;
    store(key, gen, e.decision);
  }
}

}  // namespace synergy

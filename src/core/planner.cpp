#include "synergy/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace synergy {

using common::frequency_config;
using common::megahertz;

std::array<double, model_input_dim> model_input(const gpusim::static_features& k,
                                                megahertz core_clock) {
  std::array<double, model_input_dim> x{};
  const auto features = k.as_array();
  for (std::size_t i = 0; i < features.size(); ++i) x[i] = features[i];
  const double f = core_clock.value / 1000.0;  // GHz keeps the basis O(1)
  x[10] = f;
  x[11] = 1.0 / f;
  x[12] = std::log(f);
  x[13] = f * f * f;
  return x;
}

metrics::characterization oracle_characterization(const gpusim::device_spec& spec,
                                                  const gpusim::kernel_profile& profile,
                                                  const gpusim::dvfs_model& model) {
  // Full cartesian sweep over (memory, core): a single memory clock on the
  // paper's HBM devices, a 2-D space on GDDR parts like the Titan X.
  metrics::characterization c;
  const auto memory_clocks = spec.supported_memory_clocks();
  c.points.reserve(spec.core_clocks.size() * memory_clocks.size());
  for (const megahertz m : memory_clocks) {
    for (const megahertz f : spec.core_clocks) {
      const auto cost = model.evaluate(spec, profile, {m, f});
      c.points.push_back({{m, f}, cost.time.value, cost.energy.value});
      if (m.value == spec.memory_clock.value && f.value == spec.default_core_clock().value)
        c.default_index = c.points.size() - 1;
    }
  }
  return c;
}

frequency_config oracle_plan(const gpusim::device_spec& spec,
                             const gpusim::kernel_profile& profile,
                             const metrics::target& target, const gpusim::dvfs_model& model) {
  const auto c = oracle_characterization(spec, profile, model);
  return c.points[metrics::select(c, target)].config;
}

frequency_planner::frequency_planner(gpusim::device_spec spec, trained_models models)
    : spec_(std::move(spec)), models_(std::move(models)) {
  if (!models_.complete())
    throw std::invalid_argument("frequency_planner requires four fitted models");
}

metrics::characterization frequency_planner::predict_characterization(
    const gpusim::static_features& k) const {
  metrics::characterization c;
  c.points.reserve(spec_.core_clocks.size());
  for (const megahertz f : spec_.core_clocks) {
    const auto x = model_input(k, f);
    // Per-item predictions; constant scale factors do not change the argmin
    // or the ES/PL interval arithmetic, so they can be used directly.
    const double t = std::max(0.0, models_.time->predict_one(x));
    const double e = std::max(0.0, models_.energy->predict_one(x));
    c.points.push_back({{spec_.memory_clock, f}, t, e});
  }
  c.default_index = spec_.default_clock_index;
  return c;
}

std::optional<double> frequency_planner::predicted_energy(const gpusim::static_features& k,
                                                          megahertz core_clock) const {
  const double e = models_.energy->predict_one(model_input(k, core_clock));
  if (!std::isfinite(e) || e <= 0.0) return std::nullopt;
  return e;
}

guarded_plan frequency_planner::plan_guarded(const gpusim::static_features& k,
                                             const metrics::target& target) const {
  guarded_plan out;
  // Out-of-distribution rail. The static-feature columns are constant over
  // the clock sweep and every clock-basis column (f, 1/f, log f, f^3) is
  // monotone in f, so checking the table endpoints plus the default clock
  // covers the entire deployment input range of this kernel.
  if (models_.envelope.fitted()) {
    for (const megahertz f :
         {spec_.min_core_clock(), spec_.default_core_clock(), spec_.max_core_clock()}) {
      if (!models_.envelope.contains(model_input(k, f))) {
        out.ood = true;
        out.reason = "feature vector outside the training envelope at " +
                     std::to_string(f.value) + " MHz";
        return out;
      }
    }
  }

  using kind = metrics::target::kind;
  frequency_config config;
  if (target.k == kind::min_edp || target.k == kind::min_ed2p) {
    // Product-metric models predict in log space, where negative values are
    // legitimate; only non-finite output is a broken model.
    const ml::regressor& model = target.k == kind::min_edp ? *models_.edp : *models_.ed2p;
    megahertz best = spec_.default_core_clock();
    double best_v = std::numeric_limits<double>::infinity();
    for (const megahertz f : spec_.core_clocks) {
      const double v = model.predict_one(model_input(k, f));
      if (!std::isfinite(v)) {
        out.reason = "non-finite " + target.to_string() + " prediction at " +
                     std::to_string(f.value) + " MHz";
        return out;
      }
      if (v < best_v) {
        best_v = v;
        best = f;
      }
    }
    config = {spec_.memory_clock, best};
  } else {
    metrics::characterization c;
    c.points.reserve(spec_.core_clocks.size());
    for (const megahertz f : spec_.core_clocks) {
      const auto x = model_input(k, f);
      const double t = models_.time->predict_one(x);
      const double e = models_.energy->predict_one(x);
      if (!std::isfinite(t) || !std::isfinite(e)) {
        out.reason =
            "non-finite time/energy prediction at " + std::to_string(f.value) + " MHz";
        return out;
      }
      if (t <= 0.0 || e <= 0.0) {
        out.reason =
            "non-positive time/energy prediction at " + std::to_string(f.value) + " MHz";
        return out;
      }
      c.points.push_back({{spec_.memory_clock, f}, t, e});
    }
    c.default_index = spec_.default_clock_index;
    config = c.points[metrics::select(c, target)].config;
  }

  // Clamp rail: a plan the device cannot run is worse than a clamped one.
  // By construction the search stays on the table; this guards refactors
  // and deserialized specs from ever issuing an unsupported clock.
  if (!spec_.supports_core_clock(config.core)) {
    config.core = spec_.nearest_core_clock(config.core);
    out.clamped = true;
  }
  if (!spec_.supports_memory_clock(config.memory)) {
    config.memory = spec_.memory_clock;
    out.clamped = true;
  }
  out.config = config;
  return out;
}

std::vector<guarded_plan> frequency_planner::plan_guarded_batch(
    std::span<const guarded_query> queries) const {
  std::vector<guarded_plan> out(queries.size());
  if (queries.empty()) return out;

  // Clamp rail, identical to the tail of plan_guarded.
  const auto finish = [&](guarded_plan& g, frequency_config config) {
    if (!spec_.supports_core_clock(config.core)) {
      config.core = spec_.nearest_core_clock(config.core);
      g.clamped = true;
    }
    if (!spec_.supports_memory_clock(config.memory)) {
      config.memory = spec_.memory_clock;
      g.clamped = true;
    }
    g.config = config;
  };

  // Pass 1: the out-of-distribution rail over the whole batch, before any
  // model inference. Same endpoints, order, and reason strings as the
  // single-query path.
  std::vector<char> live(queries.size(), 1);
  if (models_.envelope.fitted()) {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      for (const megahertz f :
           {spec_.min_core_clock(), spec_.default_core_clock(), spec_.max_core_clock()}) {
        if (!models_.envelope.contains(model_input(queries[q].features, f))) {
          out[q].ood = true;
          out[q].reason = "feature vector outside the training envelope at " +
                          std::to_string(f.value) + " MHz";
          live[q] = 0;
          break;
        }
      }
    }
  }

  // Pass 2: group the surviving queries by the model their target needs, so
  // each regressor runs one fused predict over a contiguous design matrix.
  using kind = metrics::target::kind;
  const std::size_t n_clocks = spec_.core_clocks.size();
  std::vector<std::size_t> edp_q, ed2p_q, te_q;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (!live[q]) continue;
    if (queries[q].target.k == kind::min_edp) edp_q.push_back(q);
    else if (queries[q].target.k == kind::min_ed2p) ed2p_q.push_back(q);
    else te_q.push_back(q);
  }

  const auto build_design = [&](const std::vector<std::size_t>& qs) {
    ml::matrix x(qs.size() * n_clocks, model_input_dim);
    std::size_t r = 0;
    for (const std::size_t q : qs)
      for (const megahertz f : spec_.core_clocks) {
        const auto row = model_input(queries[q].features, f);
        const auto dst = x.row(r++);
        std::copy(row.begin(), row.end(), dst.begin());
      }
    return x;
  };

  // Product-metric targets: dedicated model, argmin over clocks behind the
  // non-finite rail (log-space predictions may legitimately be negative).
  const auto run_product = [&](const std::vector<std::size_t>& qs, const ml::regressor& model) {
    if (qs.empty()) return;
    const ml::matrix x = build_design(qs);
    std::vector<double> pred(x.rows());
    model.predict_into(x, pred);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const std::size_t q = qs[i];
      megahertz best = spec_.default_core_clock();
      double best_v = std::numeric_limits<double>::infinity();
      bool rejected = false;
      for (std::size_t ci = 0; ci < n_clocks; ++ci) {
        const megahertz f = spec_.core_clocks[ci];
        const double v = pred[i * n_clocks + ci];
        if (!std::isfinite(v)) {
          out[q].reason = "non-finite " + queries[q].target.to_string() + " prediction at " +
                          std::to_string(f.value) + " MHz";
          rejected = true;
          break;
        }
        if (v < best_v) {
          best_v = v;
          best = f;
        }
      }
      if (!rejected) finish(out[q], {spec_.memory_clock, best});
    }
  };
  run_product(edp_q, *models_.edp);
  run_product(ed2p_q, *models_.ed2p);

  // Time/energy targets: both models predict over one shared design matrix;
  // each query then replays the single-path rails in clock order and selects
  // on its own characterization.
  if (!te_q.empty()) {
    const ml::matrix x = build_design(te_q);
    std::vector<double> t_pred(x.rows());
    std::vector<double> e_pred(x.rows());
    models_.time->predict_into(x, t_pred);
    models_.energy->predict_into(x, e_pred);
    metrics::characterization c;
    for (std::size_t i = 0; i < te_q.size(); ++i) {
      const std::size_t q = te_q[i];
      c.points.clear();
      c.points.reserve(n_clocks);
      bool rejected = false;
      for (std::size_t ci = 0; ci < n_clocks; ++ci) {
        const megahertz f = spec_.core_clocks[ci];
        const double t = t_pred[i * n_clocks + ci];
        const double e = e_pred[i * n_clocks + ci];
        if (!std::isfinite(t) || !std::isfinite(e)) {
          out[q].reason =
              "non-finite time/energy prediction at " + std::to_string(f.value) + " MHz";
          rejected = true;
          break;
        }
        if (t <= 0.0 || e <= 0.0) {
          out[q].reason =
              "non-positive time/energy prediction at " + std::to_string(f.value) + " MHz";
          rejected = true;
          break;
        }
        c.points.push_back({{spec_.memory_clock, f}, t, e});
      }
      if (rejected) continue;
      c.default_index = spec_.default_clock_index;
      finish(out[q], c.points[metrics::select(c, queries[q].target)].config);
    }
  }
  return out;
}

frequency_config frequency_planner::plan(const gpusim::static_features& k,
                                         const metrics::target& target) const {
  using kind = metrics::target::kind;
  // MIN_EDP / MIN_ED2P use their dedicated single-target models, as in the
  // paper's prediction phase (Sec. 6.2).
  if (target.k == kind::min_edp || target.k == kind::min_ed2p) {
    const ml::regressor& model = target.k == kind::min_edp ? *models_.edp : *models_.ed2p;
    megahertz best = spec_.default_core_clock();
    double best_v = std::numeric_limits<double>::infinity();
    for (const megahertz f : spec_.core_clocks) {
      const double v = model.predict_one(model_input(k, f));
      if (v < best_v) {
        best_v = v;
        best = f;
      }
    }
    return {spec_.memory_clock, best};
  }
  const auto c = predict_characterization(k);
  return c.points[metrics::select(c, target)].config;
}

}  // namespace synergy

#include "synergy/guarded_planner.hpp"

#include <chrono>
#include <utility>

#include "synergy/telemetry/telemetry.hpp"

namespace synergy {

namespace tel = telemetry;

guarded_planner::guarded_planner(gpusim::device_spec spec,
                                 std::shared_ptr<const frequency_planner> planner,
                                 std::shared_ptr<const tuning_table> table,
                                 drift_options drift)
    : spec_(std::move(spec)),
      planner_(std::move(planner)),
      table_(std::move(table)),
      drift_(drift) {}

plan_decision guarded_planner::plan(const std::string& kernel,
                                    const gpusim::static_features& k,
                                    const metrics::target& target) const {
#if SYNERGY_TELEMETRY_ENABLED
  // Plan latency feeds the snapshot's p50/p99 (wall clock, so the
  // instrument is on the exporter's volatile list — Prometheus only).
  struct latency_probe {
    std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
    ~latency_probe() {
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      SYNERGY_HISTOGRAM_OBSERVE("planner.plan_latency_us", us, 0.1, 1.0, 10.0, 100.0,
                                1000.0, 10000.0);
    }
  } probe_latency;
#endif
  return plan_impl(kernel, k, target);
}

void guarded_planner::fall_through(plan_decision& out, const std::string& kernel,
                                   const metrics::target& target, bool probe) const {
  // Tier 2: the compiled tuning-table artefact.
  if (table_ && !probe) {
    if (const auto entry = table_->find(kernel, target)) {
      table_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      SYNERGY_COUNTER_ADD("planner.fallback_table", 1);
      SYNERGY_INSTANT(tel::category::plan, "planner.fallback", {"tier", 1.0},
                      {"ood", out.ood ? 1.0 : 0.0});
      out.config = *entry;
      // A stale artefact may carry clocks this device cannot run; snap them.
      if (!spec_.supports_core_clock(out.config.core)) {
        out.config.core = spec_.nearest_core_clock(out.config.core);
        out.clamped = true;
        SYNERGY_COUNTER_ADD("planner.clock_clamped", 1);
      }
      if (!spec_.supports_memory_clock(out.config.memory)) {
        out.config.memory = spec_.memory_clock;
        out.clamped = true;
      }
      out.tier = plan_tier::tuning_table;
      return;
    }
  }

  // Tier 3: driver default clocks — always available, never wrong, merely
  // unoptimised.
  default_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  SYNERGY_COUNTER_ADD("planner.fallback_default", 1);
  SYNERGY_INSTANT(tel::category::plan, "planner.fallback", {"tier", 2.0},
                  {"ood", out.ood ? 1.0 : 0.0});
  out.config = spec_.default_config();
  out.tier = plan_tier::default_clocks;
}

plan_decision guarded_planner::plan_impl(const std::string& kernel,
                                         const gpusim::static_features& k,
                                         const metrics::target& target) const {
  SYNERGY_COUNTER_ADD("planner.plans", 1);
  plan_decision out;

  // Tier 1: the guarded model.
  bool probe = false;
  if (planner_) {
    if (drift_.quarantined()) {
      // Atomic fetch-add keeps the probe cadence exact under concurrency:
      // every Nth quarantined plan probes, no matter how calls interleave.
      const std::size_t count =
          quarantine_rejections_.fetch_add(1, std::memory_order_relaxed) + 1;
      SYNERGY_COUNTER_ADD("planner.quarantine_rejections", 1);
      out.reason = "model set quarantined: " + drift_.quarantine_reason();
      // A deterministic minority of quarantined plans skips the table tier
      // so retraining evidence gains default-clock samples (see
      // set_quarantine_probe_every).
      const std::size_t every = quarantine_probe_every_.load(std::memory_order_relaxed);
      probe = every > 0 && count % every == 0;
      if (probe) {
        quarantine_probes_.fetch_add(1, std::memory_order_relaxed);
        out.probe = true;
        SYNERGY_COUNTER_ADD("planner.quarantine_probes", 1);
      }
    } else {
      auto guarded = planner_->plan_guarded(k, target);
      out.ood = guarded.ood;
      out.clamped = guarded.clamped;
      if (guarded.usable()) {
        model_plans_.fetch_add(1, std::memory_order_relaxed);
        SYNERGY_COUNTER_ADD("planner.plan_model", 1);
        if (guarded.clamped) SYNERGY_COUNTER_ADD("planner.clock_clamped", 1);
        out.config = *guarded.config;
        out.tier = plan_tier::model;
        return out;
      }
      if (guarded.ood) {
        ood_rejections_.fetch_add(1, std::memory_order_relaxed);
        SYNERGY_COUNTER_ADD("planner.ood_rejections", 1);
      } else {
        prediction_rejections_.fetch_add(1, std::memory_order_relaxed);
        SYNERGY_COUNTER_ADD("planner.prediction_rejections", 1);
      }
      out.reason = guarded.reason;
    }
  } else {
    out.reason = "no model set loaded";
  }

  fall_through(out, kernel, target, probe);
  return out;
}

std::vector<plan_decision> guarded_planner::plan_batch(
    std::span<const plan_request> reqs) const {
  std::vector<plan_decision> out(reqs.size());
  if (reqs.empty()) return out;
#if SYNERGY_TELEMETRY_ENABLED
  struct latency_probe {
    std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
    ~latency_probe() {
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      SYNERGY_HISTOGRAM_OBSERVE("planner.plan_batch_latency_us", us, 1.0, 10.0, 100.0,
                                1000.0, 10000.0, 100000.0);
    }
  } probe_latency;
#endif
  SYNERGY_COUNTER_ADD("planner.plans", static_cast<std::int64_t>(reqs.size()));

  if (planner_ && drift_.quarantined()) {
    // One quarantine check and one counter fetch-add cover the whole batch;
    // the per-request probe cadence is computed from the reserved counter
    // range, so it is identical to issuing the requests one by one.
    const std::size_t every = quarantine_probe_every_.load(std::memory_order_relaxed);
    const std::size_t start =
        quarantine_rejections_.fetch_add(reqs.size(), std::memory_order_relaxed);
    SYNERGY_COUNTER_ADD("planner.quarantine_rejections",
                        static_cast<std::int64_t>(reqs.size()));
    const std::string reason = "model set quarantined: " + drift_.quarantine_reason();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      out[i].reason = reason;
      const bool probe = every > 0 && (start + i + 1) % every == 0;
      if (probe) {
        quarantine_probes_.fetch_add(1, std::memory_order_relaxed);
        out[i].probe = true;
        SYNERGY_COUNTER_ADD("planner.quarantine_probes", 1);
      }
      fall_through(out[i], reqs[i].kernel, reqs[i].target, probe);
    }
    return out;
  }

  if (planner_) {
    // Healthy model tier: one envelope pass and one fused predict per model
    // for the whole batch.
    std::vector<guarded_query> queries;
    queries.reserve(reqs.size());
    for (const plan_request& r : reqs) queries.push_back({r.features, r.target});
    const auto guarded = planner_->plan_guarded_batch(queries);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const guarded_plan& g = guarded[i];
      out[i].ood = g.ood;
      out[i].clamped = g.clamped;
      if (g.usable()) {
        model_plans_.fetch_add(1, std::memory_order_relaxed);
        SYNERGY_COUNTER_ADD("planner.plan_model", 1);
        if (g.clamped) SYNERGY_COUNTER_ADD("planner.clock_clamped", 1);
        out[i].config = *g.config;
        out[i].tier = plan_tier::model;
        continue;
      }
      if (g.ood) {
        ood_rejections_.fetch_add(1, std::memory_order_relaxed);
        SYNERGY_COUNTER_ADD("planner.ood_rejections", 1);
      } else {
        prediction_rejections_.fetch_add(1, std::memory_order_relaxed);
        SYNERGY_COUNTER_ADD("planner.prediction_rejections", 1);
      }
      out[i].reason = g.reason;
      fall_through(out[i], reqs[i].kernel, reqs[i].target, /*probe=*/false);
    }
    return out;
  }

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    out[i].reason = "no model set loaded";
    fall_through(out[i], reqs[i].kernel, reqs[i].target, /*probe=*/false);
  }
  return out;
}

void guarded_planner::install(std::shared_ptr<const frequency_planner> planner) {
  planner_ = std::move(planner);
  drift_.reset();
  generation_.fetch_add(1, std::memory_order_release);
  SYNERGY_COUNTER_ADD("planner.model_installed", 1);
  SYNERGY_INSTANT(tel::category::plan, "planner.model_installed",
                  {"has_model", planner_ ? 1.0 : 0.0});
}

void guarded_planner::observe(const std::string& kernel, const gpusim::static_features& k,
                              common::megahertz core_clock, double measured_energy_j) {
  if (!planner_) return;
  const bool was_quarantined = drift_.quarantined();
  const auto predicted = planner_->predicted_energy(k, core_clock);
  if (!predicted) {
    // A model that cannot even produce a finite prediction is drift by
    // definition; feed an invalid pair so the rejection is counted.
    drift_.observe(kernel, 0.0, measured_energy_j);
  } else {
    drift_.observe(kernel, *predicted, measured_energy_j);
  }
  // Quarantine onset changes every decision the chain would produce; bump
  // the generation so plan caches keyed on it drop their model-tier entries.
  if (!was_quarantined && drift_.quarantined())
    generation_.fetch_add(1, std::memory_order_release);
}

guard_state guarded_planner::export_state() const {
  guard_state s;
  s.generation = generation_.load(std::memory_order_acquire);
  s.model_plans = model_plans_.load(std::memory_order_relaxed);
  s.table_fallbacks = table_fallbacks_.load(std::memory_order_relaxed);
  s.default_fallbacks = default_fallbacks_.load(std::memory_order_relaxed);
  s.ood_rejections = ood_rejections_.load(std::memory_order_relaxed);
  s.prediction_rejections = prediction_rejections_.load(std::memory_order_relaxed);
  s.quarantine_rejections = quarantine_rejections_.load(std::memory_order_relaxed);
  s.quarantine_probes = quarantine_probes_.load(std::memory_order_relaxed);
  s.drift = drift_.export_state();
  return s;
}

bool guarded_planner::import_state(const guard_state& s) {
  if (!drift_.import_state(s.drift)) return false;
  generation_.store(s.generation, std::memory_order_release);
  model_plans_.store(s.model_plans, std::memory_order_relaxed);
  table_fallbacks_.store(s.table_fallbacks, std::memory_order_relaxed);
  default_fallbacks_.store(s.default_fallbacks, std::memory_order_relaxed);
  ood_rejections_.store(s.ood_rejections, std::memory_order_relaxed);
  prediction_rejections_.store(s.prediction_rejections, std::memory_order_relaxed);
  quarantine_rejections_.store(s.quarantine_rejections, std::memory_order_relaxed);
  quarantine_probes_.store(s.quarantine_probes, std::memory_order_relaxed);
  return true;
}

}  // namespace synergy

#pragma once

/// \file synergy.hpp
/// Umbrella header for the SYnergy public API.

#include "simsycl/sycl.hpp"                    // IWYU pragma: export
#include "synergy/context.hpp"                 // IWYU pragma: export
#include "synergy/drift_monitor.hpp"           // IWYU pragma: export
#include "synergy/guarded_planner.hpp"         // IWYU pragma: export
#include "synergy/metrics/energy_metrics.hpp"  // IWYU pragma: export
#include "synergy/model_store.hpp"             // IWYU pragma: export
#include "synergy/planner.hpp"                 // IWYU pragma: export
#include "synergy/planner_source.hpp"          // IWYU pragma: export
#include "synergy/queue.hpp"                   // IWYU pragma: export
#include "synergy/trainer.hpp"                 // IWYU pragma: export
#include "synergy/tuning_table.hpp"            // IWYU pragma: export

#pragma once

/// \file trainer.hpp
/// The training phase of the modeling methodology (paper Sec. 6.1, Fig. 6
/// steps 1-3).
///
/// A parametric micro-benchmark generator produces kernels spanning the
/// instruction-mix space of Table 1 (the paper builds its training set from
/// purpose-written micro-benchmarks, not from the evaluation benchmarks).
/// Each micro-benchmark is executed on a noisy simulated device across a
/// sweep of core frequencies; the measurements (per-work-item time, energy,
/// EDP, ED2P) become the training sets of the four single-target models.

#include <cstdint>
#include <vector>

#include "synergy/gpusim/device.hpp"
#include "synergy/gpusim/device_spec.hpp"
#include "synergy/ml/dataset.hpp"
#include "synergy/planner.hpp"

namespace synergy {

struct trainer_options {
  /// Number of generated micro-benchmarks.
  std::size_t n_microbenchmarks{48};
  /// Core clocks sampled per micro-benchmark (evenly spread over the table;
  /// clamped to the table size).
  std::size_t freq_samples{32};
  /// Measurement repetitions averaged per (kernel, frequency) pair.
  std::size_t repetitions{3};
  /// Measurement noise applied by the training device (the real system's
  /// run-to-run variation).
  double time_noise_sigma{0.015};
  double power_noise_sigma{0.015};
  std::uint64_t seed{0x7261696eULL};
};

/// Training measurements: one dataset per modelled metric, identical design
/// matrices (features + clock). Targets are normalised to each kernel's own
/// default-frequency measurement, so the models learn frequency response
/// rather than absolute magnitude; every selection the planner performs is
/// scale-invariant, so normalised predictions are sufficient.
struct training_sets {
  ml::dataset time;    ///< t(f) / t(f_default)
  ml::dataset energy;  ///< e(f) / e(f_default)
  ml::dataset edp;     ///< log of the normalised energy-delay product
  ml::dataset ed2p;    ///< log of the normalised energy-delay-squared product
};

class model_trainer {
 public:
  explicit model_trainer(gpusim::device_spec spec, trainer_options options = {});

  /// Generate the micro-benchmark suite: rotating families (compute-bound
  /// float, int-heavy, special-function, memory-streaming, local-memory,
  /// balanced) with randomised magnitudes and dynamic execution hints that
  /// the static features cannot see.
  [[nodiscard]] std::vector<gpusim::kernel_profile> generate_microbenchmarks() const;

  /// Execute the suite across the frequency sweep on a noisy device and
  /// collect the four training sets (Fig. 6 step 2).
  [[nodiscard]] training_sets measure(
      const std::vector<gpusim::kernel_profile>& microbenchmarks) const;

  /// Same sweep on a caller-provided board — the online retraining path:
  /// measuring on the live (possibly power-skewed) device is what lets a
  /// retrained challenger learn the board's post-drift behaviour. The sweep
  /// drives real executions, so it advances the board's virtual time and
  /// energy counters; clocks are restored to the driver defaults afterwards.
  [[nodiscard]] training_sets measure_on(
      gpusim::device& dev, const std::vector<gpusim::kernel_profile>& microbenchmarks) const;

  /// Fit one regressor per metric (Fig. 6 step 3).
  [[nodiscard]] trained_models fit(const training_sets& sets, ml::algorithm time_alg,
                                   ml::algorithm energy_alg, ml::algorithm edp_alg,
                                   ml::algorithm ed2p_alg) const;

  /// End-to-end training with the paper's best algorithm per metric
  /// (Table 2: Linear for performance and ED2P, Random Forest for energy
  /// and EDP).
  [[nodiscard]] trained_models train_default() const;

  /// The core clocks the sweep samples.
  [[nodiscard]] std::vector<common::megahertz> sampled_clocks() const;

  [[nodiscard]] const gpusim::device_spec& spec() const { return spec_; }
  [[nodiscard]] const trainer_options& options() const { return options_; }

 private:
  gpusim::device_spec spec_;
  trainer_options options_;
};

}  // namespace synergy

#pragma once

/// \file planner.hpp
/// Frequency planning: from a kernel's static features and an energy target
/// to a concrete (memory, core) clock configuration (paper Fig. 6, steps
/// 5-6).
///
/// Two planners are provided:
///  - frequency_planner: the paper's approach — four trained per-metric
///    models (time, energy, EDP, ED2P) predict each metric at every
///    supported frequency; a search picks the configuration satisfying the
///    requested target.
///  - oracle plans: the same search over the simulator's exact costs, used
///    as ground truth for the accuracy analysis (Sec. 8.3: "actual optimal
///    frequency") and as the reference tuner in the scaling study.

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "synergy/gpusim/device_spec.hpp"
#include "synergy/gpusim/dvfs_model.hpp"
#include "synergy/gpusim/kernel_profile.hpp"
#include "synergy/metrics/energy_metrics.hpp"
#include "synergy/ml/feature_envelope.hpp"
#include "synergy/ml/regressor.hpp"

namespace synergy {

/// The four single-target models of the training phase (paper Sec. 6.1),
/// plus the feature envelope the training design matrix covered — the
/// in-distribution region inside which predictions are trustworthy. The
/// envelope is optional (legacy model sets lack it); without one, guarded
/// planning skips the out-of-distribution check.
struct trained_models {
  std::unique_ptr<ml::regressor> time;
  std::unique_ptr<ml::regressor> energy;
  std::unique_ptr<ml::regressor> edp;
  std::unique_ptr<ml::regressor> ed2p;
  ml::feature_envelope envelope;

  [[nodiscard]] bool complete() const {
    return time && energy && edp && ed2p && time->fitted() && energy->fitted() &&
           edp->fitted() && ed2p->fitted();
  }
};

/// Model input encoding: the 10 static features plus a small basis over the
/// core clock — f (GHz), 1/f, log f, and f^3 (the memory clock is fixed on
/// every paper device). The frequency basis lets even the linear models
/// express the roofline time shape (a + b/f) and the V^2 f power growth;
/// tree/kernel models simply ignore redundant columns.
inline constexpr std::size_t model_input_dim = 14;
[[nodiscard]] std::array<double, model_input_dim> model_input(const gpusim::static_features& k,
                                                              common::megahertz core_clock);

/// Exact (simulator ground-truth) characterization of a kernel profile over
/// every supported core clock of a device.
[[nodiscard]] metrics::characterization oracle_characterization(
    const gpusim::device_spec& spec, const gpusim::kernel_profile& profile,
    const gpusim::dvfs_model& model = {});

/// Exact optimal frequency for a target (the Sec. 8.3 "actual optimum").
[[nodiscard]] common::frequency_config oracle_plan(const gpusim::device_spec& spec,
                                                   const gpusim::kernel_profile& profile,
                                                   const metrics::target& target,
                                                   const gpusim::dvfs_model& model = {});

/// Outcome of a sanity-railed plan (frequency_planner::plan_guarded).
/// `config` is empty when the model tier must not be trusted for this
/// request; `reason` then names the rail that fired. The flags are reported
/// even on success so callers can count near-misses.
struct guarded_plan {
  std::optional<common::frequency_config> config;
  bool ood{false};      ///< feature vector outside the training envelope
  bool clamped{false};  ///< planned clocks were snapped onto the supported table
  std::string reason;   ///< why the plan was rejected (empty when config is set)

  [[nodiscard]] bool usable() const { return config.has_value(); }
};

/// One request in a batched guarded plan (frequency_planner::plan_guarded_batch).
struct guarded_query {
  gpusim::static_features features;
  metrics::target target;
};

/// Model-driven planner bound to one device spec.
class frequency_planner {
 public:
  frequency_planner(gpusim::device_spec spec, trained_models models);

  /// Predicted per-work-item characterization of a kernel over all clocks.
  [[nodiscard]] metrics::characterization predict_characterization(
      const gpusim::static_features& k) const;

  /// The frequency configuration satisfying `target` according to the
  /// models. MIN_EDP/MIN_ED2P use their dedicated models; ES_x/PL_x search
  /// the predicted time/energy characterization.
  [[nodiscard]] common::frequency_config plan(const gpusim::static_features& k,
                                              const metrics::target& target) const;

  /// `plan` behind sanity rails: rejects out-of-distribution feature
  /// vectors (training envelope, when the model set ships one) and
  /// non-finite / non-positive metric predictions, and snaps the planned
  /// clocks onto the device's supported tables. Never throws for bad
  /// predictions — a rejected plan is a structured outcome the degradation
  /// chain (guarded_planner) falls through.
  [[nodiscard]] guarded_plan plan_guarded(const gpusim::static_features& k,
                                          const metrics::target& target) const;

  /// Batched plan_guarded: one envelope pass over the whole batch, then one
  /// fused predict per model over a contiguous design matrix (queries grouped
  /// by the model their target needs). Decision `i` is bitwise identical to
  /// `plan_guarded(queries[i].features, queries[i].target)` — the batched
  /// inference path preserves per-row arithmetic order, and every rail fires
  /// in the same clock order with the same reason strings.
  [[nodiscard]] std::vector<guarded_plan> plan_guarded_batch(
      std::span<const guarded_query> queries) const;

  /// Predicted per-item energy at an exact operating point (drift
  /// monitoring compares this against the measured sample). Empty when the
  /// model emits a non-finite or non-positive value.
  [[nodiscard]] std::optional<double> predicted_energy(const gpusim::static_features& k,
                                                       common::megahertz core_clock) const;

  [[nodiscard]] const gpusim::device_spec& spec() const { return spec_; }
  [[nodiscard]] const trained_models& models() const { return models_; }

 private:
  gpusim::device_spec spec_;
  trained_models models_;
};

}  // namespace synergy

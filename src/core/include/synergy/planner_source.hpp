#pragma once

/// \file planner_source.hpp
/// The seam between the queue and an online model-lifecycle layer.
///
/// A planner source is anything that can answer "which trained planner is
/// the current champion?" — in practice the lifecycle model registry
/// (synergy/lifecycle/model_registry.hpp), which swaps champions atomically
/// when a retrained challenger is promoted or a regression rolls back.
/// Keeping only this two-method interface in core lets `synergy::queue`
/// follow promotions without the core library depending on the lifecycle
/// subsystem.
///
/// Contract: `generation()` is a monotonically increasing counter bumped on
/// every champion swap, and `current_planner()` returns the champion
/// installed by some generation `<=` the one a caller just read — both must
/// be safe to call concurrently with swaps (readers never block writers).
/// Consumers poll the generation on their hot path (one relaxed atomic
/// load), and only re-pull the planner when it moved.

#include <cstdint>
#include <memory>

namespace synergy {

class frequency_planner;

class planner_source {
 public:
  virtual ~planner_source() = default;

  /// Monotonic swap counter; a change tells consumers to re-pull.
  [[nodiscard]] virtual std::uint64_t generation() const = 0;

  /// The current champion planner (nullptr while no version is installed).
  [[nodiscard]] virtual std::shared_ptr<const frequency_planner> current_planner() const = 0;
};

}  // namespace synergy

#pragma once

/// \file drift_monitor.hpp
/// Rolling prediction-error tracking and model quarantine.
///
/// The deployment story (paper Sec. 3.2) trains once per device product and
/// ships the model directory cluster-wide — which means a board whose power
/// behaviour drifts (aging, firmware updates, thermal derating) silently
/// invalidates the models it runs under. The drift monitor closes that loop:
/// every measured (kernel, clocks) sample is compared against the model's
/// prediction, a per-device rolling relative-error statistic is maintained,
/// and when it crosses the threshold the model set is quarantined — the
/// guarded planner drops to the tuning-table/default tier and telemetry
/// surfaces a retrain recommendation.
///
/// The comparison is scale-free: models predict *normalised per-item*
/// metrics while measurements are absolute joules, so the first sample of
/// each kernel calibrates a per-kernel scale and subsequent samples measure
/// how far the measured/predicted ratio moved from that baseline. A good
/// model on a stable device keeps the ratio constant across clocks (the
/// model captures the frequency response); a drifted device moves it.
///
/// Quarantine latches: once fired it stays until reset(), so two seeded
/// runs of the same workload quarantine at the same sample and every plan
/// after the trip point resolves through the same tier — byte-identical
/// degradation.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace synergy {

struct drift_options {
  /// Rolling window of relative errors the statistic averages over.
  std::size_t window{32};
  /// Samples required before the monitor is allowed to quarantine.
  std::size_t min_samples{8};
  /// Quarantine when mean |relative error| over the window exceeds this.
  double threshold{0.25};
};

/// Full rolling state of a drift_monitor (checkpoint/resume support).
struct drift_state {
  std::map<std::string, double> scale;
  std::vector<double> window;
  std::size_t next{0};
  double window_sum{0.0};
  std::size_t total{0};
  std::size_t rejected{0};
  bool quarantined{false};
  std::string reason;
};

class drift_monitor {
 public:
  explicit drift_monitor(drift_options options = {});

  /// Feed one (predicted, measured) pair for `kernel`. Non-finite or
  /// non-positive values are rejected (counted, never averaged). The first
  /// pair per kernel calibrates that kernel's scale and contributes zero
  /// error by construction.
  void observe(const std::string& kernel, double predicted, double measured);

  /// Mean |relative error| over the current window (0 while empty).
  [[nodiscard]] double rolling_error() const;

  [[nodiscard]] std::size_t samples() const { return total_; }
  [[nodiscard]] std::size_t rejected_samples() const { return rejected_; }

  [[nodiscard]] bool quarantined() const { return quarantined_; }
  /// Human-readable trip report ("rolling error 0.41 > threshold 0.25 ...").
  [[nodiscard]] const std::string& quarantine_reason() const { return reason_; }

  /// Lift the quarantine and forget all rolling state (e.g. after a
  /// retrain installed fresh models).
  void reset();

  [[nodiscard]] const drift_options& options() const { return opt_; }

  /// Snapshot the exact rolling state for checkpointing. Restoring it into a
  /// monitor with the same options makes subsequent observe() calls behave
  /// bit-identically to the exporting monitor.
  [[nodiscard]] drift_state export_state() const;
  /// Replace the rolling state wholesale. Returns false (and leaves the
  /// monitor untouched) when the snapshot is internally inconsistent with
  /// this monitor's options (e.g. window larger than configured).
  bool import_state(const drift_state& s);

 private:
  drift_options opt_;
  std::map<std::string, double> scale_;  ///< per-kernel measured/predicted baseline
  std::vector<double> window_;           ///< ring buffer of |relative error|
  std::size_t next_{0};
  double window_sum_{0.0};
  std::size_t total_{0};
  std::size_t rejected_{0};
  bool quarantined_{false};
  std::string reason_;
};

}  // namespace synergy

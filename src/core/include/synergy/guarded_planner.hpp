#pragma once

/// \file guarded_planner.hpp
/// The deterministic prediction degradation chain:
///
///     guarded model  →  tuning-table entry  →  default clocks
///
/// Every frequency decision the stack makes (queue target resolution,
/// cluster policy plans, the synergy_plan compile step) resolves through
/// this chain. The model tier only answers when the model set is loaded,
/// not quarantined by the drift monitor, the feature vector is inside the
/// training envelope, and every prediction passes the sanity rails
/// (frequency_planner::plan_guarded); otherwise the request falls to the
/// compiled tuning-table artefact, and failing that to the device's driver
/// default clocks. Every fallback is counted in the metrics registry and
/// emitted as a trace instant, so a fleet silently running on degraded
/// tiers is visible, not mysterious.

#include <memory>
#include <optional>
#include <string>

#include "synergy/drift_monitor.hpp"
#include "synergy/planner.hpp"
#include "synergy/tuning_table.hpp"

namespace synergy {

/// Which tier of the degradation chain produced a plan.
enum class plan_tier { model, tuning_table, default_clocks };

[[nodiscard]] constexpr const char* to_string(plan_tier t) {
  switch (t) {
    case plan_tier::model: return "model";
    case plan_tier::tuning_table: return "tuning_table";
    case plan_tier::default_clocks: return "default_clocks";
  }
  return "?";
}

/// One resolved decision: the clocks to run at, the tier that produced
/// them, and — when the model tier was skipped — why.
struct plan_decision {
  common::frequency_config config;
  plan_tier tier{plan_tier::default_clocks};
  bool ood{false};      ///< model tier rejected the features as out-of-distribution
  bool clamped{false};  ///< clocks were snapped onto the supported table
  bool probe{false};    ///< deliberate default-clock quarantine probe
  std::string reason;   ///< why the chain fell past the model tier (empty on model)
};

class guarded_planner {
 public:
  /// Either tier may be absent: a missing/corrupt model set degrades the
  /// chain to tuning-table/default, a missing artefact to model/default.
  guarded_planner(gpusim::device_spec spec,
                  std::shared_ptr<const frequency_planner> planner = nullptr,
                  std::shared_ptr<const tuning_table> table = nullptr,
                  drift_options drift = {});

  /// Resolve (kernel, features, target) down the chain. Deterministic:
  /// identical state and inputs produce the identical decision.
  [[nodiscard]] plan_decision plan(const std::string& kernel,
                                   const gpusim::static_features& k,
                                   const metrics::target& target);

  /// Feed one measured energy sample for drift tracking. `core_clock` is
  /// the clock the sample was actually taken at; the model's prediction at
  /// that clock is compared against `measured_energy_j`. No-op without a
  /// model tier.
  void observe(const std::string& kernel, const gpusim::static_features& k,
               common::megahertz core_clock, double measured_energy_j);

  /// Swap the model tier for a freshly promoted planner (or nullptr to
  /// drop to the lower tiers). Resets the drift monitor — the new model
  /// must re-calibrate its per-kernel baselines and re-earn (or re-lose)
  /// trust from a clean statistic — which also lifts any quarantine, so
  /// the promotion atomically restores the model tier. Not a concurrency
  /// primitive: callers serialise install() against plan()/observe() (the
  /// queue and the cluster simulator both do).
  void install(std::shared_ptr<const frequency_planner> planner);

  [[nodiscard]] bool quarantined() const { return drift_.quarantined(); }
  [[nodiscard]] const drift_monitor& drift() const { return drift_; }
  /// Lift a quarantine (after installing retrained models).
  void reset_quarantine() { drift_.reset(); }

  /// Quarantine probes: while quarantined, every Nth plan resolves at the
  /// default clocks even when a tuning-table entry exists. The table was
  /// compiled against the same pre-drift measurements the quarantined model
  /// was trained on, and its per-kernel clocks sit close to the model's —
  /// samples taken there carry almost no frequency contrast. A deterministic
  /// minority of default-clock plans gives whoever is collecting retraining
  /// evidence (the model lifecycle) per-kernel samples at a distant clock
  /// while the fleet keeps the table's efficiency for the rest. 0 disables.
  void set_quarantine_probe_every(std::size_t n) { quarantine_probe_every_ = n; }
  [[nodiscard]] std::size_t quarantine_probes() const { return quarantine_probes_; }

  /// The most recent plan() decision — the energy-attribution layer reads
  /// it to tag the joules a placement spends with the tier that priced
  /// them. Default-constructed before the first plan().
  [[nodiscard]] const plan_decision& last_decision() const { return last_; }

  [[nodiscard]] bool has_model_tier() const { return planner_ != nullptr; }
  [[nodiscard]] bool has_table_tier() const { return table_ != nullptr; }
  [[nodiscard]] const gpusim::device_spec& spec() const { return spec_; }
  [[nodiscard]] const std::shared_ptr<const frequency_planner>& planner() const {
    return planner_;
  }

  // --- fallback accounting (mirrored into the metrics registry) ------------
  [[nodiscard]] std::size_t model_plans() const { return model_plans_; }
  [[nodiscard]] std::size_t table_fallbacks() const { return table_fallbacks_; }
  [[nodiscard]] std::size_t default_fallbacks() const { return default_fallbacks_; }
  [[nodiscard]] std::size_t ood_rejections() const { return ood_rejections_; }
  [[nodiscard]] std::size_t prediction_rejections() const { return prediction_rejections_; }
  [[nodiscard]] std::size_t quarantine_rejections() const { return quarantine_rejections_; }

 private:
  [[nodiscard]] plan_decision plan_impl(const std::string& kernel,
                                        const gpusim::static_features& k,
                                        const metrics::target& target);

  gpusim::device_spec spec_;
  std::shared_ptr<const frequency_planner> planner_;
  std::shared_ptr<const tuning_table> table_;
  drift_monitor drift_;
  plan_decision last_;
  std::size_t model_plans_{0};
  std::size_t table_fallbacks_{0};
  std::size_t default_fallbacks_{0};
  std::size_t ood_rejections_{0};
  std::size_t prediction_rejections_{0};
  std::size_t quarantine_rejections_{0};
  std::size_t quarantine_probe_every_{0};
  std::size_t quarantine_probes_{0};
};

}  // namespace synergy

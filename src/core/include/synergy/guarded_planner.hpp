#pragma once

/// \file guarded_planner.hpp
/// The deterministic prediction degradation chain:
///
///     guarded model  →  tuning-table entry  →  default clocks
///
/// Every frequency decision the stack makes (queue target resolution,
/// cluster policy plans, the synergy_plan compile step) resolves through
/// this chain. The model tier only answers when the model set is loaded,
/// not quarantined by the drift monitor, the feature vector is inside the
/// training envelope, and every prediction passes the sanity rails
/// (frequency_planner::plan_guarded); otherwise the request falls to the
/// compiled tuning-table artefact, and failing that to the device's driver
/// default clocks. Every fallback is counted in the metrics registry and
/// emitted as a trace instant, so a fleet silently running on degraded
/// tiers is visible, not mysterious.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "synergy/drift_monitor.hpp"
#include "synergy/planner.hpp"
#include "synergy/tuning_table.hpp"

namespace synergy {

/// Which tier of the degradation chain produced a plan.
enum class plan_tier { model, tuning_table, default_clocks };

[[nodiscard]] constexpr const char* to_string(plan_tier t) {
  switch (t) {
    case plan_tier::model: return "model";
    case plan_tier::tuning_table: return "tuning_table";
    case plan_tier::default_clocks: return "default_clocks";
  }
  return "?";
}

/// One resolved decision: the clocks to run at, the tier that produced
/// them, and — when the model tier was skipped — why.
struct plan_decision {
  common::frequency_config config;
  plan_tier tier{plan_tier::default_clocks};
  bool ood{false};      ///< model tier rejected the features as out-of-distribution
  bool clamped{false};  ///< clocks were snapped onto the supported table
  bool probe{false};    ///< deliberate default-clock quarantine probe
  std::string reason;   ///< why the chain fell past the model tier (empty on model)
};

/// One request in a batched resolution (guarded_planner::plan_batch).
struct plan_request {
  std::string kernel;
  gpusim::static_features features;
  metrics::target target;
};

/// Full mutable state of a guarded_planner (checkpoint/resume support): the
/// chain generation, every fallback counter, and the drift monitor's rolling
/// state. The tiers themselves (model set, tuning table) are rebuilt from
/// their on-disk artefacts by the resuming process, not serialized.
struct guard_state {
  std::uint64_t generation{0};
  std::size_t model_plans{0};
  std::size_t table_fallbacks{0};
  std::size_t default_fallbacks{0};
  std::size_t ood_rejections{0};
  std::size_t prediction_rejections{0};
  std::size_t quarantine_rejections{0};
  std::size_t quarantine_probes{0};
  drift_state drift;
};

class guarded_planner {
 public:
  /// Either tier may be absent: a missing/corrupt model set degrades the
  /// chain to tuning-table/default, a missing artefact to model/default.
  guarded_planner(gpusim::device_spec spec,
                  std::shared_ptr<const frequency_planner> planner = nullptr,
                  std::shared_ptr<const tuning_table> table = nullptr,
                  drift_options drift = {});

  /// Resolve (kernel, features, target) down the chain. Deterministic:
  /// identical state and inputs produce the identical decision. Safe to call
  /// concurrently with other plan()/plan_batch() calls — the hot path only
  /// reads planner state and bumps atomic counters; install()/observe()/
  /// reset_quarantine() must still be serialised against planning (the plan
  /// service does this with a reader/writer lock).
  [[nodiscard]] plan_decision plan(const std::string& kernel,
                                   const gpusim::static_features& k,
                                   const metrics::target& target) const;

  /// Batched resolution: amortises the guardrails — one quarantine check for
  /// the whole batch, and (on the healthy path) one envelope pass plus one
  /// fused predict per model via frequency_planner::plan_guarded_batch.
  /// Decision `i` is identical to `plan(reqs[i]...)`, including tier counters
  /// and quarantine-probe cadence.
  [[nodiscard]] std::vector<plan_decision> plan_batch(
      std::span<const plan_request> reqs) const;

  /// Feed one measured energy sample for drift tracking. `core_clock` is
  /// the clock the sample was actually taken at; the model's prediction at
  /// that clock is compared against `measured_energy_j`. No-op without a
  /// model tier.
  void observe(const std::string& kernel, const gpusim::static_features& k,
               common::megahertz core_clock, double measured_energy_j);

  /// Swap the model tier for a freshly promoted planner (or nullptr to
  /// drop to the lower tiers). Resets the drift monitor — the new model
  /// must re-calibrate its per-kernel baselines and re-earn (or re-lose)
  /// trust from a clean statistic — which also lifts any quarantine, so
  /// the promotion atomically restores the model tier. Not a concurrency
  /// primitive: callers serialise install() against plan()/observe() (the
  /// queue and the cluster simulator both do).
  void install(std::shared_ptr<const frequency_planner> planner);

  [[nodiscard]] bool quarantined() const { return drift_.quarantined(); }
  [[nodiscard]] const drift_monitor& drift() const { return drift_; }
  /// Lift a quarantine (after installing retrained models).
  void reset_quarantine() {
    drift_.reset();
    generation_.fetch_add(1, std::memory_order_release);
  }

  /// Monotonic chain-state generation: bumped whenever the decisions this
  /// chain would produce may change — model install, quarantine onset
  /// (detected in observe()), and quarantine lift. Plan caches key on it so a
  /// champion promotion invalidates by generation bump instead of a global
  /// flush, and so callers that install() directly on a shared guard still
  /// invalidate every cache layered above it.
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Quarantine probes: while quarantined, every Nth plan resolves at the
  /// default clocks even when a tuning-table entry exists. The table was
  /// compiled against the same pre-drift measurements the quarantined model
  /// was trained on, and its per-kernel clocks sit close to the model's —
  /// samples taken there carry almost no frequency contrast. A deterministic
  /// minority of default-clock plans gives whoever is collecting retraining
  /// evidence (the model lifecycle) per-kernel samples at a distant clock
  /// while the fleet keeps the table's efficiency for the rest. 0 disables.
  void set_quarantine_probe_every(std::size_t n) {
    quarantine_probe_every_.store(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t quarantine_probes() const {
    return quarantine_probes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool has_model_tier() const { return planner_ != nullptr; }
  [[nodiscard]] bool has_table_tier() const { return table_ != nullptr; }
  [[nodiscard]] const gpusim::device_spec& spec() const { return spec_; }
  [[nodiscard]] const std::shared_ptr<const frequency_planner>& planner() const {
    return planner_;
  }

  // --- fallback accounting (mirrored into the metrics registry). Counters
  // are atomic so plans can be served concurrently; relaxed ordering is
  // enough — they are statistics, not synchronisation. -----------------------
  [[nodiscard]] std::size_t model_plans() const {
    return model_plans_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t table_fallbacks() const {
    return table_fallbacks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t default_fallbacks() const {
    return default_fallbacks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t ood_rejections() const {
    return ood_rejections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t prediction_rejections() const {
    return prediction_rejections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t quarantine_rejections() const {
    return quarantine_rejections_.load(std::memory_order_relaxed);
  }

  /// Snapshot generation, counters, and drift state for checkpointing.
  /// Not thread-safe against concurrent planning (callers serialise, as with
  /// install()).
  [[nodiscard]] guard_state export_state() const;
  /// Restore a snapshot taken by export_state(). Returns false (guard
  /// untouched) when the drift portion is inconsistent with this guard's
  /// drift options. Same serialisation requirements as install().
  bool import_state(const guard_state& s);

 private:
  [[nodiscard]] plan_decision plan_impl(const std::string& kernel,
                                        const gpusim::static_features& k,
                                        const metrics::target& target) const;

  /// Tiers 2 and 3 (tuning table, default clocks) shared by the single and
  /// batched paths. `out.reason`/`out.ood`/`out.probe` are already set.
  void fall_through(plan_decision& out, const std::string& kernel,
                    const metrics::target& target, bool probe) const;

  gpusim::device_spec spec_;
  std::shared_ptr<const frequency_planner> planner_;
  std::shared_ptr<const tuning_table> table_;
  drift_monitor drift_;
  std::atomic<std::uint64_t> generation_{0};
  mutable std::atomic<std::size_t> model_plans_{0};
  mutable std::atomic<std::size_t> table_fallbacks_{0};
  mutable std::atomic<std::size_t> default_fallbacks_{0};
  mutable std::atomic<std::size_t> ood_rejections_{0};
  mutable std::atomic<std::size_t> prediction_rejections_{0};
  mutable std::atomic<std::size_t> quarantine_rejections_{0};
  std::atomic<std::size_t> quarantine_probe_every_{0};
  mutable std::atomic<std::size_t> quarantine_probes_{0};
};

}  // namespace synergy

#pragma once

/// \file model_store.hpp
/// Crash-safe persistence for trained per-device model sets.
///
/// Deployment on a new system (paper Sec. 3.2) trains the four metric models
/// per device and installs them; applications then load the models matching
/// their target device. The store writes one sealed text file per metric
/// under <dir>/<device-key>/ — plus the training feature envelope — so a
/// cluster can ship a directory of models per GPU product.
///
/// Robustness contract:
///  - every file is wrapped in the versioned CRC-32 envelope
///    (common/envelope.hpp) and written atomically (temp + rename), so a
///    crash mid-save never tears an artefact;
///  - `load` never throws for bad on-disk state: corruption, truncation,
///    version skew, and partial model sets come back as a `load_result`
///    with one diagnostic per file, and callers branch instead of dying;
///  - legacy unsealed files (pre-envelope format) still load, with a
///    diagnostic note recommending a re-save.

#include <filesystem>
#include <string>
#include <vector>

#include "synergy/common/error.hpp"
#include "synergy/planner.hpp"

namespace synergy {

/// Per-file outcome of a model-set load/validate.
enum class model_file_status {
  ok,            ///< parsed and verified
  legacy,        ///< parsed, but unsealed pre-envelope format (re-save advised)
  missing,       ///< file absent
  io_error,      ///< present but unreadable
  corrupt,       ///< checksum/truncation/parse failure
  version_skew,  ///< sealed with a newer payload format than this build reads
};

[[nodiscard]] constexpr const char* to_string(model_file_status s) {
  switch (s) {
    case model_file_status::ok: return "ok";
    case model_file_status::legacy: return "legacy";
    case model_file_status::missing: return "missing";
    case model_file_status::io_error: return "io_error";
    case model_file_status::corrupt: return "corrupt";
    case model_file_status::version_skew: return "version_skew";
  }
  return "?";
}

/// One file's diagnostic within a load_result.
struct model_file_diagnostic {
  std::string file;  ///< file name relative to the device directory
  model_file_status status{model_file_status::ok};
  std::string detail;  ///< failure description (empty when ok)
};

/// Structured outcome of model_store::load — the four models when every
/// metric file verified, and per-file diagnostics either way.
struct load_result {
  trained_models models;
  std::vector<model_file_diagnostic> files;

  /// True when a complete, verified model set was loaded (the optional
  /// feature envelope may still be missing — it degrades the OOD rail,
  /// not the models).
  [[nodiscard]] bool ok() const;
  /// True when any file failed for a reason other than a clean "missing"
  /// (i.e. the on-disk state is damaged, not merely absent).
  [[nodiscard]] bool corrupt() const;
  /// Diagnostics joined one per line, for CLI/log output.
  [[nodiscard]] std::string summary() const;
};

class model_store {
 public:
  explicit model_store(std::filesystem::path root) : root_(std::move(root)) {}

  /// Persist a model set for a device key ("V100", "MI100", ...): one
  /// sealed file per metric, the feature envelope alongside, each written
  /// atomically. Overwrites existing models. Returns an error status (not
  /// an exception) when the set is incomplete or the filesystem rejects
  /// the write.
  [[nodiscard]] common::status save(const std::string& device_key,
                                    const trained_models& models) const;

  /// Load a model set. Never throws for on-disk problems: missing files,
  /// corruption, truncation, and version skew are reported per file in the
  /// returned load_result and `result.ok()` is false. There is no separate
  /// existence check to race against — load once, branch on the result.
  [[nodiscard]] load_result load(const std::string& device_key) const;

  /// Verify a model set without keeping the models (same diagnostics as
  /// load; the CLI `synergy_plan --validate` contract).
  [[nodiscard]] load_result validate(const std::string& device_key) const;

  /// Whether a complete model set *appears* to exist (files present; says
  /// nothing about integrity — prefer load()/validate() and branch on the
  /// result, which cannot race against a concurrent reinstall).
  [[nodiscard]] bool contains(const std::string& device_key) const;

  /// Device keys with at least one model file under the root, sorted.
  [[nodiscard]] std::vector<std::string> device_keys() const;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  [[nodiscard]] std::filesystem::path dir_for(const std::string& device_key) const {
    return root_ / device_key;
  }

  std::filesystem::path root_;
};

}  // namespace synergy

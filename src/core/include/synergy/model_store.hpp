#pragma once

/// \file model_store.hpp
/// Persistence for trained per-device model sets.
///
/// Deployment on a new system (paper Sec. 3.2) trains the four metric models
/// per device and installs them; applications then load the models matching
/// their target device. The store writes one text file per metric under
/// <dir>/<device-key>/ so a cluster can ship a directory of models per GPU
/// product.

#include <filesystem>
#include <string>

#include "synergy/planner.hpp"

namespace synergy {

class model_store {
 public:
  explicit model_store(std::filesystem::path root) : root_(std::move(root)) {}

  /// Persist a model set for a device key ("V100", "MI100", ...). Creates
  /// directories as needed; overwrites existing models.
  void save(const std::string& device_key, const trained_models& models) const;

  /// Load a model set; throws std::runtime_error if any file is missing or
  /// malformed.
  [[nodiscard]] trained_models load(const std::string& device_key) const;

  /// Whether a complete model set exists for the key.
  [[nodiscard]] bool contains(const std::string& device_key) const;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  [[nodiscard]] std::filesystem::path dir_for(const std::string& device_key) const {
    return root_ / device_key;
  }

  std::filesystem::path root_;
};

}  // namespace synergy

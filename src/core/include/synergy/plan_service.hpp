#pragma once

/// \file plan_service.hpp
/// Planner-as-a-service: one shared, concurrent front end for the
/// deterministic degradation chain (guarded model → tuning table → default
/// clocks).
///
/// The service wraps a guarded_planner behind
///   - a sharded, striped-lock plan cache keyed by (kernel, target) and
///     tagged with the chain's state generation, so a champion promotion
///     (or quarantine onset/lift) invalidates by a generation bump instead
///     of a global flush — each shard lazily drops its entries the next
///     time it is touched under a newer generation;
///   - a batched resolution API (plan_batch) that amortises the guardrails:
///     one quarantine check, one OOD-envelope pass, and one fused model
///     predict per batch, with in-batch deduplication of identical
///     (kernel, target) requests;
///   - a reader/writer lock making concurrent plan()/plan_batch() calls
///     safe against observe()/install()/reset_quarantine().
///
/// Decisions are byte-identical to calling the underlying chain directly:
/// the cache only ever stores what the chain produced, and the batch path
/// preserves per-request arithmetic order (see
/// frequency_planner::plan_guarded_batch).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "synergy/guarded_planner.hpp"
#include "synergy/obs/energy_ledger.hpp"

namespace synergy {

/// Map a chain decision onto the energy ledger's attribution cause.
[[nodiscard]] constexpr obs::cause plan_cause(const plan_decision& d) {
  if (d.probe) return obs::cause::quarantine_probe;
  switch (d.tier) {
    case plan_tier::model: return obs::cause::model;
    case plan_tier::tuning_table: return obs::cause::tuning_table;
    case plan_tier::default_clocks: return obs::cause::default_clocks;
  }
  return obs::cause::default_clocks;
}

struct plan_service_options {
  /// Cache stripe count (clamped to ≥ 1). More shards, less lock contention.
  std::size_t shards{16};
  /// Whether decisions produced while the model tier is quarantined are
  /// cached. The queue's resolution path historically memoises every
  /// decision, probes included; the cluster's admission path resolves every
  /// placement so the quarantine-probe cadence advances per admission — it
  /// runs with this off. Flow-through also keeps per-request probe
  /// accounting exact (quarantined requests are never deduplicated).
  bool cache_quarantined{true};
};

/// One cached (kernel, target) → decision entry, in exportable form
/// (checkpoint/resume support). `target` is the rendered metrics::target
/// string — the cache key uses the rendered form, so re-import never needs
/// to re-parse it.
struct cached_plan {
  std::string kernel;
  std::string target;
  plan_decision decision;
};

/// A chain decision plus the service metadata attached to it.
struct serviced_plan {
  plan_decision decision;
  bool cache_hit{false};
  /// Chain-state generation the decision is valid for.
  std::uint64_t generation{0};
};

class plan_service {
 public:
  explicit plan_service(std::shared_ptr<guarded_planner> guard,
                        plan_service_options opts = {});

  /// Resolve one (kernel, features, target) request, serving from the cache
  /// when a decision of the current generation exists. Thread-safe.
  [[nodiscard]] serviced_plan plan(const std::string& kernel,
                                   const gpusim::static_features& features,
                                   const metrics::target& target);

  /// Resolve a batch. Cache hits are served per request; the misses are
  /// deduplicated by (kernel, target), resolved through the chain's batched
  /// guardrail path, fanned back out, and cached. Thread-safe.
  [[nodiscard]] std::vector<serviced_plan> plan_batch(std::span<const plan_request> reqs);

  /// Feed a measured energy sample to the drift monitor (exclusive with
  /// planning). Quarantine onset bumps the chain generation, dropping every
  /// cached model-tier decision.
  void observe(const std::string& kernel, const gpusim::static_features& features,
               common::megahertz core_clock, double measured_energy_j);

  /// Swap the model tier (champion promotion). The chain bumps its
  /// generation, so cached decisions invalidate without a global flush.
  void install(std::shared_ptr<const frequency_planner> planner);

  /// Lift a quarantine (bumps the chain generation).
  void reset_quarantine();

  /// Drop every cached decision by bumping the service epoch (e.g. after
  /// swapping the tuning-table tier out from under the guard).
  void invalidate() { epoch_.fetch_add(1, std::memory_order_release); }

  /// Effective cache generation: service epoch + chain-state generation.
  /// Install/quarantine transitions bump the chain side even when callers
  /// mutate the shared guard directly, so caches above the service never
  /// serve decisions from a previous model.
  [[nodiscard]] std::uint64_t generation() const {
    return epoch_.load(std::memory_order_acquire) + guard_->generation();
  }

  [[nodiscard]] bool quarantined() const { return guard_->quarantined(); }

  /// The underlying chain (counters, drift state, tier introspection).
  /// Mutations through this pointer bypass the service's writer lock; only
  /// single-threaded callers (the cluster simulator) may do that.
  [[nodiscard]] const std::shared_ptr<guarded_planner>& guard() const { return guard_; }

  struct stats {
    std::size_t hits{0};        ///< requests served from the cache
    std::size_t misses{0};      ///< requests resolved through the chain
    std::size_t deduped{0};     ///< batch requests folded onto an in-batch twin
  };
  [[nodiscard]] stats cache_stats() const {
    return {hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
            deduped_.load(std::memory_order_relaxed)};
  }

  /// Snapshot every cache entry still valid at the current generation,
  /// sorted by (kernel, target) for deterministic serialization. Cache hits
  /// bypass the degradation chain entirely, so a resumed run must restore
  /// the cache contents to reproduce the exporting run's hit/miss (and
  /// therefore chain-counter) sequence byte-for-byte.
  [[nodiscard]] std::vector<cached_plan> export_cache();
  /// Install exported entries, stamped at this service's *current*
  /// generation. Callers are responsible for restoring guard state first so
  /// the generations line up.
  void import_cache(const std::vector<cached_plan>& entries);

 private:
  struct shard {
    std::mutex m;
    std::uint64_t epoch{0};  ///< generation the entries are valid for
    std::unordered_map<std::string, plan_decision> entries;
  };

  [[nodiscard]] static std::string make_key(const std::string& kernel,
                                            const metrics::target& target);
  [[nodiscard]] shard& shard_for(const std::string& key);

  /// Cache lookup at `gen`; lazily clears a shard left behind by an older
  /// generation. Returns true on hit.
  [[nodiscard]] bool lookup(const std::string& key, std::uint64_t gen, plan_decision& out);
  void store(const std::string& key, std::uint64_t gen, const plan_decision& d);

  std::shared_ptr<guarded_planner> guard_;
  plan_service_options opts_;
  std::vector<std::unique_ptr<shard>> shards_;
  std::atomic<std::uint64_t> epoch_{0};
  std::shared_mutex mu_;  ///< shared: plan paths; exclusive: observe/install
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> deduped_{0};
};

}  // namespace synergy

#pragma once

/// \file context.hpp
/// SYnergy runtime context: the binding between SYCL devices and their
/// vendor management libraries.
///
/// On a real system this is the process's NVML/ROCm-SMI session: one library
/// handle per vendor, devices addressed by index, operations performed with
/// the identity of the calling user (which the SLURM plugin may have
/// privileged, paper Sec. 7). The context reproduces exactly that structure
/// over the emulated backends.

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "simsycl/device.hpp"
#include "synergy/vendor/fault_injector.hpp"
#include "synergy/vendor/management_library.hpp"
#include "synergy/vendor/resilient_library.hpp"

namespace synergy {

/// How the context assembles each vendor library. The default is the bare
/// backend; `faults` inserts a fault_injector (tests, resilience sweeps) and
/// `retry` stacks a resilient_library on top (production-shaped runs):
/// backend -> fault_injector? -> resilient_library?  (outermost serves calls).
struct context_options {
  vendor::user_context user = vendor::user_context::root();
  vendor::sensor_model sensor{};
  std::optional<vendor::fault_config> faults;
  std::optional<vendor::retry_policy> retry;
};

class context {
 public:
  /// Handle for issuing vendor calls against one bound device.
  struct binding {
    vendor::management_library* library{nullptr};
    std::size_t index{0};
    [[nodiscard]] bool valid() const { return library != nullptr; }
  };

  /// Build a context over a set of devices; one management library is
  /// created per vendor present. `user` is the identity used for all
  /// state-changing vendor calls made through this context.
  explicit context(std::vector<simsycl::device> devices,
                   vendor::user_context user = vendor::user_context::root(),
                   vendor::sensor_model sensor = {});

  /// Build with an explicit vendor-stack configuration (fault injection and
  /// resilience decorators around every created library).
  context(std::vector<simsycl::device> devices, context_options options);

  /// Locate the management-library binding of a device; the returned binding
  /// is invalid if the device is not part of this context.
  [[nodiscard]] binding bind(const simsycl::device& dev) const;

  [[nodiscard]] const vendor::user_context& user() const { return user_; }
  void set_user(vendor::user_context user) { user_ = user; }

  [[nodiscard]] const std::vector<simsycl::device>& devices() const { return devices_; }

  /// All management libraries owned by this context (one per vendor).
  /// These are the *outermost* layers of each stack.
  [[nodiscard]] std::vector<vendor::management_library*> libraries() const;

  /// The resilience decorators owned by this context (empty unless built
  /// with `context_options::retry`) — retry/breaker stats live here.
  [[nodiscard]] std::vector<vendor::resilient_library*> resilience_layers() const;

  /// The fault injectors owned by this context (empty unless built with
  /// `context_options::faults`).
  [[nodiscard]] std::vector<vendor::fault_injector*> fault_layers() const;

  /// Process-global context lazily built over the default platform with a
  /// root identity (single-node experiments assume frequency privileges, as
  /// granted by the SLURM plugin on the cluster).
  static std::shared_ptr<context> global();

  /// Replace the process-global context (nullptr resets to lazy default).
  static void set_global(std::shared_ptr<context> ctx);

 private:
  std::vector<simsycl::device> devices_;
  vendor::user_context user_;
  std::vector<std::unique_ptr<vendor::management_library>> libraries_;
  // Non-owning views into the decorator stacks (empty when not configured).
  std::vector<vendor::resilient_library*> resilience_;
  std::vector<vendor::fault_injector*> injectors_;
  // device board pointer -> (library index in libraries_, device index in library)
  std::map<const gpusim::device*, std::pair<std::size_t, std::size_t>> bindings_;
};

}  // namespace synergy

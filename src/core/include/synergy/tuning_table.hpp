#pragma once

/// \file tuning_table.hpp
/// Compile-time tuning artefacts (paper Sec. 3.1, Fig. 3).
///
/// In the paper's toolchain the compiler runs feature extraction and model
/// inference *at build time*: "the predicted frequency configuration is
/// made available to the SYCL library at runtime". The tuning_table is that
/// artefact — a per-(kernel, target) frequency map produced once by
/// compile_tuning_table() and shipped with the application, so the runtime
/// needs neither the models nor the planner. The SYnergy queue consults an
/// installed table before falling back to online planning.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "synergy/features/kernel_registry.hpp"
#include "synergy/metrics/energy_metrics.hpp"
#include "synergy/planner.hpp"

namespace synergy {

class tuning_table {
 public:
  /// Look up the compiled frequency for a kernel under a target.
  [[nodiscard]] std::optional<common::frequency_config> find(
      const std::string& kernel, const metrics::target& target) const;

  /// Record one decision (overwrites an existing entry).
  void put(const std::string& kernel, const metrics::target& target,
           common::frequency_config config);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Kernel names present in the table, sorted and de-duplicated.
  [[nodiscard]] std::vector<std::string> kernels() const;

  /// Device key recorded at compile time ("V100", ...); a runtime check
  /// against the actual device guards against stale artefacts.
  [[nodiscard]] const std::string& device_key() const { return device_key_; }
  void set_device_key(std::string device) { device_key_ = std::move(device); }

  /// Line-oriented text serialisation (one entry per line) for shipping the
  /// artefact next to the application binary.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static tuning_table deserialize(const std::string& text);

 private:
  using key = std::pair<std::string, std::string>;  // (kernel, target name)
  std::map<key, common::frequency_config> entries_;
  std::string device_key_;
};

/// The compile step: plan every registered kernel for every requested
/// target with the given planner. `device_key` stamps the artefact.
[[nodiscard]] tuning_table compile_tuning_table(const features::kernel_registry& registry,
                                                const std::vector<metrics::target>& targets,
                                                const frequency_planner& planner,
                                                const std::string& device_key);

/// Oracle variant for upper-bound studies: exact per-kernel optima. Needs
/// launch sizes, so it plans each kernel at a representative virtual size.
[[nodiscard]] tuning_table compile_tuning_table_oracle(
    const features::kernel_registry& registry, const std::vector<metrics::target>& targets,
    const gpusim::device_spec& spec, double representative_items = 1 << 22);

}  // namespace synergy

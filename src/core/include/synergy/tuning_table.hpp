#pragma once

/// \file tuning_table.hpp
/// Compile-time tuning artefacts (paper Sec. 3.1, Fig. 3).
///
/// In the paper's toolchain the compiler runs feature extraction and model
/// inference *at build time*: "the predicted frequency configuration is
/// made available to the SYCL library at runtime". The tuning_table is that
/// artefact — a per-(kernel, target) frequency map produced once by
/// compile_tuning_table() and shipped with the application, so the runtime
/// needs neither the models nor the planner. The SYnergy queue consults an
/// installed table before falling back to online planning.

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "synergy/common/error.hpp"
#include "synergy/features/kernel_registry.hpp"
#include "synergy/metrics/energy_metrics.hpp"
#include "synergy/planner.hpp"

namespace synergy {

struct tuning_table_parse_result;

class tuning_table {
 public:
  /// Look up the compiled frequency for a kernel under a target.
  [[nodiscard]] std::optional<common::frequency_config> find(
      const std::string& kernel, const metrics::target& target) const;

  /// Record one decision (overwrites an existing entry).
  void put(const std::string& kernel, const metrics::target& target,
           common::frequency_config config);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Kernel names present in the table, sorted and de-duplicated.
  [[nodiscard]] std::vector<std::string> kernels() const;

  /// Device key recorded at compile time ("V100", ...); a runtime check
  /// against the actual device guards against stale artefacts.
  [[nodiscard]] const std::string& device_key() const { return device_key_; }
  void set_device_key(std::string device) { device_key_ = std::move(device); }

  /// Line-oriented text serialisation (one entry per line) for shipping the
  /// artefact next to the application binary.
  [[nodiscard]] std::string serialize() const;

  /// Lenient parser for untrusted artefacts: malformed entry lines
  /// (non-numeric clocks, missing fields, unknown targets, duplicate keys)
  /// are skipped with a diagnostic — never an exception from stream state.
  /// A bad header/device line fails the whole parse (header_ok false).
  [[nodiscard]] static tuning_table_parse_result parse(const std::string& text);

  /// Strict parser: throws std::invalid_argument with a clean message
  /// naming the offending line for *any* defect. Round-trips serialize().
  [[nodiscard]] static tuning_table deserialize(const std::string& text);

 private:
  using key = std::pair<std::string, std::string>;  // (kernel, target name)
  std::map<key, common::frequency_config> entries_;
  std::string device_key_;
};

/// Outcome of a lenient tuning_table::parse: whatever entries were
/// recoverable, plus one diagnostic per malformed line naming the line
/// number and defect.
struct tuning_table_parse_result {
  tuning_table table;
  std::vector<std::string> diagnostics;  ///< "line 7: non-numeric core clock 'x'"
  std::size_t parsed{0};                 ///< entries accepted
  std::size_t skipped{0};                ///< malformed entry lines dropped
  bool header_ok{false};                 ///< header + device line verified

  /// Every line parsed cleanly.
  [[nodiscard]] bool clean() const { return header_ok && skipped == 0; }
};

/// Outcome of loading a tuning-table artefact from disk.
struct tuning_table_load_result {
  std::optional<tuning_table> table;      ///< engaged when the artefact was usable
  std::vector<std::string> diagnostics;   ///< per-defect messages (envelope + lines)
  bool sealed{false};                     ///< file carried the CRC envelope

  [[nodiscard]] bool ok() const { return table.has_value(); }
  /// Diagnostics joined one per line, for CLI/log output.
  [[nodiscard]] std::string summary() const;
};

/// Persist a tuning table inside the versioned CRC-32 envelope, written
/// atomically (temp + rename) so a crash mid-save never tears the artefact.
[[nodiscard]] common::status save_tuning_table(const std::filesystem::path& path,
                                               const tuning_table& table);

/// Load a tuning-table artefact. Never throws for on-disk problems:
/// missing files, corruption, truncation and malformed entries come back
/// as diagnostics. Sealed and legacy bare files are both accepted; a
/// lenient line parse salvages every well-formed entry.
[[nodiscard]] tuning_table_load_result load_tuning_table(const std::filesystem::path& path);

/// The compile step: plan every registered kernel for every requested
/// target with the given planner. `device_key` stamps the artefact.
[[nodiscard]] tuning_table compile_tuning_table(const features::kernel_registry& registry,
                                                const std::vector<metrics::target>& targets,
                                                const frequency_planner& planner,
                                                const std::string& device_key);

/// Oracle variant for upper-bound studies: exact per-kernel optima. Needs
/// launch sizes, so it plans each kernel at a representative virtual size.
[[nodiscard]] tuning_table compile_tuning_table_oracle(
    const features::kernel_registry& registry, const std::vector<metrics::target>& targets,
    const gpusim::device_spec& spec, double representative_items = 1 << 22);

}  // namespace synergy

#pragma once

/// \file queue.hpp
/// The SYnergy energy-aware queue (paper Sec. 4) — the system's flagship
/// public API. It extends the SYCL queue with:
///
///  - energy profiling: per-kernel (fine-grained, via events) and per-device
///    (coarse-grained, since queue construction) energy queries — Listing 1;
///  - frequency scaling: a fixed (memory, core) configuration for every
///    kernel submitted to the queue — Listing 2 — or per-submission
///    frequencies — Listing 4;
///  - energy targets: per-queue or per-submission MIN_EDP / MIN_ED2P / ES_x
///    / PL_x goals resolved to a concrete frequency by the trained models —
///    Listing 3.
///
/// Frequency changes are issued through the vendor management library bound
/// in the SYnergy context, with the context's user identity, exactly as the
/// real implementation wraps NVML/ROCm SMI. Changes the library rejects
/// (e.g. missing privileges on a cluster without the SLURM plugin) are
/// counted and logged, and the kernel runs at the current clocks.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "simsycl/sycl.hpp"
#include "synergy/common/log.hpp"
#include "synergy/context.hpp"
#include "synergy/governor/governor.hpp"
#include "synergy/guarded_planner.hpp"
#include "synergy/metrics/energy_metrics.hpp"
#include "synergy/obs/energy_ledger.hpp"
#include "synergy/plan_service.hpp"
#include "synergy/planner.hpp"
#include "synergy/planner_source.hpp"

namespace synergy {

class queue : public simsycl::queue {
 public:
  /// Listing 1: synergy::queue q{gpu_selector_v};
  queue() : queue(simsycl::platform::default_platform().get_device(0)) {}
  explicit queue(simsycl::gpu_selector_tag) : queue() {}

  /// Listing 2: synergy::queue q{1215, 210, gpu_selector_v}; — every kernel
  /// submitted runs at (memory, core) MHz.
  queue(double mem_mhz, double core_mhz)
      : queue(simsycl::platform::default_platform().get_device(0)) {
    set_fixed_frequency({common::megahertz{mem_mhz}, common::megahertz{core_mhz}});
  }
  queue(double mem_mhz, double core_mhz, simsycl::gpu_selector_tag)
      : queue(mem_mhz, core_mhz) {}

  /// Bind to an explicit device (and optionally an explicit context; the
  /// process-global context is used otherwise).
  explicit queue(simsycl::device dev, std::shared_ptr<context> ctx = nullptr);

  /// Device-bound queue with a queue-level energy target.
  queue(simsycl::device dev, const metrics::target& t, std::shared_ptr<context> ctx = nullptr)
      : queue(std::move(dev), std::move(ctx)) {
    set_target(t);
  }

  // --- frequency policy -----------------------------------------------------

  /// Pin every subsequent submission to a fixed configuration.
  void set_fixed_frequency(common::frequency_config config);

  /// Resolve every subsequent submission against an energy target.
  void set_target(const metrics::target& t);

  /// Remove any queue-level policy: submissions run at current clocks.
  void clear_policy();

  /// Install the model-based planner used to resolve targets. Without one,
  /// targets are resolved by the simulator-exact oracle (useful for tests
  /// and upper-bound studies; a trained planner reproduces the paper flow).
  ///
  /// The planner runs behind the prediction guardrails: non-finite or
  /// negative predictions, out-of-distribution feature vectors, and a
  /// drift-quarantined model set all degrade the submission to the
  /// tuning-table entry (if installed) or the driver default clocks.
  /// Measured energy from every non-degraded launch feeds the drift
  /// monitor, configurable via `drift`.
  void set_planner(std::shared_ptr<const frequency_planner> planner,
                   drift_options drift = {});

  /// Follow a planner source (the lifecycle model registry) instead of a
  /// fixed planner: every submission polls the source's generation counter
  /// (one atomic load) and, when the champion moved — a promotion or
  /// rollback — swaps the model tier in, flushes the plan cache, resets the
  /// drift monitor, and re-arms the quarantine latch. The queue picks up a
  /// new champion mid-run without any coordination with the writer.
  /// `fallback_table`, when given, becomes the guard's tuning-table tier:
  /// a quarantined champion degrades to the compiled artefact's per-kernel
  /// clocks rather than straight to driver defaults (and survives champion
  /// swaps — only the model tier follows the source).
  void set_planner_source(std::shared_ptr<const planner_source> source,
                          drift_options drift = {},
                          std::shared_ptr<const class tuning_table> fallback_table = nullptr);

  /// Per-sample tap for the lifecycle layer: called once per non-degraded
  /// launch with the kernel, its static features, the clocks it actually
  /// ran at, and the measured energy — after the drift monitor has seen the
  /// sample, so the observer reads the up-to-date quarantine state.
  using sample_observer =
      std::function<void(const std::string& kernel, const gpusim::static_features& features,
                         common::frequency_config config, double energy_j)>;
  void set_sample_observer(sample_observer observer) { observer_ = std::move(observer); }

  /// Lift a drift quarantine in place (retrained models installed through a
  /// side channel): resets the drift statistic, flushes the plan cache, and
  /// re-arms the quarantine latch. No-op without a planner installed.
  void reset_model_quarantine();

  /// Adopt an externally built plan service — the sharing seam of
  /// planner-as-a-service: several queues over identical devices can resolve
  /// through one concurrent, generation-invalidated cache. Replaces any
  /// planner or planner source installed on this queue; the queue keeps its
  /// local memo as a thin view over the service.
  void set_plan_service(std::shared_ptr<class plan_service> service);

  /// The plan service resolving this queue's model-tier decisions (nullptr
  /// until a planner, planner source, or external service is installed).
  [[nodiscard]] const std::shared_ptr<class plan_service>& planning_service() const {
    return service_;
  }

  // --- reactive governors ---------------------------------------------------

  /// Attach a reactive frequency governor next to the planner chain: every
  /// kernel gets its own governor instance (phase behaviour is per-kernel).
  /// A kernel's first submission seeds its governor — in hybrid mode from
  /// whatever the planner chain (tuning table / guarded model / oracle)
  /// would have picked, otherwise from the driver default clocks — and every
  /// later submission polls the device's windowed utilisation and smoothed
  /// power through the vendor library and applies the governor's decision
  /// (attributed to the `governor` ledger cause). Per-submission explicit
  /// frequencies (Listing 4) still override the governor.
  /// Fails with errc::invalid_argument on unknown policies or parameters.
  common::status set_governor(const governor::governor_spec& spec);
  void clear_governor();
  [[nodiscard]] bool governed() const { return governor_spec_.has_value(); }

  /// Aggregate governor poll / clock-change counts across all kernels.
  [[nodiscard]] std::size_t governor_decisions() const;
  [[nodiscard]] std::size_t governor_clock_changes() const;

  /// Install compile-time tuning artefacts: targets resolve through the
  /// table first (no models needed at runtime, as in the paper's compiled
  /// flow), falling back to the planner/oracle for kernels it lacks.
  /// Throws std::invalid_argument if the table was compiled for a
  /// different device.
  void set_tuning_table(std::shared_ptr<const class tuning_table> table);

  // --- submission ------------------------------------------------------------

  /// Submit under the queue-level policy.
  template <typename CGF>
  simsycl::event submit(CGF&& cgf) {
    simsycl::handler h;
    std::forward<CGF>(cgf)(h);
    return submit_recorded(h, std::nullopt, std::nullopt);
  }

  /// Listing 3: submit with a per-kernel energy target.
  template <typename CGF>
  simsycl::event submit(const metrics::target& t, CGF&& cgf) {
    simsycl::handler h;
    std::forward<CGF>(cgf)(h);
    return submit_recorded(h, std::nullopt, t);
  }

  /// Listing 4: submit with explicit per-kernel frequencies (MHz).
  template <typename CGF>
  simsycl::event submit(double mem_mhz, double core_mhz, CGF&& cgf) {
    simsycl::handler h;
    std::forward<CGF>(cgf)(h);
    return submit_recorded(
        h, common::frequency_config{common::megahertz{mem_mhz}, common::megahertz{core_mhz}},
        std::nullopt);
  }

  // --- energy profiling (paper Sec. 4.2) --------------------------------------

  /// Fine-grained: energy consumed by the kernel tracked by `e`, in joules.
  /// Uses the event's device-time interval (the kernel must be complete,
  /// hence the wait_and_throw in Listing 1).
  [[nodiscard]] double kernel_energy_consumption(const simsycl::event& e) const;

  /// Coarse-grained: energy consumed by the whole device since this queue
  /// was constructed, in joules.
  [[nodiscard]] double device_energy_consumption() const;

  /// Aggregated per-kernel statistics of everything this queue launched
  /// (an nvprof-summary-style breakdown; the fine-grained view Sec. 2.2
  /// motivates: different kernels dominate energy differently).
  struct kernel_stats {
    std::size_t launches{0};
    double total_time_s{0.0};
    double total_energy_j{0.0};
    /// Launches whose requested clocks could not be applied because the
    /// management layer kept failing (see apply_frequency): the kernel ran
    /// at fallback clocks and its energy sample is untrustworthy as a
    /// (kernel, config) measurement.
    std::size_t degraded_launches{0};
  };
  [[nodiscard]] const std::map<std::string, kernel_stats>& energy_report() const {
    return stats_;
  }

  /// Print the report as an aligned table, most energy-hungry kernel first.
  void print_energy_report(std::ostream& os) const;

  /// One (kernel, clocks) energy measurement per launch — the raw material
  /// for model training. `degraded` marks samples taken while the requested
  /// clocks could not be applied; trainers must use training_samples(),
  /// which excludes them (degradation contract, ARCHITECTURE.md Sec. 10).
  struct energy_sample {
    std::string kernel;
    common::frequency_config config;  ///< clocks the kernel actually ran at
    double time_s{0.0};
    double energy_j{0.0};
    bool degraded{false};
  };
  [[nodiscard]] const std::vector<energy_sample>& samples() const { return samples_; }

  /// Samples safe to feed model training: every degraded sample excluded.
  [[nodiscard]] std::vector<energy_sample> training_samples() const;

  /// Sensor-limited estimate of kernel energy: emulates polling the board
  /// power sensor every `interval_s` (15 ms granularity in Sec. 4.4);
  /// under-resolves kernels shorter than the interval.
  [[nodiscard]] double kernel_energy_consumption_sampled(const simsycl::event& e,
                                                         double interval_s = 0.015) const;

  /// Coarse-grained profiling as the paper implements it (Sec. 4.2): the
  /// device energy over this queue's window estimated by sampling the
  /// instantaneous power every `interval_s` — the whole-device counterpart
  /// of kernel_energy_consumption_sampled. Converges to
  /// device_energy_consumption() for windows much longer than the interval.
  [[nodiscard]] double device_energy_consumption_sampled(double interval_s = 0.015) const;

  // --- introspection ------------------------------------------------------------

  /// Clocks the device currently runs at.
  [[nodiscard]] common::frequency_config current_clocks() const;

  /// Frequency changes rejected by the vendor library (permissions etc.).
  [[nodiscard]] std::size_t frequency_change_failures() const { return freq_failures_; }

  /// Submissions whose clocks could not be applied due to *persistent
  /// infrastructure failure* (retries exhausted / breaker open): the queue
  /// fell back toward default clocks and flagged the sample degraded.
  [[nodiscard]] std::size_t degraded_submissions() const { return degraded_submissions_; }

  /// Target resolutions served from the per-kernel plan cache.
  [[nodiscard]] std::size_t plan_cache_hits() const { return plan_cache_hits_; }

  /// Champion swaps picked up from the installed planner source.
  [[nodiscard]] std::size_t planner_refreshes() const { return planner_refreshes_; }

  /// The guardrail state wrapped around the installed planner, or nullptr
  /// when no planner is installed (fallback tiers, drift statistic,
  /// quarantine flag). Owned by the plan service.
  [[nodiscard]] const guarded_planner* guard() const {
    return service_ ? service_->guard().get() : nullptr;
  }

  /// While quarantined, every Nth plan probes the default clocks instead of
  /// the tuning-table tier (guarded_planner::set_quarantine_probe_every).
  /// Sticky across champion swaps — re-applied whenever the guard is
  /// rebuilt. 0 (the default) disables probing.
  void set_quarantine_probe_every(std::size_t n);

  /// Whether the drift monitor has quarantined the installed model set
  /// (target resolutions then bypass the model tier until retraining).
  [[nodiscard]] bool model_quarantined() const { return service_ && service_->quarantined(); }

  [[nodiscard]] const std::shared_ptr<context>& get_context() const { return ctx_; }

 private:
  simsycl::event submit_recorded(simsycl::handler& h,
                                 std::optional<common::frequency_config> freq,
                                 std::optional<metrics::target> target);

  /// Resolve a target for a kernel to a frequency plus the attribution
  /// cause of the tier that produced it, caching by (name, target) — cache
  /// hits keep the original attribution.
  std::pair<common::frequency_config, obs::cause> resolve_target(const simsycl::handler& h,
                                                                 const metrics::target& t);

  void apply_frequency(common::frequency_config config);

  /// Pick up a champion swap from the planner source, if one happened.
  void refresh_from_source();

  /// Per-kernel governor state: the policy instance, whether its clock has
  /// been seeded, the seeding tier's attribution, and the hybrid watt target
  /// (model-predicted power at the seeded clock).
  struct kernel_governor {
    std::unique_ptr<governor::governor> gov;
    bool seeded{false};
    double target_w{0.0};
  };

  /// Governor leg of submit_recorded: seed on first sight of the kernel,
  /// poll-and-decide afterwards. Returns the attribution cause.
  obs::cause govern_submission(const simsycl::handler& h,
                               const std::optional<metrics::target>& target);

  /// Build a fresh guard + service around `planner_` (nullptr planner drops
  /// the model tier entirely).
  void rebuild_service(std::shared_ptr<const class tuning_table> guard_table,
                       drift_options drift);

  std::shared_ptr<context> ctx_;
  context::binding binding_;
  std::shared_ptr<const frequency_planner> planner_;
  /// Planner-as-a-service front end over the guarded degradation chain:
  /// concurrent sharded cache, generation invalidation, batch API. The
  /// queue's `plan_cache_` below is a thin per-queue view on top (it also
  /// memoises tuning-table and oracle resolutions, which the service does
  /// not see).
  std::shared_ptr<class plan_service> service_;
  std::shared_ptr<const planner_source> source_;
  std::uint64_t source_generation_{0};
  drift_options source_drift_;
  std::shared_ptr<const class tuning_table> source_table_;  ///< guard's fallback tier
  std::size_t probe_every_{0};  ///< quarantine probe cadence, sticky across guards
  sample_observer observer_;
  /// Plan cache flushed when the quarantine trips; re-armed whenever the
  /// quarantine lifts (reset or promotion), so a second trip is never
  /// silent.
  bool quarantine_seen_{false};
  std::shared_ptr<const class tuning_table> tuning_;
  std::optional<common::frequency_config> fixed_;
  std::optional<metrics::target> target_;
  common::seconds created_at_{0.0};
  std::size_t freq_failures_{0};
  std::size_t plan_cache_hits_{0};
  std::size_t planner_refreshes_{0};
  std::size_t degraded_submissions_{0};
  bool degrade_next_{false};  ///< set by apply_frequency, consumed per submission
  std::map<std::pair<std::string, std::string>,
           std::pair<common::frequency_config, obs::cause>>
      plan_cache_;
  std::map<std::string, kernel_stats> stats_;
  std::vector<energy_sample> samples_;
  std::optional<governor::governor_spec> governor_spec_;
  std::map<std::string, kernel_governor> governors_;
};

}  // namespace synergy

#include "synergy/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "synergy/common/rng.hpp"
#include "synergy/telemetry/telemetry.hpp"

namespace synergy {

using common::megahertz;
using gpusim::kernel_profile;

model_trainer::model_trainer(gpusim::device_spec spec, trainer_options options)
    : spec_(std::move(spec)), options_(options) {}

std::vector<kernel_profile> model_trainer::generate_microbenchmarks() const {
  common::pcg32 rng{options_.seed};
  std::vector<kernel_profile> out;
  out.reserve(options_.n_microbenchmarks);

  for (std::size_t i = 0; i < options_.n_microbenchmarks; ++i) {
    kernel_profile p;
    p.name = "ubench_" + std::to_string(i);
    auto& k = p.features;
    // Rotate through six instruction-mix families; randomise magnitudes so
    // no two micro-benchmarks coincide.
    // Magnitude ranges span the per-item counts of real kernels, from
    // pointwise streaming (a handful of ops) to deep inner loops (hundreds
    // of ops and accesses per item, e.g. matmul rows or n-body chunks):
    // models must interpolate, not extrapolate, over the deployment kernels.
    switch (i % 6) {
      case 0:  // compute-bound floating point
        k.float_add = rng.uniform(40, 1200);
        k.float_mul = rng.uniform(40, 1200);
        k.gl_access = rng.uniform(1, 12);
        break;
      case 1:  // integer-heavy
        k.int_add = rng.uniform(40, 600);
        k.int_mul = rng.uniform(10, 200);
        k.int_bw = rng.uniform(10, 250);
        k.int_div = rng.uniform(0, 16);
        k.gl_access = rng.uniform(1, 8);
        break;
      case 2:  // special functions + divides
        k.float_add = rng.uniform(5, 150);
        k.float_div = rng.uniform(2, 48);
        k.sf = rng.uniform(4, 150);
        k.gl_access = rng.uniform(1, 8);
        break;
      case 3:  // memory streaming / gather loops
        k.float_add = rng.uniform(0, 30);
        k.gl_access = rng.uniform(6, 240);
        break;
      case 4:  // local-memory heavy (tiled patterns)
        k.float_add = rng.uniform(20, 400);
        k.float_mul = rng.uniform(20, 400);
        k.loc_access = rng.uniform(20, 400);
        k.gl_access = rng.uniform(2, 20);
        break;
      default:  // balanced inner-loop mix
        k.int_add = rng.uniform(5, 120);
        k.float_add = rng.uniform(10, 500);
        k.float_mul = rng.uniform(10, 500);
        k.sf = rng.uniform(0, 60);
        k.loc_access = rng.uniform(0, 60);
        k.gl_access = rng.uniform(2, 120);
        break;
    }
    // Dynamic execution behaviour the static features cannot express; this
    // is the irreducible prediction error of the paper's approach.
    p.work_items = std::pow(2.0, rng.uniform(16.0, 24.0));
    p.cache_hit_rate = rng.uniform(0.0, 0.6);
    p.coalescing_efficiency = rng.uniform(0.55, 0.95);
    p.compute_efficiency = rng.uniform(0.6, 0.9);
    p.bytes_per_access = rng.uniform(0.0, 1.0) < 0.75 ? 4.0 : 8.0;
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<megahertz> model_trainer::sampled_clocks() const {
  const auto& table = spec_.core_clocks;
  const std::size_t n = std::min(options_.freq_samples, table.size());
  std::vector<megahertz> out;
  out.reserve(n);
  if (n == 0) return out;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = n == 1 ? 0 : i * (table.size() - 1) / (n - 1);
    out.push_back(table[idx]);
  }
  out.erase(std::unique(out.begin(), out.end(),
                        [](megahertz a, megahertz b) { return a.value == b.value; }),
            out.end());
  return out;
}

training_sets model_trainer::measure(const std::vector<kernel_profile>& microbenchmarks) const {
  gpusim::noise_config noise;
  noise.time_sigma = options_.time_noise_sigma;
  noise.power_sigma = options_.power_noise_sigma;
  noise.seed = options_.seed ^ 0xdeu;
  gpusim::device dev{spec_, noise};
  return measure_on(dev, microbenchmarks);
}

training_sets model_trainer::measure_on(gpusim::device& dev,
                                        const std::vector<kernel_profile>& microbenchmarks) const {
  SYNERGY_SPAN_VAR(span, telemetry::category::train, "trainer.measure");
  span.arg("microbenchmarks", static_cast<double>(microbenchmarks.size()));
  const auto clocks = sampled_clocks();
  const auto reps = std::max<std::size_t>(1, options_.repetitions);
  const auto mean_cost = [&](const kernel_profile& bench) {
    double t_sum = 0.0, e_sum = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto rec = dev.execute(bench);
      t_sum += rec.cost.time.value;
      e_sum += rec.cost.energy.value;
    }
    return std::pair{t_sum / static_cast<double>(reps), e_sum / static_cast<double>(reps)};
  };

  training_sets sets;
  for (const kernel_profile& bench : microbenchmarks) {
    // Targets are normalised to the kernel's own default-frequency run, so
    // the models learn the *frequency response* of a workload rather than
    // its absolute magnitude: normalisation is what makes one model
    // generalise across kernels spanning orders of magnitude of work, and
    // it leaves every argmin/ES/PL selection unchanged (scale-invariant).
    dev.reset_core_clock();
    const auto [t_ref, e_ref] = mean_cost(bench);
    for (const megahertz f : clocks) {
      if (!dev.set_core_clock(f).ok()) continue;
      const auto [t_raw, e_raw] = mean_cost(bench);
      const double t = t_raw / t_ref;
      const double e = e_raw / e_ref;
      const auto x = model_input(bench.features, f);
      sets.time.push(x, t);
      sets.energy.push(x, e);
      // Product metrics are trained in log space: their normalised values
      // span orders of magnitude across the clock range, and the planner
      // only needs the argmin, which log preserves.
      sets.edp.push(x, std::log(t * e));
      sets.ed2p.push(x, std::log(t * t * e));
    }
  }
  dev.reset_core_clock();
  return sets;
}

trained_models model_trainer::fit(const training_sets& sets, ml::algorithm time_alg,
                                  ml::algorithm energy_alg, ml::algorithm edp_alg,
                                  ml::algorithm ed2p_alg) const {
  SYNERGY_SPAN_VAR(span, telemetry::category::train, "trainer.fit");
  span.arg("samples", static_cast<double>(sets.time.size()));
  trained_models models;
  models.time = ml::make_regressor(time_alg);
  models.time->fit(sets.time);
  models.energy = ml::make_regressor(energy_alg);
  models.energy->fit(sets.energy);
  models.edp = ml::make_regressor(edp_alg);
  models.edp->fit(sets.edp);
  models.ed2p = ml::make_regressor(ed2p_alg);
  models.ed2p->fit(sets.ed2p);
  // Record the in-distribution region the suite actually covered; the
  // guarded planner rejects feature vectors outside it at plan time.
  models.envelope.fit(sets.time.x);
  return models;
}

trained_models model_trainer::train_default() const {
  const auto sets = measure(generate_microbenchmarks());
  // Paper Table 2 "Best" column: Linear for MAX_PERF (time) and MIN_ED2P,
  // Random Forest for MIN_ENERGY and MIN_EDP.
  return fit(sets, ml::algorithm::linear, ml::algorithm::random_forest,
             ml::algorithm::random_forest, ml::algorithm::linear);
}

}  // namespace synergy

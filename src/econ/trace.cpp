#include "synergy/econ/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "synergy/common/csv.hpp"
#include "synergy/common/rng.hpp"

namespace synergy::econ {

namespace {

constexpr const char* header_magic = "# synergy-econ-trace v1";

/// %.17g — shortest round-trippable rendering, same as the job-trace CSV.
std::string exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("econ trace: line " + std::to_string(line) + ": " + what);
}

/// Strict double parse: the whole field must be consumed and the value
/// finite. Line-numbered throw otherwise.
double parse_finite(const std::string& field, std::size_t line, const char* what) {
  if (field.empty()) fail(line, std::string{what} + " is empty");
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size())
    fail(line, std::string{what} + " '" + field + "' is not a number");
  if (!std::isfinite(v)) fail(line, std::string{what} + " '" + field + "' is not finite");
  return v;
}

}  // namespace

step_trace::step_trace(std::vector<step_point> points, double period_s)
    : points_(std::move(points)), period_s_(period_s) {
  if (points_.empty()) throw std::invalid_argument("econ trace: no steps");
  if (!std::isfinite(period_s_) || period_s_ < 0.0)
    throw std::invalid_argument("econ trace: period must be finite and >= 0");
  if (points_.front().t_s != 0.0)
    throw std::invalid_argument("econ trace: first step must start at t=0");
  double prev = -1.0;
  for (const auto& p : points_) {
    if (!std::isfinite(p.t_s) || !std::isfinite(p.value))
      throw std::invalid_argument("econ trace: non-finite step");
    if (p.value < 0.0) throw std::invalid_argument("econ trace: negative value");
    if (p.t_s <= prev) throw std::invalid_argument("econ trace: timestamps must increase");
    if (period_s_ > 0.0 && p.t_s >= period_s_)
      throw std::invalid_argument("econ trace: step at or beyond the period");
    prev = p.t_s;
  }
}

double step_trace::value_at(double t_s) const {
  if (points_.empty()) return 0.0;
  double t = t_s;
  if (period_s_ > 0.0) {
    t = std::fmod(t_s, period_s_);
    if (t < 0.0) t += period_s_;
  }
  // Last step with t_s <= t; steps start at 0, so one always exists for
  // t >= 0 (and negative aperiodic times clamp to the first step).
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](double v, const step_point& p) { return v < p.t_s; });
  if (it == points_.begin()) return points_.front().value;
  return std::prev(it)->value;
}

double step_trace::next_change_after(double t_s) const {
  if (points_.size() < 2 && period_s_ <= 0.0) return -1.0;
  if (period_s_ <= 0.0) {
    for (const auto& p : points_)
      if (p.t_s > t_s) return p.t_s;
    return -1.0;
  }
  if (points_.size() < 2) return -1.0;  // periodic but constant: never changes
  const double cycle = std::floor(t_s / period_s_) * period_s_;
  for (const auto& p : points_)
    if (cycle + p.t_s > t_s) return cycle + p.t_s;
  return cycle + period_s_;  // wrap back to the first step of the next cycle
}

double step_trace::mean() const {
  if (points_.empty()) return 0.0;
  if (points_.size() == 1) return points_.front().value;
  const double span = period_s_ > 0.0 ? period_s_ : points_.back().t_s - points_.front().t_s;
  if (span <= 0.0) return points_.front().value;
  double area = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double end = i + 1 < points_.size() ? points_[i + 1].t_s
                       : period_s_ > 0.0     ? period_s_
                                             : points_.back().t_s;
    area += points_[i].value * (end - points_[i].t_s);
  }
  return area / span;
}

std::string step_trace::to_csv(const std::string& kind) const {
  std::ostringstream out;
  out << header_magic << " kind=" << kind << " period=" << exact(period_s_) << '\n';
  out << "t_s,value\n";
  for (const auto& p : points_) out << exact(p.t_s) << ',' << exact(p.value) << '\n';
  return out.str();
}

step_trace parse_step_trace(const std::string& text, const std::string& kind) {
  if (kind != "price" && kind != "carbon")
    throw std::invalid_argument("econ trace: unknown kind '" + kind + "'");
  const auto records = common::split_csv_records(text);

  std::size_t i = 0;
  // Skip leading blank records (split preserves them so line numbers align).
  while (i < records.size() && records[i].empty()) ++i;
  if (i == records.size()) fail(1, "empty trace file");

  // Magic line: "# synergy-econ-trace v1 kind=K [period=P]".
  {
    const std::size_t line = i + 1;
    const std::string& head = records[i];
    if (head.rfind(header_magic, 0) != 0)
      fail(line, "expected header '" + std::string{header_magic} + " kind=" + kind + "'");
    std::istringstream hs{head.substr(std::string{header_magic}.size())};
    std::string token;
    bool saw_kind = false;
    double period = 0.0;
    while (hs >> token) {
      if (token.rfind("kind=", 0) == 0) {
        const std::string k = token.substr(5);
        if (k != kind) fail(line, "trace kind is '" + k + "', expected '" + kind + "'");
        saw_kind = true;
      } else if (token.rfind("period=", 0) == 0) {
        period = parse_finite(token.substr(7), line, "period");
        if (period < 0.0) fail(line, "period is negative");
      } else {
        fail(line, "unknown header token '" + token + "'");
      }
    }
    if (!saw_kind) fail(line, "header declares no kind");
    ++i;

    // Column header row (comments may precede it).
    while (i < records.size() && (records[i].empty() || records[i].front() == '#')) ++i;
    if (i == records.size()) fail(records.size(), "missing column header 't_s,value'");
    if (common::parse_csv_line(records[i]) != std::vector<std::string>{"t_s", "value"})
      fail(i + 1, "expected column header 't_s,value'");
    ++i;

    std::vector<step_point> points;
    for (; i < records.size(); ++i) {
      const std::size_t row_line = i + 1;
      if (records[i].empty() || records[i].front() == '#') continue;
      const auto fields = common::parse_csv_line(records[i]);
      if (fields.size() != 2)
        fail(row_line, "expected 2 fields, got " + std::to_string(fields.size()));
      step_point p;
      p.t_s = parse_finite(fields[0], row_line, "timestamp");
      p.value = parse_finite(fields[1], row_line, "value");
      if (p.t_s < 0.0) fail(row_line, "timestamp is negative");
      if (p.value < 0.0) fail(row_line, "value is negative");
      if (points.empty() && p.t_s != 0.0) fail(row_line, "first step must start at t=0");
      if (!points.empty() && p.t_s <= points.back().t_s)
        fail(row_line, "timestamp " + fields[0] + " does not increase");
      if (period > 0.0 && p.t_s >= period)
        fail(row_line, "timestamp " + fields[0] + " at or beyond the period");
      points.push_back(p);
    }
    if (points.empty()) fail(records.size(), "trace has no data rows");
    return step_trace{std::move(points), period};
  }
}

step_trace synthetic_diurnal(const synthetic_config& config) {
  if (!(config.step_s > 0.0) || !std::isfinite(config.step_s))
    throw std::invalid_argument("econ trace: synthetic step must be > 0");
  if (!(config.period_s >= config.step_s) || !std::isfinite(config.period_s))
    throw std::invalid_argument("econ trace: synthetic period must be >= step");
  if (config.base < 0.0 || config.amplitude < 0.0 || config.noise < 0.0)
    throw std::invalid_argument("econ trace: synthetic levels must be >= 0");

  const auto n = static_cast<std::size_t>(std::floor(config.period_s / config.step_s));
  const double period = static_cast<double>(n) * config.step_s;
  // Dedicated stream constant: the econ plane's draws never alias the fault
  // or chaos streams even under an identical seed.
  common::pcg32 rng{config.seed, 0xec0ULL + config.stream};
  std::vector<step_point> points;
  points.reserve(n);
  constexpr double two_pi = 6.283185307179586476925286766559;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * config.step_s;
    const double mid = t + 0.5 * config.step_s;
    double v = config.base + config.amplitude * std::sin(two_pi * mid / period);
    if (config.noise > 0.0) v += config.noise * (2.0 * rng.uniform() - 1.0);
    points.push_back({t, std::max(v, 0.0)});
  }
  return step_trace{std::move(points), period};
}

}  // namespace synergy::econ

#pragma once

/// \file trace.hpp
/// Piecewise-step facility-economics traces: electricity price ($/kWh) and
/// carbon intensity (gCO2/kWh) as functions of the cluster's virtual time.
///
/// Real tariffs and grid carbon signals are published as step series (hourly
/// day-ahead prices, 5-minute grid-mix averages), so the trace type is a
/// sorted list of (t_s, value) steps: the value at time t is the value of
/// the last step at or before t. A trace may declare a period, in which case
/// it wraps — a 24 h tariff priced over a week-long replay repeats daily.
///
/// Traces come from two places:
///  - CSV files via parse_step_trace(), with the same strict fail-closed
///    posture as every other serialized artefact in the tree: NaN, negative
///    values, non-monotonic timestamps, and malformed rows are rejected with
///    line-numbered diagnostics (the CorruptionFuzz suite hammers this);
///  - seeded synthetic generators (synthetic_diurnal) on a dedicated pcg32
///    stream, so benches and tests need no data files and stay
///    bit-reproducible per seed.

#include <cstdint>
#include <string>
#include <vector>

namespace synergy::econ {

struct step_point {
  double t_s{0.0};
  double value{0.0};

  friend bool operator==(const step_point&, const step_point&) = default;
};

/// A piecewise-constant, optionally periodic step function of virtual time.
class step_trace {
 public:
  step_trace() = default;
  /// `points` must start at t_s == 0, be strictly increasing in time, and
  /// hold only finite, non-negative values; with `period_s` > 0 every
  /// timestamp must fall inside [0, period_s). Throws std::invalid_argument.
  step_trace(std::vector<step_point> points, double period_s);

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] double period_s() const { return period_s_; }
  [[nodiscard]] const std::vector<step_point>& points() const { return points_; }

  /// Value of the step active at `t_s` (0 for an empty trace). Periodic
  /// traces wrap; aperiodic traces hold their last value forever.
  [[nodiscard]] double value_at(double t_s) const;

  /// Absolute time of the next step boundary strictly after `t_s`, or -1
  /// when the value never changes again (aperiodic trace past its last
  /// step, or a single-step trace). The simulator's econ tick and the cost
  /// integrator both walk boundaries through this.
  [[nodiscard]] double next_change_after(double t_s) const;

  /// Time-weighted mean value — over one period when periodic, over the
  /// step span otherwise. The cost-aware policy's defer/demote thresholds
  /// are ratios of this mean.
  [[nodiscard]] double mean() const;

  /// Canonical CSV rendering (round-trips through parse_step_trace); the
  /// checkpoint config fingerprint hashes this.
  [[nodiscard]] std::string to_csv(const std::string& kind) const;

  friend bool operator==(const step_trace&, const step_trace&) = default;

 private:
  std::vector<step_point> points_;
  double period_s_{0.0};
};

/// Strict parser for the econ trace CSV format:
///
///   # synergy-econ-trace v1 kind=price period=86400
///   t_s,value
///   0,0.08
///   3600,0.11
///
/// `kind` must be "price" or "carbon" and must match the file's header.
/// Rejects (with a "line N:" diagnostic in the thrown std::runtime_error):
/// a missing/malformed magic line, a wrong kind, a bad column header, rows
/// without exactly two fields, unparseable or non-finite numbers, negative
/// values, timestamps that do not start at 0 or are not strictly
/// increasing, timestamps at or beyond a declared period, and files with no
/// data rows.
[[nodiscard]] step_trace parse_step_trace(const std::string& text, const std::string& kind);

/// Seeded synthetic diurnal trace: a sinusoid over one period (expensive /
/// carbon-heavy first half, cheap second half) sampled into `period_s /
/// step_s` steps, plus uniform noise from a pcg32 dedicated to the econ
/// plane (stream selected by `stream`, so price and carbon draws never
/// share a sequence). Values are clamped at 0.
struct synthetic_config {
  std::uint64_t seed{1};
  std::uint64_t stream{0};   ///< rng stream selector (price=0, carbon=1 by convention)
  double period_s{86400.0};
  double step_s{3600.0};
  double base{0.10};         ///< mean level ($/kWh or gCO2/kWh)
  double amplitude{0.04};    ///< diurnal swing around the base
  double noise{0.0};         ///< uniform +/- noise amplitude per step
};

[[nodiscard]] step_trace synthetic_diurnal(const synthetic_config& config);

}  // namespace synergy::econ

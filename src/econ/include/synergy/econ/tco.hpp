#pragma once

/// \file tco.hpp
/// The facility TCO model: every simulated joule gets a price and a carbon
/// weight, and capex amortises per node-hour alongside.
///
/// Two parallel accountings, mirroring the energy plane's split between the
/// facility integral and the attribution ledger:
///
///  - facility opex/carbon: the cost integrator walks the facility power
///    signal through the price/carbon step boundaries (analytically — no
///    events needed), so `facility_cost_usd` is the exact integral of
///    watts x price(t) over virtual time, and capex accrues at
///    `capex_usd_per_node_hour x n_nodes` over the same span;
///  - attributed cost/carbon: every ledger charge in the cluster plane
///    (job completions, governor segments, fault-wasted partials) is
///    shadow-priced at its charge time and bucketed by the same obs::cause
///    tag, with the totals accumulated event by event — so "sum over causes
///    == attributed total" holds to the last bit and synergy_top --check
///    can enforce it on exported snapshots.
///
/// All state is exportable/importable for the checkpoint envelope: resumed
/// runs carry the accumulators verbatim (never recomputed) and reproduce
/// cost reports byte-identically.

#include <cstdint>

#include "synergy/econ/trace.hpp"
#include "synergy/obs/energy_ledger.hpp"

namespace synergy::econ {

/// Joules in one kilowatt-hour — the bridge between the simulator's joule
/// accounting and tariffs quoted per kWh.
inline constexpr double joules_per_kwh = 3.6e6;

/// Facility economics configuration for a cluster replay.
struct econ_config {
  bool enabled{false};
  /// Amortised capital cost per node-hour (purchase price / depreciation
  /// horizon); 0 models an opex-only view.
  double capex_usd_per_node_hour{0.0};
  /// Defer deferrable jobs while price > ratio x mean price. Ratios below 1
  /// are clamped to 1 — a threshold under the mean could defer forever on a
  /// trace that never dips below it.
  double defer_price_ratio{1.0};
  /// Tighten placed clocks one table step while price > ratio x mean price;
  /// <= 0 disables the demotion rule.
  double demote_price_ratio{1.30};
  step_trace price;   ///< $/kWh over virtual time
  step_trace carbon;  ///< gCO2/kWh over virtual time

  /// Econ accounting is live: enabled with a price signal to integrate.
  [[nodiscard]] bool usable() const { return enabled && !price.empty(); }
};

/// Accumulates the run's cost/carbon state. One instance per run; the
/// simulator reconstructs it in run() and round-trips it through the
/// checkpoint via export_state()/import_state().
class cost_meter {
 public:
  cost_meter() = default;
  /// `config` must outlive the meter (the simulator owns it in its
  /// cluster_config); `n_nodes` is the purchased inventory capex bills for.
  cost_meter(const econ_config& config, std::size_t n_nodes);

  [[nodiscard]] bool active() const { return config_ != nullptr && config_->usable(); }

  /// Integrate `watts` of facility draw over [t0_s, t1_s), stepping through
  /// every price/carbon boundary inside the span; capex accrues over the
  /// same wall of virtual time.
  void integrate(double watts, double t0_s, double t1_s);

  /// Shadow-price one ledger charge: `joules` attributed to `why` at
  /// virtual time `t_s`. Non-finite or non-positive charges are dropped,
  /// matching the energy ledger's posture.
  void charge(obs::cause why, double joules, double t_s);

  void complete_job() { ++jobs_completed_; }

  [[nodiscard]] double price_at(double t_s) const;
  [[nodiscard]] double carbon_at(double t_s) const;
  /// Time-weighted mean price — the base of the defer/demote thresholds.
  [[nodiscard]] double mean_price() const { return mean_price_; }

  [[nodiscard]] double facility_cost_usd() const { return facility_cost_usd_; }
  [[nodiscard]] double facility_carbon_g() const { return facility_carbon_g_; }
  [[nodiscard]] double capex_usd() const { return capex_usd_; }
  [[nodiscard]] double total_cost_usd() const { return facility_cost_usd_ + capex_usd_; }
  [[nodiscard]] double attributed_cost_usd() const { return attributed_cost_usd_; }
  [[nodiscard]] double attributed_carbon_g() const { return attributed_carbon_g_; }
  [[nodiscard]] const obs::cause_array& cost_by_cause() const { return cost_by_cause_; }
  [[nodiscard]] const obs::cause_array& carbon_by_cause() const { return carbon_by_cause_; }
  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_completed_; }
  [[nodiscard]] double cost_per_job_usd() const {
    return jobs_completed_ ? total_cost_usd() / static_cast<double>(jobs_completed_) : 0.0;
  }
  [[nodiscard]] double carbon_per_job_g() const {
    return jobs_completed_ ? facility_carbon_g_ / static_cast<double>(jobs_completed_) : 0.0;
  }

  /// Checkpoint payload: the accumulators, verbatim. Totals are carried —
  /// not recomputed from the cause arrays — so resumed reports match to
  /// the last bit.
  struct state {
    double facility_cost_usd{0.0};
    double facility_carbon_g{0.0};
    double capex_usd{0.0};
    double attributed_cost_usd{0.0};
    double attributed_carbon_g{0.0};
    obs::cause_array cost_by_cause{};
    obs::cause_array carbon_by_cause{};
    std::uint64_t jobs_completed{0};
  };
  [[nodiscard]] state export_state() const;
  void import_state(const state& s);

 private:
  const econ_config* config_{nullptr};
  double capex_usd_per_s_{0.0};
  double mean_price_{0.0};
  double facility_cost_usd_{0.0};
  double facility_carbon_g_{0.0};
  double capex_usd_{0.0};
  double attributed_cost_usd_{0.0};
  double attributed_carbon_g_{0.0};
  obs::cause_array cost_by_cause_{};
  obs::cause_array carbon_by_cause_{};
  std::uint64_t jobs_completed_{0};
};

}  // namespace synergy::econ

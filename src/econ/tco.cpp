#include "synergy/econ/tco.hpp"

#include <cmath>

namespace synergy::econ {

cost_meter::cost_meter(const econ_config& config, std::size_t n_nodes)
    : config_(&config),
      capex_usd_per_s_(config.capex_usd_per_node_hour * static_cast<double>(n_nodes) /
                       3600.0),
      mean_price_(config.price.mean()) {}

double cost_meter::price_at(double t_s) const {
  return config_ ? config_->price.value_at(t_s) : 0.0;
}

double cost_meter::carbon_at(double t_s) const {
  return config_ ? config_->carbon.value_at(t_s) : 0.0;
}

void cost_meter::integrate(double watts, double t0_s, double t1_s) {
  if (!active() || !(t1_s > t0_s)) return;
  // Both signals are piecewise-constant, so the integral is exact: advance
  // cursor to the nearest boundary of either trace, price the sub-span at
  // its (constant) rates, repeat.
  double cur = t0_s;
  while (cur < t1_s) {
    double next = t1_s;
    const double pb = config_->price.next_change_after(cur);
    if (pb > cur && pb < next) next = pb;
    const double cb = config_->carbon.next_change_after(cur);
    if (cb > cur && cb < next) next = cb;
    const double span = next - cur;
    const double kwh = watts * span / joules_per_kwh;
    facility_cost_usd_ += kwh * config_->price.value_at(cur);
    facility_carbon_g_ += kwh * config_->carbon.value_at(cur);
    capex_usd_ += capex_usd_per_s_ * span;
    cur = next;
  }
}

void cost_meter::charge(obs::cause why, double joules, double t_s) {
  if (!active() || !std::isfinite(joules) || joules <= 0.0) return;
  const auto idx = static_cast<std::size_t>(why);
  if (idx >= obs::n_causes) return;
  const double kwh = joules / joules_per_kwh;
  const double usd = kwh * config_->price.value_at(t_s);
  const double g = kwh * config_->carbon.value_at(t_s);
  cost_by_cause_[idx] += usd;
  carbon_by_cause_[idx] += g;
  attributed_cost_usd_ += usd;
  attributed_carbon_g_ += g;
}

cost_meter::state cost_meter::export_state() const {
  state s;
  s.facility_cost_usd = facility_cost_usd_;
  s.facility_carbon_g = facility_carbon_g_;
  s.capex_usd = capex_usd_;
  s.attributed_cost_usd = attributed_cost_usd_;
  s.attributed_carbon_g = attributed_carbon_g_;
  s.cost_by_cause = cost_by_cause_;
  s.carbon_by_cause = carbon_by_cause_;
  s.jobs_completed = jobs_completed_;
  return s;
}

void cost_meter::import_state(const state& s) {
  facility_cost_usd_ = s.facility_cost_usd;
  facility_carbon_g_ = s.facility_carbon_g;
  capex_usd_ = s.capex_usd;
  attributed_cost_usd_ = s.attributed_cost_usd;
  attributed_carbon_g_ = s.attributed_carbon_g;
  cost_by_cause_ = s.cost_by_cause;
  carbon_by_cause_ = s.carbon_by_cause;
  jobs_completed_ = s.jobs_completed;
}

}  // namespace synergy::econ

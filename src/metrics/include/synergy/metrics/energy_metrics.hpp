#pragma once

/// \file energy_metrics.hpp
/// Energy-performance tradeoff metrics (paper Sec. 5).
///
/// Frequency scaling makes energy vs. performance a multi-objective problem
/// with a Pareto set of solutions. SYnergy exposes scalar targets that name
/// one Pareto point each:
///   - MIN_EDP / MIN_ED2P: classic energy-delay products;
///   - ES_x: the best-performing configuration achieving at least x% of the
///     potential energy savings (default → minimum-energy frequency);
///   - PL_x: the most energy-efficient configuration losing at most x% of
///     the potential performance over the same interval;
///   - MAX_PERF / MIN_ENERGY: the interval endpoints (Sec. 8.3).

#include <cstddef>
#include <string>
#include <vector>

#include "synergy/common/units.hpp"

namespace synergy::metrics {

/// Energy-delay product: e * t.
[[nodiscard]] constexpr double edp(double energy_j, double time_s) { return energy_j * time_s; }

/// Energy-delay-squared product: e * t^2.
[[nodiscard]] constexpr double ed2p(double energy_j, double time_s) {
  return energy_j * time_s * time_s;
}

/// One (frequency, time, energy) operating point of a kernel, measured or
/// model-predicted.
struct operating_point {
  common::frequency_config config;
  double time_s{0.0};
  double energy_j{0.0};

  [[nodiscard]] double edp() const { return metrics::edp(energy_j, time_s); }
  [[nodiscard]] double ed2p() const { return metrics::ed2p(energy_j, time_s); }
};

/// A kernel's full frequency sweep plus the device-default index, the raw
/// material of every figure in the paper's evaluation.
struct characterization {
  std::vector<operating_point> points;  ///< ascending core frequency
  std::size_t default_index{0};         ///< index of the driver-default config

  [[nodiscard]] const operating_point& default_point() const {
    return points.at(default_index);
  }

  /// Speedup of p vs the default configuration (paper Figs. 2/7/8 x-axis).
  [[nodiscard]] double speedup(const operating_point& p) const {
    return default_point().time_s / p.time_s;
  }

  /// Energy of p normalised to the default (paper Figs. 2/7/8 y-axis).
  [[nodiscard]] double normalized_energy(const operating_point& p) const {
    return p.energy_j / default_point().energy_j;
  }
};

/// A user-selectable energy target (paper Listing 3: MIN_EDP, ES_x, PL_x...).
struct target {
  enum class kind {
    max_perf,
    min_energy,
    min_edp,
    min_ed2p,
    energy_saving,    ///< ES_x, parameterised by percent
    performance_loss  ///< PL_x, parameterised by percent
  };

  kind k{kind::min_edp};
  /// Only for ES_x / PL_x, in [0, 100]. The degenerate ends are well
  /// defined: ES_0 / PL_0 pick the best configuration not worse than the
  /// default (energy resp. time budget collapses onto the default point),
  /// ES_100 picks the fastest minimum-energy configuration, PL_100 allows
  /// the full slowdown to the minimum-energy frequency.
  double percent{0.0};

  [[nodiscard]] static target max_perf() { return {kind::max_perf, 0.0}; }
  [[nodiscard]] static target min_energy() { return {kind::min_energy, 0.0}; }
  [[nodiscard]] static target min_edp() { return {kind::min_edp, 0.0}; }
  [[nodiscard]] static target min_ed2p() { return {kind::min_ed2p, 0.0}; }
  [[nodiscard]] static target energy_saving(double percent) {
    return {kind::energy_saving, percent};
  }
  [[nodiscard]] static target performance_loss(double percent) {
    return {kind::performance_loss, percent};
  }

  /// Paper-style name: "MIN_EDP", "ES_25", "PL_50", ...
  [[nodiscard]] std::string to_string() const;

  /// Inverse of to_string; throws std::invalid_argument on unknown names,
  /// on ES_/PL_ with a missing, non-numeric, non-finite, or out-of-range
  /// percent ("ES_", "ES_abc", "ES_150", "PL_-5"), and on trailing garbage.
  [[nodiscard]] static target parse(const std::string& name);

  friend bool operator==(const target&, const target&) = default;
};

/// Convenience constants matching the paper's API spelling.
inline const target MAX_PERF = target::max_perf();
inline const target MIN_ENERGY = target::min_energy();
inline const target MIN_EDP = target::min_edp();
inline const target MIN_ED2P = target::min_ed2p();
inline const target ES_25 = target::energy_saving(25.0);
inline const target ES_50 = target::energy_saving(50.0);
inline const target ES_75 = target::energy_saving(75.0);
inline const target PL_25 = target::performance_loss(25.0);
inline const target PL_50 = target::performance_loss(50.0);
inline const target PL_75 = target::performance_loss(75.0);

/// The ten objectives evaluated in the paper's Sec. 8.3 (Fig. 9 / Table 2).
[[nodiscard]] std::vector<target> paper_objectives();

/// Indices of the Pareto-optimal points (minimise time AND energy); sorted
/// by ascending time. A point is dominated if another has time <= and
/// energy <= with at least one strict.
[[nodiscard]] std::vector<std::size_t> pareto_front(const std::vector<operating_point>& points);

/// Select the operating point satisfying `t` (paper Fig. 6 step 6). Works on
/// measured or predicted characterizations alike. Throws on empty input.
[[nodiscard]] std::size_t select(const characterization& c, const target& t);

}  // namespace synergy::metrics

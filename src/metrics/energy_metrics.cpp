#include "synergy/metrics/energy_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace synergy::metrics {

std::string target::to_string() const {
  switch (k) {
    case kind::max_perf: return "MAX_PERF";
    case kind::min_energy: return "MIN_ENERGY";
    case kind::min_edp: return "MIN_EDP";
    case kind::min_ed2p: return "MIN_ED2P";
    case kind::energy_saving: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "ES_%g", percent);
      return buf;
    }
    case kind::performance_loss: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "PL_%g", percent);
      return buf;
    }
  }
  return "?";
}

target target::parse(const std::string& name) {
  if (name == "MAX_PERF") return max_perf();
  if (name == "MIN_ENERGY") return min_energy();
  if (name == "MIN_EDP") return min_edp();
  if (name == "MIN_ED2P") return min_ed2p();
  // std::stod alone is too permissive here: it accepts trailing garbage
  // ("ES_25x"), consumes an empty suffix as an exception with a useless
  // message ("ES_"), and lets "nan"/"inf" through the range check.
  auto parse_percent = [&](std::size_t prefix_len) {
    const std::string digits = name.substr(prefix_len);
    if (digits.empty())
      throw std::invalid_argument("energy target missing percent value: " + name);
    const char* begin = digits.c_str();
    char* end = nullptr;
    const double p = std::strtod(begin, &end);
    if (end == begin || *end != '\0')
      throw std::invalid_argument("energy target percent is not a number: " + name);
    if (!std::isfinite(p))
      throw std::invalid_argument("energy target percent must be finite: " + name);
    if (p < 0.0 || p > 100.0)
      throw std::invalid_argument("target percent out of [0,100]: " + name);
    return p;
  };
  if (name.rfind("ES_", 0) == 0) return energy_saving(parse_percent(3));
  if (name.rfind("PL_", 0) == 0) return performance_loss(parse_percent(3));
  throw std::invalid_argument("unknown energy target: " + name);
}

std::vector<target> paper_objectives() {
  return {MAX_PERF, MIN_ENERGY, MIN_EDP, MIN_ED2P, ES_25, ES_50, ES_75, PL_25, PL_50, PL_75};
}

std::vector<std::size_t> pareto_front(const std::vector<operating_point>& points) {
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Sort by time ascending, breaking ties by energy ascending.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].time_s != points[b].time_s) return points[a].time_s < points[b].time_s;
    return points[a].energy_j < points[b].energy_j;
  });
  std::vector<std::size_t> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (const std::size_t i : order) {
    if (points[i].energy_j < best_energy) {
      front.push_back(i);
      best_energy = points[i].energy_j;
    }
  }
  return front;
}

namespace {

std::size_t argmin(const std::vector<operating_point>& pts, auto&& key) {
  std::size_t best = 0;
  double best_v = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double v = key(pts[i]);
    if (v < best_v) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

}  // namespace

std::size_t select(const characterization& c, const target& t) {
  const auto& pts = c.points;
  if (pts.empty()) throw std::invalid_argument("empty characterization");
  if (c.default_index >= pts.size()) throw std::invalid_argument("bad default index");

  switch (t.k) {
    case target::kind::max_perf:
      return argmin(pts, [](const operating_point& p) { return p.time_s; });
    case target::kind::min_energy:
      return argmin(pts, [](const operating_point& p) { return p.energy_j; });
    case target::kind::min_edp:
      return argmin(pts, [](const operating_point& p) { return p.edp(); });
    case target::kind::min_ed2p:
      return argmin(pts, [](const operating_point& p) { return p.ed2p(); });
    case target::kind::energy_saving: {
      // Potential savings span default -> global minimum energy. The target
      // is the best-performing configuration achieving at least x% of it.
      const double e_default = c.default_point().energy_j;
      const std::size_t i_min =
          argmin(pts, [](const operating_point& p) { return p.energy_j; });
      const double e_min = pts[i_min].energy_j;
      const double e_budget = e_default - t.percent / 100.0 * (e_default - e_min);
      std::size_t best = i_min;
      double best_time = pts[i_min].time_s;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].energy_j <= e_budget + 1e-15 * std::fabs(e_budget) &&
            pts[i].time_s < best_time) {
          best = i;
          best_time = pts[i].time_s;
        }
      }
      return best;
    }
    case target::kind::performance_loss: {
      // Potential loss spans default -> the minimum-energy frequency's time.
      // The target is the most energy-efficient configuration within x% of
      // that loss.
      const double t_default = c.default_point().time_s;
      const std::size_t i_min =
          argmin(pts, [](const operating_point& p) { return p.energy_j; });
      const double t_slow = std::max(t_default, pts[i_min].time_s);
      const double t_budget = t_default + t.percent / 100.0 * (t_slow - t_default);
      std::size_t best = c.default_index;
      double best_energy = c.default_point().energy_j;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].time_s <= t_budget + 1e-15 * std::fabs(t_budget) &&
            pts[i].energy_j < best_energy) {
          best = i;
          best_energy = pts[i].energy_j;
        }
      }
      return best;
    }
  }
  throw std::logic_error("unreachable target kind");
}

}  // namespace synergy::metrics

#pragma once

/// \file metrics.hpp
/// Prediction-error metrics used in the paper's accuracy analysis
/// (Sec. 8.3): absolute percentage error (APE), mean APE (MAPE), and root
/// mean squared error (RMSE), plus R^2 as a general goodness-of-fit check.

#include <span>
#include <vector>

namespace synergy::ml {

/// |predicted - actual| / |actual|; 0 if both are 0, large if only actual is.
[[nodiscard]] double ape(double actual, double predicted);

/// Mean APE over paired spans.
[[nodiscard]] double mape(std::span<const double> actual, std::span<const double> predicted);

/// Root mean squared error over paired spans.
[[nodiscard]] double rmse(std::span<const double> actual, std::span<const double> predicted);

/// Coefficient of determination; 1 is a perfect fit, 0 matches predicting
/// the mean, negative is worse than the mean.
[[nodiscard]] double r2(std::span<const double> actual, std::span<const double> predicted);

}  // namespace synergy::ml

#include <cstdint>
#include <functional>
#include <memory>

#include "synergy/ml/regressor.hpp"

namespace synergy::ml {

/// Per-fold and aggregate cross-validation scores.
struct cv_result {
  std::vector<double> fold_rmse;
  std::vector<double> fold_r2;
  [[nodiscard]] double mean_rmse() const;
  [[nodiscard]] double mean_r2() const;
};

/// K-fold cross-validation: shuffles `data` deterministically, trains a
/// fresh regressor (from `make_model`) on each training split, and scores
/// the held-out fold. The model-selection companion of the paper's accuracy
/// analysis (Sec. 8.3).
[[nodiscard]] cv_result k_fold_cv(const dataset& data, std::size_t k,
                                  const std::function<std::unique_ptr<regressor>()>& make_model,
                                  std::uint64_t seed = 0xcf01dULL);

}  // namespace synergy::ml

#pragma once

/// \file svr.hpp
/// Epsilon-insensitive support vector regression with an RBF kernel
/// (the paper's SVR_RBF column in Table 2).
///
/// Training solves the bias-free SVR dual by cyclic coordinate descent on
/// beta_i = alpha_i - alpha_i* with box constraint |beta_i| <= C; the bias is
/// absorbed by augmenting the kernel with a constant (K + 1), a standard
/// equivalent formulation. Features and targets are standardised internally
/// so the default epsilon/C/gamma are meaningful across very differently
/// scaled objectives (seconds vs joules vs EDP).

#include <cstdint>

#include "synergy/ml/regressor.hpp"

namespace synergy::ml {

struct svr_params {
  /// Defaults follow scikit-learn's SVR (C=1, epsilon=0.1 on standardised
  /// targets), matching the off-the-shelf configuration an evaluation like
  /// the paper's would use.
  double c{1.0};         ///< box constraint on |beta|
  double epsilon{0.1};   ///< insensitive tube half-width (in std-y units)
  /// RBF width; <= 0 means "scale": gamma = 1/d on standardised features.
  double gamma{-1.0};
  std::size_t max_iter{200};
  double tol{1e-6};
};

class svr_rbf final : public regressor {
 public:
  explicit svr_rbf(svr_params params = {}) : params_(params) {}

  void fit(const matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_one(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "SVR"; }
  [[nodiscard]] bool fitted() const override { return !beta_.empty(); }
  [[nodiscard]] std::string serialize() const override;

  /// Number of support vectors (beta != 0) retained after training.
  [[nodiscard]] std::size_t support_vector_count() const { return beta_.size(); }
  [[nodiscard]] const svr_params& params() const { return params_; }

  static std::unique_ptr<svr_rbf> deserialize(const std::string& text);

 private:
  [[nodiscard]] double kernel(std::span<const double> a, std::span<const double> b) const;

  svr_params params_;
  matrix support_;            ///< standardised support vectors
  std::vector<double> beta_;  ///< dual coefficients of the support vectors
  standard_scaler scaler_;
  double gamma_eff_{1.0};
  double y_mean_{0.0};
  double y_scale_{1.0};
};

}  // namespace synergy::ml

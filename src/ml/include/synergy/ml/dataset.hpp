#pragma once

/// \file dataset.hpp
/// Supervised-learning dataset plumbing: (X, y) pairs, shuffling, splits,
/// and the standard scaler used before Lasso/SVR training.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "synergy/ml/matrix.hpp"

namespace synergy::ml {

/// A design matrix with its targets.
struct dataset {
  matrix x;
  std::vector<double> y;

  [[nodiscard]] std::size_t size() const { return x.rows(); }
  void push(std::span<const double> features, double target) {
    x.push_row(features);
    y.push_back(target);
  }
};

/// Deterministically shuffle rows (Fisher-Yates with pcg32).
[[nodiscard]] dataset shuffled(const dataset& d, std::uint64_t seed);

/// Split into train/test; `train_fraction` of rows (rounded down, at least 1
/// if non-empty) go to train. Split is positional: shuffle first if needed.
[[nodiscard]] std::pair<dataset, dataset> split(const dataset& d, double train_fraction);

/// Column-wise standardisation fitted on training data and applied to any
/// matrix with the same columns. Constant columns get unit scale.
class standard_scaler {
 public:
  void fit(const matrix& x);
  [[nodiscard]] matrix transform(const matrix& x) const;
  [[nodiscard]] matrix fit_transform(const matrix& x) {
    fit(x);
    return transform(x);
  }
  /// Transform a single row in place.
  void transform_row(std::span<double> row) const;

  [[nodiscard]] const std::vector<double>& means() const { return mean_; }
  [[nodiscard]] const std::vector<double>& scales() const { return scale_; }
  [[nodiscard]] bool fitted() const { return !mean_.empty(); }

  /// Restore a previously fitted scaler (model deserialisation).
  void restore(std::vector<double> means, std::vector<double> scales) {
    if (means.size() != scales.size()) throw std::invalid_argument("scaler restore mismatch");
    mean_ = std::move(means);
    scale_ = std::move(scales);
  }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace synergy::ml

#pragma once

/// \file serialize_detail.hpp
/// Internal helpers for the line-oriented model text format. Each model
/// serialises as a header line ("<kind> v1") followed by named fields:
///   <name> <value>            (scalar)
///   <name> <count> v0 v1 ...  (vector)
/// Not part of the public API; subject to change with the format version.

#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "synergy/ml/dataset.hpp"

namespace synergy::ml::detail {

/// Hard ceiling on serialized vector lengths. A corrupted length field must
/// produce a clean parse error, not a multi-gigabyte allocation; no model
/// this codebase trains comes within orders of magnitude of the cap.
inline constexpr std::size_t max_vector_elements = 1u << 24;

inline void write_scalar(std::ostream& os, const std::string& name, double value) {
  os << name << ' ' << std::setprecision(17) << value << '\n';
}

inline void write_vector(std::ostream& os, const std::string& name,
                         const std::vector<double>& values) {
  os << name << ' ' << values.size() << std::setprecision(17);
  for (const double v : values) os << ' ' << v;
  os << '\n';
}

/// Sequential reader enforcing the field order the writers emit.
class field_reader {
 public:
  field_reader(const std::string& text, const std::string& expected_header) : in_(text) {
    std::string header;
    std::getline(in_, header);
    if (header != expected_header)
      throw std::invalid_argument("model header mismatch: got '" + header + "', expected '" +
                                  expected_header + "'");
  }

  double scalar(const std::string& name) {
    require_name(name);
    double v = 0.0;
    line_ >> v;
    if (line_.fail()) throw std::invalid_argument("bad scalar field " + name);
    return v;
  }

  std::vector<double> vector(const std::string& name) {
    require_name(name);
    std::size_t n = 0;
    line_ >> n;
    if (line_.fail() || n > max_vector_elements)
      throw std::invalid_argument("bad vector length for field " + name);
    std::vector<double> out(n);
    for (auto& v : out) line_ >> v;
    if (line_.fail()) throw std::invalid_argument("bad vector field " + name);
    return out;
  }

  /// Raw remaining text (tree blocks etc.).
  std::string rest() {
    std::ostringstream oss;
    oss << in_.rdbuf();
    return oss.str();
  }

 private:
  void require_name(const std::string& name) {
    std::string raw;
    if (!std::getline(in_, raw)) throw std::invalid_argument("missing field " + name);
    line_ = std::istringstream{raw};
    std::string got;
    line_ >> got;
    if (got != name)
      throw std::invalid_argument("field order mismatch: got '" + got + "', expected '" + name +
                                  "'");
  }

  std::istringstream in_;
  std::istringstream line_;
};

inline void restore_scaler(standard_scaler& scaler, std::vector<double> means,
                           std::vector<double> scales) {
  scaler.restore(std::move(means), std::move(scales));
}

}  // namespace synergy::ml::detail

#pragma once

/// \file matrix.hpp
/// Row-major dense matrix with the small amount of linear algebra the ML
/// library needs (normal equations via Cholesky). Sized for SYnergy's
/// training sets — thousands of rows, ~11 columns — so no blocking or BLAS.

#include <cstddef>
#include <span>
#include <vector>

namespace synergy::ml {

class matrix {
 public:
  matrix() = default;
  matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// Append one row (must match cols unless the matrix is empty).
  void push_row(std::span<const double> values);

  /// Column c as a vector copy.
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// X^T X (cols x cols), the Gram matrix of the design matrix.
[[nodiscard]] matrix gram(const matrix& x);

/// X^T y (length cols).
[[nodiscard]] std::vector<double> xty(const matrix& x, std::span<const double> y);

/// Solve A w = b for symmetric positive-definite A via Cholesky; A is
/// modified in place. Throws std::runtime_error if A is not SPD.
[[nodiscard]] std::vector<double> cholesky_solve(matrix a, std::vector<double> b);

/// Dot product of equal-length spans.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

}  // namespace synergy::ml

#pragma once

/// \file feature_envelope.hpp
/// Per-dimension min/max envelope of a training design matrix.
///
/// The planner's models are only trustworthy inside the region the
/// micro-benchmark suite covered (the trainer deliberately spans the
/// per-item counts of real kernels so models interpolate, not extrapolate).
/// The envelope records that region at training time, ships with the model
/// set, and lets the guarded planner flag out-of-distribution feature
/// vectors at plan time instead of silently extrapolating to a pathological
/// clock.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "synergy/common/error.hpp"
#include "synergy/ml/matrix.hpp"

namespace synergy::ml {

class feature_envelope {
 public:
  /// Widen the envelope with one sample (first sample fixes the dimension).
  void observe(std::span<const double> x);

  /// Record every row of a design matrix (replaces previous state).
  void fit(const matrix& x);

  [[nodiscard]] bool fitted() const { return count_ > 0; }
  [[nodiscard]] std::size_t dims() const { return lo_.size(); }
  [[nodiscard]] std::size_t samples() const { return count_; }
  [[nodiscard]] const std::vector<double>& min() const { return lo_; }
  [[nodiscard]] const std::vector<double>& max() const { return hi_; }

  /// Whether `x` lies inside the envelope, widened per dimension by
  /// `tolerance` of that dimension's span (plus a small absolute slack so
  /// constant training columns do not reject float noise). A vector of the
  /// wrong dimension is never contained. An unfitted envelope contains
  /// everything — absence of evidence is not evidence of drift.
  [[nodiscard]] bool contains(std::span<const double> x, double tolerance = 0.05) const;

  /// Line-oriented text serialisation (same idiom as the regressors).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static common::result<feature_envelope> deserialize(const std::string& text);

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::size_t count_{0};
};

}  // namespace synergy::ml

#pragma once

/// \file linear.hpp
/// Linear-family regressors: ordinary least squares (with a small ridge term
/// for numerical stability) and Lasso via cyclic coordinate descent. Both
/// standardise features internally, as scikit-learn pipelines do in the
/// paper's training setup.

#include "synergy/ml/regressor.hpp"

namespace synergy::ml {

/// Ordinary least squares (ridge-stabilised normal equations).
class linear_regression final : public regressor {
 public:
  /// `l2` is the ridge stabiliser on standardised features; the default is
  /// small enough to be statistically invisible.
  explicit linear_regression(double l2 = 1e-8) : l2_(l2) {}

  void fit(const matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_one(std::span<const double> x) const override;
  void predict_into(const matrix& x, std::span<double> out) const override;
  [[nodiscard]] std::string name() const override { return "Linear"; }
  [[nodiscard]] bool fitted() const override { return !coef_.empty(); }
  [[nodiscard]] std::string serialize() const override;

  [[nodiscard]] const std::vector<double>& coefficients() const { return coef_; }
  [[nodiscard]] double intercept() const { return intercept_; }

  static std::unique_ptr<linear_regression> deserialize(const std::string& text);

 private:
  double l2_;
  std::vector<double> coef_;  // on standardised features
  double intercept_{0.0};
  standard_scaler scaler_;

  friend class lasso_regression;
};

/// Lasso: L1-regularised least squares, fitted by cyclic coordinate descent
/// on standardised features.
class lasso_regression final : public regressor {
 public:
  explicit lasso_regression(double alpha = 1e-3, std::size_t max_iter = 2000,
                            double tol = 1e-8)
      : alpha_(alpha), max_iter_(max_iter), tol_(tol) {}

  void fit(const matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_one(std::span<const double> x) const override;
  void predict_into(const matrix& x, std::span<double> out) const override;
  [[nodiscard]] std::string name() const override { return "Lasso"; }
  [[nodiscard]] bool fitted() const override { return !coef_.empty(); }
  [[nodiscard]] std::string serialize() const override;

  [[nodiscard]] const std::vector<double>& coefficients() const { return coef_; }
  [[nodiscard]] double intercept() const { return intercept_; }
  /// Number of exactly-zero coefficients (sparsity diagnostic).
  [[nodiscard]] std::size_t zero_count() const;

  static std::unique_ptr<lasso_regression> deserialize(const std::string& text);

 private:
  double alpha_;
  std::size_t max_iter_;
  double tol_;
  std::vector<double> coef_;
  double intercept_{0.0};
  standard_scaler scaler_;
};

}  // namespace synergy::ml

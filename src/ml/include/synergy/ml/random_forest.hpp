#pragma once

/// \file random_forest.hpp
/// Random-forest regression: bagged CART trees with per-split feature
/// subsampling, variance-reduction splits, and deterministic seeding.
/// This is the algorithm the paper finds best for energy, EDP, and ES_x
/// targets (Table 2).

#include <cstdint>

#include "synergy/ml/regressor.hpp"

namespace synergy::ml {

struct random_forest_params {
  std::size_t n_trees{120};
  std::size_t max_depth{16};
  std::size_t min_samples_leaf{1};
  std::size_t min_samples_split{4};
  /// Fraction of features considered per split (mtry = max(1, d * fraction)).
  double feature_fraction{0.5};
  std::uint64_t seed{0x5349u};
};

class random_forest final : public regressor {
 public:
  explicit random_forest(random_forest_params params = {}) : params_(params) {}

  void fit(const matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_one(std::span<const double> x) const override;
  void predict_into(const matrix& x, std::span<double> out) const override;
  [[nodiscard]] std::string name() const override { return "RandomForest"; }
  [[nodiscard]] bool fitted() const override { return !trees_.empty(); }
  [[nodiscard]] std::string serialize() const override;

  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }
  [[nodiscard]] const random_forest_params& params() const { return params_; }

  /// Impurity-based feature importances: total variance reduction
  /// contributed by splits on each feature, normalised to sum to 1
  /// (all-zero if the forest is pure leaves). Diagnoses what the energy
  /// models actually learned (e.g. the clock feature must matter).
  [[nodiscard]] std::vector<double> feature_importances() const;

  static std::unique_ptr<random_forest> deserialize(const std::string& text);

 private:
  /// Flat tree node; feature < 0 marks a leaf carrying `value`.
  struct node {
    int feature{-1};
    double threshold{0.0};
    int left{-1};
    int right{-1};
    double value{0.0};
    double gain{0.0};  ///< variance reduction of this split (0 for leaves)
    [[nodiscard]] bool is_leaf() const { return feature < 0; }
  };

  struct tree {
    std::vector<node> nodes;
    [[nodiscard]] double predict(std::span<const double> x) const;
  };

  /// Rebuild the flat traversal arrays from `trees_`. Called after fit and
  /// deserialize; prediction never walks the per-tree node vectors.
  void rebuild_flat();

  random_forest_params params_;
  std::vector<tree> trees_;
  std::size_t n_features_{0};

  /// Flat forest for cache-friendly traversal: every tree's nodes live in one
  /// contiguous array with child links rebased to absolute indices; `roots_`
  /// holds each tree's root index. Same topology and leaf values as `trees_`,
  /// so traversal results are bitwise identical.
  std::vector<node> flat_nodes_;
  std::vector<std::size_t> roots_;

  friend struct random_forest_builder;
};

}  // namespace synergy::ml

#pragma once

/// \file regressor.hpp
/// Common interface of the four regression families the paper compares
/// (Sec. 8.3): Linear, Lasso, Random Forest, and SVR with RBF kernel.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "synergy/common/error.hpp"
#include "synergy/ml/dataset.hpp"
#include "synergy/ml/matrix.hpp"

namespace synergy::ml {

class regressor {
 public:
  virtual ~regressor() = default;

  /// Fit on a design matrix and targets; refitting replaces the model.
  virtual void fit(const matrix& x, std::span<const double> y) = 0;

  /// Predict a single sample (must match training column count).
  [[nodiscard]] virtual double predict_one(std::span<const double> x) const = 0;

  /// Algorithm name as it appears in the paper's Table 2.
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual bool fitted() const = 0;

  /// Serialise to a text blob loadable by deserialize_regressor.
  [[nodiscard]] virtual std::string serialize() const = 0;

  /// Batch prediction into caller-owned storage (`out.size() == x.rows()`).
  /// Overrides may fuse per-row work (scratch reuse, flat-tree traversal) but
  /// must produce bit-identical results to row-by-row predict_one: plan
  /// decisions are replayed for determinism checks, so the batched path may
  /// not reassociate floating-point arithmetic.
  virtual void predict_into(const matrix& x, std::span<double> out) const {
    if (out.size() != x.rows()) throw std::invalid_argument("predict_into size mismatch");
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_one(x.row(r));
  }

  /// Batch prediction.
  [[nodiscard]] std::vector<double> predict(const matrix& x) const {
    std::vector<double> out(x.rows());
    predict_into(x, out);
    return out;
  }

  void fit(const dataset& d) { fit(d.x, d.y); }
};

/// Algorithms the factory can build (the paper's Table 2 columns).
enum class algorithm { linear, lasso, random_forest, svr_rbf };

[[nodiscard]] const char* to_string(algorithm a);

/// Build a default-configured regressor of the given family.
[[nodiscard]] std::unique_ptr<regressor> make_regressor(algorithm a);

/// Reconstruct a regressor from the text produced by regressor::serialize.
[[nodiscard]] std::unique_ptr<regressor> deserialize_regressor(const std::string& text);

/// Exception-free variant for untrusted on-disk input: every malformed
/// payload (unknown header, field-order mismatch, bad numbers, absurd
/// lengths) comes back as a structured error naming the defect, never an
/// exception escaping the call and never UB. The persistence layer pairs
/// this with the CRC envelope: the checksum catches random corruption, this
/// catches everything the checksum cannot (valid bytes, wrong schema).
[[nodiscard]] common::result<std::unique_ptr<regressor>> try_deserialize_regressor(
    const std::string& text);

}  // namespace synergy::ml

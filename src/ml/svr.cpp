#include "synergy/ml/svr.hpp"

#include "synergy/telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "synergy/ml/serialize_detail.hpp"

namespace synergy::ml {

double svr_rbf::kernel(std::span<const double> a, std::span<const double> b) const {
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  // +1 absorbs the bias term (bias-free dual over an augmented kernel).
  return std::exp(-gamma_eff_ * sq) + 1.0;
}

void svr_rbf::fit(const matrix& x, std::span<const double> y) {
  if (x.rows() != y.size() || x.rows() == 0) throw std::invalid_argument("bad training data");
  SYNERGY_SPAN_VAR(span, telemetry::category::train, "ml.fit.svr");
  span.arg("rows", static_cast<double>(x.rows()));
  SYNERGY_COUNTER_ADD("ml.fits", 1);
  const std::size_t n = x.rows();
  const matrix xs = scaler_.fit_transform(x);
  gamma_eff_ = params_.gamma > 0.0 ? params_.gamma : 1.0 / static_cast<double>(x.cols());

  // Standardise the target.
  y_mean_ = 0.0;
  for (const double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(n);
  double var = 0.0;
  for (const double v : y) var += (v - y_mean_) * (v - y_mean_);
  y_scale_ = std::sqrt(var / static_cast<double>(n));
  if (y_scale_ < 1e-12) y_scale_ = 1.0;
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = (y[i] - y_mean_) / y_scale_;

  // Precompute the kernel matrix (training sets are a few thousand rows).
  matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(xs.row(i), xs.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }

  // Cyclic coordinate descent on beta with soft-thresholding.
  std::vector<double> beta(n, 0.0);
  std::vector<double> f(n, 0.0);  // f_i = sum_j K_ij beta_j
  for (std::size_t iter = 0; iter < params_.max_iter; ++iter) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double kii = k(i, i);
      // Residual excluding i's own contribution.
      const double r = ys[i] - (f[i] - kii * beta[i]);
      double target = 0.0;
      if (r > params_.epsilon) target = (r - params_.epsilon) / kii;
      else if (r < -params_.epsilon) target = (r + params_.epsilon) / kii;
      target = std::clamp(target, -params_.c, params_.c);
      const double delta = target - beta[i];
      if (delta != 0.0) {
        for (std::size_t j = 0; j < n; ++j) f[j] += k(i, j) * delta;
        beta[i] = target;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < params_.tol) break;
  }

  // Keep only support vectors.
  support_ = matrix{};
  beta_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(beta[i]) > 1e-12) {
      support_.push_row(xs.row(i));
      beta_.push_back(beta[i]);
    }
  }
  if (beta_.empty()) {  // everything inside the tube: predict the mean
    support_.push_row(xs.row(0));
    beta_.push_back(0.0);
  }
}

double svr_rbf::predict_one(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("predict before fit");
  std::vector<double> row(x.begin(), x.end());
  scaler_.transform_row(row);
  double f = 0.0;
  for (std::size_t i = 0; i < beta_.size(); ++i) f += beta_[i] * kernel(support_.row(i), row);
  return f * y_scale_ + y_mean_;
}

std::string svr_rbf::serialize() const {
  std::ostringstream oss;
  oss << "svr_rbf v1\n";
  detail::write_scalar(oss, "gamma", gamma_eff_);
  detail::write_scalar(oss, "y_mean", y_mean_);
  detail::write_scalar(oss, "y_scale", y_scale_);
  detail::write_vector(oss, "mean", scaler_.means());
  detail::write_vector(oss, "scale", scaler_.scales());
  detail::write_vector(oss, "beta", beta_);
  detail::write_scalar(oss, "n_support", static_cast<double>(support_.rows()));
  detail::write_scalar(oss, "n_features", static_cast<double>(support_.cols()));
  oss << std::setprecision(17);
  for (std::size_t r = 0; r < support_.rows(); ++r) {
    for (std::size_t c = 0; c < support_.cols(); ++c)
      oss << (c ? " " : "") << support_(r, c);
    oss << '\n';
  }
  return oss.str();
}

std::unique_ptr<svr_rbf> svr_rbf::deserialize(const std::string& text) {
  detail::field_reader reader{text, "svr_rbf v1"};
  auto model = std::make_unique<svr_rbf>();
  model->gamma_eff_ = reader.scalar("gamma");
  model->y_mean_ = reader.scalar("y_mean");
  model->y_scale_ = reader.scalar("y_scale");
  auto means = reader.vector("mean");
  auto scales = reader.vector("scale");
  model->scaler_.restore(std::move(means), std::move(scales));
  model->beta_ = reader.vector("beta");
  const auto n_support = static_cast<std::size_t>(reader.scalar("n_support"));
  const auto n_features = static_cast<std::size_t>(reader.scalar("n_features"));
  std::istringstream in{reader.rest()};
  std::vector<double> row(n_features);
  for (std::size_t r = 0; r < n_support; ++r) {
    for (auto& v : row) in >> v;
    if (in.fail()) throw std::invalid_argument("bad SVR support vector data");
    model->support_.push_row(row);
  }
  return model;
}

}  // namespace synergy::ml

#include "synergy/ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace synergy::ml {

namespace {
void check_sizes(std::span<const double> a, std::span<const double> p) {
  if (a.size() != p.size() || a.empty())
    throw std::invalid_argument("metric requires equal-length non-empty spans");
}
}  // namespace

double ape(double actual, double predicted) {
  const double diff = std::fabs(predicted - actual);
  if (actual == 0.0) return diff == 0.0 ? 0.0 : 1.0e9;
  return diff / std::fabs(actual);
}

double mape(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) sum += ape(actual[i], predicted[i]);
  return sum / static_cast<double>(actual.size());
}

double rmse(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double ss = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = predicted[i] - actual[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(actual.size()));
}

double cv_result::mean_rmse() const {
  double s = 0.0;
  for (const double v : fold_rmse) s += v;
  return fold_rmse.empty() ? 0.0 : s / static_cast<double>(fold_rmse.size());
}

double cv_result::mean_r2() const {
  double s = 0.0;
  for (const double v : fold_r2) s += v;
  return fold_r2.empty() ? 0.0 : s / static_cast<double>(fold_r2.size());
}

cv_result k_fold_cv(const dataset& data, std::size_t k,
                    const std::function<std::unique_ptr<regressor>()>& make_model,
                    std::uint64_t seed) {
  if (k < 2 || data.size() < k) throw std::invalid_argument("k_fold_cv needs 2 <= k <= n");
  const dataset shuffled_data = shuffled(data, seed);
  const std::size_t n = shuffled_data.size();

  cv_result result;
  for (std::size_t fold = 0; fold < k; ++fold) {
    const std::size_t lo = fold * n / k;
    const std::size_t hi = (fold + 1) * n / k;
    dataset train, test;
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= lo && i < hi) test.push(shuffled_data.x.row(i), shuffled_data.y[i]);
      else train.push(shuffled_data.x.row(i), shuffled_data.y[i]);
    }
    auto model = make_model();
    model->fit(train.x, train.y);
    const auto predicted = model->predict(test.x);
    result.fold_rmse.push_back(rmse(test.y, predicted));
    result.fold_r2.push_back(r2(test.y, predicted));
  }
  return result;
}

double r2(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double mean = 0.0;
  for (const double v : actual) mean += v;
  mean /= static_cast<double>(actual.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean) * (actual[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace synergy::ml

#include "synergy/ml/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace synergy::ml {

void matrix::push_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  if (values.size() != cols_) throw std::invalid_argument("row width mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

std::vector<double> matrix::column(std::size_t c) const {
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

matrix gram(const matrix& x) {
  const std::size_t d = x.cols();
  matrix g(d, d);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = i; j < d; ++j) g(i, j) += row[i] * row[j];
  }
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

std::vector<double> xty(const matrix& x, std::span<const double> y) {
  if (y.size() != x.rows()) throw std::invalid_argument("xty size mismatch");
  std::vector<double> out(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) out[c] += row[c] * y[r];
  }
  return out;
}

std::vector<double> cholesky_solve(matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) throw std::invalid_argument("cholesky dimension mismatch");
  // In-place lower-triangular factorisation A = L L^T.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag <= 0.0) throw std::runtime_error("matrix not positive definite");
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
  }
  // Forward substitution L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a(i, k) * b[k];
    b[i] = v / a(i, i);
  }
  // Back substitution L^T w = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= a(k, ii) * b[k];
    b[ii] = v / a(ii, ii);
  }
  return b;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace synergy::ml

#include "synergy/ml/random_forest.hpp"

#include "synergy/telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "synergy/common/rng.hpp"
#include "synergy/ml/serialize_detail.hpp"

namespace synergy::ml {

namespace {

struct split_choice {
  int feature{-1};
  double threshold{0.0};
  double score{0.0};  // variance reduction; > 0 means worthwhile
};

}  // namespace

/// Recursive CART construction over an index subset of the training data.
struct random_forest_builder {
  const matrix& x;
  std::span<const double> y;
  const random_forest_params& params;
  common::pcg32& rng;
  std::vector<random_forest::node>& nodes;

  /// Sum and squared sum of targets over an index range.
  static std::pair<double, double> moments(std::span<const double> targets,
                                           std::span<const std::size_t> idx) {
    double s = 0.0, ss = 0.0;
    for (const std::size_t i : idx) {
      s += targets[i];
      ss += targets[i] * targets[i];
    }
    return {s, ss};
  }

  split_choice best_split(std::span<std::size_t> idx) const {
    const std::size_t n = idx.size();
    const std::size_t d = x.cols();
    const auto mtry = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(d) * params.feature_fraction));

    // Sample mtry distinct features.
    std::vector<std::size_t> features(d);
    std::iota(features.begin(), features.end(), 0u);
    for (std::size_t i = 0; i < mtry; ++i) {
      const auto j = i + rng.bounded(static_cast<std::uint32_t>(d - i));
      std::swap(features[i], features[j]);
    }

    const auto [sum, sum_sq] = moments(y, idx);
    const double parent_sse = sum_sq - sum * sum / static_cast<double>(n);

    split_choice best;
    std::vector<std::pair<double, double>> vals(n);  // (feature value, target)
    for (std::size_t fi = 0; fi < mtry; ++fi) {
      const std::size_t f = features[fi];
      for (std::size_t k = 0; k < n; ++k) vals[k] = {x(idx[k], f), y[idx[k]]};
      std::sort(vals.begin(), vals.end());
      // Scan split points between distinct feature values.
      double left_sum = 0.0, left_sq = 0.0;
      for (std::size_t k = 0; k + 1 < n; ++k) {
        left_sum += vals[k].second;
        left_sq += vals[k].second * vals[k].second;
        if (vals[k].first == vals[k + 1].first) continue;
        const auto nl = static_cast<double>(k + 1);
        const auto nr = static_cast<double>(n - k - 1);
        if (nl < params.min_samples_leaf || nr < params.min_samples_leaf) continue;
        const double right_sum = sum - left_sum;
        const double right_sq = sum_sq - left_sq;
        const double sse =
            (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
        const double reduction = parent_sse - sse;
        if (reduction > best.score) {
          best.score = reduction;
          best.feature = static_cast<int>(f);
          best.threshold = 0.5 * (vals[k].first + vals[k + 1].first);
        }
      }
    }
    return best;
  }

  int build(std::span<std::size_t> idx, std::size_t depth) {
    const auto [sum, sum_sq] = moments(y, idx);
    (void)sum_sq;
    const double mean = sum / static_cast<double>(idx.size());

    const bool stop = depth >= params.max_depth || idx.size() < params.min_samples_split;
    split_choice choice;
    if (!stop) choice = best_split(idx);

    const int me = static_cast<int>(nodes.size());
    nodes.push_back({});
    if (stop || choice.feature < 0 || choice.score <= 1e-12) {
      nodes[me].value = mean;
      return me;
    }

    // Partition indices in place.
    const auto f = static_cast<std::size_t>(choice.feature);
    const auto mid = std::partition(idx.begin(), idx.end(), [&](std::size_t i) {
      return x(i, f) <= choice.threshold;
    });
    const auto n_left = static_cast<std::size_t>(mid - idx.begin());
    if (n_left == 0 || n_left == idx.size()) {  // degenerate partition: make a leaf
      nodes[me].value = mean;
      return me;
    }

    nodes[me].feature = choice.feature;
    nodes[me].threshold = choice.threshold;
    nodes[me].gain = choice.score;
    nodes[me].left = build(idx.subspan(0, n_left), depth + 1);
    nodes[me].right = build(idx.subspan(n_left), depth + 1);
    return me;
  }
};

double random_forest::tree::predict(std::span<const double> x) const {
  std::size_t i = 0;
  while (!nodes[i].is_leaf()) {
    const auto f = static_cast<std::size_t>(nodes[i].feature);
    i = static_cast<std::size_t>(x[f] <= nodes[i].threshold ? nodes[i].left : nodes[i].right);
  }
  return nodes[i].value;
}

void random_forest::fit(const matrix& x, std::span<const double> y) {
  if (x.rows() != y.size() || x.rows() == 0) throw std::invalid_argument("bad training data");
  SYNERGY_SPAN_VAR(span, telemetry::category::train, "ml.fit.random_forest");
  span.arg("rows", static_cast<double>(x.rows()));
  SYNERGY_COUNTER_ADD("ml.fits", 1);
  trees_.clear();
  n_features_ = x.cols();
  common::pcg32 rng{params_.seed};

  const std::size_t n = x.rows();
  std::vector<std::size_t> bootstrap(n);
  for (std::size_t t = 0; t < params_.n_trees; ++t) {
    for (auto& i : bootstrap) i = rng.bounded(static_cast<std::uint32_t>(n));
    tree tr;
    random_forest_builder builder{x, y, params_, rng, tr.nodes};
    builder.build(bootstrap, 0);
    trees_.push_back(std::move(tr));
  }
  rebuild_flat();
}

void random_forest::rebuild_flat() {
  flat_nodes_.clear();
  roots_.clear();
  std::size_t total = 0;
  for (const tree& t : trees_) total += t.nodes.size();
  flat_nodes_.reserve(total);
  roots_.reserve(trees_.size());
  for (const tree& t : trees_) {
    const auto base = static_cast<int>(flat_nodes_.size());
    roots_.push_back(static_cast<std::size_t>(base));
    for (const node& nd : t.nodes) {
      node flat = nd;
      if (flat.left >= 0) flat.left += base;
      if (flat.right >= 0) flat.right += base;
      flat_nodes_.push_back(flat);
    }
  }
}

double random_forest::predict_one(std::span<const double> x) const {
  // Never fitted nor loaded: programming error, keep the loud contract.
  if (trees_.empty() && n_features_ == 0) throw std::logic_error("predict before fit");
  if (x.size() != n_features_) throw std::invalid_argument("feature count mismatch");
  // A zero-tree forest (e.g. a truncated artefact that deserialises with
  // `n_trees 0`) must yield a rejected prediction, not a division by zero:
  // NaN trips the caller's finite-value guardrail.
  if (trees_.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (const std::size_t root : roots_) {
    std::size_t i = root;
    while (!flat_nodes_[i].is_leaf()) {
      const auto f = static_cast<std::size_t>(flat_nodes_[i].feature);
      i = static_cast<std::size_t>(x[f] <= flat_nodes_[i].threshold ? flat_nodes_[i].left
                                                                    : flat_nodes_[i].right);
    }
    sum += flat_nodes_[i].value;
  }
  return sum / static_cast<double>(trees_.size());
}

void random_forest::predict_into(const matrix& x, std::span<double> out) const {
  if (trees_.empty() && n_features_ == 0) throw std::logic_error("predict before fit");
  if (out.size() != x.rows()) throw std::invalid_argument("predict_into size mismatch");
  if (x.cols() != n_features_) throw std::invalid_argument("feature count mismatch");
  if (trees_.empty()) {
    std::fill(out.begin(), out.end(), std::numeric_limits<double>::quiet_NaN());
    return;
  }
  // Tree-major over the flat array: one tree's nodes stay hot while every row
  // traverses it. Accumulation still adds trees in index order per row, so
  // sums match predict_one bit for bit.
  std::fill(out.begin(), out.end(), 0.0);
  for (const std::size_t root : roots_) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto row = x.row(r);
      std::size_t i = root;
      while (!flat_nodes_[i].is_leaf()) {
        const auto f = static_cast<std::size_t>(flat_nodes_[i].feature);
        i = static_cast<std::size_t>(row[f] <= flat_nodes_[i].threshold ? flat_nodes_[i].left
                                                                        : flat_nodes_[i].right);
      }
      out[r] += flat_nodes_[i].value;
    }
  }
  for (auto& v : out) v /= static_cast<double>(trees_.size());
}

std::vector<double> random_forest::feature_importances() const {
  std::vector<double> importance(n_features_, 0.0);
  for (const tree& t : trees_)
    for (const node& nd : t.nodes)
      if (!nd.is_leaf()) importance[static_cast<std::size_t>(nd.feature)] += nd.gain;
  double total = 0.0;
  for (const double v : importance) total += v;
  if (total > 0.0)
    for (auto& v : importance) v /= total;
  return importance;
}

std::string random_forest::serialize() const {
  std::ostringstream oss;
  oss << "random_forest v1\n";
  detail::write_scalar(oss, "n_features", static_cast<double>(n_features_));
  detail::write_scalar(oss, "n_trees", static_cast<double>(trees_.size()));
  oss << std::setprecision(17);
  for (const tree& t : trees_) {
    oss << "tree " << t.nodes.size() << '\n';
    for (const node& nd : t.nodes)
      oss << nd.feature << ' ' << nd.threshold << ' ' << nd.left << ' ' << nd.right << ' '
          << nd.value << ' ' << nd.gain << '\n';
  }
  return oss.str();
}

std::unique_ptr<random_forest> random_forest::deserialize(const std::string& text) {
  detail::field_reader reader{text, "random_forest v1"};
  auto model = std::make_unique<random_forest>();
  model->n_features_ = static_cast<std::size_t>(reader.scalar("n_features"));
  const auto n_trees = static_cast<std::size_t>(reader.scalar("n_trees"));
  std::istringstream in{reader.rest()};
  for (std::size_t t = 0; t < n_trees; ++t) {
    std::string tag;
    std::size_t n_nodes = 0;
    in >> tag >> n_nodes;
    if (tag != "tree" || in.fail()) throw std::invalid_argument("bad forest tree block");
    tree tr;
    tr.nodes.resize(n_nodes);
    for (auto& nd : tr.nodes)
      in >> nd.feature >> nd.threshold >> nd.left >> nd.right >> nd.value >> nd.gain;
    if (in.fail()) throw std::invalid_argument("bad forest node data");
    model->trees_.push_back(std::move(tr));
  }
  model->rebuild_flat();
  return model;
}

}  // namespace synergy::ml

#include "synergy/ml/regressor.hpp"

#include <stdexcept>

#include "synergy/ml/linear.hpp"
#include "synergy/ml/random_forest.hpp"
#include "synergy/ml/svr.hpp"

namespace synergy::ml {

const char* to_string(algorithm a) {
  switch (a) {
    case algorithm::linear: return "Linear";
    case algorithm::lasso: return "Lasso";
    case algorithm::random_forest: return "RandomForest";
    case algorithm::svr_rbf: return "SVR";
  }
  return "?";
}

std::unique_ptr<regressor> make_regressor(algorithm a) {
  switch (a) {
    case algorithm::linear: return std::make_unique<linear_regression>();
    case algorithm::lasso: return std::make_unique<lasso_regression>();
    case algorithm::random_forest: return std::make_unique<random_forest>();
    case algorithm::svr_rbf: return std::make_unique<svr_rbf>();
  }
  throw std::invalid_argument("unknown algorithm");
}

common::result<std::unique_ptr<regressor>> try_deserialize_regressor(
    const std::string& text) {
  try {
    auto model = deserialize_regressor(text);
    if (!model || !model->fitted())
      return common::error{common::errc::invalid_argument,
                           "deserialized model is not fitted"};
    return model;
  } catch (const std::exception& e) {
    return common::error{common::errc::invalid_argument, e.what()};
  }
}

std::unique_ptr<regressor> deserialize_regressor(const std::string& text) {
  const auto newline = text.find('\n');
  const std::string header = text.substr(0, newline);
  if (header == "linear v1") return linear_regression::deserialize(text);
  if (header == "lasso v1") return lasso_regression::deserialize(text);
  if (header == "random_forest v1") return random_forest::deserialize(text);
  if (header == "svr_rbf v1") return svr_rbf::deserialize(text);
  throw std::invalid_argument("unknown model header: " + header);
}

}  // namespace synergy::ml

#include "synergy/ml/linear.hpp"

#include "synergy/telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "synergy/ml/serialize_detail.hpp"

namespace synergy::ml {

// ------------------------------------------------------- linear_regression ----

void linear_regression::fit(const matrix& x, std::span<const double> y) {
  if (x.rows() != y.size() || x.rows() == 0) throw std::invalid_argument("bad training data");
  SYNERGY_SPAN_VAR(span, telemetry::category::train, "ml.fit.linear");
  span.arg("rows", static_cast<double>(x.rows()));
  SYNERGY_COUNTER_ADD("ml.fits", 1);
  const matrix xs = scaler_.fit_transform(x);

  // Centre the target so the intercept separates from the coefficients.
  double y_mean = 0.0;
  for (const double v : y) y_mean += v;
  y_mean /= static_cast<double>(y.size());
  std::vector<double> yc(y.begin(), y.end());
  for (auto& v : yc) v -= y_mean;

  matrix a = gram(xs);
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += l2_ + 1e-12;
  coef_ = cholesky_solve(std::move(a), xty(xs, yc));
  intercept_ = y_mean;
}

double linear_regression::predict_one(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("predict before fit");
  std::vector<double> row(x.begin(), x.end());
  scaler_.transform_row(row);
  return intercept_ + dot(row, coef_);
}

void linear_regression::predict_into(const matrix& x, std::span<double> out) const {
  if (!fitted()) throw std::logic_error("predict before fit");
  if (out.size() != x.rows()) throw std::invalid_argument("predict_into size mismatch");
  // One scratch row reused across the batch; per-row arithmetic order is
  // identical to predict_one so batched and single predictions are bitwise
  // equal.
  std::vector<double> row(x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    std::copy(src.begin(), src.end(), row.begin());
    scaler_.transform_row(row);
    out[r] = intercept_ + dot(row, coef_);
  }
}

std::string linear_regression::serialize() const {
  std::ostringstream oss;
  oss << "linear v1\n";
  detail::write_scalar(oss, "l2", l2_);
  detail::write_scalar(oss, "intercept", intercept_);
  detail::write_vector(oss, "coef", coef_);
  detail::write_vector(oss, "mean", scaler_.means());
  detail::write_vector(oss, "scale", scaler_.scales());
  return oss.str();
}

std::unique_ptr<linear_regression> linear_regression::deserialize(const std::string& text) {
  detail::field_reader reader{text, "linear v1"};
  auto model = std::make_unique<linear_regression>(reader.scalar("l2"));
  model->intercept_ = reader.scalar("intercept");
  model->coef_ = reader.vector("coef");
  auto means = reader.vector("mean");
  auto scales = reader.vector("scale");
  detail::restore_scaler(model->scaler_, std::move(means), std::move(scales));
  return model;
}

// --------------------------------------------------------- lasso_regression ----

void lasso_regression::fit(const matrix& x, std::span<const double> y) {
  if (x.rows() != y.size() || x.rows() == 0) throw std::invalid_argument("bad training data");
  const matrix xs = scaler_.fit_transform(x);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();

  double y_mean = 0.0;
  for (const double v : y) y_mean += v;
  y_mean /= static_cast<double>(n);

  coef_.assign(d, 0.0);
  intercept_ = y_mean;

  // Residual r = y - X w (w starts at zero).
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - y_mean;

  // Per-column squared norms (constant across sweeps).
  std::vector<double> col_sq(d, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < d; ++c) col_sq[c] += xs(r, c) * xs(r, c);

  const double n_alpha = alpha_ * static_cast<double>(n);
  for (std::size_t iter = 0; iter < max_iter_; ++iter) {
    double max_delta = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      if (col_sq[c] <= 1e-12) continue;
      // rho = X_c . (r + X_c w_c): correlation with the partial residual.
      double rho = 0.0;
      for (std::size_t r = 0; r < n; ++r) rho += xs(r, c) * residual[r];
      rho += col_sq[c] * coef_[c];
      // Soft threshold.
      double w_new = 0.0;
      if (rho > n_alpha) w_new = (rho - n_alpha) / col_sq[c];
      else if (rho < -n_alpha) w_new = (rho + n_alpha) / col_sq[c];
      const double delta = w_new - coef_[c];
      if (delta != 0.0) {
        for (std::size_t r = 0; r < n; ++r) residual[r] -= xs(r, c) * delta;
        coef_[c] = w_new;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < tol_) break;
  }
}

double lasso_regression::predict_one(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("predict before fit");
  std::vector<double> row(x.begin(), x.end());
  scaler_.transform_row(row);
  return intercept_ + dot(row, coef_);
}

void lasso_regression::predict_into(const matrix& x, std::span<double> out) const {
  if (!fitted()) throw std::logic_error("predict before fit");
  if (out.size() != x.rows()) throw std::invalid_argument("predict_into size mismatch");
  std::vector<double> row(x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    std::copy(src.begin(), src.end(), row.begin());
    scaler_.transform_row(row);
    out[r] = intercept_ + dot(row, coef_);
  }
}

std::size_t lasso_regression::zero_count() const {
  std::size_t zeros = 0;
  for (const double c : coef_)
    if (c == 0.0) ++zeros;
  return zeros;
}

std::string lasso_regression::serialize() const {
  std::ostringstream oss;
  oss << "lasso v1\n";
  detail::write_scalar(oss, "alpha", alpha_);
  detail::write_scalar(oss, "intercept", intercept_);
  detail::write_vector(oss, "coef", coef_);
  detail::write_vector(oss, "mean", scaler_.means());
  detail::write_vector(oss, "scale", scaler_.scales());
  return oss.str();
}

std::unique_ptr<lasso_regression> lasso_regression::deserialize(const std::string& text) {
  detail::field_reader reader{text, "lasso v1"};
  auto model = std::make_unique<lasso_regression>(reader.scalar("alpha"));
  model->intercept_ = reader.scalar("intercept");
  model->coef_ = reader.vector("coef");
  auto means = reader.vector("mean");
  auto scales = reader.vector("scale");
  detail::restore_scaler(model->scaler_, std::move(means), std::move(scales));
  return model;
}

}  // namespace synergy::ml

#include "synergy/ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "synergy/common/rng.hpp"

namespace synergy::ml {

dataset shuffled(const dataset& d, std::uint64_t seed) {
  std::vector<std::size_t> order(d.size());
  std::iota(order.begin(), order.end(), 0u);
  common::pcg32 rng{seed};
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.bounded(static_cast<std::uint32_t>(i))]);
  dataset out;
  for (const std::size_t r : order) out.push(d.x.row(r), d.y[r]);
  return out;
}

std::pair<dataset, dataset> split(const dataset& d, double train_fraction) {
  if (train_fraction < 0.0 || train_fraction > 1.0)
    throw std::invalid_argument("train_fraction must be in [0,1]");
  const std::size_t n_train = d.size() == 0
                                  ? 0
                                  : std::max<std::size_t>(
                                        1, static_cast<std::size_t>(
                                               static_cast<double>(d.size()) * train_fraction));
  dataset train, test;
  for (std::size_t r = 0; r < d.size(); ++r) {
    if (r < n_train) train.push(d.x.row(r), d.y[r]);
    else test.push(d.x.row(r), d.y[r]);
  }
  return {std::move(train), std::move(test)};
}

void standard_scaler::fit(const matrix& x) {
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  if (x.rows() == 0) return;
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x(r, c);
  for (auto& m : mean_) m /= static_cast<double>(x.rows());
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = x(r, c) - mean_[c];
      var[c] += diff * diff;
    }
  for (std::size_t c = 0; c < d; ++c) {
    const double s = std::sqrt(var[c] / static_cast<double>(x.rows()));
    scale_[c] = s > 1e-12 ? s : 1.0;
  }
}

matrix standard_scaler::transform(const matrix& x) const {
  if (x.cols() != mean_.size()) throw std::invalid_argument("scaler column mismatch");
  matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) transform_row(out.row(r));
  return out;
}

void standard_scaler::transform_row(std::span<double> row) const {
  if (row.size() != mean_.size()) throw std::invalid_argument("scaler column mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) row[c] = (row[c] - mean_[c]) / scale_[c];
}

}  // namespace synergy::ml

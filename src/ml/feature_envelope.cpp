#include "synergy/ml/feature_envelope.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "synergy/ml/serialize_detail.hpp"

namespace synergy::ml {

using common::errc;
using common::error;

void feature_envelope::observe(std::span<const double> x) {
  if (count_ == 0) {
    lo_.assign(x.begin(), x.end());
    hi_.assign(x.begin(), x.end());
    count_ = 1;
    return;
  }
  const std::size_t d = std::min(lo_.size(), x.size());
  for (std::size_t i = 0; i < d; ++i) {
    lo_[i] = std::min(lo_[i], x[i]);
    hi_[i] = std::max(hi_[i], x[i]);
  }
  ++count_;
}

void feature_envelope::fit(const matrix& x) {
  lo_.clear();
  hi_.clear();
  count_ = 0;
  for (std::size_t r = 0; r < x.rows(); ++r) observe(x.row(r));
}

bool feature_envelope::contains(std::span<const double> x, double tolerance) const {
  if (!fitted()) return true;
  if (x.size() != lo_.size()) return false;
  constexpr double abs_slack = 1e-9;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (!std::isfinite(x[i])) return false;
    const double span = hi_[i] - lo_[i];
    const double slack = tolerance * span + abs_slack;
    if (x[i] < lo_[i] - slack || x[i] > hi_[i] + slack) return false;
  }
  return true;
}

std::string feature_envelope::serialize() const {
  std::ostringstream oss;
  oss << "feature_envelope v1\n";
  detail::write_scalar(oss, "samples", static_cast<double>(count_));
  detail::write_vector(oss, "min", lo_);
  detail::write_vector(oss, "max", hi_);
  return oss.str();
}

common::result<feature_envelope> feature_envelope::deserialize(const std::string& text) {
  try {
    detail::field_reader reader{text, "feature_envelope v1"};
    const double samples = reader.scalar("samples");
    feature_envelope env;
    env.lo_ = reader.vector("min");
    env.hi_ = reader.vector("max");
    if (env.lo_.size() != env.hi_.size())
      return error{errc::invalid_argument, "feature envelope min/max dimension mismatch"};
    if (!(samples >= 0.0) || !std::isfinite(samples))
      return error{errc::invalid_argument, "feature envelope sample count invalid"};
    for (std::size_t i = 0; i < env.lo_.size(); ++i)
      if (!std::isfinite(env.lo_[i]) || !std::isfinite(env.hi_[i]) || env.lo_[i] > env.hi_[i])
        return error{errc::invalid_argument,
                     "feature envelope bounds invalid at dim " + std::to_string(i)};
    env.count_ = static_cast<std::size_t>(samples);
    return env;
  } catch (const std::exception& e) {
    return error{errc::invalid_argument, e.what()};
  }
}

}  // namespace synergy::ml

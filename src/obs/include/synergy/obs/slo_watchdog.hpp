#pragma once

/// \file slo_watchdog.hpp
/// Declarative SLO rules over the observability plane.
///
/// Drift and lifecycle incidents bump counters; without a watchdog they
/// stay silent until someone reads a summary table. The watchdog evaluates
/// a small rule language on every scrape tick and turns violations into
/// structured alerts: a trace-ring instant (category::alert) plus a JSONL
/// record through the alert sink (tools stream it to `<prefix>.alerts.jsonl`).
///
/// Rule grammar (one rule per line, '#' comments and blank lines ignored):
///
///     <kind> > <threshold> [window <N>]
///
/// kinds:
///   energy_per_job_ratio   mean per-GPU job energy of the last N completions
///                          vs. the preceding N (rolling regression check);
///                          needs 2N completions before it can fire
///   fallback_ratio         non-model planner decisions / total decisions,
///                          evaluated once at least N decisions were seen
///   breaker_open_delta     resilience.breaker_opens counter growth since the
///                          watchdog was reset
///   quarantine_dwell_s     seconds the model set has currently been
///                          quarantined (virtual time)
///   wasted_energy_j        ledger joules tagged cause::fault_wasted
///   cost_per_job_ratio     mean per-GPU job cost (USD) of the last N
///                          completions vs. the preceding N — the econ
///                          plane's cost-regression check; needs 2N priced
///                          completions before it can fire
///   carbon_per_job_ratio   same rolling check over per-GPU job carbon (g)
///
/// Alerts latch: a rule fires on the false→true transition and re-arms only
/// after the condition clears, so a persistent violation produces one alert,
/// not one per scrape.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "synergy/common/error.hpp"
#include "synergy/obs/energy_ledger.hpp"

namespace synergy::obs {

struct slo_rule {
  enum class kind {
    energy_per_job_ratio,
    fallback_ratio,
    breaker_open_delta,
    quarantine_dwell_s,
    wasted_energy_j,
    cost_per_job_ratio,
    carbon_per_job_ratio,
  };

  kind what{kind::wasted_energy_j};
  double threshold{0.0};
  /// Window size: completions per side for energy_per_job_ratio, minimum
  /// decisions before fallback_ratio may fire; unused by the other kinds.
  std::size_t window{16};
  std::string text;  ///< the rule as written (alert correlation)

  /// Parse one rule line; the error message names what was malformed.
  [[nodiscard]] static common::result<slo_rule> parse(std::string_view line);
};

[[nodiscard]] constexpr const char* to_string(slo_rule::kind k) {
  switch (k) {
    case slo_rule::kind::energy_per_job_ratio: return "energy_per_job_ratio";
    case slo_rule::kind::fallback_ratio: return "fallback_ratio";
    case slo_rule::kind::breaker_open_delta: return "breaker_open_delta";
    case slo_rule::kind::quarantine_dwell_s: return "quarantine_dwell_s";
    case slo_rule::kind::wasted_energy_j: return "wasted_energy_j";
    case slo_rule::kind::cost_per_job_ratio: return "cost_per_job_ratio";
    case slo_rule::kind::carbon_per_job_ratio: return "carbon_per_job_ratio";
  }
  return "?";
}

/// Parse a whole rules file; errors carry "line N:" prefixes so a bad file
/// points at the offending rule.
[[nodiscard]] common::result<std::vector<slo_rule>> parse_rules(std::string_view text);

/// One fired rule violation.
struct alert {
  double t_s{0.0};        ///< virtual time of the evaluation that fired
  std::string rule;       ///< the rule text as written
  std::string kind_name;  ///< rule kind name
  double value{0.0};      ///< observed value at fire time
  double threshold{0.0};
  std::string detail;     ///< human-readable context

  [[nodiscard]] std::string to_json_line() const;
};

/// Full observation state of a slo_watchdog (checkpoint/resume support).
/// Rules are NOT part of the state — the resuming process re-parses the same
/// rules file; import validates the count lines up.
struct watchdog_state {
  std::vector<bool> firing;          ///< per-rule violation latch
  std::vector<alert> alerts;         ///< alerts fired so far
  std::vector<double> job_energies;  ///< rolling per-GPU energy window
  std::vector<double> job_costs;     ///< rolling per-GPU cost window (USD)
  std::vector<double> job_carbons;   ///< rolling per-GPU carbon window (g)
  std::uint64_t plans_total{0};
  std::uint64_t plans_model{0};
  double quarantine_since{-1.0};
  std::uint64_t breaker_opens_base{0};
};

class slo_watchdog {
 public:
  /// `ledger` feeds wasted_energy_j; nullptr disables that kind.
  explicit slo_watchdog(std::vector<slo_rule> rules,
                        const energy_ledger* ledger = nullptr);

  /// Feed one completed job's per-GPU energy (rolling baseline input).
  void observe_job(double energy_per_gpu_j);

  /// Feed one completed job's shadow-priced per-GPU cost and carbon (econ
  /// plane input; the cost/carbon ratio rules roll over these).
  void observe_job_cost(double cost_per_gpu_usd, double carbon_per_gpu_g);

  /// Feed one planner decision; `model_tier` marks the model tier.
  void observe_plan(bool model_tier);

  /// Feed the current quarantine flag at virtual time `t_s` (dwell clock).
  void observe_quarantine(double t_s, bool quarantined);

  /// Evaluate every rule at virtual time `t_s`, appending alerts for
  /// rules that transition into violation.
  void evaluate(double t_s);

  [[nodiscard]] const std::vector<alert>& alerts() const { return alerts_; }
  [[nodiscard]] const std::vector<slo_rule>& rules() const { return rules_; }

  /// Called once per fired alert (in addition to the trace-ring instant).
  void set_alert_sink(std::function<void(const alert&)> sink);

  /// Clear observations and alerts; rules stay installed.
  void reset();

  /// Snapshot every latch, alert, and rolling observation.
  [[nodiscard]] watchdog_state export_state() const;
  /// Restore a snapshot. Returns false (watchdog untouched) when the latch
  /// count does not match this watchdog's installed rules. The alert sink
  /// is NOT invoked for restored alerts — callers re-emit them explicitly
  /// if their sink is a fresh output stream.
  bool import_state(const watchdog_state& s);

 private:
  struct rule_state {
    bool firing{false};  ///< latch: currently in violation
  };

  /// Current value of `r`, or negative when not yet evaluable.
  [[nodiscard]] double measure(const slo_rule& r, double t_s,
                               std::string& detail) const;

  std::vector<slo_rule> rules_;
  std::vector<rule_state> states_;
  const energy_ledger* ledger_;
  std::function<void(const alert&)> sink_;
  std::vector<alert> alerts_;
  // Rolling energy-per-job window: bounded by the largest rule window.
  std::deque<double> job_energies_;
  std::size_t max_window_{0};
  // Rolling cost/carbon windows: bounded by the largest econ rule window.
  std::deque<double> job_costs_;
  std::deque<double> job_carbons_;
  std::size_t max_econ_window_{0};
  std::uint64_t plans_total_{0};
  std::uint64_t plans_model_{0};
  double quarantine_since_{-1.0};  ///< < 0: not quarantined
  std::uint64_t breaker_opens_base_{0};
};

}  // namespace synergy::obs

#pragma once

/// \file snapshot.hpp
/// Snapshot exporter: ledger + metrics registry + alerts, rendered as
/// Prometheus text exposition format and machine-readable JSON.
///
/// Determinism contract: JSON renderings of the same ledger/registry state
/// are byte-identical — floats print via std::to_chars (shortest
/// round-trip), map iteration is key-ordered, and wall-clock-valued
/// instruments (snapshot_options::volatile_metrics) are excluded from the
/// JSON document (they still appear in the Prometheus rendering, which
/// makes no byte-identity promise). This is what lets the workflow fixture
/// byte-compare snapshots across same-seed replays.
///
/// File emission goes through common::atomic_write_file, so a reader
/// (synergy_top --watch) always sees a complete document, never a torn
/// half-write.

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "synergy/common/error.hpp"
#include "synergy/obs/energy_ledger.hpp"
#include "synergy/obs/slo_watchdog.hpp"

namespace synergy::obs {

struct snapshot_options {
  /// Include the telemetry metrics registry in the rendering.
  bool include_metrics{true};
  /// Instruments measured on the host wall clock — nondeterministic across
  /// replays, so they are omitted from JSON (Prometheus still carries them).
  std::vector<std::string> volatile_metrics{"planner.plan_latency_us"};
  /// Monotone snapshot counter; synergy_top uses it for interval diffs.
  std::uint64_t sequence{0};
  /// Virtual time of the snapshot (cluster clock seconds).
  double time_s{0.0};
  /// Emitting tool/run, recorded in the document.
  std::string source{"synergy"};
};

/// Shortest round-trip decimal rendering of a double (std::to_chars);
/// deterministic across platforms with IEEE-754 doubles. Non-finite values
/// render as 0 (JSON has no inf/nan).
[[nodiscard]] std::string format_double(double v);

/// Escape `s` for embedding in a JSON (or Prometheus label) string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

/// The snapshot as one JSON document (schema "synergy.obs.snapshot/v1").
[[nodiscard]] std::string render_json(const energy_ledger& ledger,
                                      const slo_watchdog* watchdog,
                                      const snapshot_options& options = {});

/// The snapshot in Prometheus text exposition format.
[[nodiscard]] std::string render_prometheus(const energy_ledger& ledger,
                                            const snapshot_options& options = {});

/// Atomically write `<prefix>.json` and `<prefix>.prom`. Returns the first
/// failure (path + reason in the error message).
[[nodiscard]] common::status write_snapshot_files(const std::filesystem::path& prefix,
                                                  const energy_ledger& ledger,
                                                  const slo_watchdog* watchdog,
                                                  const snapshot_options& options = {});

}  // namespace synergy::obs

#pragma once

/// \file snapshot.hpp
/// Snapshot exporter: ledger + metrics registry + alerts, rendered as
/// Prometheus text exposition format and machine-readable JSON.
///
/// Determinism contract: renderings of the same ledger/registry state are
/// byte-identical — floats print via std::to_chars (shortest round-trip),
/// map iteration is key-ordered, and wall-clock-valued instruments
/// (snapshot_options::volatile_metrics) are excluded from BOTH the JSON
/// document and the Prometheus exposition. This is what lets the workflow
/// fixture byte-compare .json and .prom snapshots across same-seed replays;
/// clear volatile_metrics to get the wall-clock instruments back.
///
/// File emission goes through common::atomic_write_file, so a reader
/// (synergy_top --watch) always sees a complete document, never a torn
/// half-write.

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "synergy/common/error.hpp"
#include "synergy/obs/energy_ledger.hpp"
#include "synergy/obs/slo_watchdog.hpp"

namespace synergy::obs {

struct snapshot_options {
  /// Include the telemetry metrics registry in the rendering.
  bool include_metrics{true};
  /// Instruments measured on the host wall clock — nondeterministic across
  /// replays, so they are omitted from both renderings by default.
  std::vector<std::string> volatile_metrics{"planner.plan_latency_us"};
  /// Monotone snapshot counter; synergy_top uses it for interval diffs.
  std::uint64_t sequence{0};
  /// Virtual time of the snapshot (cluster clock seconds).
  double time_s{0.0};
  /// Emitting tool/run, recorded in the document.
  std::string source{"synergy"};
  /// Facility-economics figures of the emitting run, passed in as plain data
  /// (the obs plane stays econ-independent). Rendered only when `enabled`:
  /// an "econ" JSON object and synergy_econ_* Prometheus samples, with the
  /// per-cause splits carrying the same conservation contract as the ledger
  /// (sum over causes == attributed total, enforced by synergy_top --check).
  struct econ_block {
    bool enabled{false};
    double cost_usd{0.0};           ///< facility opex + amortised capex
    double capex_usd{0.0};          ///< amortised capex share
    double carbon_g{0.0};           ///< facility carbon
    double cost_per_job_usd{0.0};
    double carbon_per_job_g{0.0};
    double attributed_cost_usd{0.0};
    double attributed_carbon_g{0.0};
    cause_array cost_by_cause{};
    cause_array carbon_by_cause{};
    std::uint64_t jobs_completed{0};
  };
  econ_block econ{};
};

/// Shortest round-trip decimal rendering of a double (std::to_chars);
/// deterministic across platforms with IEEE-754 doubles. Non-finite values
/// render as 0 (JSON has no inf/nan).
[[nodiscard]] std::string format_double(double v);

/// Escape `s` for embedding in a JSON (or Prometheus label) string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

/// The snapshot as one JSON document (schema "synergy.obs.snapshot/v1").
[[nodiscard]] std::string render_json(const energy_ledger& ledger,
                                      const slo_watchdog* watchdog,
                                      const snapshot_options& options = {});

/// The snapshot in Prometheus text exposition format.
[[nodiscard]] std::string render_prometheus(const energy_ledger& ledger,
                                            const snapshot_options& options = {});

/// Atomically write `<prefix>.json` and `<prefix>.prom`. Returns the first
/// failure (path + reason in the error message).
[[nodiscard]] common::status write_snapshot_files(const std::filesystem::path& prefix,
                                                  const energy_ledger& ledger,
                                                  const slo_watchdog* watchdog,
                                                  const snapshot_options& options = {});

}  // namespace synergy::obs

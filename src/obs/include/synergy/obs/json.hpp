#pragma once

/// \file json.hpp
/// Minimal JSON reader for the observability plane.
///
/// The snapshot exporter writes machine-readable JSON; synergy_top and the
/// workflow fixtures need to read it back without any external dependency.
/// This is a strict recursive-descent parser over the JSON subset the
/// exporter emits (objects, arrays, strings with the standard escapes,
/// doubles, booleans, null). Errors carry a line:column position so a
/// truncated or hand-mangled snapshot produces a diagnostic, not UB.

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "synergy/common/error.hpp"

namespace synergy::obs::json {

/// Nesting-depth bound the parser enforces. The exporter emits at most a
/// handful of levels; a document nested deeper than this is hostile input
/// (or a different format) and is rejected with a "nesting too deep"
/// diagnostic instead of risking recursion-driven stack overflow. Public so
/// fuzz/robustness tests can probe the exact boundary.
inline constexpr int max_nesting_depth = 64;

class value;
using array = std::vector<value>;
/// Ordered map: iteration is key-sorted, matching the exporter's layout.
using object = std::map<std::string, value>;

class value {
 public:
  value() : v_(nullptr) {}
  value(std::nullptr_t) : v_(nullptr) {}        // NOLINT(google-explicit-constructor)
  value(bool b) : v_(b) {}                      // NOLINT(google-explicit-constructor)
  value(double d) : v_(d) {}                    // NOLINT(google-explicit-constructor)
  value(std::string s) : v_(std::move(s)) {}    // NOLINT(google-explicit-constructor)
  value(array a) : v_(std::move(a)) {}          // NOLINT(google-explicit-constructor)
  value(object o) : v_(std::move(o)) {}         // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<object>(v_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const array& as_array() const { return std::get<array>(v_); }
  [[nodiscard]] const object& as_object() const { return std::get<object>(v_); }

  /// Object member lookup; nullptr when absent or this is not an object.
  [[nodiscard]] const value* find(std::string_view key) const {
    if (!is_object()) return nullptr;
    const auto it = as_object().find(std::string{key});
    return it == as_object().end() ? nullptr : &it->second;
  }
  /// find() + number extraction with a fallback.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const {
    const value* m = find(key);
    return m && m->is_number() ? m->as_number() : fallback;
  }
  /// find() + string extraction with a fallback.
  [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const {
    const value* m = find(key);
    return m && m->is_string() ? m->as_string() : fallback;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, array, object> v_;
};

/// Parse `text` as one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Errors are invalid_argument with a "line N col M"
/// prefix in the message.
[[nodiscard]] common::result<value> parse(std::string_view text);

}  // namespace synergy::obs::json

#pragma once

/// \file energy_ledger.hpp
/// Cross-layer energy-attribution ledger.
///
/// The paper's value proposition is *measured joules saved per kernel*, so
/// the observability plane's core question is "where did the joules go, and
/// which decision spent them?". Every simulated joule is charged to a
/// hierarchical key — node → device → job → kernel — and cross-tagged with
/// a `cause`: the planner tier that chose the clocks (model / tuning-table /
/// default / quarantine-probe), fault-wasted energy from the resilience and
/// device-loss paths, power-cap demotions, and idle draw. Charge points live
/// in synergy::queue (per-submission attribution scope), gpusim::device
/// (execute/advance_idle), vendor::resilient_library (backoff idle burn),
/// and cluster::simulator (job completion / device-lost waste).
///
/// Determinism contract: totals are aggregated as plain double sums in
/// event order and the cell view (entries()) is key-sorted before
/// rendering, so a same-seed replay produces a byte-identical ledger
/// rendering. The scrape series samples the ledger on the cluster's
/// *virtual* clock, never wall time.
///
/// Charge sites use SYNERGY_OBS_CHARGE, which compiles to nothing together
/// with the rest of the telemetry plane (-DSYNERGY_TELEMETRY=OFF); the
/// classes themselves always build, like the telemetry primitives they sit
/// beside.

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "synergy/telemetry/telemetry.hpp"

namespace synergy::obs {

/// Why a joule was spent — the decision (or failure) that priced it.
enum class cause : std::uint8_t {
  model,             ///< clocks chosen by the guarded model tier
  tuning_table,      ///< clocks from the compiled tuning-table artefact
  default_clocks,    ///< driver default clocks (no policy or bottom of the chain)
  quarantine_probe,  ///< deliberate default-clock probe while quarantined
  oracle,            ///< simulator-exact oracle plan (tests / upper bounds)
  fixed,             ///< user-pinned frequencies (Listing 2 / Listing 4)
  cap_demoted,       ///< clocks lowered by the facility power budget
  fault_degraded,    ///< ran at fallback clocks after persistent clock-set failure
  fault_wasted,      ///< partial executions killed by device loss, retry backoff burn
  idle,              ///< idle draw between kernels
  governor,          ///< clocks chosen by a reactive governor after it
                     ///< diverged from the seeded plan (hybrid drift chase)
  unattributed,      ///< no active attribution scope
  // Econ causes append after unattributed so every serialized cause index
  // from earlier artefact versions keeps its meaning.
  econ_deferred,      ///< job shifted into a cheap/clean price window
  econ_price_demoted, ///< clocks tightened by the spot-price demotion rule
};

inline constexpr std::size_t n_causes = 14;

[[nodiscard]] constexpr const char* to_string(cause c) {
  switch (c) {
    case cause::model: return "model";
    case cause::tuning_table: return "tuning_table";
    case cause::default_clocks: return "default_clocks";
    case cause::quarantine_probe: return "quarantine_probe";
    case cause::oracle: return "oracle";
    case cause::fixed: return "fixed";
    case cause::cap_demoted: return "cap_demoted";
    case cause::fault_degraded: return "fault_degraded";
    case cause::fault_wasted: return "fault_wasted";
    case cause::idle: return "idle";
    case cause::governor: return "governor";
    case cause::unattributed: return "unattributed";
    case cause::econ_deferred: return "econ_deferred";
    case cause::econ_price_demoted: return "econ_price_demoted";
  }
  return "?";
}

// Exhaustiveness tripwire (the governor cause was once added by hand in
// three places): the enum's last member, the bucket count, and to_string
// must move together. A new cause that misses one fails to compile here.
static_assert(static_cast<std::size_t>(cause::econ_price_demoted) + 1 == n_causes,
              "obs::n_causes must count every cause enumerator");
static_assert(to_string(static_cast<cause>(n_causes - 1))[0] != '?',
              "obs::to_string must name the last cause");

/// Per-cause joule totals, indexed by static_cast<std::size_t>(cause).
using cause_array = std::array<double, n_causes>;

/// Hierarchical attribution key. Empty components are legal (a queue-level
/// charge has no job; idle charges have kernel "idle").
struct charge_key {
  std::string node;
  std::string device;
  std::string job;
  std::string kernel;

  [[nodiscard]] bool operator<(const charge_key& o) const {
    if (node != o.node) return node < o.node;
    if (device != o.device) return device < o.device;
    if (job != o.job) return job < o.job;
    return kernel < o.kernel;
  }
  [[nodiscard]] bool operator==(const charge_key& o) const {
    return node == o.node && device == o.device && job == o.job && kernel == o.kernel;
  }
};

/// Hash for the hot charge path. Cells live in a hashed map — the ordered
/// view the determinism contract needs is produced by entries(), which sorts.
struct charge_key_hash {
  [[nodiscard]] std::size_t operator()(const charge_key& k) const noexcept {
    std::size_t h = std::hash<std::string>{}(k.node);
    const auto mix = [&h](const std::string& s) {
      h ^= std::hash<std::string>{}(s) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(k.device);
    mix(k.job);
    mix(k.kernel);
    return h;
  }
};

/// One ledger cell: a key and its per-cause joules.
struct ledger_entry {
  charge_key key;
  cause_array by_cause{};
  double total_j{0.0};
};

/// Point on the scrape time-series: cumulative totals at virtual time t_s.
struct scrape_sample {
  double t_s{0.0};
  cause_array by_cause{};
  double total_j{0.0};
  std::uint64_t charges{0};
};

/// Full ledger contents in exportable form (checkpoint/resume support).
/// Totals are carried verbatim, not recomputed from the cells: the ledger's
/// running sums accumulate in charge order, so recomputing them cell-by-cell
/// could differ in the last bits and break byte-identical resume.
struct ledger_state {
  std::vector<ledger_entry> cells;  ///< key-sorted (export order)
  cause_array totals{};
  double total_j{0.0};
  std::uint64_t charges{0};
  std::vector<scrape_sample> series;
};

class energy_ledger {
 public:
  /// Process-global ledger used by SYNERGY_OBS_CHARGE.
  static energy_ledger& instance();

  energy_ledger() = default;
  energy_ledger(const energy_ledger&) = delete;
  energy_ledger& operator=(const energy_ledger&) = delete;

  /// Attribute `joules` to (key, why). Hostile input is dropped, never
  /// propagated: non-finite or negative amounts are ignored.
  void charge(const charge_key& key, cause why, double joules);

  [[nodiscard]] double total_j() const;
  [[nodiscard]] std::uint64_t charges() const;
  [[nodiscard]] cause_array totals_by_cause() const;

  /// All cells sorted into key order (deterministic across replays).
  [[nodiscard]] std::vector<ledger_entry> entries() const;

  /// Append a cumulative sample at virtual time `t_s` to the series.
  void scrape(double t_s);
  [[nodiscard]] std::vector<scrape_sample> series() const;

  /// Drop every cell, total, and series point (run isolation).
  void reset();

  /// Per-ledger kill switch: a disabled ledger drops charges at the mutex
  /// boundary — what the overhead bench compares against.
  void set_enabled(bool on);
  [[nodiscard]] bool is_enabled() const;

  /// Snapshot every cell, the exact running totals, and the scrape series.
  [[nodiscard]] ledger_state export_state() const;
  /// Replace the ledger contents wholesale (the enabled flag is untouched).
  void import_state(const ledger_state& s);

 private:
  mutable std::mutex mutex_;
  bool enabled_{true};
  std::unordered_map<charge_key, cause_array, charge_key_hash> cells_;
  cause_array totals_{};
  double total_j_{0.0};
  std::uint64_t charges_{0};
  std::vector<scrape_sample> series_;
};

/// Thread-local attribution context: who is spending and why. The layers
/// that *know* the decision (queue target resolution, the resilience
/// layer's retry backoff) open a scope; the layer that *prices* the energy
/// (gpusim::device) reads it at charge time — no plumbing through the SYCL
/// submission path.
struct attribution {
  std::string node{"host"};
  std::string job;
  cause why{cause::unattributed};
};

/// The calling thread's current attribution (defaults above when no scope
/// is open).
[[nodiscard]] const attribution& current_attribution() noexcept;

/// RAII scope: installs an attribution for the calling thread, restores the
/// previous one on destruction. Nests.
class attribution_scope {
 public:
  attribution_scope(std::string node, std::string job, cause why);
  explicit attribution_scope(cause why);
  ~attribution_scope();
  attribution_scope(const attribution_scope&) = delete;
  attribution_scope& operator=(const attribution_scope&) = delete;

 private:
  attribution prev_;
};

}  // namespace synergy::obs

/// Charge the global ledger; compiles to nothing with the telemetry plane.
#if SYNERGY_TELEMETRY_ENABLED
#define SYNERGY_OBS_CHARGE(key, why, joules) \
  ::synergy::obs::energy_ledger::instance().charge((key), (why), (joules))
#else
#define SYNERGY_OBS_CHARGE(key, why, joules) ((void)0)
#endif

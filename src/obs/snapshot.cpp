#include "synergy/obs/snapshot.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "synergy/common/envelope.hpp"

namespace synergy::obs {

namespace tel = telemetry;

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes '_'.
std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')
               ? c
               : '_';
  return out;
}

bool is_volatile(const snapshot_options& options, const std::string& name) {
  return std::find(options.volatile_metrics.begin(), options.volatile_metrics.end(),
                   name) != options.volatile_metrics.end();
}

void append_cause_object(std::string& out, const cause_array& by_cause,
                         bool nonzero_only) {
  out += '{';
  bool first = true;
  for (std::size_t c = 0; c < n_causes; ++c) {
    if (nonzero_only && by_cause[c] == 0.0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += to_string(static_cast<cause>(c));
    out += "\":";
    out += format_double(by_cause[c]);
  }
  out += '}';
}

void append_metrics_json(std::string& out, const snapshot_options& options) {
  const auto metrics = tel::metrics_registry::instance().snapshot();
  bool first = true;
  for (const auto& m : metrics) {
    if (is_volatile(options, m.name)) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(m.name);
    out += "\",\"kind\":\"";
    switch (m.type) {
      case tel::metric_snapshot::kind::counter:
        out += "counter\",\"value\":" + format_double(m.value);
        break;
      case tel::metric_snapshot::kind::gauge:
        out += "gauge\",\"value\":" + format_double(m.value);
        break;
      case tel::metric_snapshot::kind::histogram:
        out += "histogram\",\"count\":" + std::to_string(m.count);
        out += ",\"sum\":" + format_double(m.sum);
        out += ",\"min\":" + format_double(m.min);
        out += ",\"max\":" + format_double(m.max);
        out += ",\"mean\":" + format_double(m.mean);
        out += ",\"p50\":" +
               format_double(tel::histogram_quantile(m.bounds, m.buckets, m.min, m.max, 0.50));
        out += ",\"p99\":" +
               format_double(tel::histogram_quantile(m.bounds, m.buckets, m.min, m.max, 0.99));
        break;
    }
    out += '}';
  }
}

}  // namespace

std::string render_json(const energy_ledger& ledger, const slo_watchdog* watchdog,
                        const snapshot_options& options) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"synergy.obs.snapshot/v1\",\"source\":\"";
  out += json_escape(options.source);
  out += "\",\"sequence\":" + std::to_string(options.sequence);
  out += ",\"time_s\":" + format_double(options.time_s);

  out += ",\"ledger\":{\"total_j\":" + format_double(ledger.total_j());
  out += ",\"charges\":" + std::to_string(ledger.charges());
  out += ",\"by_cause\":";
  append_cause_object(out, ledger.totals_by_cause(), /*nonzero_only=*/false);

  out += ",\"entries\":[";
  bool first = true;
  for (const auto& e : ledger.entries()) {
    if (!first) out += ',';
    first = false;
    out += "{\"node\":\"" + json_escape(e.key.node);
    out += "\",\"device\":\"" + json_escape(e.key.device);
    out += "\",\"job\":\"" + json_escape(e.key.job);
    out += "\",\"kernel\":\"" + json_escape(e.key.kernel);
    out += "\",\"total_j\":" + format_double(e.total_j);
    out += ",\"by_cause\":";
    append_cause_object(out, e.by_cause, /*nonzero_only=*/true);
    out += '}';
  }
  out += "],\"series\":[";
  first = true;
  for (const auto& s : ledger.series()) {
    if (!first) out += ',';
    first = false;
    out += "{\"t_s\":" + format_double(s.t_s);
    out += ",\"total_j\":" + format_double(s.total_j);
    out += ",\"charges\":" + std::to_string(s.charges);
    out += ",\"by_cause\":";
    append_cause_object(out, s.by_cause, /*nonzero_only=*/true);
    out += '}';
  }
  out += "]}";

  if (options.econ.enabled) {
    const auto& ec = options.econ;
    out += ",\"econ\":{\"cost_usd\":" + format_double(ec.cost_usd);
    out += ",\"capex_usd\":" + format_double(ec.capex_usd);
    out += ",\"carbon_g\":" + format_double(ec.carbon_g);
    out += ",\"cost_per_job_usd\":" + format_double(ec.cost_per_job_usd);
    out += ",\"carbon_per_job_g\":" + format_double(ec.carbon_per_job_g);
    out += ",\"jobs_completed\":" + std::to_string(ec.jobs_completed);
    out += ",\"attributed_cost_usd\":" + format_double(ec.attributed_cost_usd);
    out += ",\"cost_by_cause\":";
    append_cause_object(out, ec.cost_by_cause, /*nonzero_only=*/false);
    out += ",\"attributed_carbon_g\":" + format_double(ec.attributed_carbon_g);
    out += ",\"carbon_by_cause\":";
    append_cause_object(out, ec.carbon_by_cause, /*nonzero_only=*/false);
    out += '}';
  }

  out += ",\"alerts\":[";
  if (watchdog) {
    first = true;
    for (const auto& a : watchdog->alerts()) {
      if (!first) out += ',';
      first = false;
      out += a.to_json_line();
    }
  }
  out += ']';

  out += ",\"metrics\":[";
  if (options.include_metrics) append_metrics_json(out, options);
  out += "]}";
  return out;
}

std::string render_prometheus(const energy_ledger& ledger,
                              const snapshot_options& options) {
  std::string out;
  out.reserve(4096);

  out += "# HELP synergy_energy_joules Simulated joules attributed by "
         "node/device/job/kernel and cause.\n";
  out += "# TYPE synergy_energy_joules counter\n";
  for (const auto& e : ledger.entries()) {
    for (std::size_t c = 0; c < n_causes; ++c) {
      if (e.by_cause[c] == 0.0) continue;
      out += "synergy_energy_joules{node=\"" + json_escape(e.key.node);
      out += "\",device=\"" + json_escape(e.key.device);
      out += "\",job=\"" + json_escape(e.key.job);
      out += "\",kernel=\"" + json_escape(e.key.kernel);
      out += "\",cause=\"";
      out += to_string(static_cast<cause>(c));
      out += "\"} " + format_double(e.by_cause[c]) + "\n";
    }
  }

  out += "# TYPE synergy_energy_cause_joules counter\n";
  const auto totals = ledger.totals_by_cause();
  for (std::size_t c = 0; c < n_causes; ++c) {
    out += "synergy_energy_cause_joules{cause=\"";
    out += to_string(static_cast<cause>(c));
    out += "\"} " + format_double(totals[c]) + "\n";
  }
  out += "# TYPE synergy_energy_total_joules counter\n";
  out += "synergy_energy_total_joules " + format_double(ledger.total_j()) + "\n";
  out += "# TYPE synergy_obs_ledger_charges_total counter\n";
  out += "synergy_obs_ledger_charges_total " + std::to_string(ledger.charges()) + "\n";
  out += "# TYPE synergy_obs_snapshot_sequence counter\n";
  out += "synergy_obs_snapshot_sequence " + std::to_string(options.sequence) + "\n";
  out += "# TYPE synergy_obs_snapshot_time_seconds gauge\n";
  out += "synergy_obs_snapshot_time_seconds " + format_double(options.time_s) + "\n";

  if (options.econ.enabled) {
    const auto& ec = options.econ;
    out += "# TYPE synergy_econ_cost_usd gauge\n";
    out += "synergy_econ_cost_usd " + format_double(ec.cost_usd) + "\n";
    out += "# TYPE synergy_econ_capex_usd gauge\n";
    out += "synergy_econ_capex_usd " + format_double(ec.capex_usd) + "\n";
    out += "# TYPE synergy_econ_carbon_grams gauge\n";
    out += "synergy_econ_carbon_grams " + format_double(ec.carbon_g) + "\n";
    out += "# TYPE synergy_econ_cost_per_job_usd gauge\n";
    out += "synergy_econ_cost_per_job_usd " + format_double(ec.cost_per_job_usd) + "\n";
    out += "# TYPE synergy_econ_carbon_per_job_grams gauge\n";
    out += "synergy_econ_carbon_per_job_grams " + format_double(ec.carbon_per_job_g) + "\n";
    out += "# TYPE synergy_econ_cause_cost_usd counter\n";
    for (std::size_t c = 0; c < n_causes; ++c) {
      out += "synergy_econ_cause_cost_usd{cause=\"";
      out += to_string(static_cast<cause>(c));
      out += "\"} " + format_double(ec.cost_by_cause[c]) + "\n";
    }
    out += "# TYPE synergy_econ_cause_carbon_grams counter\n";
    for (std::size_t c = 0; c < n_causes; ++c) {
      out += "synergy_econ_cause_carbon_grams{cause=\"";
      out += to_string(static_cast<cause>(c));
      out += "\"} " + format_double(ec.carbon_by_cause[c]) + "\n";
    }
  }

  if (!options.include_metrics) return out;
  for (const auto& m : tel::metrics_registry::instance().snapshot()) {
    // Same volatile filter as the JSON document: wall-clock-valued
    // instruments would break the workflow's .prom byte-diffs.
    if (is_volatile(options, m.name)) continue;
    const std::string name = "synergy_" + sanitize_metric_name(m.name);
    switch (m.type) {
      case tel::metric_snapshot::kind::counter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + format_double(m.value) + "\n";
        break;
      case tel::metric_snapshot::kind::gauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_double(m.value) + "\n";
        break;
      case tel::metric_snapshot::kind::histogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          cumulative += m.buckets[i];
          const std::string le =
              i < m.bounds.size() ? format_double(m.bounds[i]) : std::string{"+Inf"};
          out += name + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) + "\n";
        }
        out += name + "_sum " + format_double(m.sum) + "\n";
        out += name + "_count " + std::to_string(m.count) + "\n";
        // Quantile companions (satellite: plan-latency p50/p99 in snapshots).
        out += "# TYPE " + name + "_p50 gauge\n";
        out += name + "_p50 " +
               format_double(
                   tel::histogram_quantile(m.bounds, m.buckets, m.min, m.max, 0.50)) +
               "\n";
        out += "# TYPE " + name + "_p99 gauge\n";
        out += name + "_p99 " +
               format_double(
                   tel::histogram_quantile(m.bounds, m.buckets, m.min, m.max, 0.99)) +
               "\n";
        break;
      }
    }
  }
  return out;
}

common::status write_snapshot_files(const std::filesystem::path& prefix,
                                    const energy_ledger& ledger,
                                    const slo_watchdog* watchdog,
                                    const snapshot_options& options) {
  std::filesystem::path json_path = prefix;
  json_path += ".json";
  if (auto st = common::atomic_write_file(json_path,
                                          render_json(ledger, watchdog, options));
      !st.ok())
    return st;
  std::filesystem::path prom_path = prefix;
  prom_path += ".prom";
  return common::atomic_write_file(prom_path, render_prometheus(ledger, options));
}

}  // namespace synergy::obs

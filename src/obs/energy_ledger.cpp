#include "synergy/obs/energy_ledger.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace synergy::obs {

energy_ledger& energy_ledger::instance() {
  static energy_ledger global;
  return global;
}

void energy_ledger::charge(const charge_key& key, cause why, double joules) {
  if (!std::isfinite(joules) || joules <= 0.0) return;
  std::scoped_lock lock(mutex_);
  if (!enabled_) return;
  const auto ci = static_cast<std::size_t>(why);
  // Pre-size the table on first use: growth rehashes re-link every node,
  // which is most of the insert cost on large runs.
  if (cells_.bucket_count() < 1024) cells_.rehash(4096);
  cells_[key][ci] += joules;
  totals_[ci] += joules;
  total_j_ += joules;
  ++charges_;
}

double energy_ledger::total_j() const {
  std::scoped_lock lock(mutex_);
  return total_j_;
}

std::uint64_t energy_ledger::charges() const {
  std::scoped_lock lock(mutex_);
  return charges_;
}

cause_array energy_ledger::totals_by_cause() const {
  std::scoped_lock lock(mutex_);
  return totals_;
}

std::vector<ledger_entry> energy_ledger::entries() const {
  std::scoped_lock lock(mutex_);
  std::vector<ledger_entry> out;
  out.reserve(cells_.size());
  for (const auto& [key, by_cause] : cells_) {
    ledger_entry e;
    e.key = key;
    e.by_cause = by_cause;
    for (const double j : by_cause) e.total_j += j;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ledger_entry& a, const ledger_entry& b) { return a.key < b.key; });
  return out;
}

void energy_ledger::scrape(double t_s) {
  std::scoped_lock lock(mutex_);
  if (!enabled_) return;
  scrape_sample s;
  s.t_s = t_s;
  s.by_cause = totals_;
  s.total_j = total_j_;
  s.charges = charges_;
  series_.push_back(std::move(s));
}

std::vector<scrape_sample> energy_ledger::series() const {
  std::scoped_lock lock(mutex_);
  return series_;
}

void energy_ledger::reset() {
  std::scoped_lock lock(mutex_);
  cells_.clear();
  totals_ = {};
  total_j_ = 0.0;
  charges_ = 0;
  series_.clear();
}

void energy_ledger::set_enabled(bool on) {
  std::scoped_lock lock(mutex_);
  enabled_ = on;
}

bool energy_ledger::is_enabled() const {
  std::scoped_lock lock(mutex_);
  return enabled_;
}

ledger_state energy_ledger::export_state() const {
  ledger_state s;
  s.cells = entries();  // key-sorted; takes the lock itself
  std::scoped_lock lock(mutex_);
  s.totals = totals_;
  s.total_j = total_j_;
  s.charges = charges_;
  s.series = series_;
  return s;
}

void energy_ledger::import_state(const ledger_state& s) {
  std::scoped_lock lock(mutex_);
  cells_.clear();
  if (!s.cells.empty()) cells_.rehash(std::max<std::size_t>(4096, s.cells.size() * 2));
  for (const auto& e : s.cells) cells_.emplace(e.key, e.by_cause);
  totals_ = s.totals;
  total_j_ = s.total_j;
  charges_ = s.charges;
  series_ = s.series;
}

namespace {

attribution& thread_attribution() noexcept {
  static thread_local attribution current;
  return current;
}

}  // namespace

const attribution& current_attribution() noexcept { return thread_attribution(); }

attribution_scope::attribution_scope(std::string node, std::string job, cause why)
    : prev_(std::move(thread_attribution())) {
  thread_attribution() = attribution{std::move(node), std::move(job), why};
}

attribution_scope::attribution_scope(cause why) : prev_(thread_attribution()) {
  thread_attribution().why = why;
}

attribution_scope::~attribution_scope() { thread_attribution() = std::move(prev_); }

}  // namespace synergy::obs
